//! DAG lint family (`DAG001`–`DAG005`): structural and weight checks
//! over the *raw* decoded DAG, so a defective document yields
//! diagnostics instead of a builder panic or a single opaque error.

use crate::diag::{Code, Diagnostic};
use rsg_dag::io::RawDag;

/// Lints one raw DAG. `subject` names the input in the diagnostics.
///
/// Returns the findings plus the DAG's maximum level width when the
/// graph is valid enough to compute one (used by the cross-file
/// `DAG005` width-vs-spec-size check).
pub fn lint_dag(raw: &RawDag, subject: &str) -> (Vec<Diagnostic>, Option<u32>) {
    let mut out = Vec::new();
    let n = raw.tasks.len();

    // --- DAG003: weights --------------------------------------------
    for (id, &cost) in raw.tasks.iter().enumerate() {
        if cost.is_nan() || cost.is_infinite() || cost < 0.0 {
            out.push(Diagnostic::error(
                Code::Dag003,
                subject,
                format!("task {id} has invalid computation cost {cost}"),
            ));
        } else if cost == 0.0 {
            out.push(Diagnostic::warn(
                Code::Dag003,
                subject,
                format!("task {id} has zero computation cost"),
            ));
        }
    }
    for &(a, b, comm) in &raw.edges {
        if comm.is_nan() || comm.is_infinite() || comm < 0.0 {
            out.push(Diagnostic::error(
                Code::Dag003,
                subject,
                format!("edge {a} -> {b} has invalid communication cost {comm}"),
            ));
        }
    }

    // --- DAG002: structural defects ---------------------------------
    if n == 0 {
        out.push(Diagnostic::error(Code::Dag002, subject, "DAG has no tasks"));
    }
    let mut seen = std::collections::BTreeSet::new();
    for &(a, b, _) in &raw.edges {
        if a as usize >= n || b as usize >= n {
            out.push(Diagnostic::error(
                Code::Dag002,
                subject,
                format!("edge {a} -> {b} references an unknown task (task count {n})"),
            ));
            continue;
        }
        if a == b {
            out.push(Diagnostic::error(
                Code::Dag002,
                subject,
                format!("self edge on task {a}"),
            ));
            continue;
        }
        if !seen.insert((a, b)) {
            out.push(Diagnostic::error(
                Code::Dag002,
                subject,
                format!("duplicate edge {a} -> {b}"),
            ));
        }
    }

    // --- DAG001: cycles (Kahn over the well-formed edge subset) ------
    let edges: Vec<(u32, u32)> = seen.into_iter().collect();
    let width = match topo_levels(n, &edges) {
        Some(levels) => levels.iter().map(|l| l.len() as u32).max(),
        None => {
            out.push(Diagnostic::error(
                Code::Dag001,
                subject,
                format!("cycle among tasks {:?}", cycle_members(n, &edges)),
            ));
            None
        }
    };

    // --- DAG004: orphan tasks ----------------------------------------
    // A task no edge touches, in a graph that otherwise *has* edges,
    // is almost always a generator or transcription bug. A fully
    // disconnected DAG (no edges at all) is a legitimate bag of tasks.
    if !raw.edges.is_empty() && n > 1 {
        let mut touched = vec![false; n];
        for &(a, b, _) in &raw.edges {
            if (a as usize) < n {
                touched[a as usize] = true;
            }
            if (b as usize) < n {
                touched[b as usize] = true;
            }
        }
        for (id, t) in touched.iter().enumerate() {
            if !t {
                out.push(Diagnostic::warn(
                    Code::Dag004,
                    subject,
                    format!("task {id} is connected to nothing else in the DAG"),
                ));
            }
        }
    }

    (out, width)
}

/// Kahn topological leveling; `None` when the edge set has a cycle.
fn topo_levels(n: usize, edges: &[(u32, u32)]) -> Option<Vec<Vec<u32>>> {
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        indeg[b as usize] += 1;
        succ[a as usize].push(b);
    }
    let mut frontier: Vec<u32> = (0..n as u32).filter(|&t| indeg[t as usize] == 0).collect();
    let mut levels = Vec::new();
    let mut placed = 0usize;
    while !frontier.is_empty() {
        placed += frontier.len();
        let mut next = Vec::new();
        for &t in &frontier {
            for &s in &succ[t as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    next.push(s);
                }
            }
        }
        levels.push(std::mem::replace(&mut frontier, next));
    }
    (placed == n).then_some(levels)
}

/// The tasks left unplaced by Kahn's algorithm — a superset of every
/// cycle, good enough to point a human at the problem.
fn cycle_members(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        indeg[b as usize] += 1;
        succ[a as usize].push(b);
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&t| indeg[t as usize] == 0).collect();
    let mut removed = vec![false; n];
    while let Some(t) = queue.pop() {
        removed[t as usize] = true;
        for &s in &succ[t as usize] {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push(s);
            }
        }
    }
    (0..n as u32).filter(|&t| !removed[t as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::io::read_dag_raw;

    fn raw(doc: &str) -> RawDag {
        read_dag_raw(doc).expect("syntactically valid doc")
    }

    #[test]
    fn clean_dag_has_no_findings_and_a_width() {
        let doc = "rsg-dag v1\ntask 0 1.0\ntask 1 2.0\ntask 2 2.0\n\
                   edge 0 1 0.5\nedge 0 2 0.5\nend\n";
        let (diags, width) = lint_dag(&raw(doc), "t");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(width, Some(2));
    }

    #[test]
    fn cycle_is_a_diagnostic_not_a_panic() {
        let doc = "rsg-dag v1\ntask 0 1.0\ntask 1 1.0\ntask 2 1.0\n\
                   edge 0 1 0.1\nedge 1 2 0.1\nedge 2 1 0.1\nend\n";
        let (diags, width) = lint_dag(&raw(doc), "t");
        assert!(diags.iter().any(|d| d.code == Code::Dag001));
        assert!(width.is_none());
        let cyc = diags.iter().find(|d| d.code == Code::Dag001).unwrap();
        assert!(cyc.detail.contains('1') && cyc.detail.contains('2'));
    }

    #[test]
    fn structural_defects_and_weights() {
        let doc = "rsg-dag v1\ntask 0 1.0\ntask 1 nan\ntask 2 0.0\n\
                   edge 0 1 0.1\nedge 0 1 0.1\nedge 1 1 0.2\nedge 0 9 0.3\nedge 1 2 -1.0\nend\n";
        let (diags, _) = lint_dag(&raw(doc), "t");
        let codes: Vec<_> = diags.iter().map(|d| (d.code, d.severity)).collect();
        use crate::diag::Severity::*;
        assert!(codes.contains(&(Code::Dag003, Error)), "NaN task cost");
        assert!(codes.contains(&(Code::Dag003, Warn)), "zero task cost");
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Dag002 && d.detail.contains("duplicate")));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Dag002 && d.detail.contains("self edge")));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Dag002 && d.detail.contains("unknown task")));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Dag003 && d.detail.contains("-1")));
    }

    #[test]
    fn orphan_task_warns_only_when_graph_has_edges() {
        let doc = "rsg-dag v1\ntask 0 1.0\ntask 1 1.0\ntask 2 1.0\nedge 0 1 0.1\nend\n";
        let (diags, _) = lint_dag(&raw(doc), "t");
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Dag004 && d.detail.contains("task 2")));
        // A pure bag of tasks is fine.
        let bag = "rsg-dag v1\ntask 0 1.0\ntask 1 1.0\nend\n";
        let (diags, width) = lint_dag(&raw(bag), "t");
        assert!(diags.is_empty());
        assert_eq!(width, Some(2));
    }
}
