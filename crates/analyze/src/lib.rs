//! # rsg-analyze — static analysis for specs, DAGs and their renderings
//!
//! The paper's pipeline ends by *emitting* a resource specification in
//! three real languages (vgDL, Condor ClassAds, SWORD XML); this crate
//! is the correctness tooling for those artifacts. It runs three lint
//! families over any mix of input documents and produces typed,
//! machine-readable diagnostics with stable codes:
//!
//! * **DAG lints** (`DAG001`–`DAG005`) — cycles as diagnostics instead
//!   of panics, malformed structure, invalid weights, orphan tasks,
//!   and requested-size-vs-width degeneracy.
//! * **Spec lints** (`SPEC001`–`SPEC009`) — bounds/unit sanity,
//!   platform satisfiability (including the population ceiling),
//!   degradation-ladder monotonicity, utility-config sanity.
//! * **Cross-language analysis** (`XLANG001`–`XLANG003`) — every
//!   document is reduced to a [`SpecView`]; views from co-analyzed
//!   documents must agree on shared fields, and each view must be a
//!   fixed point of render→parse in its own language.
//!
//! Parse failures are themselves diagnostics (`PARSE001`–`PARSE005`),
//! so one defective file never aborts the analysis of the rest.
//!
//! Reports render as JSON, TSV or a human table (see
//! [`AnalysisReport`]), mirroring the `rsg-obs` report formats.

#![warn(missing_docs)]

pub mod artifact_lints;
pub mod audit;
pub mod dag_lints;
pub mod delta;
pub mod diag;
pub mod model_lints;
pub mod spec_lints;
pub mod specfile;
pub mod xlang;

pub use artifact_lints::{classify, Artifact, ArtifactKind};
pub use audit::{audit_tree, serve_engine_fingerprint, FoldOutcome, StaticFold};
pub use dag_lints::lint_dag;
pub use delta::{code_for, lint_delta_batch, DeltaCode, DeltaDiagnostic};
pub use diag::{AnalysisReport, Code, Diagnostic, Severity};
pub use model_lints::{lint_heuristic_model, lint_size_model};
pub use spec_lints::{lint_population, lint_resource_spec, lint_satisfiability, lint_spec_doc};
pub use specfile::{parse_spec_doc, write_spec_doc, SpecDoc, SpecFileError, SpecRung};
pub use xlang::{
    expected_view, lint_roundtrip, lint_spec_roundtrip, lint_view, view_divergences, SpecLang,
    SpecView,
};

use rsg_obs::Counter;
use rsg_platform::Platform;
use rsg_select::classad::parse_classad;
use rsg_select::sword::parse_sword;
use rsg_select::vgdl::parse_vgdl;

/// What kind of document an input holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `rsg-dag v1` workflow file.
    Dag,
    /// Native `rsg-spec v1` file.
    NativeSpec,
    /// vgDL text.
    Vgdl,
    /// Condor ClassAd.
    ClassAd,
    /// SWORD XML.
    Sword,
}

/// Sniffs the document kind from its content: the two native formats
/// carry headers, SWORD is the only XML dialect, ClassAds open with
/// `[`, and anything else is treated as vgDL (whose parser reports
/// precise errors for non-vgDL text).
pub fn sniff_kind(text: &str) -> SourceKind {
    let t = text.trim_start();
    if t.starts_with("rsg-dag") {
        SourceKind::Dag
    } else if t.starts_with("rsg-spec") {
        SourceKind::NativeSpec
    } else if t.starts_with('<') {
        SourceKind::Sword
    } else if t.starts_with('[') {
        SourceKind::ClassAd
    } else {
        SourceKind::Vgdl
    }
}

/// One named input document.
#[derive(Debug, Clone, PartialEq)]
pub struct Input {
    /// Display name (file name).
    pub name: String,
    /// Document text.
    pub text: String,
}

impl Input {
    /// Convenience constructor.
    pub fn new(name: &str, text: &str) -> Input {
        Input {
            name: name.to_string(),
            text: text.to_string(),
        }
    }
}

/// Analyzes a batch of documents together.
///
/// All spec documents in one invocation are treated as renderings of
/// the *same* request: their views are compared pairwise (`XLANG002`),
/// and each spec's requested size is checked against the width of the
/// DAGs analyzed alongside it (`DAG005`). Pass a [`Platform`] to
/// enable the satisfiability lints (`SPEC006`).
pub fn analyze(inputs: &[Input], platform: Option<&Platform>) -> AnalysisReport {
    static OBS_INPUTS: Counter = Counter::new("analyze.inputs");
    static OBS_DIAGS: Counter = Counter::new("analyze.diagnostics");
    let _span = rsg_obs::span("analyze/run");

    let mut diagnostics = Vec::new();
    // Views of every spec document, with their subject, for the
    // cross-document comparisons.
    let mut views: Vec<(String, SpecView)> = Vec::new();
    // Maximum DAG width seen, for DAG005.
    let mut max_width: Option<u32> = None;

    for input in inputs {
        OBS_INPUTS.incr();
        let subject = input.name.as_str();
        match sniff_kind(&input.text) {
            SourceKind::Dag => match rsg_dag::io::read_dag_raw(&input.text) {
                Ok(raw) => {
                    let (diags, width) = lint_dag(&raw, subject);
                    diagnostics.extend(diags);
                    if let Some(w) = width {
                        max_width = Some(max_width.map_or(w, |m| m.max(w)));
                    }
                }
                Err(e) => {
                    diagnostics.push(Diagnostic::error(Code::Parse004, subject, e.to_string()));
                }
            },
            SourceKind::NativeSpec => match parse_spec_doc(&input.text) {
                Ok(doc) => {
                    diagnostics.extend(lint_spec_doc(&doc, subject, platform));
                    if let Some(rung) = doc.rungs.first() {
                        views.push((input.name.clone(), rung_view(rung)));
                    }
                }
                Err(e) => {
                    diagnostics.push(Diagnostic::error(Code::Parse005, subject, e.to_string()));
                }
            },
            SourceKind::Vgdl => match parse_vgdl(&input.text) {
                Ok(spec) => {
                    let view = xlang::view_from_vgdl(&spec, subject, &mut diagnostics);
                    diagnostics.extend(lint_view(&view, subject));
                    diagnostics.extend(lint_roundtrip(&view, SpecLang::Vgdl, subject));
                    lint_view_satisfiability(&view, platform, subject, &mut diagnostics);
                    views.push((input.name.clone(), view));
                }
                Err(e) => {
                    diagnostics.push(Diagnostic::error(Code::Parse001, subject, e.to_string()));
                }
            },
            SourceKind::ClassAd => match parse_classad(&input.text) {
                Ok(ad) => {
                    let view = xlang::view_from_classad(&ad, subject, &mut diagnostics);
                    diagnostics.extend(lint_view(&view, subject));
                    diagnostics.extend(lint_roundtrip(&view, SpecLang::ClassAd, subject));
                    lint_view_satisfiability(&view, platform, subject, &mut diagnostics);
                    views.push((input.name.clone(), view));
                }
                Err(e) => {
                    diagnostics.push(Diagnostic::error(Code::Parse002, subject, e.to_string()));
                }
            },
            SourceKind::Sword => match parse_sword(&input.text) {
                Ok(req) => {
                    let view = xlang::view_from_sword(&req, subject, &mut diagnostics);
                    diagnostics.extend(lint_view(&view, subject));
                    diagnostics.extend(lint_roundtrip(&view, SpecLang::Sword, subject));
                    lint_view_satisfiability(&view, platform, subject, &mut diagnostics);
                    views.push((input.name.clone(), view));
                }
                Err(e) => {
                    diagnostics.push(Diagnostic::error(Code::Parse003, subject, e.to_string()));
                }
            },
        }
    }

    // --- DAG005: requested size vs. co-analyzed DAG width ------------
    if let Some(width) = max_width {
        for (name, view) in &views {
            if let Some(size) = view.size {
                if size.is_finite() && size > f64::from(width) {
                    diagnostics.push(Diagnostic::warn(
                        Code::Dag005,
                        name,
                        format!(
                            "requested RC size {size} exceeds the maximum DAG width {width} — \
                             the extra hosts can never run in parallel"
                        ),
                    ));
                }
            }
        }
    }

    // --- XLANG002: pairwise view agreement ---------------------------
    for i in 0..views.len() {
        for j in (i + 1)..views.len() {
            let (na, va) = &views[i];
            let (nb, vb) = &views[j];
            for (field, left, right) in view_divergences(va, vb) {
                diagnostics.push(Diagnostic::error(
                    Code::Xlang002,
                    na,
                    format!("{field} diverges: {left} here, {right} in {nb}"),
                ));
            }
        }
    }

    OBS_DIAGS.add(diagnostics.len() as u64);
    AnalysisReport { diagnostics }
}

/// SPEC006/SPEC009 for a view, when it expresses enough to check.
fn lint_view_satisfiability(
    view: &SpecView,
    platform: Option<&Platform>,
    subject: &str,
    out: &mut Vec<Diagnostic>,
) {
    let Some(platform) = platform else { return };
    if view.size.is_none() {
        return;
    }
    // Only check views whose numerics are sane; the sanity lints
    // already reported the rest.
    if !lint_view(view, subject).is_empty() {
        return;
    }
    let spec = xlang::view_to_spec(view);
    if view.clock_lo.is_none() {
        // No clock window: the per-constraint SPEC006 breakdown cannot
        // run, but the population ceiling (SPEC009) does not depend on
        // it.
        out.extend(spec_lints::lint_population(&spec, platform, subject));
    } else {
        out.extend(lint_satisfiability(&spec, platform, subject));
    }
}

/// The view a native spec rung presents to the cross-language
/// comparison.
fn rung_view(rung: &SpecRung) -> SpecView {
    SpecView {
        size: rung.size,
        min_size: rung.min_size,
        clock_lo: rung.clock.map(|c| c.0),
        clock_hi: rung.clock.map(|c| c.1),
        memory_mb: rung.memory_mb,
        heuristic: rung.heuristic.clone(),
        aggregate: rung.aggregate.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN_DAG: &str = "rsg-dag v1\ntask 0 1.0\ntask 1 2.0\ntask 2 2.0\ntask 3 1.0\n\
                             edge 0 1 0.5\nedge 0 2 0.5\nedge 1 3 0.2\nedge 2 3 0.2\nend\n";

    #[test]
    fn sniffing() {
        assert_eq!(sniff_kind(CLEAN_DAG), SourceKind::Dag);
        assert_eq!(
            sniff_kind("rsg-spec v1\nsize 5\nend\n"),
            SourceKind::NativeSpec
        );
        assert_eq!(sniff_kind("  <request></request>"), SourceKind::Sword);
        assert_eq!(sniff_kind("[ Count = 5 ]"), SourceKind::ClassAd);
        assert_eq!(
            sniff_kind("VG = TightBagOf(n) [1:2] { n = [ Clock >= 1 ] }"),
            SourceKind::Vgdl
        );
    }

    #[test]
    fn clean_batch_is_clean() {
        let spec = rsg_core::ResourceSpec {
            rc_size: 2,
            min_size: 1,
            clock_mhz: (1000.0, 3600.0),
            heuristic: rsg_sched::HeuristicKind::Mcp,
            aggregate: rsg_select::vgdl::AggregateKind::TightBagOf,
            threshold: 0.001,
            memory_mb: 512,
        };
        let inputs = [
            Input::new("w.dag", CLEAN_DAG),
            Input::new(
                "s.vgdl",
                &rsg_core::SpecGenerator::to_vgdl(&spec).to_string(),
            ),
            Input::new(
                "s.classad",
                &rsg_core::SpecGenerator::to_classad(&spec).to_string(),
            ),
            Input::new(
                "s.xml",
                &rsg_select::sword::write_sword(&rsg_core::SpecGenerator::to_sword(&spec)),
            ),
        ];
        let report = analyze(&inputs, None);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn oversized_spec_against_narrow_dag_warns_dag005() {
        let report = analyze(
            &[
                Input::new("w.dag", CLEAN_DAG),
                Input::new(
                    "s.spec",
                    "rsg-spec v1\nsize 64\nmin 2\nclock 1000 3600\nend\n",
                ),
            ],
            None,
        );
        assert!(
            report.diagnostics.iter().any(|d| d.code == Code::Dag005),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn divergent_renderings_trip_xlang002() {
        let report = analyze(
            &[
                Input::new(
                    "a.classad",
                    "[ Count = 20; Requirements = other.Clock >= 1000 ]",
                ),
                Input::new(
                    "b.classad",
                    "[ Count = 32; Requirements = other.Clock >= 1000 ]",
                ),
            ],
            None,
        );
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::Xlang002 && d.detail.contains("size")),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn parse_failures_become_diagnostics() {
        let report = analyze(
            &[
                Input::new("bad.dag", "rsg-dag v1\ntask zero\nend\n"),
                Input::new("bad.spec", "rsg-spec v1\nwat 1\nend\n"),
                Input::new("bad.vgdl", "WeirdBagOf(x) [1:2] { x = [ Clock >= 1 ] }"),
                Input::new("bad.classad", "[ Count = ; ]"),
                Input::new("bad.xml", "<request><group></request>"),
            ],
            None,
        );
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        for c in [
            Code::Parse001,
            Code::Parse002,
            Code::Parse003,
            Code::Parse004,
            Code::Parse005,
        ] {
            assert!(codes.contains(&c), "missing {c} in {codes:?}");
        }
    }
}
