//! `rsg audit`: whole-deployment static verification of the artifact
//! graph.
//!
//! Every artifact the pipeline emits — size/heuristic models, knee
//! tables, sweep journals, the platform file, delta journals, rendered
//! specs — already checks *itself* (store checksums, `rsg lint`, the
//! push engine's validation). What nothing checked until now is the
//! *graph*: whether the artifacts sitting together in one deployment
//! tree are mutually consistent at the moment `rsg serve` would boot
//! on them. This module audits the tree offline:
//!
//! * the fingerprint chain — a delta journal keyed to a different
//!   engine configuration, or sweep-journal shards that disagree with
//!   each other, are errors *before* boot, not quarantines at runtime;
//! * a **static delta-stream fold** ([`StaticFold`]) that abstractly
//!   replays the delta journals onto the platform without constructing
//!   a `PushEngine` — same classification, same refusals, bit-identical
//!   final state (proved by the differential test in
//!   `tests/audit_fold_equiv.rs`) — surfacing open sequence gaps,
//!   conflicting redeliveries, records the fold must refuse, and
//!   clamp-saturating drifts;
//! * whether the **post-fold** platform still satisfies every spec in
//!   the corpus, reusing the SPEC satisfiability model — a stream of
//!   perfectly valid host-leave deltas that strands a committed spec is
//!   a deployment bug no per-file check can see;
//! * `MODEL00x` lints on the models themselves (see
//!   [`model_lints`](crate::model_lints)).
//!
//! Findings reuse the [`AnalysisReport`] taxonomy under the `AUDIT` and
//! `MODEL` families, so `rsg audit` renders and exits exactly like
//! `rsg lint`.

use crate::artifact_lints::{classify, relative_subject, Artifact, ArtifactKind};
use crate::diag::{AnalysisReport, Code, Diagnostic, Severity};
use crate::model_lints::{lint_heuristic_model, lint_size_model};
use crate::{analyze, Input};
use rsg_core::observation::{sweep_fingerprint, ObservationGrid};
use rsg_core::push::{DeltaJournal, DeltaRecord, MAX_PARKED};
use rsg_core::{CurveConfig, SweepJournal, THRESHOLD_LADDER};
use rsg_platform::delta::DeltaError;
use rsg_platform::{CostModel, Platform, PlatformFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

static OBS_AUDITS: rsg_obs::Counter = rsg_obs::Counter::new("audit.trees");
static OBS_AUDIT_ARTIFACTS: rsg_obs::Counter = rsg_obs::Counter::new("audit.artifacts");

/// What one [`StaticFold::submit_batch`] call did — the abstract
/// counterpart of the push engine's `BatchOutcome`, minus the recompute
/// counters (`dirtied`/`recomputed`) the fold deliberately does not
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FoldOutcome {
    /// Records applied to the platform (batch + drained parked).
    pub applied: usize,
    /// Records skipped as duplicates.
    pub duplicates: usize,
    /// Records parked awaiting a gap fill.
    pub parked: usize,
    /// Previously parked records dropped at drain time, plus records
    /// refused by parked-buffer overflow.
    pub rejected: usize,
    /// Whether this batch closed a pre-existing sequence gap.
    pub resynced: bool,
}

/// One record the tolerant replay dropped, with why.
#[derive(Debug, Clone)]
pub struct FoldRefusal {
    /// Sequence number of the refused record.
    pub seq: u64,
    /// The error the fold (and therefore the engine) reports.
    pub error: DeltaError,
}

/// The abstract delta-stream fold: the push engine's exact
/// classification and platform state machine with the model recompute
/// stripped out. `submit_batch` mirrors `PushEngine::submit_batch`
/// line for line — sorting, duplicate/conflict/park classification,
/// transactional batch refusal, drain-time drops, the
/// `highest_seen` ratchet rules and the parked-buffer bound — so an
/// offline audit can predict precisely what a boot-time replay will do
/// without paying for a single sweep cell.
#[derive(Debug, Clone)]
pub struct StaticFold {
    platform: Platform,
    cost: CostModel,
    pending: BTreeMap<u64, DeltaRecord>,
    applied_seq: u64,
    highest_seen: u64,
}

impl StaticFold {
    /// Starts the fold at sequence zero over a base platform.
    pub fn new(platform: Platform, cost: CostModel) -> StaticFold {
        StaticFold {
            platform,
            cost,
            pending: BTreeMap::new(),
            applied_seq: 0,
            highest_seen: 0,
        }
    }

    /// The folded platform so far.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The folded cost model so far.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// Highest contiguously applied sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Highest sequence number ever accepted (applied or parked).
    pub fn highest_seen(&self) -> u64 {
        self.highest_seen
    }

    /// The lowest missing sequence number, when a gap is open.
    pub fn gap(&self) -> Option<u64> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.applied_seq + 1)
        }
    }

    /// `highest_seen - applied_seq`: 0 means fully current.
    pub fn lag(&self) -> u64 {
        self.highest_seen - self.applied_seq
    }

    /// Folds one batch with the push engine's exact transactional
    /// semantics: any failure of an *incoming* contiguous record
    /// refuses the whole batch with no state change; a *previously
    /// parked* record that fails at drain time is dropped and its
    /// sequence number skipped.
    pub fn submit_batch(&mut self, records: &[DeltaRecord]) -> Result<FoldOutcome, DeltaError> {
        let mut out = FoldOutcome::default();
        let gap_was_open = !self.pending.is_empty();

        let mut platform = self.platform.clone();
        let mut cost = self.cost;
        let mut pending = self.pending.clone();
        let mut applied_seq = self.applied_seq;
        let mut highest_seen = self.highest_seen;
        let mut applied_any = false;

        let mut incoming: Vec<DeltaRecord> = records.to_vec();
        incoming.sort_by_key(|r| r.seq);

        for rec in &incoming {
            if rec.seq <= applied_seq {
                out.duplicates += 1;
                continue;
            }
            if let Some(parked) = pending.get(&rec.seq) {
                if parked.delta == rec.delta {
                    out.duplicates += 1;
                    continue;
                }
                return Err(DeltaError::ConflictingSeq(rec.seq));
            }
            if rec.seq == applied_seq + 1 {
                rec.delta.apply(&mut platform, &mut cost)?;
                applied_seq = rec.seq;
                highest_seen = highest_seen.max(rec.seq);
                out.applied += 1;
                applied_any = true;
                while let Some(next) = pending.remove(&(applied_seq + 1)) {
                    match next.delta.apply(&mut platform, &mut cost) {
                        Ok(()) => {
                            out.applied += 1;
                            applied_any = true;
                        }
                        Err(_) => out.rejected += 1,
                    }
                    applied_seq = next.seq;
                    highest_seen = highest_seen.max(next.seq);
                }
            } else if pending.len() >= MAX_PARKED {
                out.rejected += 1;
            } else {
                pending.insert(rec.seq, *rec);
                out.parked += 1;
                highest_seen = highest_seen.max(rec.seq);
            }
        }

        self.platform = platform;
        self.cost = cost;
        self.pending = pending;
        self.applied_seq = applied_seq;
        self.highest_seen = highest_seen;

        if gap_was_open && applied_any && self.pending.is_empty() {
            out.resynced = true;
        }
        Ok(out)
    }

    /// Folds a journal's records with the boot-replay discipline: one
    /// record per batch, in file order, refusals dropped and collected
    /// instead of poisoning the rest of the stream — exactly what the
    /// serving tier's tracker does when it replays a recovered journal.
    pub fn replay(&mut self, records: &[DeltaRecord]) -> Vec<FoldRefusal> {
        let mut refused = Vec::new();
        for rec in records {
            if let Err(error) = self.submit_batch(std::slice::from_ref(rec)) {
                refused.push(FoldRefusal {
                    seq: rec.seq,
                    error,
                });
            }
        }
        refused
    }
}

/// The engine configuration fingerprint `rsg serve` keys its delta
/// journal with: the tiny observation grid, default curve
/// configuration and the paper's threshold ladder at refinement depth
/// zero. A delta journal in a deployment tree that carries any other
/// fingerprint will be quarantined at boot.
pub fn serve_engine_fingerprint() -> u64 {
    sweep_fingerprint(
        &ObservationGrid::tiny(),
        &CurveConfig::default(),
        &THRESHOLD_LADDER,
        0,
    )
}

/// Audits one deployment tree rooted at `root`. Only I/O on the root
/// itself (missing directory, permission failure on the walk) is an
/// `Err`; everything found *inside* the tree — including unreadable or
/// corrupt artifacts — is a diagnostic.
pub fn audit_tree(root: &Path) -> std::io::Result<AnalysisReport> {
    let _span = rsg_obs::span("audit_tree");
    OBS_AUDITS.incr();
    let artifacts = classify(root)?;
    OBS_AUDIT_ARTIFACTS.add(artifacts.len() as u64);
    let mut diagnostics = Vec::new();

    // 1. Platform: the recorded file when the tree ships one, else the
    //    deterministic serving-tier universe.
    let platform_files: Vec<&Artifact> = artifacts
        .iter()
        .filter(|a| a.kind == ArtifactKind::PlatformFile)
        .collect();
    let mut base_platform = None;
    for a in &platform_files {
        match PlatformFile::from_tsv(&a.text) {
            Ok(pf) => {
                if base_platform.is_none() {
                    base_platform = Some(pf.realize());
                } else {
                    diagnostics.push(Diagnostic::warn(
                        Code::Audit002,
                        &a.subject,
                        "tree carries more than one platform file; only the first \
                         (in path order) binds the audit",
                    ));
                }
            }
            Err(e) => {
                diagnostics.push(Diagnostic::error(Code::Audit002, &a.subject, e.to_string()))
            }
        }
    }
    let base_platform = base_platform.unwrap_or_else(|| PlatformFile::serve_default().realize());

    // 2. Models: the registry discovery rule must find a size model, and
    //    every model artifact must decode and pass the MODEL lints.
    diagnostics.extend(lint_models(root, &artifacts, &base_platform));

    // 3. Sweep journals: per-file integrity plus the shard-set
    //    fingerprint agreement no single-file check can do.
    diagnostics.extend(lint_sweep_journals(&artifacts));

    // 4. Delta journals: fingerprint binding, then the static fold in
    //    path order (segments of one stream — cross-journal duplicate
    //    and conflict semantics come free from the fold).
    let (fold, delta_diags) = fold_delta_journals(&artifacts, &base_platform);
    diagnostics.extend(delta_diags);

    // 5. Spec corpus: full document lints against the base platform,
    //    then the cross-artifact question — does the *post-fold*
    //    platform still satisfy every spec the corpus commits to?
    diagnostics.extend(lint_spec_corpus(&artifacts, &base_platform, &fold));

    Ok(AnalysisReport { diagnostics })
}

fn lint_models(root: &Path, artifacts: &[Artifact], platform: &Platform) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let model_dir = if root.join("models").is_dir() {
        root.join("models")
    } else {
        root.to_path_buf()
    };
    if discoverable_size_model(&model_dir).is_none() {
        out.push(Diagnostic::error(
            Code::Audit001,
            &relative_subject(root, &model_dir),
            "no size model the registry can discover (size_model.tsv or \
             size_model*.tsv); rsg serve --models on this tree will refuse to boot",
        ));
    }
    for a in artifacts {
        match a.kind {
            ArtifactKind::SizeModel => match rsg_core::persist::load_size_model(&a.path) {
                Ok(model) => out.extend(lint_size_model(&model, platform, &a.subject)),
                Err(e) => out.push(Diagnostic::error(Code::Audit002, &a.subject, e.to_string())),
            },
            ArtifactKind::HeurModel => match rsg_core::persist::load_heuristic_model(&a.path) {
                Ok(model) => out.extend(lint_heuristic_model(&model, &a.subject)),
                Err(e) => out.push(Diagnostic::error(Code::Audit002, &a.subject, e.to_string())),
            },
            ArtifactKind::KneeTables => {
                if let Err(e) = rsg_core::persist::knee_tables_from_tsv(&a.text) {
                    out.push(Diagnostic::error(Code::Audit002, &a.subject, e.to_string()));
                }
            }
            ArtifactKind::DamagedEnvelope => {
                out.push(Diagnostic::error(
                    Code::Audit002,
                    &a.subject,
                    a.text.clone(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Mirrors `ModelRegistry`'s size-model discovery: exact
/// `size_model.tsv` preferred, else the lexicographically first
/// `size_model*.tsv`.
fn discoverable_size_model(dir: &Path) -> Option<PathBuf> {
    let exact = dir.join("size_model.tsv");
    if exact.is_file() {
        return Some(exact);
    }
    let mut candidates: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("size_model") && n.ends_with(".tsv"))
        })
        .collect();
    candidates.sort();
    candidates.into_iter().next()
}

fn lint_sweep_journals(artifacts: &[Artifact]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut fingerprints: Vec<(String, u64)> = Vec::new();
    for a in artifacts
        .iter()
        .filter(|a| a.kind == ArtifactKind::SweepJournal)
    {
        match SweepJournal::verify(&a.path) {
            Ok((fp, _thetas, good, bad)) => {
                if bad > 0 {
                    out.push(Diagnostic::warn(
                        Code::Audit008,
                        &a.subject,
                        format!(
                            "torn tail: {bad} damaged line(s) after {good} intact cell(s); \
                             resume will truncate them"
                        ),
                    ));
                }
                fingerprints.push((a.subject.clone(), fp));
            }
            Err(e) => out.push(Diagnostic::error(Code::Audit002, &a.subject, e.to_string())),
        }
    }
    // Shard agreement: every sweep journal in one tree must digest the
    // same sweep, or a shard merge will quarantine the stragglers.
    if let Some((first_subject, first_fp)) = fingerprints.first().cloned() {
        for (subject, fp) in fingerprints.iter().skip(1) {
            if *fp != first_fp {
                out.push(Diagnostic::error(
                    Code::Audit003,
                    subject,
                    format!(
                        "sweep fingerprint {fp:016x} disagrees with sibling \
                         {first_subject} ({first_fp:016x}); these shards are not \
                         from the same sweep"
                    ),
                ));
            }
        }
    }
    out
}

fn fold_delta_journals(
    artifacts: &[Artifact],
    base_platform: &Platform,
) -> (StaticFold, Vec<Diagnostic>) {
    let mut out = Vec::new();
    let mut fold = StaticFold::new(base_platform.clone(), CostModel::default());
    let expected_fp = serve_engine_fingerprint();
    let mut last_subject = None;
    for a in artifacts
        .iter()
        .filter(|a| a.kind == ArtifactKind::DeltaJournal)
    {
        let (fp, records, damaged) = match DeltaJournal::read_records(&a.path) {
            Ok(t) => t,
            Err(e) => {
                out.push(Diagnostic::error(Code::Audit002, &a.subject, e.to_string()));
                continue;
            }
        };
        if fp != expected_fp {
            out.push(Diagnostic::error(
                Code::Audit003,
                &a.subject,
                format!(
                    "journal fingerprint {fp:016x} does not bind to the serving \
                     engine ({expected_fp:016x}); rsg serve would quarantine this \
                     journal and lose its history"
                ),
            ));
            continue;
        }
        if damaged > 0 {
            out.push(Diagnostic::warn(
                Code::Audit008,
                &a.subject,
                format!(
                    "torn tail: {damaged} damaged line(s) after {} intact record(s); \
                     boot will truncate them",
                    records.len()
                ),
            ));
        }
        for rec in &records {
            if rec.delta.saturates_clock_clamp() {
                out.push(Diagnostic::warn(
                    Code::Audit009,
                    &a.subject,
                    format!(
                        "seq {}: clock drift pinned to the physical clamp boundary \
                         ({}); the source is likely clamping an out-of-range reading",
                        rec.seq,
                        rec.delta.to_tsv()
                    ),
                ));
            }
        }
        for refusal in fold.replay(&records) {
            let (code, verb) = match refusal.error {
                DeltaError::ConflictingSeq(_) => (Code::Audit005, "conflicting redelivery"),
                _ => (Code::Audit006, "invalid record"),
            };
            out.push(Diagnostic::error(
                code,
                &a.subject,
                format!(
                    "seq {}: {verb} dropped at boot replay: {}",
                    refusal.seq, refusal.error
                ),
            ));
        }
        last_subject = Some(a.subject.clone());
    }
    if let (Some(subject), Some(missing)) = (last_subject, fold.gap()) {
        out.push(Diagnostic::error(
            Code::Audit004,
            &subject,
            format!(
                "delta stream ends with an open gap: seq {missing} never arrived, \
                 leaving the platform {} update(s) behind (applied through {})",
                fold.lag(),
                fold.applied_seq()
            ),
        ));
    }
    (fold, out)
}

fn lint_spec_corpus(
    artifacts: &[Artifact],
    base_platform: &Platform,
    fold: &StaticFold,
) -> Vec<Diagnostic> {
    let specs: Vec<&Artifact> = artifacts
        .iter()
        .filter(|a| a.kind == ArtifactKind::Spec)
        .collect();
    if specs.is_empty() {
        return Vec::new();
    }
    let inputs: Vec<Input> = specs
        .iter()
        .map(|a| Input::new(&a.subject, &a.text))
        .collect();
    let base = analyze(&inputs, Some(base_platform));
    let mut out = base.diagnostics.clone();
    if fold.applied_seq() == 0 {
        return out; // no delta stream moved the platform
    }
    let folded_platform = fold.platform();
    let folded = analyze(&inputs, Some(folded_platform));
    for d in &folded.diagnostics {
        let satisfiability = matches!(d.code, Code::Spec006 | Code::Spec009);
        // A regression is a satisfiability *error* that the base
        // platform did not produce for the same document under the
        // same code (details carry platform-dependent numbers, so
        // equality on them would misread a changed message as new).
        let regressed = satisfiability
            && d.severity == Severity::Error
            && !base.diagnostics.iter().any(|b| {
                b.code == d.code && b.subject == d.subject && b.severity == Severity::Error
            });
        if regressed {
            out.push(Diagnostic::error(
                Code::Audit007,
                &d.subject,
                format!(
                    "satisfiable against the recorded platform, but not after \
                     folding the delta stream ({} hosts -> {}): {} {}",
                    base_platform.total_hosts(),
                    folded_platform.total_hosts(),
                    d.code,
                    d.detail
                ),
            ));
        }
    }
    out
}
