//! The native `rsg-spec v1` file format: a plain-text serialization of
//! a generated [`rsg_core::ResourceSpec`] together with its utility
//! configuration and degradation ladder, so the analyzer can lint the
//! *full* generator output (thresholds, trade-offs, rungs) — none of
//! which survive into the three target languages.
//!
//! ```text
//! rsg-spec v1
//! # optional utility configuration
//! utility 1.0 0.1
//! tradeoff 0.001 0.0 1.0
//! # one rung per block; a block with no preceding `rung` line is the
//! # implicit undegraded request
//! rung none 1200
//! size 20
//! min 5
//! clock 1000 3600
//! heuristic MCP
//! aggregate TightBagOf
//! threshold 0.001
//! memory 512
//! end
//! ```
//!
//! Parsing is syntax-strict but value-lenient: an unknown directive or
//! an unparseable number is a parse error (`PARSE005`), while
//! semantically absurd values (NaN clocks, zero sizes, inverted
//! ranges) decode fine and are left for the semantic lints.

use rsg_core::Degradation;

/// Parse error for the native format (surfaced as `PARSE005`).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecFileError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl std::fmt::Display for SpecFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rsg-spec parse error at line {}: {}",
            self.line, self.msg
        )
    }
}

impl std::error::Error for SpecFileError {}

/// One ladder rung: the degradation that produced it, its predicted
/// turnaround, and the (raw, unvalidated) spec fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRung {
    /// Which knob was degraded to obtain this rung.
    pub degradation: Degradation,
    /// Predicted turnaround in seconds, when recorded.
    pub turnaround_s: Option<f64>,
    /// Requested RC size.
    pub size: Option<f64>,
    /// Minimum acceptable RC size.
    pub min_size: Option<f64>,
    /// Clock range (lo, hi), MHz.
    pub clock: Option<(f64, f64)>,
    /// Scheduling heuristic name.
    pub heuristic: Option<String>,
    /// Aggregate kind keyword.
    pub aggregate: Option<String>,
    /// Knee threshold.
    pub threshold: Option<f64>,
    /// Memory floor, MB.
    pub memory_mb: Option<f64>,
}

impl SpecRung {
    fn empty(degradation: Degradation, turnaround_s: Option<f64>) -> SpecRung {
        SpecRung {
            degradation,
            turnaround_s,
            size: None,
            min_size: None,
            clock: None,
            heuristic: None,
            aggregate: None,
            threshold: None,
            memory_mb: None,
        }
    }
}

/// A decoded native spec file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecDoc {
    /// `(perf_weight, cost_weight)` when a `utility` line is present.
    pub utility: Option<(f64, f64)>,
    /// `(threshold, expected degradation, expected relative cost)`
    /// rows for the utility to choose from.
    pub tradeoffs: Vec<(f64, f64, f64)>,
    /// The ladder, original request first.
    pub rungs: Vec<SpecRung>,
}

fn parse_degradation(s: &str) -> Option<Degradation> {
    match s {
        "none" => Some(Degradation::None),
        "slower-clock" => Some(Degradation::SlowerClock),
        "wider-het" => Some(Degradation::WiderHeterogeneity),
        "smaller-size" => Some(Degradation::SmallerSize),
        _ => None,
    }
}

/// Keyword form of a degradation, inverse of the `rung` line parser.
pub fn degradation_keyword(d: Degradation) -> &'static str {
    match d {
        Degradation::None => "none",
        Degradation::SlowerClock => "slower-clock",
        Degradation::WiderHeterogeneity => "wider-het",
        Degradation::SmallerSize => "smaller-size",
    }
}

/// Parses the `rsg-spec v1` format.
pub fn parse_spec_doc(text: &str) -> Result<SpecDoc, SpecFileError> {
    let err = |line: usize, msg: &str| SpecFileError {
        line,
        msg: msg.to_string(),
    };
    let mut lines = text.lines().enumerate();
    let header = lines
        .next()
        .ok_or_else(|| err(1, "empty document"))?
        .1
        .trim();
    if header != "rsg-spec v1" {
        return Err(err(1, "missing 'rsg-spec v1' header"));
    }

    let mut doc = SpecDoc::default();
    // The rung currently being filled; opened lazily by the first
    // field line (the implicit undegraded rung) or by a `rung` line.
    let mut open: Option<SpecRung> = None;
    let mut saw_end = false;

    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let word = it.next().unwrap_or("");
        let rest: Vec<&str> = it.collect();
        let num = |s: &str| -> Result<f64, SpecFileError> {
            s.parse()
                .map_err(|_| err(lineno, &format!("bad number '{s}'")))
        };
        let arity = |want: usize| -> Result<(), SpecFileError> {
            if rest.len() == want {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    &format!("'{word}' takes {want} value(s), got {}", rest.len()),
                ))
            }
        };
        match word {
            "utility" => {
                arity(2)?;
                doc.utility = Some((num(rest[0])?, num(rest[1])?));
            }
            "tradeoff" => {
                arity(3)?;
                doc.tradeoffs
                    .push((num(rest[0])?, num(rest[1])?, num(rest[2])?));
            }
            "rung" => {
                if open.is_some() {
                    return Err(err(lineno, "'rung' inside an unterminated rung block"));
                }
                if rest.is_empty() || rest.len() > 2 {
                    return Err(err(lineno, "'rung' takes a kind and optional turnaround"));
                }
                let kind = parse_degradation(rest[0])
                    .ok_or_else(|| err(lineno, &format!("unknown degradation '{}'", rest[0])))?;
                let t = rest.get(1).map(|s| num(s)).transpose()?;
                open = Some(SpecRung::empty(kind, t));
            }
            "end" => {
                let rung = open
                    .take()
                    .ok_or_else(|| err(lineno, "'end' outside a rung block"))?;
                doc.rungs.push(rung);
                saw_end = true;
            }
            "size" | "min" | "clock" | "heuristic" | "aggregate" | "threshold" | "memory" => {
                let rung = open.get_or_insert_with(|| SpecRung::empty(Degradation::None, None));
                match word {
                    "size" => {
                        arity(1)?;
                        rung.size = Some(num(rest[0])?);
                    }
                    "min" => {
                        arity(1)?;
                        rung.min_size = Some(num(rest[0])?);
                    }
                    "clock" => {
                        arity(2)?;
                        rung.clock = Some((num(rest[0])?, num(rest[1])?));
                    }
                    "heuristic" => {
                        arity(1)?;
                        rung.heuristic = Some(rest[0].to_string());
                    }
                    "aggregate" => {
                        arity(1)?;
                        rung.aggregate = Some(rest[0].to_string());
                    }
                    "threshold" => {
                        arity(1)?;
                        rung.threshold = Some(num(rest[0])?);
                    }
                    "memory" => {
                        arity(1)?;
                        rung.memory_mb = Some(num(rest[0])?);
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(err(lineno, &format!("unknown directive '{other}'"))),
        }
    }
    if open.is_some() {
        return Err(err(text.lines().count(), "unterminated rung block"));
    }
    if !saw_end {
        return Err(err(text.lines().count(), "document has no rung block"));
    }
    Ok(doc)
}

/// Renders a [`rsg_core::ResourceSpec`] (plus an optional ladder tail)
/// in the native format — the writer counterpart used by fixtures and
/// round-trip tests.
pub fn write_spec_doc(doc: &SpecDoc) -> String {
    let mut out = String::from("rsg-spec v1\n");
    if let Some((p, c)) = doc.utility {
        out.push_str(&format!("utility {p} {c}\n"));
    }
    for (t, d, c) in &doc.tradeoffs {
        out.push_str(&format!("tradeoff {t} {d} {c}\n"));
    }
    for r in &doc.rungs {
        match r.turnaround_s {
            Some(t) => out.push_str(&format!(
                "rung {} {t}\n",
                degradation_keyword(r.degradation)
            )),
            None => out.push_str(&format!("rung {}\n", degradation_keyword(r.degradation))),
        }
        if let Some(v) = r.size {
            out.push_str(&format!("size {v}\n"));
        }
        if let Some(v) = r.min_size {
            out.push_str(&format!("min {v}\n"));
        }
        if let Some((lo, hi)) = r.clock {
            out.push_str(&format!("clock {lo} {hi}\n"));
        }
        if let Some(v) = &r.heuristic {
            out.push_str(&format!("heuristic {v}\n"));
        }
        if let Some(v) = &r.aggregate {
            out.push_str(&format!("aggregate {v}\n"));
        }
        if let Some(v) = r.threshold {
            out.push_str(&format!("threshold {v}\n"));
        }
        if let Some(v) = r.memory_mb {
            out.push_str(&format!("memory {v}\n"));
        }
        out.push_str("end\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "rsg-spec v1\n# demo\nutility 1.0 0.1\ntradeoff 0.001 0.0 1.0\n\
                       rung none 1200\nsize 20\nmin 5\nclock 1000 3600\nheuristic MCP\n\
                       aggregate TightBagOf\nthreshold 0.001\nmemory 512\nend\n\
                       rung smaller-size 1400\nsize 12\nmin 5\nclock 1000 3600\nend\n";

    #[test]
    fn parses_the_full_grammar() {
        let doc = parse_spec_doc(DOC).unwrap();
        assert_eq!(doc.utility, Some((1.0, 0.1)));
        assert_eq!(doc.tradeoffs, vec![(0.001, 0.0, 1.0)]);
        assert_eq!(doc.rungs.len(), 2);
        let r0 = &doc.rungs[0];
        assert_eq!(r0.degradation, Degradation::None);
        assert_eq!(r0.turnaround_s, Some(1200.0));
        assert_eq!(r0.size, Some(20.0));
        assert_eq!(r0.clock, Some((1000.0, 3600.0)));
        assert_eq!(r0.heuristic.as_deref(), Some("MCP"));
        assert_eq!(doc.rungs[1].degradation, Degradation::SmallerSize);
    }

    #[test]
    fn implicit_single_rung() {
        let doc = parse_spec_doc("rsg-spec v1\nsize 8\nclock 1000 3000\nend\n").unwrap();
        assert_eq!(doc.rungs.len(), 1);
        assert_eq!(doc.rungs[0].degradation, Degradation::None);
        assert_eq!(doc.rungs[0].size, Some(8.0));
    }

    #[test]
    fn lenient_values_strict_syntax() {
        // NaN / inverted / zero values decode fine …
        let doc =
            parse_spec_doc("rsg-spec v1\nsize 0\nclock NaN 100\nthreshold 2.0\nend\n").unwrap();
        assert_eq!(doc.rungs[0].size, Some(0.0));
        assert!(doc.rungs[0].clock.unwrap().0.is_nan());
        // … while syntax errors do not.
        for bad in [
            "size 1\nend\n",                     // missing header
            "rsg-spec v1\nsize abc\nend\n",      // bad number
            "rsg-spec v1\nbogus 1\nend\n",       // unknown directive
            "rsg-spec v1\nsize 1\n",             // unterminated block
            "rsg-spec v1\nrung sideways\nend\n", // unknown degradation
            "rsg-spec v1\nutility 1.0\nend\n",   // wrong arity
            "rsg-spec v1\n",                     // no rung at all
        ] {
            assert!(parse_spec_doc(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn writer_round_trips() {
        let doc = parse_spec_doc(DOC).unwrap();
        let re = parse_spec_doc(&write_spec_doc(&doc)).unwrap();
        assert_eq!(doc, re);
    }
}
