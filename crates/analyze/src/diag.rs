//! Typed diagnostics: stable codes, severities and the report
//! renderers (JSON / TSV / human, mirroring the `rsg-obs` report
//! formats).

use std::fmt;

/// Diagnostic severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational — no action required.
    Info,
    /// Suspicious but not necessarily wrong.
    Warn,
    /// Definitely wrong; `rsg lint` maps any error to a non-zero exit.
    Error,
}

impl Severity {
    /// Lower-case label as printed in every output format.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable diagnostic codes. Codes are append-only: a released code
/// never changes meaning, so downstream tooling can match on the
/// string form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)] // Each variant is documented by `description()`.
pub enum Code {
    Dag001,
    Dag002,
    Dag003,
    Dag004,
    Dag005,
    Spec001,
    Spec002,
    Spec003,
    Spec004,
    Spec005,
    Spec006,
    Spec007,
    Spec008,
    Spec009,
    Xlang001,
    Xlang002,
    Xlang003,
    Parse001,
    Parse002,
    Parse003,
    Parse004,
    Parse005,
    Audit001,
    Audit002,
    Audit003,
    Audit004,
    Audit005,
    Audit006,
    Audit007,
    Audit008,
    Audit009,
    Model001,
    Model002,
    Model003,
    Model004,
}

impl Code {
    /// Every code, in report order. The document families
    /// (`DAG`/`SPEC`/`XLANG`/`PARSE`) are exercised by the seeded
    /// defect corpus in `tests/lint_corpus.rs`; the deployment families
    /// (`AUDIT`/`MODEL`) by the defect trees in
    /// `tests/audit_corpus.rs`.
    pub const ALL: [Code; 35] = [
        Code::Dag001,
        Code::Dag002,
        Code::Dag003,
        Code::Dag004,
        Code::Dag005,
        Code::Spec001,
        Code::Spec002,
        Code::Spec003,
        Code::Spec004,
        Code::Spec005,
        Code::Spec006,
        Code::Spec007,
        Code::Spec008,
        Code::Spec009,
        Code::Xlang001,
        Code::Xlang002,
        Code::Xlang003,
        Code::Parse001,
        Code::Parse002,
        Code::Parse003,
        Code::Parse004,
        Code::Parse005,
        Code::Audit001,
        Code::Audit002,
        Code::Audit003,
        Code::Audit004,
        Code::Audit005,
        Code::Audit006,
        Code::Audit007,
        Code::Audit008,
        Code::Audit009,
        Code::Model001,
        Code::Model002,
        Code::Model003,
        Code::Model004,
    ];

    /// The family prefix of the code's string form (`"DAG"`, `"AUDIT"`,
    /// …). Families partition the corpus responsibilities: each fixture
    /// suite asserts full coverage of its own families only.
    pub fn family(self) -> &'static str {
        let s = self.as_str();
        s.trim_end_matches(|c: char| c.is_ascii_digit())
    }

    /// The stable string form (`DAG001`, `SPEC003`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Dag001 => "DAG001",
            Code::Dag002 => "DAG002",
            Code::Dag003 => "DAG003",
            Code::Dag004 => "DAG004",
            Code::Dag005 => "DAG005",
            Code::Spec001 => "SPEC001",
            Code::Spec002 => "SPEC002",
            Code::Spec003 => "SPEC003",
            Code::Spec004 => "SPEC004",
            Code::Spec005 => "SPEC005",
            Code::Spec006 => "SPEC006",
            Code::Spec007 => "SPEC007",
            Code::Spec008 => "SPEC008",
            Code::Spec009 => "SPEC009",
            Code::Xlang001 => "XLANG001",
            Code::Xlang002 => "XLANG002",
            Code::Xlang003 => "XLANG003",
            Code::Parse001 => "PARSE001",
            Code::Parse002 => "PARSE002",
            Code::Parse003 => "PARSE003",
            Code::Parse004 => "PARSE004",
            Code::Parse005 => "PARSE005",
            Code::Audit001 => "AUDIT001",
            Code::Audit002 => "AUDIT002",
            Code::Audit003 => "AUDIT003",
            Code::Audit004 => "AUDIT004",
            Code::Audit005 => "AUDIT005",
            Code::Audit006 => "AUDIT006",
            Code::Audit007 => "AUDIT007",
            Code::Audit008 => "AUDIT008",
            Code::Audit009 => "AUDIT009",
            Code::Model001 => "MODEL001",
            Code::Model002 => "MODEL002",
            Code::Model003 => "MODEL003",
            Code::Model004 => "MODEL004",
        }
    }

    /// One-line description (the ARCHITECTURE.md table row).
    pub fn description(self) -> &'static str {
        match self {
            Code::Dag001 => "workflow DAG contains a cycle",
            Code::Dag002 => "malformed DAG structure (unknown task, self-edge, duplicate edge)",
            Code::Dag003 => "invalid task or edge weight (NaN, negative, infinite; zero warns)",
            Code::Dag004 => "orphan task: no edges touch it while the rest of the DAG is connected",
            Code::Dag005 => "degenerate width: requested RC size exceeds the DAG's maximum width",
            Code::Spec001 => "requested RC size is zero",
            Code::Spec002 => "minimum acceptable size exceeds the requested size",
            Code::Spec003 => "clock range is inverted (min > max)",
            Code::Spec004 => "non-finite or non-positive quantity in a spec field",
            Code::Spec005 => "knee threshold outside (0, 1)",
            Code::Spec006 => "unsatisfiable against the platform model",
            Code::Spec007 => "degradation ladder violation (rung not strictly weaker / unordered)",
            Code::Spec008 => "utility configuration is degenerate (bad weights or trade-off rows)",
            Code::Spec009 => "requested host count exceeds the platform's total host population",
            Code::Xlang001 => "language rendering is missing a required field of the spec",
            Code::Xlang002 => "renderings in different languages disagree on a shared field",
            Code::Xlang003 => "spec does not round-trip through its own language rendering",
            Code::Parse001 => "vgDL parse failure",
            Code::Parse002 => "ClassAd parse failure",
            Code::Parse003 => "SWORD XML parse failure",
            Code::Parse004 => "DAG file parse failure",
            Code::Parse005 => "native rsg-spec file parse failure",
            Code::Audit001 => "deployment tree is missing a required artifact",
            Code::Audit002 => "artifact is corrupt, inconsistent or undecodable",
            Code::Audit003 => "fingerprint chain broken: journal does not bind to this deployment",
            Code::Audit004 => "delta stream ends with an open sequence gap",
            Code::Audit005 => {
                "delta stream redelivers a sequence number with a conflicting payload"
            }
            Code::Audit006 => "delta stream carries a record the platform fold must refuse",
            Code::Audit007 => "post-fold platform no longer satisfies a spec in the corpus",
            Code::Audit008 => "journal carries a torn or damaged tail",
            Code::Audit009 => "clock drift saturates the physical clamp boundary",
            Code::Model001 => "planar-fit coefficient is non-finite or absurdly large",
            Code::Model002 => "knee predictions are not monotone across the threshold ladder",
            Code::Model003 => {
                "model grid axes are degenerate (unsorted, non-finite or non-positive)"
            }
            Code::Model004 => "model extrapolates past the platform population",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, its severity for this occurrence, the input it
/// was found in, and a human-oriented detail string.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity of this occurrence (some codes downgrade to `Warn` in
    /// borderline cases, e.g. zero-cost tasks or soft satisfiability).
    pub severity: Severity,
    /// Name of the analyzed input (file name or synthetic label).
    pub subject: String,
    /// What exactly is wrong, with the offending values.
    pub detail: String,
}

impl Diagnostic {
    /// Error-severity shorthand.
    pub fn error(code: Code, subject: &str, detail: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            subject: subject.to_string(),
            detail: detail.into(),
        }
    }

    /// Warn-severity shorthand.
    pub fn warn(code: Code, subject: &str, detail: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warn,
            subject: subject.to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.subject, self.detail
        )
    }
}

/// The analyzer's result: every diagnostic, in deterministic order
/// (inputs in presentation order, checks in code order within each
/// input).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warn-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// True when no diagnostics at all were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Every distinct code that fired, in `Code::ALL` order.
    pub fn codes(&self) -> Vec<Code> {
        Code::ALL
            .into_iter()
            .filter(|c| self.diagnostics.iter().any(|d| d.code == *c))
            .collect()
    }

    /// JSON rendering (schema mirrors the `rsg-obs` report envelope).
    pub fn to_json(&self) -> String {
        use rsg_obs::json::escape;
        let mut j = String::from("{\n");
        j.push_str("  \"rsg_analyze_report\": \"v1\",\n");
        j.push_str(&format!("  \"errors\": {},\n", self.errors()));
        j.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        j.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str(&format!(
                "\n    {{\"code\": {}, \"severity\": {}, \"subject\": {}, \"detail\": {}}}",
                escape(d.code.as_str()),
                escape(d.severity.label()),
                escape(&d.subject),
                escape(&d.detail)
            ));
        }
        if !self.diagnostics.is_empty() {
            j.push_str("\n  ");
        }
        j.push_str("]\n}\n");
        j
    }

    /// Flat TSV rendering (`rsg-analyze-report` header, one `diag`
    /// line per finding, `end` trailer — the `rsg-obs` TSV shape).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("rsg-analyze-report\tv1\n");
        for d in &self.diagnostics {
            out.push_str(&format!(
                "diag\t{}\t{}\t{}\t{}\n",
                d.code,
                d.severity,
                d.subject,
                d.detail.replace(['\t', '\n'], " ")
            ));
        }
        out.push_str(&format!(
            "totals\terrors={}\twarnings={}\n",
            self.errors(),
            self.warnings()
        ));
        out.push_str("end\n");
        out
    }

    /// Width-aligned human-readable table.
    pub fn to_human(&self) -> String {
        if self.is_clean() {
            return "== static analysis ==\nno diagnostics\n".to_string();
        }
        let header = ["code", "severity", "subject", "detail"];
        let rows: Vec<[String; 4]> = self
            .diagnostics
            .iter()
            .map(|d| {
                [
                    d.code.to_string(),
                    d.severity.to_string(),
                    d.subject.clone(),
                    d.detail.clone(),
                ]
            })
            .collect();
        let mut width: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::from("== static analysis ==\n");
        let mut line = |cells: &[String]| {
            let mut l = String::new();
            for (i, c) in cells.iter().enumerate() {
                l.push_str(&format!("{:<w$}  ", c, w = width[i]));
            }
            out.push_str(l.trim_end());
            out.push('\n');
        };
        line(&header.map(str::to_string));
        for row in &rows {
            line(row.as_slice());
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            diagnostics: vec![
                Diagnostic::error(Code::Dag001, "a.dag", "cycle through tasks 1 -> 2 -> 1"),
                Diagnostic::warn(Code::Dag003, "a.dag", "task 3 has zero cost"),
            ],
        }
    }

    #[test]
    fn all_codes_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(!c.description().is_empty());
        }
        assert_eq!(seen.len(), Code::ALL.len());
    }

    #[test]
    fn counts_and_codes() {
        let r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(!r.is_clean());
        assert_eq!(r.codes(), vec![Code::Dag001, Code::Dag003]);
    }

    #[test]
    fn renders_all_three_formats() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains("\"rsg_analyze_report\": \"v1\""));
        assert!(json.contains("\"DAG001\""));
        assert!(json.contains("\"errors\": 1"));
        let tsv = r.to_tsv();
        assert!(tsv.starts_with("rsg-analyze-report\tv1\n"));
        assert!(tsv.contains("diag\tDAG001\terror\ta.dag\t"));
        assert!(tsv.ends_with("end\n"));
        let human = r.to_human();
        assert!(human.contains("== static analysis =="));
        assert!(human.contains("1 error(s), 1 warning(s)"));
        assert_eq!(
            AnalysisReport::default().to_human(),
            "== static analysis ==\nno diagnostics\n"
        );
    }
}
