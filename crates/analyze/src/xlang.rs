//! Cross-language differential analysis (`XLANG001`–`XLANG003`).
//!
//! Every target language captures a different projection of a
//! [`ResourceSpec`]: vgDL has no heuristic, ClassAds have no aggregate
//! kind, SWORD keeps only size/clock/memory. The analyzer therefore
//! reduces each parsed document to a [`SpecView`] — the fields that
//! language *can* express — and
//!
//! * flags renderings that dropped a field their language could have
//!   kept (`XLANG001`),
//! * compares the views of documents analyzed together, treating them
//!   as renderings of the same request (`XLANG002`), and
//! * re-renders each view through the spec generator's own emitter and
//!   re-parses it, requiring semantic fixed-point round-trips
//!   (`XLANG003`).

use crate::diag::{Code, Diagnostic};
use crate::spec_lints::parse_aggregate;
use rsg_core::{ResourceSpec, SpecGenerator};
use rsg_sched::HeuristicKind;
use rsg_select::classad::{parse_classad, BinOp, ClassAd, Expr};
use rsg_select::sword::{parse_sword, write_sword, SwordRequest};
use rsg_select::vgdl::{parse_vgdl, CmpOp, ConstraintValue, VgdlSpec};

/// Which target language a document was written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecLang {
    /// vgDL (vgES).
    Vgdl,
    /// Condor ClassAd.
    ClassAd,
    /// SWORD XML.
    Sword,
}

impl SpecLang {
    /// Lower-case label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SpecLang::Vgdl => "vgdl",
            SpecLang::ClassAd => "classad",
            SpecLang::Sword => "sword",
        }
    }
}

/// The language-independent projection of a spec document: every field
/// is optional because no single language expresses all of them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecView {
    /// Requested RC size.
    pub size: Option<f64>,
    /// Minimum acceptable size.
    pub min_size: Option<f64>,
    /// Clock lower bound, MHz.
    pub clock_lo: Option<f64>,
    /// Clock upper bound, MHz.
    pub clock_hi: Option<f64>,
    /// Memory floor, MB.
    pub memory_mb: Option<f64>,
    /// Scheduling heuristic name (ClassAds only).
    pub heuristic: Option<String>,
    /// Aggregate kind keyword (vgDL only).
    pub aggregate: Option<String>,
}

/// Extracts the view of a parsed vgDL spec. `XLANG001` diagnostics are
/// appended for fields the rendering should carry but does not.
pub fn view_from_vgdl(spec: &VgdlSpec, subject: &str, out: &mut Vec<Diagnostic>) -> SpecView {
    let Some((_, agg)) = spec.aggregates.first() else {
        out.push(Diagnostic::error(
            Code::Xlang001,
            subject,
            "vgdl rendering has no aggregate",
        ));
        return SpecView::default();
    };
    let memory = agg
        .constraints
        .iter()
        .find(|c| c.attr.eq_ignore_ascii_case("Memory") && matches!(c.op, CmpOp::Ge | CmpOp::Gt))
        .and_then(|c| match &c.value {
            ConstraintValue::Num(v) => Some(*v),
            ConstraintValue::Sym(_) => None,
        });
    let view = SpecView {
        size: Some(f64::from(agg.max)),
        min_size: Some(f64::from(agg.min)),
        clock_lo: agg.min_clock_mhz(),
        clock_hi: agg.max_clock_mhz(),
        memory_mb: memory,
        heuristic: None,
        aggregate: Some(agg.kind.keyword().to_string()),
    };
    if view.clock_lo.is_none() {
        out.push(Diagnostic::error(
            Code::Xlang001,
            subject,
            "vgdl rendering lacks a Clock lower-bound constraint",
        ));
    }
    if view.memory_mb.is_none() {
        out.push(Diagnostic::error(
            Code::Xlang001,
            subject,
            "vgdl rendering lacks a Memory floor constraint",
        ));
    }
    view
}

/// Extracts the view of a parsed ClassAd request.
pub fn view_from_classad(ad: &ClassAd, subject: &str, out: &mut Vec<Diagnostic>) -> SpecView {
    let num_attr = |name: &str| match ad.get(name) {
        Some(Expr::Num(n)) => Some(*n),
        _ => None,
    };
    let mut view = SpecView {
        size: num_attr("Count"),
        min_size: num_attr("MinCount"),
        heuristic: match ad.get("SchedulingHeuristic") {
            Some(Expr::Str(s)) => Some(s.clone()),
            _ => None,
        },
        ..SpecView::default()
    };
    if view.size.is_none() {
        out.push(Diagnostic::error(
            Code::Xlang001,
            subject,
            "classad rendering lacks a numeric Count attribute",
        ));
    }
    match ad.get("Requirements") {
        Some(req) => collect_classad_bounds(req, &mut view),
        None => out.push(Diagnostic::error(
            Code::Xlang001,
            subject,
            "classad rendering lacks a Requirements expression",
        )),
    }
    view
}

/// Walks a `Requirements` conjunction collecting `other.Clock` /
/// `other.Memory` bounds.
fn collect_classad_bounds(e: &Expr, view: &mut SpecView) {
    match e {
        Expr::Bin(BinOp::And, l, r) => {
            collect_classad_bounds(l, view);
            collect_classad_bounds(r, view);
        }
        Expr::Bin(op, l, r) => {
            let (attr, value) = match (&**l, &**r) {
                (Expr::Ref(path), Expr::Num(n)) if path.len() == 2 => (&path[1], *n),
                _ => return,
            };
            if attr.eq_ignore_ascii_case("Clock") {
                match op {
                    BinOp::Ge | BinOp::Gt => merge_max(&mut view.clock_lo, value),
                    BinOp::Le | BinOp::Lt => merge_min(&mut view.clock_hi, value),
                    _ => {}
                }
            } else if attr.eq_ignore_ascii_case("Memory") && matches!(op, BinOp::Ge | BinOp::Gt) {
                merge_max(&mut view.memory_mb, value);
            }
        }
        _ => {}
    }
}

fn merge_max(slot: &mut Option<f64>, v: f64) {
    *slot = Some(slot.map_or(v, |a| a.max(v)));
}

fn merge_min(slot: &mut Option<f64>, v: f64) {
    *slot = Some(slot.map_or(v, |a| a.min(v)));
}

/// Extracts the view of a parsed SWORD request.
pub fn view_from_sword(req: &SwordRequest, subject: &str, out: &mut Vec<Diagnostic>) -> SpecView {
    if req.groups.is_empty() {
        out.push(Diagnostic::error(
            Code::Xlang001,
            subject,
            "sword rendering has no machine group",
        ));
        return SpecView::default();
    }
    let size: u64 = req.groups.iter().map(|g| u64::from(g.num_machines)).sum();
    let mut view = SpecView {
        size: Some(size as f64),
        ..SpecView::default()
    };
    let g = &req.groups[0];
    match g.attrs.iter().find(|a| a.name == "clock") {
        Some(clock) => {
            view.clock_lo = Some(clock.req_min);
            // The emitter maps the spec's clock ceiling onto the
            // *desired* minimum (ask for the fastest acceptable tier).
            view.clock_hi = Some(clock.des_min);
        }
        None => out.push(Diagnostic::error(
            Code::Xlang001,
            subject,
            "sword rendering lacks a clock attribute tuple",
        )),
    }
    if let Some(mem) = g.attrs.iter().find(|a| a.name == "free_mem") {
        view.memory_mb = Some(mem.req_min);
    }
    view
}

/// Lints the basic numeric sanity of a view (the spec-lint family
/// applied to whatever fields the language managed to express).
pub fn lint_view(view: &SpecView, subject: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let positive = |name: &str, v: Option<f64>, strict: bool, out: &mut Vec<Diagnostic>| {
        if let Some(v) = v {
            if !v.is_finite() || v < 0.0 || (strict && v == 0.0) {
                out.push(Diagnostic::error(
                    Code::Spec004,
                    subject,
                    format!("{name} is {v}, expected a positive finite value"),
                ));
            }
        }
    };
    if view.size == Some(0.0) {
        out.push(Diagnostic::error(
            Code::Spec001,
            subject,
            "requested RC size is zero",
        ));
    } else {
        positive("size", view.size, true, &mut out);
    }
    positive("minimum size", view.min_size, true, &mut out);
    positive("clock lower bound", view.clock_lo, true, &mut out);
    positive("clock upper bound", view.clock_hi, true, &mut out);
    positive("memory floor", view.memory_mb, true, &mut out);
    if let (Some(min), Some(size)) = (view.min_size, view.size) {
        if min.is_finite() && size.is_finite() && min > size {
            out.push(Diagnostic::error(
                Code::Spec002,
                subject,
                format!("minimum size exceeds the request ({min} > {size})"),
            ));
        }
    }
    if let (Some(lo), Some(hi)) = (view.clock_lo, view.clock_hi) {
        if lo.is_finite() && hi.is_finite() && lo > hi {
            out.push(Diagnostic::error(
                Code::Spec003,
                subject,
                format!("clock range is inverted ({lo} > {hi})"),
            ));
        }
    }
    if let Some(h) = &view.heuristic {
        if HeuristicKind::parse(h).is_none() {
            out.push(Diagnostic::error(
                Code::Spec004,
                subject,
                format!("unknown heuristic '{h}'"),
            ));
        }
    }
    if let Some(a) = &view.aggregate {
        if parse_aggregate(a).is_none() {
            out.push(Diagnostic::error(
                Code::Spec004,
                subject,
                format!("unknown aggregate kind '{a}'"),
            ));
        }
    }
    out
}

/// Best-effort concretization of a view into a [`ResourceSpec`];
/// defaults fill the fields the language cannot express.
pub fn view_to_spec(view: &SpecView) -> ResourceSpec {
    let to_u32 = |v: Option<f64>| -> Option<u32> {
        v.filter(|x| x.is_finite() && *x >= 0.0 && *x <= f64::from(u32::MAX))
            .map(|x| x as u32)
    };
    let size = to_u32(view.size).unwrap_or(1);
    ResourceSpec {
        rc_size: size,
        min_size: to_u32(view.min_size).unwrap_or(size),
        clock_mhz: (
            view.clock_lo.filter(|v| v.is_finite()).unwrap_or(0.0),
            view.clock_hi.unwrap_or(f64::INFINITY),
        ),
        heuristic: view
            .heuristic
            .as_deref()
            .and_then(HeuristicKind::parse)
            .unwrap_or(HeuristicKind::Mcp),
        aggregate: view
            .aggregate
            .as_deref()
            .and_then(parse_aggregate)
            .unwrap_or(rsg_select::vgdl::AggregateKind::TightBagOf),
        threshold: rsg_core::DEFAULT_KNEE_THRESHOLD,
        memory_mb: to_u32(view.memory_mb).unwrap_or(512),
    }
}

fn same(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Compares two views on the fields *both* express; each differing
/// field becomes one entry `(field, left, right)`.
pub fn view_divergences(a: &SpecView, b: &SpecView) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let mut num = |name: &str, x: Option<f64>, y: Option<f64>| {
        if let (Some(x), Some(y)) = (x, y) {
            if !(same(x, y) || (x.is_nan() && y.is_nan())) {
                out.push((name.to_string(), x.to_string(), y.to_string()));
            }
        }
    };
    num("size", a.size, b.size);
    num("min size", a.min_size, b.min_size);
    num("clock lower bound", a.clock_lo, b.clock_lo);
    num("clock upper bound", a.clock_hi, b.clock_hi);
    num("memory floor", a.memory_mb, b.memory_mb);
    if let (Some(x), Some(y)) = (&a.heuristic, &b.heuristic) {
        if !x.eq_ignore_ascii_case(y) {
            out.push(("heuristic".to_string(), x.clone(), y.clone()));
        }
    }
    if let (Some(x), Some(y)) = (&a.aggregate, &b.aggregate) {
        if !x.eq_ignore_ascii_case(y) {
            out.push(("aggregate".to_string(), x.clone(), y.clone()));
        }
    }
    out
}

/// Renders a spec in `lang`, prints it, re-parses it and extracts the
/// resulting view.
pub fn render_and_reparse(spec: &ResourceSpec, lang: SpecLang) -> Result<SpecView, String> {
    let mut scratch = Vec::new();
    match lang {
        SpecLang::Vgdl => {
            let printed = SpecGenerator::to_vgdl(spec).to_string();
            let parsed = parse_vgdl(&printed).map_err(|e| e.to_string())?;
            Ok(view_from_vgdl(&parsed, "roundtrip", &mut scratch))
        }
        SpecLang::ClassAd => {
            let printed = SpecGenerator::to_classad(spec).to_string();
            let parsed = parse_classad(&printed).map_err(|e| e.to_string())?;
            Ok(view_from_classad(&parsed, "roundtrip", &mut scratch))
        }
        SpecLang::Sword => {
            let printed = write_sword(&SpecGenerator::to_sword(spec));
            let parsed = parse_sword(&printed).map_err(|e| e.to_string())?;
            Ok(view_from_sword(&parsed, "roundtrip", &mut scratch))
        }
    }
}

/// `XLANG003` for a parsed document: concretize its view, re-render in
/// the same language, re-parse, and require the original view to be a
/// fixed point on the fields it expressed.
pub fn lint_roundtrip(view: &SpecView, lang: SpecLang, subject: &str) -> Vec<Diagnostic> {
    let spec = view_to_spec(view);
    let again = match render_and_reparse(&spec, lang) {
        Ok(v) => v,
        Err(e) => {
            return vec![Diagnostic::error(
                Code::Xlang003,
                subject,
                format!("{} re-rendering failed to re-parse: {e}", lang.label()),
            )]
        }
    };
    // Only fields the *original* document expressed must survive; the
    // re-rendering is allowed to add defaults for the rest.
    let mut masked = again.clone();
    if view.size.is_none() {
        masked.size = None;
    }
    if view.min_size.is_none() {
        masked.min_size = None;
    }
    if view.clock_lo.is_none() {
        masked.clock_lo = None;
    }
    if view.clock_hi.is_none() {
        masked.clock_hi = None;
    }
    if view.memory_mb.is_none() {
        masked.memory_mb = None;
    }
    if view.heuristic.is_none() {
        masked.heuristic = None;
    }
    if view.aggregate.is_none() {
        masked.aggregate = None;
    }
    view_divergences(view, &masked)
        .into_iter()
        .map(|(field, before, after)| {
            Diagnostic::error(
                Code::Xlang003,
                subject,
                format!(
                    "{} does not round-trip through {}: {before} becomes {after}",
                    field,
                    lang.label()
                ),
            )
        })
        .collect()
}

/// Full three-language round-trip check for a concrete spec (used on
/// generator output): renders in every language and verifies each
/// language preserves the fields it can express.
pub fn lint_spec_roundtrip(spec: &ResourceSpec, subject: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for lang in [SpecLang::Vgdl, SpecLang::ClassAd, SpecLang::Sword] {
        let got = match render_and_reparse(spec, lang) {
            Ok(v) => v,
            Err(e) => {
                out.push(Diagnostic::error(
                    Code::Xlang003,
                    subject,
                    format!("{} rendering failed to re-parse: {e}", lang.label()),
                ));
                continue;
            }
        };
        let expected = expected_view(spec, lang);
        for (field, want, have) in view_divergences(&expected, &got) {
            out.push(Diagnostic::error(
                Code::Xlang003,
                subject,
                format!(
                    "{} loses {}: spec has {want}, re-parsed rendering has {have}",
                    lang.label(),
                    field
                ),
            ));
        }
        // Divergence comparison only covers mutually-present fields;
        // a rendering that *dropped* a field entirely is XLANG001.
        for (name, missing) in [
            ("size", expected.size.is_some() && got.size.is_none()),
            (
                "min size",
                expected.min_size.is_some() && got.min_size.is_none(),
            ),
            (
                "clock lower bound",
                expected.clock_lo.is_some() && got.clock_lo.is_none(),
            ),
            (
                "clock upper bound",
                expected.clock_hi.is_some() && got.clock_hi.is_none(),
            ),
            (
                "memory floor",
                expected.memory_mb.is_some() && got.memory_mb.is_none(),
            ),
            (
                "heuristic",
                expected.heuristic.is_some() && got.heuristic.is_none(),
            ),
            (
                "aggregate",
                expected.aggregate.is_some() && got.aggregate.is_none(),
            ),
        ] {
            if missing {
                out.push(Diagnostic::error(
                    Code::Xlang001,
                    subject,
                    format!("{} rendering dropped the {}", lang.label(), name),
                ));
            }
        }
    }
    out
}

/// The view a faithful rendering of `spec` in `lang` must produce.
pub fn expected_view(spec: &ResourceSpec, lang: SpecLang) -> SpecView {
    let clock_hi = spec.clock_mhz.1.is_finite().then_some(spec.clock_mhz.1);
    match lang {
        SpecLang::Vgdl => SpecView {
            size: Some(f64::from(spec.rc_size)),
            min_size: Some(f64::from(spec.min_size)),
            clock_lo: Some(spec.clock_mhz.0),
            clock_hi,
            memory_mb: Some(f64::from(spec.memory_mb)),
            heuristic: None,
            aggregate: Some(spec.aggregate.keyword().to_string()),
        },
        SpecLang::ClassAd => SpecView {
            size: Some(f64::from(spec.rc_size)),
            min_size: Some(f64::from(spec.min_size)),
            clock_lo: Some(spec.clock_mhz.0),
            clock_hi,
            memory_mb: Some(f64::from(spec.memory_mb)),
            heuristic: Some(spec.heuristic.name().to_string()),
            aggregate: None,
        },
        SpecLang::Sword => SpecView {
            size: Some(f64::from(spec.rc_size)),
            min_size: None,
            clock_lo: Some(spec.clock_mhz.0),
            // SWORD keeps the ceiling as the desired minimum, so it is
            // representable even though the tuple shape differs.
            clock_hi: Some(spec.clock_mhz.1),
            memory_mb: Some(f64::from(spec.memory_mb)),
            heuristic: None,
            aggregate: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_select::vgdl::AggregateKind;

    fn spec() -> ResourceSpec {
        ResourceSpec {
            rc_size: 20,
            min_size: 5,
            clock_mhz: (1000.0, 3600.0),
            heuristic: HeuristicKind::Mcp,
            aggregate: AggregateKind::TightBagOf,
            threshold: 0.001,
            memory_mb: 512,
        }
    }

    #[test]
    fn generator_output_round_trips_all_three_languages() {
        let diags = lint_spec_roundtrip(&spec(), "s");
        assert!(diags.is_empty(), "{diags:?}");
        // And with an unbounded clock ceiling.
        let mut open = spec();
        open.clock_mhz = (1000.0, f64::INFINITY);
        let diags = lint_spec_roundtrip(&open, "s");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn views_agree_across_languages() {
        let s = spec();
        let mut sink = Vec::new();
        let v = view_from_vgdl(
            &parse_vgdl(&SpecGenerator::to_vgdl(&s).to_string()).unwrap(),
            "v",
            &mut sink,
        );
        let c = view_from_classad(
            &parse_classad(&SpecGenerator::to_classad(&s).to_string()).unwrap(),
            "c",
            &mut sink,
        );
        let w = view_from_sword(
            &parse_sword(&write_sword(&SpecGenerator::to_sword(&s))).unwrap(),
            "w",
            &mut sink,
        );
        assert!(sink.is_empty(), "{sink:?}");
        assert!(view_divergences(&v, &c).is_empty());
        assert!(view_divergences(&v, &w).is_empty());
        assert!(view_divergences(&c, &w).is_empty());
        assert_eq!(c.heuristic.as_deref(), Some("MCP"));
        assert_eq!(v.aggregate.as_deref(), Some("TightBagOf"));
    }

    #[test]
    fn divergent_documents_are_detected() {
        let mut a = expected_view(&spec(), SpecLang::ClassAd);
        let b = expected_view(&spec(), SpecLang::ClassAd);
        a.size = Some(32.0);
        a.heuristic = Some("DLS".into());
        let d = view_divergences(&a, &b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, "size");
        assert_eq!(d[1].0, "heuristic");
    }

    #[test]
    fn fractional_count_trips_roundtrip() {
        let mut v = expected_view(&spec(), SpecLang::ClassAd);
        v.size = Some(5.5);
        let diags = lint_roundtrip(&v, SpecLang::ClassAd, "s");
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::Xlang003 && d.detail.contains("5.5")),
            "{diags:?}"
        );
        // An integral count round-trips.
        let v = expected_view(&spec(), SpecLang::ClassAd);
        assert!(lint_roundtrip(&v, SpecLang::ClassAd, "s").is_empty());
    }

    #[test]
    fn incomplete_renderings_are_xlang001() {
        let mut out = Vec::new();
        let ad = parse_classad("[ Type = \"Job\" ]").unwrap();
        view_from_classad(&ad, "c", &mut out);
        assert_eq!(
            out.iter().filter(|d| d.code == Code::Xlang001).count(),
            2,
            "{out:?}"
        );
        let mut out = Vec::new();
        let vg = parse_vgdl("TightBagOf(nodes) [1:2] { nodes = [ Memory >= 512 ] }").unwrap();
        view_from_vgdl(&vg, "v", &mut out);
        assert!(out.iter().any(|d| d.detail.contains("Clock")));
        let mut out = Vec::new();
        let sw = parse_sword(
            "<request><group><name>g</name><num_machines>5</num_machines></group></request>",
        )
        .unwrap();
        view_from_sword(&sw, "w", &mut out);
        assert!(out.iter().any(|d| d.detail.contains("clock")));
    }

    #[test]
    fn view_lints_catch_bad_numbers() {
        let mut v = expected_view(&spec(), SpecLang::ClassAd);
        v.size = Some(0.0);
        v.min_size = Some(9.0);
        v.clock_lo = Some(4000.0);
        v.clock_hi = Some(1000.0);
        let codes: Vec<Code> = lint_view(&v, "s").iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::Spec001));
        assert!(codes.contains(&Code::Spec003));
    }
}
