//! Spec semantic lint family (`SPEC001`–`SPEC009`): bounds and unit
//! sanity, platform satisfiability, degradation-ladder monotonicity
//! and utility-configuration sanity.

use crate::diag::{Code, Diagnostic};
use crate::specfile::{SpecDoc, SpecRung};
use rsg_core::{ladder_violations, Alternative, ResourceSpec, SpecViolation};
use rsg_platform::Platform;
use rsg_sched::HeuristicKind;
use rsg_select::vgdl::AggregateKind;

/// Maps the core well-formedness rules ([`ResourceSpec::violations`])
/// onto stable diagnostic codes.
pub fn lint_resource_spec(spec: &ResourceSpec, subject: &str) -> Vec<Diagnostic> {
    spec.violations()
        .into_iter()
        .map(|v| {
            let code = match v {
                SpecViolation::ZeroSize => Code::Spec001,
                SpecViolation::MinExceedsSize => Code::Spec002,
                SpecViolation::ClockInverted => Code::Spec003,
                SpecViolation::BadClock | SpecViolation::ZeroMemory => Code::Spec004,
                SpecViolation::ThresholdOutOfRange => Code::Spec005,
            };
            Diagnostic::error(code, subject, v.to_string())
        })
        .collect()
}

/// `SPEC009`: the requested host count exceeds the platform model's
/// *total* host population, before any clock or memory filtering. Such
/// a request can never be bound by any selector on this platform, so
/// the diagnostic is always an error. Unlike `SPEC006` the check does
/// not read the spec's clock window, so it also applies to renderings
/// that omit one.
pub fn lint_population(spec: &ResourceSpec, platform: &Platform, subject: &str) -> Vec<Diagnostic> {
    let population: u64 = platform.clusters().iter().map(|c| u64::from(c.hosts)).sum();
    let needed = u64::from(spec.rc_size.max(spec.min_size));
    if needed > population {
        vec![Diagnostic::error(
            Code::Spec009,
            subject,
            format!(
                "requested {needed} hosts but the platform's total population is \
                 {population} — unsatisfiable regardless of clock or memory constraints"
            ),
        )]
    } else {
        Vec::new()
    }
}

/// `SPEC006`: counts hosts in the platform model that satisfy the
/// spec's clock window and memory floor. Fewer matching hosts than
/// `min_size` is an error (no selector can bind the request); fewer
/// than `rc_size` is a warning (only a degraded bind is possible).
///
/// Fails fast with `SPEC009` alone when the request exceeds the
/// platform's entire population — the per-constraint breakdown is
/// noise once no filter could ever help.
pub fn lint_satisfiability(
    spec: &ResourceSpec,
    platform: &Platform,
    subject: &str,
) -> Vec<Diagnostic> {
    let population = lint_population(spec, platform, subject);
    if !population.is_empty() {
        return population;
    }
    let (lo, hi) = spec.clock_mhz;
    let matching: u64 = platform
        .clusters()
        .iter()
        .filter(|c| c.clock_mhz >= lo && c.clock_mhz <= hi && c.memory_mb >= spec.memory_mb)
        .map(|c| u64::from(c.hosts))
        .sum();
    let mut out = Vec::new();
    if matching < u64::from(spec.min_size) {
        out.push(Diagnostic::error(
            Code::Spec006,
            subject,
            format!(
                "only {matching} platform hosts match clock [{lo}, {hi}] MHz / {} MB — \
                 fewer than the minimum acceptable size {}",
                spec.memory_mb, spec.min_size
            ),
        ));
    } else if matching < u64::from(spec.rc_size) {
        out.push(Diagnostic::warn(
            Code::Spec006,
            subject,
            format!(
                "only {matching} platform hosts match clock [{lo}, {hi}] MHz / {} MB — \
                 fewer than the requested size {}",
                spec.memory_mb, spec.rc_size
            ),
        ));
    }
    out
}

/// Lints one decoded native spec document: per-rung field sanity,
/// utility-config sanity, satisfiability of the original request, and
/// ladder monotonicity across rungs.
pub fn lint_spec_doc(doc: &SpecDoc, subject: &str, platform: Option<&Platform>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // --- utility configuration (SPEC008) ----------------------------
    if let Some((p, c)) = doc.utility {
        if !p.is_finite() || !c.is_finite() || p < 0.0 || c < 0.0 {
            out.push(Diagnostic::error(
                Code::Spec008,
                subject,
                format!("utility weights ({p}, {c}) must be finite and non-negative"),
            ));
        } else if p == 0.0 && c == 0.0 {
            out.push(Diagnostic::error(
                Code::Spec008,
                subject,
                "utility weights are both zero — every trade-off scores the same",
            ));
        } else if doc.tradeoffs.is_empty() {
            out.push(Diagnostic::warn(
                Code::Spec008,
                subject,
                "utility configured but no trade-off rows to choose from",
            ));
        }
    }
    for (i, &(theta, deg, cost)) in doc.tradeoffs.iter().enumerate() {
        let theta_ok = theta.is_finite() && theta > 0.0 && theta < 1.0;
        let deg_ok = deg.is_finite() && deg >= 0.0;
        let cost_ok = cost.is_finite() && cost > 0.0;
        if !theta_ok || !deg_ok || !cost_ok {
            out.push(Diagnostic::error(
                Code::Spec008,
                subject,
                format!("trade-off row {i} ({theta}, {deg}, {cost}) is out of range"),
            ));
        }
    }

    // --- per-rung field sanity (SPEC001–SPEC005) ---------------------
    let mut all_rungs_convertible = true;
    for (i, rung) in doc.rungs.iter().enumerate() {
        let before = out.len();
        lint_rung(rung, i, subject, &mut out);
        if out[before..].iter().any(|d| d.code != Code::Spec005) {
            // SPEC005 (threshold) does not affect the ladder geometry;
            // anything else makes the converted ladder meaningless.
            all_rungs_convertible = false;
        }
    }

    // --- satisfiability of the original request (SPEC006) ------------
    if let (Some(p), Some(rung)) = (platform, doc.rungs.first()) {
        if let Some(spec) = rung_to_spec(rung) {
            out.extend(lint_satisfiability(&spec, p, subject));
        }
    }

    // --- ladder monotonicity (SPEC007) -------------------------------
    if doc.rungs.len() > 1 && all_rungs_convertible {
        let ladder: Option<Vec<Alternative>> = doc
            .rungs
            .iter()
            .map(|r| {
                rung_to_spec(r).map(|spec| Alternative {
                    spec,
                    degradation: r.degradation,
                    predicted_turnaround_s: r.turnaround_s.unwrap_or(f64::NAN),
                })
            })
            .collect();
        if let Some(ladder) = ladder {
            for v in ladder_violations(&ladder) {
                out.push(Diagnostic::error(Code::Spec007, subject, v));
            }
        }
    }
    out
}

fn lint_rung(rung: &SpecRung, index: usize, subject: &str, out: &mut Vec<Diagnostic>) {
    let at = |field: &str| {
        if index == 0 {
            field.to_string()
        } else {
            format!("rung {index}: {field}")
        }
    };
    let positive = |name: &str, v: f64, out: &mut Vec<Diagnostic>| {
        if !v.is_finite() || v <= 0.0 {
            out.push(Diagnostic::error(
                Code::Spec004,
                subject,
                format!("{} is {v}, expected a positive finite value", at(name)),
            ));
            false
        } else {
            true
        }
    };
    match rung.size {
        None => out.push(Diagnostic::error(
            Code::Spec004,
            subject,
            at("size is missing"),
        )),
        Some(0.0) => out.push(Diagnostic::error(
            Code::Spec001,
            subject,
            at("requested RC size is zero"),
        )),
        Some(v) => {
            positive("size", v, out);
        }
    }
    if let Some(min) = rung.min_size {
        if positive("min", min, out) {
            if let Some(size) = rung.size {
                if size.is_finite() && min > size {
                    out.push(Diagnostic::error(
                        Code::Spec002,
                        subject,
                        format!(
                            "{} ({min} > {size})",
                            at("minimum size exceeds the request")
                        ),
                    ));
                }
            }
        }
    }
    if let Some((lo, hi)) = rung.clock {
        let lo_ok = positive("clock min", lo, out);
        let hi_ok = positive("clock max", hi, out);
        if lo_ok && hi_ok && lo > hi {
            out.push(Diagnostic::error(
                Code::Spec003,
                subject,
                format!("{} ({lo} > {hi})", at("clock range is inverted")),
            ));
        }
    }
    if let Some(mem) = rung.memory_mb {
        positive("memory", mem, out);
    }
    if let Some(t) = rung.turnaround_s {
        positive("turnaround", t, out);
    }
    if let Some(h) = &rung.heuristic {
        if HeuristicKind::parse(h).is_none() {
            out.push(Diagnostic::error(
                Code::Spec004,
                subject,
                format!("{} '{h}'", at("unknown heuristic")),
            ));
        }
    }
    if let Some(a) = &rung.aggregate {
        if parse_aggregate(a).is_none() {
            out.push(Diagnostic::error(
                Code::Spec004,
                subject,
                format!("{} '{a}'", at("unknown aggregate kind")),
            ));
        }
    }
    if let Some(t) = rung.threshold {
        if !t.is_finite() || t <= 0.0 || t >= 1.0 {
            out.push(Diagnostic::error(
                Code::Spec005,
                subject,
                format!("{} is {t}, expected a fraction in (0, 1)", at("threshold")),
            ));
        }
    }
}

/// Parses an aggregate keyword (case-insensitive).
pub fn parse_aggregate(s: &str) -> Option<AggregateKind> {
    [
        AggregateKind::LooseBagOf,
        AggregateKind::TightBagOf,
        AggregateKind::ClusterOf,
    ]
    .into_iter()
    .find(|k| k.keyword().eq_ignore_ascii_case(s))
}

/// Best-effort conversion of a rung into a concrete [`ResourceSpec`]
/// (defaults fill the gaps); `None` when the numeric fields are too
/// broken to represent.
pub fn rung_to_spec(rung: &SpecRung) -> Option<ResourceSpec> {
    let size = rung.size?;
    if !size.is_finite() || size < 0.0 {
        return None;
    }
    let size = size as u32;
    let min = match rung.min_size {
        Some(m) if m.is_finite() && m >= 0.0 => m as u32,
        Some(_) => return None,
        None => size,
    };
    let clock = rung.clock.unwrap_or((3500.0, 3500.0));
    Some(ResourceSpec {
        rc_size: size,
        min_size: min,
        clock_mhz: clock,
        heuristic: rung
            .heuristic
            .as_deref()
            .and_then(HeuristicKind::parse)
            .unwrap_or(HeuristicKind::Mcp),
        aggregate: rung
            .aggregate
            .as_deref()
            .and_then(parse_aggregate)
            .unwrap_or(AggregateKind::TightBagOf),
        threshold: rung.threshold.unwrap_or(rsg_core::DEFAULT_KNEE_THRESHOLD),
        memory_mb: rung.memory_mb.map_or(512, |m| m as u32),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specfile::parse_spec_doc;
    use rsg_platform::{Platform, ResourceGenSpec, TopologySpec};

    fn platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            TopologySpec::default(),
            11,
        )
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_doc_is_clean() {
        let doc = parse_spec_doc(
            "rsg-spec v1\nutility 1.0 0.1\ntradeoff 0.001 0.0 1.0\ntradeoff 0.05 0.04 0.6\n\
             rung none 1200\nsize 20\nmin 5\nclock 1000 3600\nheuristic MCP\n\
             aggregate TightBagOf\nthreshold 0.001\nmemory 512\nend\n\
             rung smaller-size 1400\nsize 12\nmin 5\nclock 1000 3600\nheuristic MCP\n\
             aggregate TightBagOf\nthreshold 0.05\nmemory 512\nend\n",
        )
        .unwrap();
        let diags = lint_spec_doc(&doc, "s", Some(&platform()));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn field_defects_map_to_codes() {
        let doc = parse_spec_doc(
            "rsg-spec v1\nsize 0\nmin 9\nclock 3600 1000\nthreshold 2.0\nmemory -5\nend\n",
        )
        .unwrap();
        let diags = lint_spec_doc(&doc, "s", None);
        let cs = codes(&diags);
        assert!(cs.contains(&Code::Spec001), "{diags:?}");
        assert!(cs.contains(&Code::Spec003), "{diags:?}");
        assert!(cs.contains(&Code::Spec004), "{diags:?}");
        assert!(cs.contains(&Code::Spec005), "{diags:?}");
        // min 9 > size 0 is masked by SPEC001 semantics but still
        // reported against the finite size.
        let doc2 = parse_spec_doc("rsg-spec v1\nsize 4\nmin 9\nend\n").unwrap();
        assert!(codes(&lint_spec_doc(&doc2, "s", None)).contains(&Code::Spec002));
    }

    #[test]
    fn unsatisfiable_clock_window_is_spec006() {
        let doc = parse_spec_doc("rsg-spec v1\nsize 20\nmin 5\nclock 10000 20000\nend\n").unwrap();
        let diags = lint_spec_doc(&doc, "s", Some(&platform()));
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::Spec006 && d.severity == crate::diag::Severity::Error),
            "{diags:?}"
        );
        // Without a platform model the check is skipped.
        assert!(!codes(&lint_spec_doc(&doc, "s", None)).contains(&Code::Spec006));
    }

    #[test]
    fn population_ceiling_is_spec009_and_fails_fast() {
        // 10000 hosts against a 1200-host platform: SPEC009, and only
        // SPEC009 — the per-constraint SPEC006 breakdown is suppressed.
        let doc = parse_spec_doc("rsg-spec v1\nsize 10000\nmin 5\nclock 1000 4000\nend\n").unwrap();
        let diags = lint_spec_doc(&doc, "s", Some(&platform()));
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::Spec009 && d.severity == crate::diag::Severity::Error),
            "{diags:?}"
        );
        assert!(!codes(&diags).contains(&Code::Spec006), "{diags:?}");
        // A request within the population is judged by SPEC006 alone.
        let doc2 = parse_spec_doc("rsg-spec v1\nsize 20\nmin 5\nclock 1000 4000\nend\n").unwrap();
        assert!(!codes(&lint_spec_doc(&doc2, "s", Some(&platform()))).contains(&Code::Spec009));
        // The standalone check reads only the size fields.
        let spec = rung_to_spec(
            &parse_spec_doc("rsg-spec v1\nsize 2000\nend\n")
                .unwrap()
                .rungs[0],
        )
        .unwrap();
        assert_eq!(
            codes(&lint_population(&spec, &platform(), "s")),
            [Code::Spec009]
        );
    }

    #[test]
    fn broken_ladder_is_spec007() {
        // Second rung is *larger* than the original and its turnaround
        // is better — neither strictly weaker nor ordered.
        let doc = parse_spec_doc(
            "rsg-spec v1\nrung none 1200\nsize 20\nclock 1000 3600\nend\n\
             rung smaller-size 900\nsize 30\nclock 1000 3600\nend\n",
        )
        .unwrap();
        let diags = lint_spec_doc(&doc, "s", None);
        assert!(codes(&diags).contains(&Code::Spec007), "{diags:?}");
    }

    #[test]
    fn bad_utility_is_spec008() {
        let doc =
            parse_spec_doc("rsg-spec v1\nutility -1 0.5\ntradeoff 2.0 0.0 1.0\nsize 5\nend\n")
                .unwrap();
        let diags = lint_spec_doc(&doc, "s", None);
        assert_eq!(
            codes(&diags)
                .iter()
                .filter(|c| **c == Code::Spec008)
                .count(),
            2
        );
    }

    #[test]
    fn generated_specs_lint_clean_by_construction() {
        let spec = ResourceSpec {
            rc_size: 20,
            min_size: 5,
            clock_mhz: (1000.0, 3600.0),
            heuristic: HeuristicKind::Mcp,
            aggregate: AggregateKind::TightBagOf,
            threshold: 0.001,
            memory_mb: 512,
        };
        assert!(lint_resource_spec(&spec, "s").is_empty());
        assert!(lint_satisfiability(&spec, &platform(), "s").is_empty());
    }
}
