//! `MODEL00x` lints: sanity of trained prediction models, checked
//! against the deployment's platform.
//!
//! A model file can be perfectly well-formed TSV — checksummed, typed,
//! decodable — and still be garbage: a planar fit that exploded on a
//! degenerate sample, a threshold ladder whose rungs predict in the
//! wrong order, axes that never sort, knees far beyond any host count
//! the platform can muster. The store cannot see any of that (it
//! checks bytes), and the paper's training path will not either when a
//! future knob distorts its inputs. These lints are the auditor's
//! opinion of the *numbers*.

use crate::diag::{Code, Diagnostic};
use rsg_core::{HeuristicPredictionModel, SizePredictionModel, ThresholdedSizeModel};
use rsg_platform::Platform;

/// Largest |coefficient| a planar fit may carry before the predicted
/// knee (`2^(a·α+b·β+c)`) stops being a host count and starts being a
/// cosmology. 2^64 hosts is already beyond any grid.
const MAX_PLANE_COEFF: f64 = 64.0;

/// Relative tolerance for ladder monotonicity: independent per-θ fits
/// wobble a little (a trained fast-grid model inverts adjacent rungs
/// by a few percent at the extrapolation corners), so only a violation
/// beyond this ratio *and* [`MONOTONE_MIN_HOSTS`] absolute hosts is
/// reported.
const MONOTONE_TOLERANCE: f64 = 0.5;

/// Absolute floor for a monotonicity violation: inversions of a host
/// or two at sub-handful knees are fit noise, not a defective ladder.
const MONOTONE_MIN_HOSTS: f64 = 4.0;

/// The four corners of the (α, β) characteristic square — the extreme
/// inputs a plane will ever be evaluated at.
const CHAR_CORNERS: [(f64, f64); 4] = [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)];

/// Lints one thresholded size model against the deployment platform.
/// Emits `MODEL001` (coefficient sanity), `MODEL002` (ladder
/// monotonicity), `MODEL003` (axis coverage) and `MODEL004`
/// (extrapolation past the platform population).
pub fn lint_size_model(
    model: &ThresholdedSizeModel,
    platform: &Platform,
    subject: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut coeffs_ok = true;
    for m in &model.models {
        let (sizes, ccrs) = m.axes();
        out.extend(lint_axis(sizes, "sizes", m.theta, subject));
        out.extend(lint_axis(ccrs, "ccrs", m.theta, subject));
        for si in 0..sizes.len() {
            for ci in 0..ccrs.len() {
                let p = m.plane(si, ci);
                for (name, v) in [("a", p.a), ("b", p.b), ("c", p.c)] {
                    if !v.is_finite() || v.abs() > MAX_PLANE_COEFF {
                        coeffs_ok = false;
                        out.push(Diagnostic::error(
                            Code::Model001,
                            subject,
                            format!(
                                "theta {}: plane fit at cell ({si}, {ci}) has \
                                 coefficient {name} = {v} (|{name}| must be finite \
                                 and <= {MAX_PLANE_COEFF})",
                                m.theta
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Ladder order: duplicated or unsorted thresholds break the
    // strictest-first contract every consumer relies on.
    for pair in model.models.windows(2) {
        if pair[1].theta <= pair[0].theta {
            out.push(Diagnostic::error(
                Code::Model002,
                subject,
                format!(
                    "threshold ladder is not strictly ascending: theta {} follows {}",
                    pair[1].theta, pair[0].theta
                ),
            ));
        }
    }

    // With sane coefficients, a stricter threshold (smaller θ) must
    // never predict *fewer* hosts than a looser one on the same cell —
    // degradation tolerance only ever relaxes the knee.
    if coeffs_ok {
        out.extend(lint_ladder_monotone(model, subject));
        out.extend(lint_extrapolation(model, platform, subject));
    }
    out
}

fn lint_axis(axis: &[f64], name: &str, theta: f64, subject: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if axis.is_empty() {
        out.push(Diagnostic::error(
            Code::Model003,
            subject,
            format!("theta {theta}: {name} axis is empty"),
        ));
        return out;
    }
    for v in axis {
        if !v.is_finite() || *v <= 0.0 {
            out.push(Diagnostic::error(
                Code::Model003,
                subject,
                format!("theta {theta}: {name} axis carries non-positive value {v}"),
            ));
            return out;
        }
    }
    if axis.windows(2).any(|w| w[1] <= w[0]) {
        out.push(Diagnostic::error(
            Code::Model003,
            subject,
            format!(
                "theta {theta}: {name} axis is not strictly ascending ({axis:?}); \
                 interpolation between its cells is undefined"
            ),
        ));
    } else if axis.len() == 1 {
        out.push(Diagnostic::warn(
            Code::Model003,
            subject,
            format!(
                "theta {theta}: {name} axis has a single point; every query \
                 degenerates to that cell"
            ),
        ));
    }
    out
}

fn lint_ladder_monotone(model: &ThresholdedSizeModel, subject: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pair in model.models.windows(2) {
        let (strict, loose) = (&pair[0], &pair[1]);
        if loose.theta <= strict.theta {
            continue; // already reported as a ladder-order error
        }
        if let Some((alpha, beta, ks, kl)) = monotone_violation(strict, loose) {
            out.push(Diagnostic::warn(
                Code::Model002,
                subject,
                format!(
                    "theta {} predicts {ks:.1} hosts but looser theta {} predicts \
                     {kl:.1} at (alpha {alpha}, beta {beta}); a larger degradation \
                     tolerance must never need more hosts",
                    strict.theta, loose.theta
                ),
            ));
        }
    }
    out
}

/// The worst monotonicity violation between two rungs over the shared
/// grid corners, if any exceeds the tolerance.
fn monotone_violation(
    strict: &SizePredictionModel,
    loose: &SizePredictionModel,
) -> Option<(f64, f64, f64, f64)> {
    let (sizes, ccrs) = strict.axes();
    let mut worst: Option<(f64, f64, f64, f64)> = None;
    let mut worst_ratio = 1.0 + MONOTONE_TOLERANCE;
    for &n in sizes {
        for &ccr in ccrs {
            for &(alpha, beta) in &CHAR_CORNERS {
                let ks = strict.predict_chars(n, ccr, alpha, beta);
                let kl = loose.predict_chars(n, ccr, alpha, beta);
                if kl > ks * (1.0 + MONOTONE_TOLERANCE)
                    && kl - ks > MONOTONE_MIN_HOSTS
                    && kl / ks > worst_ratio
                {
                    worst_ratio = kl / ks;
                    worst = Some((alpha, beta, ks, kl));
                }
            }
        }
    }
    worst
}

fn lint_extrapolation(
    model: &ThresholdedSizeModel,
    platform: &Platform,
    subject: &str,
) -> Vec<Diagnostic> {
    let population = platform.total_hosts() as f64;
    let mut max_knee = 0.0f64;
    let mut where_ = (0.0, 0.0);
    let strict = model.strictest();
    let (sizes, ccrs) = strict.axes();
    for &n in sizes {
        for &ccr in ccrs {
            for &(alpha, beta) in &CHAR_CORNERS {
                let k = strict.predict_chars(n, ccr, alpha, beta);
                if k > max_knee {
                    max_knee = k;
                    where_ = (n, ccr);
                }
            }
        }
    }
    if max_knee > population {
        vec![Diagnostic::warn(
            Code::Model004,
            subject,
            format!(
                "strictest model can recommend up to {max_knee:.0} hosts (at size \
                 {}, ccr {}) but the platform holds only {population:.0}; those \
                 specs will be clamped or unsatisfiable",
                where_.0, where_.1
            ),
        )]
    } else {
        Vec::new()
    }
}

/// Lints a heuristic model's grid axes (`MODEL003`). Its cell payloads
/// are label data with no numeric invariants worth opining on beyond
/// what the decoder already enforces.
pub fn lint_heuristic_model(model: &HeuristicPredictionModel, subject: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let sizes: Vec<f64> = model.sizes.iter().map(|&s| s as f64).collect();
    out.extend(lint_axis(&sizes, "sizes", f64::NAN, subject));
    out.extend(lint_axis(&model.ccrs, "ccrs", f64::NAN, subject));
    // The NaN theta placeholder reads poorly; rewrite the prefix.
    for d in &mut out {
        d.detail = d.detail.replace("theta NaN: ", "").trim_start().to_string();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::PlaneFit;
    use rsg_platform::{ResourceGenSpec, TopologySpec};

    fn platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            TopologySpec::default(),
            11,
        )
    }

    fn model(theta: f64, c: f64) -> SizePredictionModel {
        let fits = vec![PlaneFit { a: 1.0, b: 0.5, c }; 4];
        SizePredictionModel::from_parts(theta, vec![100.0, 300.0], vec![0.1, 0.5], fits)
    }

    #[test]
    fn sane_model_is_clean() {
        let m = ThresholdedSizeModel {
            models: vec![model(0.001, 5.0), model(0.05, 4.0)],
        };
        assert!(lint_size_model(&m, &platform(), "m.tsv").is_empty());
    }

    #[test]
    fn nan_coefficient_trips_model001_and_gates_the_rest() {
        let mut bad = model(0.001, f64::NAN);
        let _ = &mut bad;
        let m = ThresholdedSizeModel { models: vec![bad] };
        let diags = lint_size_model(&m, &platform(), "m.tsv");
        assert!(diags.iter().any(|d| d.code == Code::Model001));
        assert!(diags.iter().all(|d| d.code != Code::Model004));
    }

    #[test]
    fn inverted_ladder_trips_model002() {
        let m = ThresholdedSizeModel {
            models: vec![model(0.001, 4.0), model(0.05, 6.0)],
        };
        let diags = lint_size_model(&m, &platform(), "m.tsv");
        assert!(diags.iter().any(|d| d.code == Code::Model002), "{diags:?}");
    }

    #[test]
    fn unsorted_axis_trips_model003() {
        let fits = vec![
            PlaneFit {
                a: 1.0,
                b: 0.5,
                c: 5.0
            };
            4
        ];
        let m = ThresholdedSizeModel {
            models: vec![SizePredictionModel::from_parts(
                0.001,
                vec![300.0, 100.0],
                vec![0.1, 0.5],
                fits,
            )],
        };
        let diags = lint_size_model(&m, &platform(), "m.tsv");
        assert!(diags.iter().any(|d| d.code == Code::Model003));
    }

    #[test]
    fn oversized_knee_trips_model004() {
        let m = ThresholdedSizeModel {
            models: vec![model(0.001, 14.0)],
        };
        let diags = lint_size_model(&m, &platform(), "m.tsv");
        assert!(
            diags.iter().any(|d| d.code == Code::Model004),
            "2^(14+1.5) hosts must exceed 1200: {diags:?}"
        );
    }
}
