//! Lints over live platform-delta batches.
//!
//! The serving tier validates every `/admin/platform` batch here
//! *before* the push engine applies it: a batch that fails any
//! error-level delta lint is refused wholesale (422, rolled back), so
//! a corrupt or hostile delta can never mutate the tracked platform.
//!
//! Delta lints are deliberately **not** part of the spec/DAG
//! [`Code`](crate::Code) taxonomy — those codes describe documents a
//! user submits for analysis, each with a seeded defect fixture in the
//! lint corpus. Delta diagnostics describe an operator-facing admin
//! payload and carry their own `DELTA00x` code space.

use rsg_core::push::DeltaRecord;
use rsg_platform::delta::{DeltaError, PlatformDelta};
use rsg_platform::{CostModel, Platform};
use std::collections::BTreeMap;

/// Stable codes for delta-batch diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaCode {
    /// DELTA001 — a sequence number of zero (the stream starts at 1).
    ZeroSeq,
    /// DELTA002 — two records share a sequence number but carry
    /// different payloads, either within one batch or against a record
    /// the engine has already parked (same-payload duplicates are
    /// legal idempotent redelivery).
    ConflictingSeq,
    /// DELTA003 — a delta names a cluster outside the platform.
    UnknownCluster,
    /// DELTA004 — host arithmetic would empty a cluster or exceed the
    /// physical ceiling.
    BadHostCount,
    /// DELTA005 — a clock, bandwidth factor or price outside the
    /// physical envelope (how a bit-flipped float usually presents).
    BadValue,
}

impl DeltaCode {
    /// The stable `DELTA00x` string for reports and error bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaCode::ZeroSeq => "DELTA001",
            DeltaCode::ConflictingSeq => "DELTA002",
            DeltaCode::UnknownCluster => "DELTA003",
            DeltaCode::BadHostCount => "DELTA004",
            DeltaCode::BadValue => "DELTA005",
        }
    }
}

/// One finding over a delta batch. All delta diagnostics are
/// error-severity: there is no "warn and apply anyway" for a payload
/// that mutates the tracked platform.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaDiagnostic {
    /// Stable code.
    pub code: DeltaCode,
    /// Where the batch came from: the originating journal file path
    /// for replayed/audited streams, or the admin endpoint label for
    /// live submissions. Multi-source batches used to be attributable
    /// only by sequence number; the subject makes every finding name
    /// its source directly.
    pub subject: String,
    /// Which record (by sequence number) tripped the lint.
    pub seq: u64,
    /// What exactly is wrong, with the offending values.
    pub detail: String,
}

/// The stable `DELTA00x` code a [`DeltaError`] reports under — shared
/// by the batch lints here and by the serving tier when the engine
/// itself refuses a batch (it validates state the lints cannot see,
/// such as its parked buffer).
pub fn code_for(e: &DeltaError) -> DeltaCode {
    match e {
        DeltaError::ConflictingSeq(_) => DeltaCode::ConflictingSeq,
        DeltaError::UnknownCluster(_) => DeltaCode::UnknownCluster,
        DeltaError::BadHostCount(_) | DeltaError::HostUnderflow { .. } => DeltaCode::BadHostCount,
        DeltaError::Parse(_)
        | DeltaError::BadClock(_)
        | DeltaError::BadFactor(_)
        | DeltaError::BadPrice(_) => DeltaCode::BadValue,
    }
}

/// Lints a delta batch against the current platform state.
///
/// `applied_seq` is the engine's highest contiguously applied sequence
/// number: records at or below it are duplicates by definition and are
/// skipped (idempotent redelivery is legal, not a lint). Records
/// contiguous with the applied prefix are validated against a scratch
/// copy of the platform with every earlier in-batch record already
/// applied — so intra-batch arithmetic (join 5, then leave 3) checks
/// against the state it will actually see. Records beyond a gap can
/// only be checked structurally (cluster bounds and float envelopes);
/// their host arithmetic is re-validated by the engine when the gap
/// fills.
pub fn lint_delta_batch(
    records: &[DeltaRecord],
    platform: &Platform,
    applied_seq: u64,
    subject: &str,
) -> Vec<DeltaDiagnostic> {
    let mut out = Vec::new();
    let mut by_seq: BTreeMap<u64, PlatformDelta> = BTreeMap::new();
    for rec in records {
        if rec.seq == 0 {
            out.push(DeltaDiagnostic {
                code: DeltaCode::ZeroSeq,
                subject: subject.to_string(),
                seq: 0,
                detail: "sequence numbers start at 1".to_string(),
            });
            continue;
        }
        match by_seq.get(&rec.seq) {
            Some(prev) if *prev != rec.delta => out.push(DeltaDiagnostic {
                code: DeltaCode::ConflictingSeq,
                subject: subject.to_string(),
                seq: rec.seq,
                detail: format!(
                    "seq {} appears twice with different payloads ({} vs {})",
                    rec.seq,
                    prev.to_tsv(),
                    rec.delta.to_tsv()
                ),
            }),
            Some(_) => {} // identical duplicate: legal redelivery
            None => {
                by_seq.insert(rec.seq, rec.delta);
            }
        }
    }

    let mut scratch = platform.clone();
    let mut cost = CostModel::default();
    let mut next = applied_seq + 1;
    for (&seq, delta) in &by_seq {
        if seq <= applied_seq {
            continue; // duplicate of already-applied history
        }
        if seq == next {
            // Contiguous: full stateful validation via a scratch apply.
            match delta.apply(&mut scratch, &mut cost) {
                Ok(()) => next += 1,
                Err(e) => out.push(DeltaDiagnostic {
                    code: code_for(&e),
                    subject: subject.to_string(),
                    seq,
                    detail: e.to_string(),
                }),
            }
        } else {
            // Beyond a gap: structural checks only.
            if let Err(e) = structural_check(delta, platform) {
                out.push(DeltaDiagnostic {
                    code: code_for(&e),
                    subject: subject.to_string(),
                    seq,
                    detail: e.to_string(),
                });
            }
        }
    }
    out
}

/// The state-independent subset of delta validation: cluster index in
/// range, floats inside the physical envelope, host counts non-zero.
/// Host *arithmetic* (underflow/overflow against the live count) is
/// skipped — the intervening gap records will have changed it.
fn structural_check(delta: &PlatformDelta, platform: &Platform) -> Result<(), DeltaError> {
    match *delta {
        PlatformDelta::HostJoin { cluster, hosts }
        | PlatformDelta::HostLeave { cluster, hosts } => {
            if cluster.index() >= platform.clusters().len() {
                return Err(DeltaError::UnknownCluster(cluster.0));
            }
            if hosts == 0 {
                return Err(DeltaError::BadHostCount("count of 0".to_string()));
            }
            Ok(())
        }
        PlatformDelta::ClockDrift { .. }
        | PlatformDelta::BandwidthDrift { .. }
        | PlatformDelta::PriceChange { .. } => delta.validate(platform),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_platform::{ClusterId, ResourceGenSpec, TopologySpec};

    fn platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 8,
                year: 2006,
                target_hosts: Some(200),
            },
            TopologySpec::default(),
            5,
        )
    }

    fn rec(seq: u64, delta: PlatformDelta) -> DeltaRecord {
        DeltaRecord { seq, delta }
    }

    #[test]
    fn clean_batch_lints_silently() {
        let p = platform();
        let batch = [
            rec(
                1,
                PlatformDelta::HostJoin {
                    cluster: ClusterId(0),
                    hosts: 2,
                },
            ),
            rec(
                2,
                PlatformDelta::PriceChange {
                    dollars_per_hour: 0.2,
                },
            ),
        ];
        assert!(lint_delta_batch(&batch, &p, 0, "test-batch").is_empty());
    }

    #[test]
    fn every_code_trips() {
        let p = platform();
        let cases: Vec<(DeltaCode, Vec<DeltaRecord>)> = vec![
            (
                DeltaCode::ZeroSeq,
                vec![rec(
                    0,
                    PlatformDelta::PriceChange {
                        dollars_per_hour: 0.2,
                    },
                )],
            ),
            (
                DeltaCode::ConflictingSeq,
                vec![
                    rec(
                        1,
                        PlatformDelta::PriceChange {
                            dollars_per_hour: 0.2,
                        },
                    ),
                    rec(
                        1,
                        PlatformDelta::PriceChange {
                            dollars_per_hour: 0.3,
                        },
                    ),
                ],
            ),
            (
                DeltaCode::UnknownCluster,
                vec![rec(
                    1,
                    PlatformDelta::HostJoin {
                        cluster: ClusterId(999),
                        hosts: 1,
                    },
                )],
            ),
            (
                DeltaCode::BadHostCount,
                vec![rec(
                    1,
                    PlatformDelta::HostLeave {
                        cluster: ClusterId(0),
                        hosts: u32::MAX,
                    },
                )],
            ),
            (
                DeltaCode::BadValue,
                vec![rec(
                    1,
                    PlatformDelta::ClockDrift {
                        cluster: ClusterId(0),
                        clock_mhz: -5.0,
                    },
                )],
            ),
        ];
        for (code, batch) in cases {
            let diags = lint_delta_batch(&batch, &p, 0, "test-batch");
            assert!(
                diags.iter().any(|d| d.code == code),
                "{code:?} should trip: {diags:?}"
            );
        }
    }

    #[test]
    fn duplicates_of_applied_history_are_legal() {
        let p = platform();
        let batch = [rec(
            3,
            PlatformDelta::HostLeave {
                cluster: ClusterId(0),
                hosts: u32::MAX, // would be invalid, but seq ≤ applied
            },
        )];
        assert!(lint_delta_batch(&batch, &p, 5, "test-batch").is_empty());
    }

    #[test]
    fn intra_batch_arithmetic_checks_against_staged_state() {
        let p = platform();
        let hosts = p.clusters()[2].hosts;
        // Join 5 then leave (hosts + 4): only valid because the join
        // lands first in the staged state.
        let batch = [
            rec(
                1,
                PlatformDelta::HostJoin {
                    cluster: ClusterId(2),
                    hosts: 5,
                },
            ),
            rec(
                2,
                PlatformDelta::HostLeave {
                    cluster: ClusterId(2),
                    hosts: hosts + 4,
                },
            ),
        ];
        assert!(lint_delta_batch(&batch, &p, 0, "test-batch").is_empty());
        // Without the join, the leave must trip BadHostCount.
        let diags = lint_delta_batch(&batch[1..], &p, 1, "test-batch");
        assert!(diags.iter().any(|d| d.code == DeltaCode::BadHostCount));
    }

    #[test]
    fn gapped_records_get_structural_checks_only() {
        let p = platform();
        let batch = [
            // seq 5 with applied_seq 0: beyond the gap. Host arithmetic
            // is deferred, but a bad cluster or float still trips.
            rec(
                5,
                PlatformDelta::HostLeave {
                    cluster: ClusterId(0),
                    hosts: u32::MAX,
                },
            ),
            rec(
                6,
                PlatformDelta::BandwidthDrift {
                    cluster: ClusterId(999),
                    factor: 0.5,
                },
            ),
        ];
        let diags = lint_delta_batch(&batch, &p, 0, "test-batch");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DeltaCode::UnknownCluster);
        assert_eq!(diags[0].seq, 6);
    }
}
