//! Deployment-tree discovery: walking a tree and classifying every
//! artifact in it by *content*, not by name.
//!
//! Naming conventions drift; headers do not. Every artifact family in
//! the pipeline is self-describing — store envelopes open with
//! `rsg-artifact`, models with `rsg-size-model`/`rsg-heur-model`, knee
//! tables with `rsg-knee-table`, journals with their own magics, the
//! platform file with `rsg-platform` — so the auditor sniffs the first
//! bytes of each file and lets everything it does not recognize pass
//! untouched (a deployment tree legitimately carries READMEs, unit
//! files, whatever). The single naming-based rule is the spec corpus:
//! any file under a `specs/` directory is analyzed as a spec document,
//! because spec languages (vgDL, ClassAds) have no reserved magic.

use rsg_core::store;
use std::path::{Path, PathBuf};

/// What a classified file is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A size prediction model (bare TSV or checksummed envelope).
    SizeModel,
    /// A heuristic prediction model (bare TSV or envelope).
    HeurModel,
    /// Persisted knee tables.
    KneeTables,
    /// A sweep checkpoint journal (possibly one shard of a set).
    SweepJournal,
    /// A platform delta journal.
    DeltaJournal,
    /// A platform generation file.
    PlatformFile,
    /// A spec-corpus document (anything under `specs/`).
    Spec,
    /// A store envelope whose payload cannot be trusted (bad checksum,
    /// unknown kind, truncation). `Artifact::text` holds the reason.
    DamagedEnvelope,
}

/// One classified file of the deployment tree.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Absolute (or root-relative, as given) path on disk.
    pub path: PathBuf,
    /// Diagnostic subject: the path relative to the audited root, with
    /// `/` separators regardless of platform.
    pub subject: String,
    /// File content — the envelope *payload* for enveloped artifacts,
    /// the raw text otherwise, or the damage reason for
    /// [`ArtifactKind::DamagedEnvelope`].
    pub text: String,
    /// What the file is.
    pub kind: ArtifactKind,
}

/// The diagnostic subject for `path` inside `root`.
pub fn relative_subject(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    if s.is_empty() {
        ".".to_string()
    } else {
        s
    }
}

/// Walks `root` recursively (sorted, deterministic) and classifies
/// every file. Only the walk itself can fail; an unreadable *file* is
/// skipped silently, because a non-UTF-8 blob in the tree (a tarball, a
/// core dump) is not an artifact and not the audit's business.
pub fn classify(root: &Path) -> std::io::Result<Vec<Artifact>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // binary or unreadable: not an artifact
        };
        let subject = relative_subject(root, &path);
        let in_specs = path
            .strip_prefix(root)
            .ok()
            .is_some_and(|rel| rel.components().any(|c| c.as_os_str() == "specs"));
        if let Some((kind, text)) = classify_text(&text, in_specs) {
            out.push(Artifact {
                path,
                subject,
                text,
                kind,
            });
        }
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Classifies one file's content. Returns `None` for files the audit
/// has no opinion about.
fn classify_text(text: &str, in_specs: bool) -> Option<(ArtifactKind, String)> {
    if store::looks_like_envelope(text) {
        return Some(match store::unwrap_envelope(text) {
            Ok((kind, payload)) => match kind {
                rsg_core::persist::SIZE_MODEL_KIND => {
                    (ArtifactKind::SizeModel, payload.to_string())
                }
                rsg_core::persist::HEUR_MODEL_KIND => {
                    (ArtifactKind::HeurModel, payload.to_string())
                }
                other => (
                    ArtifactKind::DamagedEnvelope,
                    format!("envelope carries unknown artifact kind '{other}'"),
                ),
            },
            Err(e) => (ArtifactKind::DamagedEnvelope, e.to_string()),
        });
    }
    let head = text.trim_start();
    let kind = if head.starts_with("rsg-size-model\t") {
        ArtifactKind::SizeModel
    } else if head.starts_with("rsg-heur-model\t") {
        ArtifactKind::HeurModel
    } else if head.starts_with("rsg-knee-table\t") {
        ArtifactKind::KneeTables
    } else if head.starts_with("rsg-sweep-journal\t") {
        ArtifactKind::SweepJournal
    } else if head.starts_with("rsg-delta-journal\t") {
        ArtifactKind::DeltaJournal
    } else if head.starts_with("rsg-platform\t") {
        ArtifactKind::PlatformFile
    } else if in_specs {
        ArtifactKind::Spec
    } else {
        return None;
    };
    Some((kind, text.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_by_magic_and_location() {
        assert_eq!(
            classify_text("rsg-size-model\tv1\n", false).unwrap().0,
            ArtifactKind::SizeModel
        );
        assert_eq!(
            classify_text("rsg-delta-journal\tv1\tdeadbeef\n", false)
                .unwrap()
                .0,
            ArtifactKind::DeltaJournal
        );
        assert_eq!(
            classify_text("rsg-platform\tv1\n", false).unwrap().0,
            ArtifactKind::PlatformFile
        );
        // Arbitrary text is an artifact only inside specs/.
        assert!(classify_text("RC = 64 hosts\n", false).is_none());
        assert_eq!(
            classify_text("RC = 64 hosts\n", true).unwrap().0,
            ArtifactKind::Spec
        );
    }

    #[test]
    fn damaged_envelope_carries_reason() {
        let bad = "rsg-artifact\tv1\tsize-model\t5\t0000000000000000\nhello";
        let (kind, reason) = classify_text(bad, false).unwrap();
        assert_eq!(kind, ArtifactKind::DamagedEnvelope);
        assert!(!reason.is_empty());
    }

    #[test]
    fn subjects_are_root_relative() {
        let root = Path::new("/tmp/tree");
        assert_eq!(
            relative_subject(root, &root.join("models/size_model.tsv")),
            "models/size_model.tsv"
        );
    }
}
