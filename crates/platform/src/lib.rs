//! # rsg-platform — synthetic large-scale distributed environments
//!
//! The paper runs entirely in simulation over synthetic resources
//! (Section III.4.1): a compute-resource generator in the style of Kee,
//! Casanova & Chien instantiates a multi-cluster resource universe that
//! is representative of deployed technology (1000 clusters / 33,667
//! hosts in Chapter IV), and a BRITE-style topology generator provides
//! network connectivity between the clusters. This crate re-implements
//! both substrates plus the *resource collection* (RC) abstraction the
//! prediction models reason about, and the EC2-style resource cost model
//! of Section V.3.2.1.
//!
//! * [`generator`] — the Kee-style synthetic compute-resource generator
//!   (cluster counts, sizes, clock-rate distributions, technology-year
//!   trend).
//! * [`topology`] — Waxman / Barabási–Albert / hierarchical topology
//!   generation with link capacity classes, plus pairwise bottleneck
//!   bandwidth and latency.
//! * [`platform`] — the merged [`Platform`]: clusters
//!   mapped onto topology nodes.
//! * [`rc`] — [`ResourceCollection`]: the host
//!   set handed to a scheduling heuristic, with controlled clock-rate and
//!   bandwidth heterogeneity.
//! * [`cost`] — the Amazon-EC2-derived cost model ($0.10/hour per
//!   1.7 GHz instance, clock-scaled).
//! * [`delta`] — live platform change records
//!   ([`PlatformDelta`]): host join/leave, clock and
//!   bandwidth drift, price changes, with validation and transactional
//!   apply for the push-mode incremental engine.

#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod delta;
pub mod file;
pub mod generator;
pub mod platform;
pub mod rc;
pub mod topology;

pub use cluster::{Arch, Cluster, ClusterId};
pub use cost::CostModel;
pub use delta::{DeltaError, PlatformDelta};
pub use file::{PlatformFile, PlatformFileError};
pub use generator::ResourceGenSpec;
pub use platform::Platform;
pub use rc::{ClockClasses, CommModel, ResourceCollection};
pub use topology::{Topology, TopologySpec};

/// Reference bandwidth (bits/s) all communication costs are expressed
/// against — 10 Gbps (Section III.1.1).
pub const REFERENCE_BANDWIDTH_BPS: f64 = 10e9;
