//! Resource cost model (Section V.3.2.1).
//!
//! "Rather than coming up with an arbitrary metric, we chose to use the
//! same one as an existing production system …: Amazon's Elastic Cloud.
//! In this system, each 'instance', that is a (virtual) 1.7 GHz x86
//! processor machine, is $0.10 per hour. We simply scale this cost by
//! our simulated resources' clock rates and compute total cost for
//! application executions."

use crate::rc::ResourceCollection;

/// EC2-derived cost model: dollars per hour per 1.7 GHz instance, scaled
/// linearly by clock rate. Hosts are charged for the full duration the
/// collection is held.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Price of a 1.7 GHz instance per hour (default $0.10).
    pub dollars_per_hour: f64,
    /// Reference clock of the priced instance, MHz (default 1700).
    pub reference_clock_mhz: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dollars_per_hour: 0.10,
            reference_clock_mhz: 1700.0,
        }
    }
}

impl CostModel {
    /// Hourly rate of one host at `clock_mhz`.
    pub fn host_rate(&self, clock_mhz: f64) -> f64 {
        self.dollars_per_hour * clock_mhz / self.reference_clock_mhz
    }

    /// Cost of holding the whole RC for `duration_s` seconds.
    pub fn execution_cost(&self, rc: &ResourceCollection, duration_s: f64) -> f64 {
        let hours = duration_s / 3600.0;
        rc.clocks().iter().map(|&c| self.host_rate(c)).sum::<f64>() * hours
    }

    /// The paper's *relative cost*: cost of the evaluated configuration
    /// versus the optimal one, as a signed fraction. "A positive value
    /// … indicates the prediction model predicted a size greater than
    /// the size for the optimal application turn-around time"; negative
    /// means cheaper.
    pub fn relative_cost(&self, evaluated: f64, optimal: f64) -> f64 {
        if optimal == 0.0 {
            0.0
        } else {
            evaluated / optimal - 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rc::ResourceCollection;

    #[test]
    fn reference_instance_is_ten_cents() {
        let m = CostModel::default();
        assert!((m.host_rate(1700.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn cost_scales_with_clock_size_and_time() {
        let m = CostModel::default();
        let rc = ResourceCollection::homogeneous(10, 3400.0);
        // 10 hosts at 2x the reference rate for half an hour = 10*0.2*0.5
        let c = m.execution_cost(&rc, 1800.0);
        assert!((c - 1.0).abs() < 1e-12, "cost {c}");
    }

    #[test]
    fn relative_cost_signs() {
        let m = CostModel::default();
        assert!(m.relative_cost(2.0, 1.0) > 0.0);
        assert!(m.relative_cost(0.5, 1.0) < 0.0);
        assert_eq!(m.relative_cost(1.0, 1.0), 0.0);
        assert_eq!(m.relative_cost(1.0, 0.0), 0.0);
    }
}
