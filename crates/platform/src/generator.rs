//! Synthetic compute-resource generator (Section III.2.1).
//!
//! Re-implementation of the Kee/Casanova/Chien generator the paper uses:
//! it instantiates an LSDE as a list of clusters whose sizes and clock
//! rates follow statistical models of deployed resources, with a
//! *technology year* knob so future, larger platforms can be explored.
//!
//! Model choices (documented substitutions — the original generator's
//! exact parameterization is not in the paper):
//!
//! * cluster sizes are log-normal, calibrated so the default 1000-cluster
//!   universe holds ≈ 33.7 hosts per cluster (the paper's 33,667-host
//!   universe); an optional `target_hosts` pins the total host count
//!   exactly by adjusting the final clusters;
//! * clock rates follow a purchase-age model: a cluster deployed `a`
//!   years before the target year carries commodity CPUs between 55% and
//!   100% of that year's top clock, with the top clock growing ~30% per
//!   year from a 3.2 GHz baseline in 2005 (clamped to plausible
//!   commodity range);
//! * architectures are drawn 40% Xeon / 35% Opteron / 25% Pentium;
//! * memory correlates loosely with clock (0.25 MB per MHz, quantized to
//!   powers of two between 512 MB and 8 GB).

use crate::cluster::{Arch, Cluster, ClusterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Slowest commodity clock the generator will emit, MHz. Doubles as
/// the validation floor for live clock-drift deltas.
pub const MIN_CLOCK_MHZ: f64 = 800.0;

/// Fastest commodity clock the generator will emit, MHz. Doubles as
/// the validation ceiling for live clock-drift deltas.
pub const MAX_CLOCK_MHZ: f64 = 32_000.0;

/// Parameters of the synthetic compute-resource generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceGenSpec {
    /// Number of clusters to generate.
    pub clusters: usize,
    /// Technology year; drives the clock-rate distribution.
    pub year: u32,
    /// If set, the total host count is adjusted to exactly this value.
    pub target_hosts: Option<usize>,
}

impl Default for ResourceGenSpec {
    fn default() -> Self {
        ResourceGenSpec {
            clusters: 1000,
            year: 2006,
            target_hosts: None,
        }
    }
}

impl ResourceGenSpec {
    /// The Chapter IV resource universe: 1000 clusters, 33,667 hosts.
    pub fn paper_universe() -> ResourceGenSpec {
        ResourceGenSpec {
            clusters: 1000,
            year: 2006,
            target_hosts: Some(33_667),
        }
    }

    /// Top commodity clock rate (MHz) for a given year.
    pub fn top_clock_mhz(year: u32) -> f64 {
        let base_year = 2005i32;
        let growth: f64 = 1.30;
        let dy = year as i32 - base_year;
        (3200.0 * growth.powi(dy)).clamp(MIN_CLOCK_MHZ, MAX_CLOCK_MHZ)
    }

    /// Generates the cluster list. Deterministic for a given
    /// `(spec, seed)`.
    pub fn generate(&self, seed: u64) -> Vec<Cluster> {
        assert!(self.clusters >= 1, "need at least one cluster");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.clusters);
        for i in 0..self.clusters {
            let hosts = sample_cluster_size(&mut rng);
            let age = rng.gen_range(0.0..3.0);
            let deploy_year = (self.year as f64 - age).floor() as u32;
            let top = Self::top_clock_mhz(deploy_year);
            let clock = quantize_clock(top * rng.gen_range(0.55..1.0));
            let arch = match rng.gen_range(0.0..1.0) {
                x if x < 0.40 => Arch::Xeon,
                x if x < 0.75 => Arch::Opteron,
                _ => Arch::Pentium,
            };
            out.push(Cluster {
                id: ClusterId(i as u32),
                hosts,
                clock_mhz: clock,
                memory_mb: memory_for_clock(clock),
                arch,
                year: deploy_year,
            });
        }

        if let Some(target) = self.target_hosts {
            adjust_total_hosts(&mut out, target);
        }
        out
    }
}

/// Log-normal cluster size: median 24 hosts, σ = 0.8 (mean ≈ 33),
/// clamped to [1, 1024].
fn sample_cluster_size<R: Rng>(rng: &mut R) -> u32 {
    let mu = (24.0f64).ln();
    let sigma = 0.8;
    let z = standard_normal(rng);
    let size = (mu + sigma * z).exp().round();
    (size as u32).clamp(1, 1024)
}

/// Box–Muller standard normal (kept in-repo to stay within the allowed
/// crate set).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Clocks are sold in 100 MHz steps.
fn quantize_clock(mhz: f64) -> f64 {
    (mhz / 100.0).round() * 100.0
}

/// Memory loosely correlated with clock, power-of-two MB in [512, 8192].
fn memory_for_clock(clock_mhz: f64) -> u32 {
    let raw = clock_mhz * 0.25 * 4.0; // ~1 GB per GHz
    let mut mem = 512u32;
    while (mem as f64) < raw && mem < 8192 {
        mem *= 2;
    }
    mem
}

/// Adds/removes hosts from the tail clusters until the total matches.
fn adjust_total_hosts(clusters: &mut [Cluster], target: usize) {
    let mut total: isize = clusters.iter().map(|c| c.hosts as isize).sum();
    let want = target as isize;
    let n = clusters.len();
    let mut i = 0usize;
    while total != want {
        let c = &mut clusters[n - 1 - (i % n)];
        if total < want {
            c.hosts += 1;
            total += 1;
        } else if c.hosts > 1 {
            c.hosts -= 1;
            total -= 1;
        }
        i += 1;
        // Safety valve: cannot shrink below one host per cluster.
        if i > 10_000_000 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_universe_host_count_is_exact() {
        let clusters = ResourceGenSpec::paper_universe().generate(42);
        assert_eq!(clusters.len(), 1000);
        let hosts: u32 = clusters.iter().map(|c| c.hosts).sum();
        assert_eq!(hosts, 33_667);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ResourceGenSpec::default();
        let a = spec.generate(1);
        let b = spec.generate(1);
        assert_eq!(a, b);
        let c = spec.generate(2);
        assert_ne!(a, c);
    }

    #[test]
    fn clock_rates_in_plausible_range() {
        let clusters = ResourceGenSpec::default().generate(7);
        for c in &clusters {
            assert!(
                c.clock_mhz >= 800.0 && c.clock_mhz <= 6000.0,
                "clock {} out of 2006-era range",
                c.clock_mhz
            );
            assert_eq!(c.clock_mhz % 100.0, 0.0);
        }
    }

    #[test]
    fn year_trend_increases_clocks() {
        let c2006 = ResourceGenSpec::top_clock_mhz(2006);
        let c2010 = ResourceGenSpec::top_clock_mhz(2010);
        assert!(c2010 > c2006 * 2.0);
    }

    #[test]
    fn mean_cluster_size_near_paper() {
        let clusters = ResourceGenSpec {
            clusters: 4000,
            year: 2006,
            target_hosts: None,
        }
        .generate(3);
        let mean = clusters.iter().map(|c| c.hosts as f64).sum::<f64>() / clusters.len() as f64;
        assert!(
            (20.0..55.0).contains(&mean),
            "mean cluster size {mean} should be near the paper's 33.7"
        );
    }

    #[test]
    fn memory_is_power_of_two_in_range() {
        for c in ResourceGenSpec::default().generate(11) {
            assert!(c.memory_mb.is_power_of_two());
            assert!((512..=8192).contains(&c.memory_mb));
        }
    }

    #[test]
    fn adjust_handles_both_directions() {
        let mut up = ResourceGenSpec {
            clusters: 10,
            year: 2006,
            target_hosts: None,
        }
        .generate(5);
        let total: u32 = up.iter().map(|c| c.hosts).sum();
        adjust_total_hosts(&mut up, (total + 17) as usize);
        assert_eq!(up.iter().map(|c| c.hosts).sum::<u32>(), total + 17);
        adjust_total_hosts(&mut up, (total - 5) as usize);
        assert_eq!(up.iter().map(|c| c.hosts).sum::<u32>(), total - 5);
    }
}
