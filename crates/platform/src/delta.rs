//! Platform deltas: the unit of change a live platform emits.
//!
//! The paper's universe is a static snapshot; a long-lived service
//! tracks a platform that moves underneath it — hosts join and leave,
//! clock rates and bandwidths drift, prices change. Each observed
//! change is one [`PlatformDelta`], serialized as a single TSV record
//! inside a checksummed delta journal (see `rsg-core`'s push module)
//! and applied transactionally to a [`Platform`] + [`CostModel`] pair.
//!
//! Deltas carry *absolute* target values, not increments, wherever the
//! quantity is continuous (`ClockDrift`, `BandwidthDrift`,
//! `PriceChange`): re-applying the same record is then idempotent by
//! construction, which is what lets the journal replay path tolerate
//! duplicates without bookkeeping. Host arithmetic (`HostJoin` /
//! `HostLeave`) is incremental and therefore guarded by sequence
//! numbers upstream.

use crate::cluster::ClusterId;
use crate::cost::CostModel;
use crate::generator::{MAX_CLOCK_MHZ, MIN_CLOCK_MHZ};
use crate::platform::Platform;
use std::fmt;

/// Largest host count a single delta may leave a cluster with. The
/// generator never produces clusters remotely this large; anything
/// bigger is a corrupt or hostile record, not a real grid.
pub const MAX_CLUSTER_HOSTS: u32 = 1_000_000;

/// Largest bandwidth scale factor a drift record may carry (uplinks do
/// get upgraded, but not 1000×, and a huge factor is how a bit-flipped
/// float usually presents).
pub const MAX_BANDWIDTH_FACTOR: f64 = 1000.0;

/// One observed change to the live platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatformDelta {
    /// `hosts` additional hosts came up in `cluster`.
    HostJoin {
        /// Cluster gaining hosts.
        cluster: ClusterId,
        /// Number of hosts joining (≥ 1).
        hosts: u32,
    },
    /// `hosts` hosts left `cluster` (at least one must remain).
    HostLeave {
        /// Cluster losing hosts.
        cluster: ClusterId,
        /// Number of hosts leaving (≥ 1).
        hosts: u32,
    },
    /// `cluster` now runs at `clock_mhz` (DVFS step, hardware refresh).
    ClockDrift {
        /// Cluster whose clock moved.
        cluster: ClusterId,
        /// New clock rate, MHz (absolute, not a ratio).
        clock_mhz: f64,
    },
    /// `cluster`'s connectivity now delivers `factor` × its provisioned
    /// bandwidth (absolute scale, 1.0 = nominal).
    BandwidthDrift {
        /// Cluster whose links drifted.
        cluster: ClusterId,
        /// New bandwidth scale (absolute, in `(0, MAX_BANDWIDTH_FACTOR]`).
        factor: f64,
    },
    /// The provider repriced: dollars per host-hour at the reference
    /// clock (absolute).
    PriceChange {
        /// New price, $/host-hour at the reference clock.
        dollars_per_hour: f64,
    },
}

/// Why a delta was refused: either it cannot be parsed, or it names a
/// platform state no real grid reaches (the validation bounds double as
/// corruption detectors — a bit-flipped float lands outside them).
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// The TSV record did not decode as any delta kind.
    Parse(String),
    /// The delta names a cluster outside the platform.
    UnknownCluster(u32),
    /// A host count was zero or would exceed [`MAX_CLUSTER_HOSTS`].
    BadHostCount(String),
    /// `HostLeave` would empty (or underflow) the cluster.
    HostUnderflow {
        /// Cluster that would underflow.
        cluster: u32,
        /// Hosts currently in the cluster.
        have: u32,
        /// Hosts the delta tries to remove.
        remove: u32,
    },
    /// A clock rate outside the generator's physical envelope.
    BadClock(f64),
    /// A bandwidth factor that is non-finite, non-positive, or absurd.
    BadFactor(f64),
    /// A price that is non-finite or non-positive.
    BadPrice(f64),
    /// A redelivered sequence number carries a different payload than
    /// the record already accepted under it — the source is
    /// contradicting itself, and first-write-wins would silently pick
    /// one side.
    ConflictingSeq(u64),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Parse(s) => write!(f, "unparseable delta record: {s}"),
            DeltaError::UnknownCluster(c) => write!(f, "unknown cluster {c}"),
            DeltaError::BadHostCount(s) => write!(f, "bad host count: {s}"),
            DeltaError::HostUnderflow {
                cluster,
                have,
                remove,
            } => write!(
                f,
                "cluster {cluster} holds {have} hosts; removing {remove} would empty it"
            ),
            DeltaError::BadClock(c) => write!(
                f,
                "clock {c} MHz outside [{MIN_CLOCK_MHZ}, {MAX_CLOCK_MHZ}]"
            ),
            DeltaError::BadFactor(x) => write!(
                f,
                "bandwidth factor {x} outside (0, {MAX_BANDWIDTH_FACTOR}]"
            ),
            DeltaError::BadPrice(p) => write!(f, "price {p} $/h is not positive and finite"),
            DeltaError::ConflictingSeq(seq) => write!(
                f,
                "seq {seq} redelivered with a different payload than the record already accepted under it"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl PlatformDelta {
    /// Serializes the delta as a tab-separated record (no newline). The
    /// exact bytes are checksummed into the delta journal, so this
    /// format is append-only: new kinds may be added, existing fields
    /// never reordered.
    pub fn to_tsv(&self) -> String {
        match *self {
            PlatformDelta::HostJoin { cluster, hosts } => {
                format!("host-join\t{}\t{hosts}", cluster.index())
            }
            PlatformDelta::HostLeave { cluster, hosts } => {
                format!("host-leave\t{}\t{hosts}", cluster.index())
            }
            PlatformDelta::ClockDrift { cluster, clock_mhz } => {
                format!("clock-drift\t{}\t{clock_mhz}", cluster.index())
            }
            PlatformDelta::BandwidthDrift { cluster, factor } => {
                format!("bw-drift\t{}\t{factor}", cluster.index())
            }
            PlatformDelta::PriceChange { dollars_per_hour } => {
                format!("price\t{dollars_per_hour}")
            }
        }
    }

    /// Decodes one TSV record produced by [`to_tsv`](Self::to_tsv).
    /// Structural decode only — range validation happens in
    /// [`validate`](Self::validate) against a concrete platform.
    pub fn from_tsv(s: &str) -> Result<PlatformDelta, DeltaError> {
        let fields: Vec<&str> = s.split('\t').collect();
        let bad = || DeltaError::Parse(s.to_string());
        let cluster = |f: &str| -> Result<ClusterId, DeltaError> {
            f.parse::<u32>().map(ClusterId).map_err(|_| bad())
        };
        let float = |f: &str| -> Result<f64, DeltaError> { f.parse::<f64>().map_err(|_| bad()) };
        match fields.as_slice() {
            ["host-join", c, h] => Ok(PlatformDelta::HostJoin {
                cluster: cluster(c)?,
                hosts: h.parse().map_err(|_| bad())?,
            }),
            ["host-leave", c, h] => Ok(PlatformDelta::HostLeave {
                cluster: cluster(c)?,
                hosts: h.parse().map_err(|_| bad())?,
            }),
            ["clock-drift", c, m] => Ok(PlatformDelta::ClockDrift {
                cluster: cluster(c)?,
                clock_mhz: float(m)?,
            }),
            ["bw-drift", c, x] => Ok(PlatformDelta::BandwidthDrift {
                cluster: cluster(c)?,
                factor: float(x)?,
            }),
            ["price", p] => Ok(PlatformDelta::PriceChange {
                dollars_per_hour: float(p)?,
            }),
            _ => Err(bad()),
        }
    }

    /// Checks the delta against a concrete platform without mutating
    /// anything: cluster in range, resulting host counts sane, floats
    /// inside the generator's physical envelope. A delta that fails
    /// here is refused *before* any member of its batch is applied.
    pub fn validate(&self, platform: &Platform) -> Result<(), DeltaError> {
        let check_cluster = |id: ClusterId| -> Result<(), DeltaError> {
            if id.index() < platform.clusters().len() {
                Ok(())
            } else {
                Err(DeltaError::UnknownCluster(id.0))
            }
        };
        match *self {
            PlatformDelta::HostJoin { cluster, hosts } => {
                check_cluster(cluster)?;
                let have = platform.clusters()[cluster.index()].hosts;
                if hosts == 0 || have.saturating_add(hosts) > MAX_CLUSTER_HOSTS {
                    return Err(DeltaError::BadHostCount(format!(
                        "join of {hosts} onto {have}"
                    )));
                }
                Ok(())
            }
            PlatformDelta::HostLeave { cluster, hosts } => {
                check_cluster(cluster)?;
                let have = platform.clusters()[cluster.index()].hosts;
                if hosts == 0 {
                    return Err(DeltaError::BadHostCount("leave of 0".to_string()));
                }
                if hosts >= have {
                    return Err(DeltaError::HostUnderflow {
                        cluster: cluster.0,
                        have,
                        remove: hosts,
                    });
                }
                Ok(())
            }
            PlatformDelta::ClockDrift { cluster, clock_mhz } => {
                check_cluster(cluster)?;
                if !clock_mhz.is_finite() || !(MIN_CLOCK_MHZ..=MAX_CLOCK_MHZ).contains(&clock_mhz) {
                    return Err(DeltaError::BadClock(clock_mhz));
                }
                Ok(())
            }
            PlatformDelta::BandwidthDrift { cluster, factor } => {
                check_cluster(cluster)?;
                if !factor.is_finite() || factor <= 0.0 || factor > MAX_BANDWIDTH_FACTOR {
                    return Err(DeltaError::BadFactor(factor));
                }
                Ok(())
            }
            PlatformDelta::PriceChange { dollars_per_hour } => {
                if !dollars_per_hour.is_finite() || dollars_per_hour <= 0.0 {
                    return Err(DeltaError::BadPrice(dollars_per_hour));
                }
                Ok(())
            }
        }
    }

    /// Applies the (pre-validated) delta to the platform/cost pair.
    /// Call [`validate`](Self::validate) first; this re-checks the same
    /// bounds and returns the same errors, so a racing mutation can
    /// never smuggle an invalid state in between the two calls.
    pub fn apply(&self, platform: &mut Platform, cost: &mut CostModel) -> Result<(), DeltaError> {
        self.validate(platform)?;
        match *self {
            PlatformDelta::HostJoin { cluster, hosts } => {
                let have = platform.clusters()[cluster.index()].hosts;
                platform.set_cluster_hosts(cluster, have + hosts);
            }
            PlatformDelta::HostLeave { cluster, hosts } => {
                let have = platform.clusters()[cluster.index()].hosts;
                platform.set_cluster_hosts(cluster, have - hosts);
            }
            PlatformDelta::ClockDrift { cluster, clock_mhz } => {
                platform.set_cluster_clock(cluster, clock_mhz);
            }
            PlatformDelta::BandwidthDrift { cluster, factor } => {
                platform.set_bw_scale(cluster, factor);
            }
            PlatformDelta::PriceChange { dollars_per_hour } => {
                cost.dollars_per_hour = dollars_per_hour;
            }
        }
        Ok(())
    }

    /// Pure preview: validates the delta against `platform` and returns
    /// the state it *would* produce, without mutating either input.
    /// This is what lets a static analyzer fold a delta stream onto a
    /// platform with the exact semantics of [`apply`](Self::apply) —
    /// same bounds, same errors — while the inputs stay shareable.
    pub fn preview(
        &self,
        platform: &Platform,
        cost: &CostModel,
    ) -> Result<(Platform, CostModel), DeltaError> {
        let mut p = platform.clone();
        let mut c = *cost;
        self.apply(&mut p, &mut c)?;
        Ok((p, c))
    }

    /// Whether the delta lands exactly on a physical clamp boundary
    /// (`MIN_CLOCK_MHZ` / `MAX_CLOCK_MHZ`). Such a record is *valid*,
    /// but a source that reports a clock pinned to the envelope edge is
    /// usually clamping an out-of-range reading upstream — worth a
    /// warning from an offline audit, never a runtime refusal.
    pub fn saturates_clock_clamp(&self) -> bool {
        match *self {
            PlatformDelta::ClockDrift { clock_mhz, .. } => {
                clock_mhz == MIN_CLOCK_MHZ || clock_mhz == MAX_CLOCK_MHZ
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ResourceGenSpec;
    use crate::topology::TopologySpec;

    fn platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 10,
                year: 2006,
                target_hosts: Some(300),
            },
            TopologySpec::default(),
            3,
        )
    }

    #[test]
    fn tsv_round_trips_every_kind() {
        let deltas = [
            PlatformDelta::HostJoin {
                cluster: ClusterId(3),
                hosts: 17,
            },
            PlatformDelta::HostLeave {
                cluster: ClusterId(0),
                hosts: 1,
            },
            PlatformDelta::ClockDrift {
                cluster: ClusterId(9),
                clock_mhz: 2312.5,
            },
            PlatformDelta::BandwidthDrift {
                cluster: ClusterId(2),
                factor: 0.25,
            },
            PlatformDelta::PriceChange {
                dollars_per_hour: 0.12,
            },
        ];
        for d in deltas {
            let tsv = d.to_tsv();
            assert_eq!(PlatformDelta::from_tsv(&tsv).unwrap(), d, "{tsv}");
        }
    }

    #[test]
    fn from_tsv_rejects_garbage() {
        for bad in [
            "",
            "host-join",
            "host-join\tx\t3",
            "host-join\t1\t-2",
            "clock-drift\t1",
            "price\tNaNo",
            "teleport\t1\t2",
            "host-join\t1\t2\t3",
        ] {
            assert!(
                matches!(PlatformDelta::from_tsv(bad), Err(DeltaError::Parse(_))),
                "{bad:?} should fail to parse"
            );
        }
    }

    #[test]
    fn validate_bounds() {
        let p = platform();
        let n = p.clusters().len() as u32;
        assert!(matches!(
            PlatformDelta::HostJoin {
                cluster: ClusterId(n),
                hosts: 1
            }
            .validate(&p),
            Err(DeltaError::UnknownCluster(_))
        ));
        let have = p.clusters()[0].hosts;
        assert!(matches!(
            PlatformDelta::HostLeave {
                cluster: ClusterId(0),
                hosts: have
            }
            .validate(&p),
            Err(DeltaError::HostUnderflow { .. })
        ));
        assert!(matches!(
            PlatformDelta::ClockDrift {
                cluster: ClusterId(0),
                clock_mhz: f64::NAN
            }
            .validate(&p),
            Err(DeltaError::BadClock(_))
        ));
        assert!(matches!(
            PlatformDelta::BandwidthDrift {
                cluster: ClusterId(0),
                factor: 0.0
            }
            .validate(&p),
            Err(DeltaError::BadFactor(_))
        ));
        assert!(matches!(
            PlatformDelta::PriceChange {
                dollars_per_hour: -1.0
            }
            .validate(&p),
            Err(DeltaError::BadPrice(_))
        ));
    }

    #[test]
    fn apply_mutates_platform_and_cost() {
        let mut p = platform();
        let mut cost = CostModel::default();
        let c = p.clusters()[4].id;
        let before = p.clusters()[4].hosts;
        PlatformDelta::HostJoin {
            cluster: c,
            hosts: 5,
        }
        .apply(&mut p, &mut cost)
        .unwrap();
        assert_eq!(p.clusters()[4].hosts, before + 5);
        PlatformDelta::ClockDrift {
            cluster: c,
            clock_mhz: 2000.0,
        }
        .apply(&mut p, &mut cost)
        .unwrap();
        assert_eq!(p.clusters()[4].clock_mhz, 2000.0);
        PlatformDelta::PriceChange {
            dollars_per_hour: 0.42,
        }
        .apply(&mut p, &mut cost)
        .unwrap();
        assert_eq!(cost.dollars_per_hour, 0.42);
    }

    #[test]
    fn bandwidth_drift_shrinks_bandwidth_and_grows_comm_factor() {
        let mut p = platform();
        let mut cost = CostModel::default();
        let a = p.clusters()[0].id;
        let b = p.clusters()[1].id;
        let bw0 = p.bandwidth_bps(a, b);
        let cf0 = p.comm_factor(a, b);
        PlatformDelta::BandwidthDrift {
            cluster: a,
            factor: 0.1,
        }
        .apply(&mut p, &mut cost)
        .unwrap();
        assert!(p.bandwidth_bps(a, b) < bw0);
        assert!(p.comm_factor(a, b) > cf0);
        // Intra-cluster stays at the reference regardless of drift.
        assert_eq!(p.comm_factor(a, a), 1.0);
        // Restoring the nominal factor restores the original numbers
        // bit-for-bit (absolute scale, not compounding).
        PlatformDelta::BandwidthDrift {
            cluster: a,
            factor: 1.0,
        }
        .apply(&mut p, &mut cost)
        .unwrap();
        assert_eq!(p.bandwidth_bps(a, b), bw0);
        assert_eq!(p.comm_factor(a, b), cf0);
    }
}
