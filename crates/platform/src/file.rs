//! The platform file: a declarative, versioned record of *how a
//! platform was generated*, realizable bit-identically on load.
//!
//! A deployment tree wants to pin the platform its models and delta
//! journals were built against, but serializing 40 clusters × hosts ×
//! clocks × a full topology would be a second source of truth that can
//! silently diverge from the generator. Instead the file records the
//! generator inputs — [`ResourceGenSpec`], [`TopologySpec`], seed —
//! plus a derived summary (cluster count, total hosts) that
//! [`PlatformFile::realize`] cross-checks, so a file edited by hand or
//! decoded against a drifted generator fails loudly instead of
//! describing a platform that no longer exists.
//!
//! Format (TSV, one directive per line; fields joined by a single
//! tab, shown here as `<TAB>`):
//!
//! ```text
//! rsg-platform<TAB>v1
//! gen<TAB>{clusters}<TAB>{year}<TAB>{target_hosts|-}
//! topology<TAB>{waxman|barabasi-albert|hierarchical}<TAB>{alpha}<TAB>{beta}<TAB>{ba_links}
//! seed<TAB>{seed}
//! summary<TAB>{clusters}<TAB>{total_hosts}
//! end
//! ```

use crate::generator::ResourceGenSpec;
use crate::platform::Platform;
use crate::topology::{EdgeModel, TopologySpec};
use std::fmt;

/// Header magic of a platform file.
pub const PLATFORM_FILE_MAGIC: &str = "rsg-platform";
const PLATFORM_FILE_VERSION: &str = "v1";

/// A decode failure, with the 1-based line it happened on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformFileError {
    /// 1-based line number of the offending directive.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for PlatformFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "platform file line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for PlatformFileError {}

fn err(line: usize, msg: impl Into<String>) -> PlatformFileError {
    PlatformFileError {
        line,
        msg: msg.into(),
    }
}

/// The generator inputs a platform file records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformFile {
    /// Cluster population parameters.
    pub gen: ResourceGenSpec,
    /// Topology parameters (`nodes` is ignored — [`Platform::generate`]
    /// always sets it to the cluster count).
    pub topo: TopologySpec,
    /// Shared generation seed.
    pub seed: u64,
}

impl PlatformFile {
    /// The deterministic serving-tier platform: the same 40-cluster /
    /// 1200-host universe `rsg serve`'s push tracker and the CLI
    /// negotiation path bind against. A deployment tree without a
    /// platform file is audited against this.
    pub fn serve_default() -> PlatformFile {
        PlatformFile {
            gen: ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            topo: TopologySpec::default(),
            seed: 11,
        }
    }

    /// Generates the platform this file describes. Deterministic: the
    /// same file always realizes the same platform.
    pub fn realize(&self) -> Platform {
        Platform::generate(self.gen, self.topo, self.seed)
    }

    /// Serializes the file, including the derived summary line.
    pub fn to_tsv(&self) -> String {
        let platform = self.realize();
        let target = match self.gen.target_hosts {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        let model = match self.topo.model {
            EdgeModel::Waxman => "waxman",
            EdgeModel::BarabasiAlbert => "barabasi-albert",
            EdgeModel::Hierarchical => "hierarchical",
        };
        format!(
            "{PLATFORM_FILE_MAGIC}\t{PLATFORM_FILE_VERSION}\n\
             gen\t{}\t{}\t{target}\n\
             topology\t{model}\t{}\t{}\t{}\n\
             seed\t{}\n\
             summary\t{}\t{}\n\
             end\n",
            self.gen.clusters,
            self.gen.year,
            self.topo.waxman_alpha,
            self.topo.waxman_beta,
            self.topo.ba_links,
            self.seed,
            platform.clusters().len(),
            platform.total_hosts(),
        )
    }

    /// Decodes and cross-checks a platform file. The `summary` line
    /// must match what the recorded generator inputs actually realize;
    /// a mismatch means the file was edited or the generator changed
    /// underneath it, and either way the platform it claims no longer
    /// exists.
    pub fn from_tsv(text: &str) -> Result<PlatformFile, PlatformFileError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        let (ln, header) = lines.next().ok_or_else(|| err(1, "empty file"))?;
        let mut h = header.split('\t');
        if h.next() != Some(PLATFORM_FILE_MAGIC) {
            return Err(err(ln, format!("bad magic (want {PLATFORM_FILE_MAGIC})")));
        }
        let version = h.next().unwrap_or("");
        if version != PLATFORM_FILE_VERSION {
            return Err(err(ln, format!("unsupported version '{version}'")));
        }

        let mut gen: Option<ResourceGenSpec> = None;
        let mut topo: Option<TopologySpec> = None;
        let mut seed: Option<u64> = None;
        let mut summary: Option<(usize, usize)> = None;
        let mut ended = false;
        for (ln, line) in lines {
            if line.is_empty() {
                continue;
            }
            if ended {
                return Err(err(ln, "content after end"));
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "gen" => {
                    if fields.len() != 4 {
                        return Err(err(ln, "gen needs clusters, year, target_hosts"));
                    }
                    let clusters: usize = fields[1]
                        .parse()
                        .map_err(|_| err(ln, "bad cluster count"))?;
                    if clusters == 0 {
                        return Err(err(ln, "cluster count must be positive"));
                    }
                    let year: u32 = fields[2].parse().map_err(|_| err(ln, "bad year"))?;
                    let target_hosts = match fields[3] {
                        "-" => None,
                        t => Some(t.parse().map_err(|_| err(ln, "bad target_hosts"))?),
                    };
                    gen = Some(ResourceGenSpec {
                        clusters,
                        year,
                        target_hosts,
                    });
                }
                "topology" => {
                    if fields.len() != 5 {
                        return Err(err(ln, "topology needs model, alpha, beta, ba_links"));
                    }
                    let model = match fields[1] {
                        "waxman" => EdgeModel::Waxman,
                        "barabasi-albert" => EdgeModel::BarabasiAlbert,
                        "hierarchical" => EdgeModel::Hierarchical,
                        other => return Err(err(ln, format!("unknown edge model '{other}'"))),
                    };
                    let waxman_alpha: f64 = fields[2].parse().map_err(|_| err(ln, "bad alpha"))?;
                    let waxman_beta: f64 = fields[3].parse().map_err(|_| err(ln, "bad beta"))?;
                    if !waxman_alpha.is_finite() || !waxman_beta.is_finite() {
                        return Err(err(ln, "non-finite topology parameter"));
                    }
                    let ba_links: usize = fields[4].parse().map_err(|_| err(ln, "bad ba_links"))?;
                    topo = Some(TopologySpec {
                        nodes: 0, // overwritten by Platform::generate
                        model,
                        waxman_alpha,
                        waxman_beta,
                        ba_links,
                    });
                }
                "seed" => {
                    if fields.len() != 2 {
                        return Err(err(ln, "seed needs one value"));
                    }
                    seed = Some(fields[1].parse().map_err(|_| err(ln, "bad seed"))?);
                }
                "summary" => {
                    if fields.len() != 3 {
                        return Err(err(ln, "summary needs clusters, total_hosts"));
                    }
                    let c: usize = fields[1]
                        .parse()
                        .map_err(|_| err(ln, "bad summary cluster count"))?;
                    let h: usize = fields[2]
                        .parse()
                        .map_err(|_| err(ln, "bad summary host count"))?;
                    summary = Some((c, h));
                }
                "end" => ended = true,
                other => return Err(err(ln, format!("unknown directive '{other}'"))),
            }
        }
        if !ended {
            return Err(err(text.lines().count(), "missing end directive"));
        }
        let file = PlatformFile {
            gen: gen.ok_or_else(|| err(1, "missing gen directive"))?,
            topo: topo.ok_or_else(|| err(1, "missing topology directive"))?,
            seed: seed.ok_or_else(|| err(1, "missing seed directive"))?,
        };
        let (sc, sh) = summary.ok_or_else(|| err(1, "missing summary directive"))?;
        let realized = file.realize();
        if realized.clusters().len() != sc || realized.total_hosts() != sh {
            return Err(err(
                1,
                format!(
                    "summary mismatch: file claims {sc} clusters / {sh} hosts, \
                     generator realizes {} / {}",
                    realized.clusters().len(),
                    realized.total_hosts()
                ),
            ));
        }
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_realizes_deterministically() {
        let file = PlatformFile::serve_default();
        let tsv = file.to_tsv();
        let back = PlatformFile::from_tsv(&tsv).unwrap();
        // `topo.nodes` is generator-owned and deliberately not
        // serialized; everything else must survive the round trip.
        assert_eq!(back.gen, file.gen);
        assert_eq!(back.seed, file.seed);
        assert_eq!(back.topo.model, file.topo.model);
        assert_eq!(back.topo.waxman_alpha, file.topo.waxman_alpha);
        let a = file.realize();
        let b = back.realize();
        assert_eq!(a.clusters(), b.clusters());
        assert_eq!(a.total_hosts(), 1200);
        assert_eq!(a.clusters().len(), 40);
    }

    #[test]
    fn none_target_round_trips() {
        let file = PlatformFile {
            gen: ResourceGenSpec {
                clusters: 12,
                year: 2006,
                target_hosts: None,
            },
            topo: TopologySpec::default(),
            seed: 7,
        };
        let back = PlatformFile::from_tsv(&file.to_tsv()).unwrap();
        assert_eq!(back.gen.target_hosts, None);
    }

    #[test]
    fn summary_mismatch_refused() {
        let mut tsv = PlatformFile::serve_default().to_tsv();
        tsv = tsv.replace("summary\t40\t1200", "summary\t40\t1300");
        let e = PlatformFile::from_tsv(&tsv).unwrap_err();
        assert!(e.msg.contains("summary mismatch"), "{e}");
    }

    #[test]
    fn decode_errors_carry_lines() {
        assert!(PlatformFile::from_tsv("nope\tv1\n").is_err());
        let e = PlatformFile::from_tsv("rsg-platform\tv1\ngen\tx\n").unwrap_err();
        assert_eq!(e.line, 2);
        let missing = "rsg-platform\tv1\nseed\t1\nend\n";
        assert!(PlatformFile::from_tsv(missing).is_err());
    }
}
