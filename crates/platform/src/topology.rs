//! BRITE-style network topology generation (Section III.2.2).
//!
//! The paper uses BRITE to connect the generated clusters: nodes placed
//! in a plane, edges created either by the Waxman probability model or by
//! Barabási–Albert preferential attachment (the power-law option), with
//! an optional two-level hierarchy (AS level + router level). Links get
//! capacities from current technology classes (OC3 … 10 G).
//!
//! For scheduling we need, per cluster pair, an *achievable bandwidth*
//! and a latency. Following common practice for capacity-planning
//! models, we use the widest-path (maximum-bottleneck) bandwidth, which
//! equals the minimum link capacity along the path between the two nodes
//! in a maximum spanning tree of the link-capacity graph; latency is
//! accumulated along the same tree path. (BRITE itself does not model
//! contention; Section III.2.2 argues the reference-bandwidth/CCR
//! parameterization subsumes contention.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Link capacity classes (bits per second), Section II/III: OC3, OC12,
/// OC48, 1 Gb, 10 Gb.
pub const LINK_CLASSES_BPS: [f64; 5] = [155.52e6, 622.08e6, 2.488e9, 1e9, 10e9];

/// Edge creation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeModel {
    /// Waxman: connect u,v with probability `a·exp(−d(u,v)/(b·L))`.
    Waxman,
    /// Barabási–Albert preferential attachment with `m` links per new
    /// node (the power-law degree option).
    BarabasiAlbert,
    /// Two-level top-down hierarchy: a small Waxman AS-level graph, each
    /// AS holding a Waxman router-level subgraph.
    Hierarchical,
}

/// Topology generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    /// Number of nodes (one per cluster when merged into a platform).
    pub nodes: usize,
    /// Edge creation model.
    pub model: EdgeModel,
    /// Waxman `a` (edge probability scale), typical 0.15–0.3.
    pub waxman_alpha: f64,
    /// Waxman `b` (distance decay), typical 0.1–0.2.
    pub waxman_beta: f64,
    /// Links per node for Barabási–Albert.
    pub ba_links: usize,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            nodes: 1000,
            model: EdgeModel::Waxman,
            waxman_alpha: 0.25,
            waxman_beta: 0.15,
            ba_links: 2,
        }
    }
}

/// A generated topology with per-cluster-pair bandwidth/latency oracles.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    /// Parent pointers of the maximum-capacity spanning tree, rooted at 0.
    tree_parent: Vec<u32>,
    /// Capacity of the tree edge to the parent (bps); root entry unused.
    tree_cap: Vec<f64>,
    /// Latency of the tree edge to the parent (ms); root entry unused.
    tree_lat: Vec<f64>,
    /// Depth of each node in the tree.
    depth: Vec<u32>,
    /// Total number of raw generated links (before tree reduction).
    raw_links: usize,
}

impl TopologySpec {
    /// Generates a topology. Deterministic for a `(spec, seed)` pair.
    pub fn generate(&self, seed: u64) -> Topology {
        assert!(self.nodes >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.nodes;

        // Node placement in the unit square (used by Waxman distance and
        // latency assignment).
        let pos: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();

        // Raw edge list (u, v, capacity, latency_ms).
        let mut edges: Vec<(u32, u32, f64, f64)> = Vec::new();
        match self.model {
            EdgeModel::Waxman => {
                self.waxman_edges(&pos, 0..n, &mut edges, &mut rng);
            }
            EdgeModel::BarabasiAlbert => {
                self.ba_edges(&pos, &mut edges, &mut rng);
            }
            EdgeModel::Hierarchical => {
                // Partition nodes into sqrt(n) ASes; Waxman within each
                // AS; one representative per AS joined by a Waxman AS
                // graph with high-capacity links.
                let as_count = ((n as f64).sqrt().ceil() as usize).max(1);
                let per = n.div_ceil(as_count);
                let mut reps = Vec::new();
                for a in 0..as_count {
                    let lo = a * per;
                    let hi = ((a + 1) * per).min(n);
                    if lo >= hi {
                        break;
                    }
                    reps.push(lo);
                    self.waxman_edges(&pos, lo..hi, &mut edges, &mut rng);
                }
                // AS backbone: ring + random chords of top capacity.
                for w in 0..reps.len() {
                    let u = reps[w] as u32;
                    let v = reps[(w + 1) % reps.len()] as u32;
                    if u != v {
                        let lat = dist(&pos, u as usize, v as usize) * 30.0;
                        edges.push((u, v, 10e9, lat));
                    }
                }
            }
        }

        // Guarantee connectivity: chain any component gaps along node
        // order with a modest link.
        let raw_links = edges.len();
        let tree = maximum_spanning_tree(n, &mut edges, &pos);
        Topology {
            nodes: n,
            tree_parent: tree.0,
            tree_cap: tree.1,
            tree_lat: tree.2,
            depth: tree.3,
            raw_links,
        }
    }

    fn waxman_edges<R: Rng>(
        &self,
        pos: &[(f64, f64)],
        range: std::ops::Range<usize>,
        edges: &mut Vec<(u32, u32, f64, f64)>,
        rng: &mut R,
    ) {
        let l = std::f64::consts::SQRT_2; // max distance in unit square
        let nodes: Vec<usize> = range.collect();
        for (i, &u) in nodes.iter().enumerate() {
            for &v in nodes.iter().skip(i + 1) {
                let d = dist(pos, u, v);
                let p = self.waxman_alpha * (-d / (self.waxman_beta * l)).exp();
                if rng.gen_range(0.0..1.0) < p {
                    edges.push((u as u32, v as u32, sample_capacity(rng), d * 30.0));
                }
            }
        }
    }

    fn ba_edges<R: Rng>(
        &self,
        pos: &[(f64, f64)],
        edges: &mut Vec<(u32, u32, f64, f64)>,
        rng: &mut R,
    ) {
        let n = pos.len();
        let m = self.ba_links.max(1);
        // Degree-proportional target sampling via an endpoint pool.
        let mut pool: Vec<u32> = Vec::with_capacity(n * m * 2);
        pool.push(0);
        for v in 1..n {
            let links = m.min(v);
            let mut targets: Vec<u32> = Vec::with_capacity(links);
            while targets.len() < links {
                let t = pool[rng.gen_range(0..pool.len())];
                if t != v as u32 && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                let d = dist(pos, v, t as usize);
                edges.push((v as u32, t, sample_capacity(rng), d * 30.0));
                pool.push(t);
                pool.push(v as u32);
            }
        }
    }
}

fn dist(pos: &[(f64, f64)], u: usize, v: usize) -> f64 {
    let (x1, y1) = pos[u];
    let (x2, y2) = pos[v];
    ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
}

/// Capacities skewed toward the faster classes (backbone-ish mix).
fn sample_capacity<R: Rng>(rng: &mut R) -> f64 {
    match rng.gen_range(0.0..1.0) {
        x if x < 0.10 => LINK_CLASSES_BPS[0], // OC3
        x if x < 0.25 => LINK_CLASSES_BPS[1], // OC12
        x if x < 0.45 => LINK_CLASSES_BPS[3], // 1G
        x if x < 0.75 => LINK_CLASSES_BPS[2], // OC48
        _ => LINK_CLASSES_BPS[4],             // 10G
    }
}

/// Kruskal maximum spanning tree over the capacity graph; pads with
/// fallback links so the result always spans all nodes. Returns parent /
/// capacity-to-parent / latency-to-parent / depth arrays rooted at 0.
fn maximum_spanning_tree(
    n: usize,
    edges: &mut [(u32, u32, f64, f64)],
    pos: &[(f64, f64)],
) -> (Vec<u32>, Vec<f64>, Vec<f64>, Vec<u32>) {
    edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    let mut dsu: Vec<u32> = (0..n as u32).collect();
    fn find(dsu: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while dsu[r as usize] != r {
            dsu[r as usize] = dsu[dsu[r as usize] as usize];
            r = dsu[r as usize];
        }
        r
    }
    let mut adj: Vec<Vec<(u32, f64, f64)>> = vec![Vec::new(); n];
    let mut joined = 1usize;
    for &(u, v, cap, lat) in edges.iter() {
        let (ru, rv) = (find(&mut dsu, u), find(&mut dsu, v));
        if ru != rv {
            dsu[ru as usize] = rv;
            adj[u as usize].push((v, cap, lat));
            adj[v as usize].push((u, cap, lat));
            joined += 1;
            if joined == n {
                break;
            }
        }
    }
    // Connect any remaining components with fallback OC3 links in node
    // order (keeps the oracle total even for sparse Waxman draws).
    for v in 1..n as u32 {
        if find(&mut dsu, v) != find(&mut dsu, 0) {
            let r = find(&mut dsu, v);
            let rr = find(&mut dsu, 0);
            dsu[r as usize] = rr;
            let lat = dist(pos, 0, v as usize) * 30.0;
            adj[0].push((v, LINK_CLASSES_BPS[0], lat));
            adj[v as usize].push((0, LINK_CLASSES_BPS[0], lat));
        }
    }

    // BFS from node 0 to build parent arrays.
    let mut parent = vec![u32::MAX; n];
    let mut cap_to_parent = vec![f64::INFINITY; n];
    let mut lat_to_parent = vec![0.0f64; n];
    let mut depth = vec![0u32; n];
    let mut queue = vec![0u32];
    parent[0] = 0;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &(v, cap, lat) in &adj[u as usize] {
            if parent[v as usize] == u32::MAX {
                parent[v as usize] = u;
                cap_to_parent[v as usize] = cap;
                lat_to_parent[v as usize] = lat;
                depth[v as usize] = depth[u as usize] + 1;
                queue.push(v);
            }
        }
    }
    debug_assert_eq!(queue.len(), n, "spanning tree must reach every node");
    (parent, cap_to_parent, lat_to_parent, depth)
}

impl Topology {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Number of links generated before the spanning-tree reduction.
    pub fn raw_link_count(&self) -> usize {
        self.raw_links
    }

    /// Achievable (bottleneck) bandwidth between two nodes, bps.
    /// `u == v` returns the intra-cluster reference bandwidth.
    pub fn bandwidth_bps(&self, u: usize, v: usize) -> f64 {
        if u == v {
            return crate::REFERENCE_BANDWIDTH_BPS;
        }
        self.path_fold(u, v, f64::INFINITY, |acc, cap, _| acc.min(cap))
            .min(crate::REFERENCE_BANDWIDTH_BPS)
    }

    /// Accumulated latency between two nodes, milliseconds.
    pub fn latency_ms(&self, u: usize, v: usize) -> f64 {
        if u == v {
            return 0.05; // LAN
        }
        self.path_fold(u, v, 0.0, |acc, _, lat| acc + lat)
    }

    /// Folds `f(acc, capacity, latency)` over the tree path `u..v`.
    fn path_fold(&self, u: usize, v: usize, init: f64, f: impl Fn(f64, f64, f64) -> f64) -> f64 {
        let mut a = u;
        let mut b = v;
        let mut acc = init;
        while self.depth[a] > self.depth[b] {
            acc = f(acc, self.tree_cap[a], self.tree_lat[a]);
            a = self.tree_parent[a] as usize;
        }
        while self.depth[b] > self.depth[a] {
            acc = f(acc, self.tree_cap[b], self.tree_lat[b]);
            b = self.tree_parent[b] as usize;
        }
        while a != b {
            acc = f(acc, self.tree_cap[a], self.tree_lat[a]);
            acc = f(acc, self.tree_cap[b], self.tree_lat[b]);
            a = self.tree_parent[a] as usize;
            b = self.tree_parent[b] as usize;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_for_all_models() {
        for model in [
            EdgeModel::Waxman,
            EdgeModel::BarabasiAlbert,
            EdgeModel::Hierarchical,
        ] {
            let t = TopologySpec {
                nodes: 200,
                model,
                ..Default::default()
            }
            .generate(1);
            for v in [1usize, 50, 199] {
                assert!(t.bandwidth_bps(0, v) > 0.0, "{model:?}");
                assert!(t.bandwidth_bps(0, v).is_finite(), "{model:?}");
            }
        }
    }

    #[test]
    fn bandwidth_symmetric() {
        let t = TopologySpec {
            nodes: 100,
            ..Default::default()
        }
        .generate(3);
        for (u, v) in [(0usize, 99usize), (10, 20), (5, 55)] {
            assert_eq!(t.bandwidth_bps(u, v), t.bandwidth_bps(v, u));
            assert!((t.latency_ms(u, v) - t.latency_ms(v, u)).abs() < 1e-12);
        }
    }

    #[test]
    fn self_bandwidth_is_reference() {
        let t = TopologySpec::default().generate(7);
        assert_eq!(t.bandwidth_bps(4, 4), crate::REFERENCE_BANDWIDTH_BPS);
        assert!(t.latency_ms(4, 4) < 1.0);
    }

    #[test]
    fn capacities_are_valid_classes() {
        let t = TopologySpec {
            nodes: 50,
            ..Default::default()
        }
        .generate(9);
        for v in 1..50 {
            let c = t.tree_cap[v];
            assert!(
                LINK_CLASSES_BPS.contains(&c),
                "capacity {c} is not a link class"
            );
        }
    }

    #[test]
    fn latency_triangle_plausible() {
        // Tree-path latency: lat(u,w) <= lat(u,v) + lat(v,w) holds with
        // equality when v is on the path; just sanity check positivity
        // and magnitude (< 200 ms for a unit-square WAN).
        let t = TopologySpec {
            nodes: 300,
            ..Default::default()
        }
        .generate(11);
        let l = t.latency_ms(0, 299);
        assert!(l > 0.0 && l < 2000.0, "latency {l}");
    }

    #[test]
    fn deterministic() {
        let spec = TopologySpec {
            nodes: 64,
            ..Default::default()
        };
        let a = spec.generate(5);
        let b = spec.generate(5);
        assert_eq!(a.bandwidth_bps(3, 60), b.bandwidth_bps(3, 60));
    }

    #[test]
    fn single_node_topology() {
        let t = TopologySpec {
            nodes: 1,
            ..Default::default()
        }
        .generate(0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.bandwidth_bps(0, 0), crate::REFERENCE_BANDWIDTH_BPS);
    }
}
