//! Clusters — the building blocks of LSDEs (Section III.2.1).
//!
//! Following the paper's compute-resource model, a cluster is a set of
//! hosts with (nearly) identical characteristics: the same architecture,
//! clock rate and memory. Heterogeneity in the LSDE arises *between*
//! clusters.

use std::fmt;

/// Identifier of a cluster within one [`Platform`](crate::Platform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Processor architecture of a cluster's hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// AMD Opteron.
    Opteron,
    /// Intel Xeon.
    Xeon,
    /// Intel Pentium-class.
    Pentium,
}

impl Arch {
    /// Canonical string as used in resource descriptions ("OPTERON",
    /// "XEON", "INTEL").
    pub fn as_str(self) -> &'static str {
        match self {
            Arch::Opteron => "OPTERON",
            Arch::Xeon => "XEON",
            Arch::Pentium => "INTEL",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One cluster of homogeneous hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Identifier within the platform.
    pub id: ClusterId,
    /// Number of hosts.
    pub hosts: u32,
    /// Per-host clock rate, MHz.
    pub clock_mhz: f64,
    /// Per-host memory, MB.
    pub memory_mb: u32,
    /// Host architecture.
    pub arch: Arch,
    /// Deployment year (drives the clock-rate distribution in the
    /// generator).
    pub year: u32,
}

impl Cluster {
    /// Aggregate compute capacity of the cluster in GHz (hosts × clock).
    pub fn capacity_ghz(&self) -> f64 {
        self.hosts as f64 * self.clock_mhz / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity() {
        let c = Cluster {
            id: ClusterId(0),
            hosts: 10,
            clock_mhz: 2500.0,
            memory_mb: 2048,
            arch: Arch::Xeon,
            year: 2006,
        };
        assert!((c.capacity_ghz() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn arch_strings() {
        assert_eq!(Arch::Opteron.as_str(), "OPTERON");
        assert_eq!(Arch::Xeon.to_string(), "XEON");
        assert_eq!(Arch::Pentium.as_str(), "INTEL");
    }
}
