//! Resource collections (Chapter V).
//!
//! A *resource collection* (RC) is the set of hosts a resource-selection
//! system hands to the application; the paper characterizes an RC by its
//! size, its clock-rate heterogeneity, and the network-connectivity
//! heterogeneity among its hosts (Section V.1). This module carries that
//! triple in a form the scheduling heuristics can query in O(1) per
//! task-host decision.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Communication-cost scaling between RC hosts.
///
/// Edge costs in a DAG are seconds at the reference bandwidth; placing
/// parent and child on hosts `i ≠ j` multiplies the edge cost by
/// `comm_factor(i, j) ≥ 1`. Same-host placement always costs zero.
#[derive(Debug, Clone, PartialEq)]
pub enum CommModel {
    /// All pairs communicate at the reference bandwidth (homogeneous
    /// connectivity, the Chapter V baseline).
    Uniform,
    /// Per-host slowdown factors; a pair is as slow as its slower
    /// endpoint: `factor(i,j) = max(f_i, f_j)`.
    PerHostFactor(Vec<f64>),
    /// Cluster-structured connectivity: hosts belong to clusters, and a
    /// dense `k×k` factor matrix gives the inter-cluster slowdown
    /// (diagonal 1.0). Built from a [`Platform`](crate::Platform).
    Clustered {
        /// Cluster index of each host (into the factor matrix).
        host_cluster: Vec<u32>,
        /// Number of distinct clusters `k`.
        k: usize,
        /// Row-major `k×k` slowdown factors, ≥ 1, diagonal 1.
        factors: Vec<f64>,
    },
}

/// Struct-of-arrays partition of an RC's hosts into *clock classes*:
/// groups of hosts with bit-identical clock rates, classes in
/// first-appearance order, members ascending by host index. Because
/// task execution time is `comp / (clock / refclk)`, hosts of one clock
/// class have bit-identical speed factors and execution times under any
/// DAG reference clock — which is what lets the placement kernel reason
/// per class instead of per host.
///
/// The partition is *prefix-stable*: restricting to the first `p` hosts
/// keeps every class index and every member's rank unchanged (members
/// are ascending, so a prefix of the RC sees a prefix of each class's
/// member list, and classes keep their first-appearance order).
#[derive(Debug, Default)]
pub struct ClockClasses {
    /// Class index per host.
    class_of: Vec<u32>,
    /// Rank of each host within its class's ascending member list.
    rank_in_class: Vec<u32>,
    /// Member host indices per class, ascending.
    members: Vec<Vec<u32>>,
}

impl ClockClasses {
    fn build(clocks: &[f64]) -> ClockClasses {
        let mut keys: Vec<u64> = Vec::new();
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut class_of = Vec::with_capacity(clocks.len());
        let mut rank_in_class = Vec::with_capacity(clocks.len());
        for (h, c) in clocks.iter().enumerate() {
            let bits = c.to_bits();
            let class = match keys.iter().position(|&k| k == bits) {
                Some(c) => c,
                None => {
                    keys.push(bits);
                    members.push(Vec::new());
                    keys.len() - 1
                }
            };
            class_of.push(class as u32);
            rank_in_class.push(members[class].len() as u32);
            members[class].push(h as u32);
        }
        ClockClasses {
            class_of,
            rank_in_class,
            members,
        }
    }

    /// Number of distinct clock classes over the whole RC.
    #[inline]
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// `(class, rank-in-class)` of a host. The rank equals the host's
    /// leaf position in any prefix that contains it.
    #[inline]
    pub fn slot(&self, host: usize) -> (u32, u32) {
        (self.class_of[host], self.rank_in_class[host])
    }

    /// Number of classes with at least one member among the first
    /// `hosts` hosts. Classes are in first-appearance order, so these
    /// are exactly classes `0..classes_in_prefix(hosts)`.
    pub fn classes_in_prefix(&self, hosts: usize) -> usize {
        self.members.partition_point(|m| (m[0] as usize) < hosts)
    }

    /// Members of `class` among the first `hosts` hosts (ascending).
    pub fn members_in_prefix(&self, class: usize, hosts: usize) -> &[u32] {
        let m = &self.members[class];
        &m[..m.partition_point(|&h| (h as usize) < hosts)]
    }
}

/// Lazily-built derived views of an RC, shared by clones. The `uid`
/// identifies the (immutable) clock vector: schedulers key their
/// thread-local scratch caches on it. Mutating constructors
/// ([`ResourceCollection::with_bandwidth_heterogeneity`]) only touch the
/// communication model, which none of the cached views depend on.
#[derive(Debug)]
struct RcCaches {
    uid: u64,
    classes: OnceLock<Arc<ClockClasses>>,
    /// `(dag_ref_clock_mhz bits, speed factors)` pairs.
    speeds: Mutex<Vec<(u64, Arc<[f64]>)>>,
}

fn fresh_caches() -> Arc<RcCaches> {
    static NEXT_UID: AtomicU64 = AtomicU64::new(1);
    Arc::new(RcCaches {
        uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        classes: OnceLock::new(),
        speeds: Mutex::new(Vec::new()),
    })
}

/// A set of hosts on which an application can be scheduled.
#[derive(Clone)]
pub struct ResourceCollection {
    clocks_mhz: Vec<f64>,
    comm: CommModel,
    caches: Arc<RcCaches>,
}

impl std::fmt::Debug for ResourceCollection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceCollection")
            .field("clocks_mhz", &self.clocks_mhz)
            .field("comm", &self.comm)
            .finish()
    }
}

impl PartialEq for ResourceCollection {
    fn eq(&self, other: &Self) -> bool {
        self.clocks_mhz == other.clocks_mhz && self.comm == other.comm
    }
}

impl ResourceCollection {
    /// Builds an RC from explicit clocks and a communication model.
    pub fn new(clocks_mhz: Vec<f64>, comm: CommModel) -> ResourceCollection {
        assert!(!clocks_mhz.is_empty(), "an RC needs at least one host");
        assert!(
            clocks_mhz.iter().all(|c| c.is_finite() && *c > 0.0),
            "clock rates must be positive"
        );
        if let CommModel::PerHostFactor(f) = &comm {
            assert_eq!(f.len(), clocks_mhz.len());
        }
        if let CommModel::Clustered {
            host_cluster,
            k,
            factors,
        } = &comm
        {
            assert_eq!(host_cluster.len(), clocks_mhz.len());
            assert_eq!(factors.len(), k * k);
        }
        ResourceCollection {
            clocks_mhz,
            comm,
            caches: fresh_caches(),
        }
    }

    /// Stable identity of this RC's clock vector. Clones share the uid
    /// (clock vectors are immutable after construction); every
    /// constructor that builds a new clock vector mints a new one.
    /// Schedulers key thread-local scratch caches on `(uid, …)`.
    #[inline]
    pub fn uid(&self) -> u64 {
        self.caches.uid
    }

    /// The clock-class partition (see [`ClockClasses`]), built lazily
    /// once per RC and shared by clones.
    pub fn clock_classes(&self) -> Arc<ClockClasses> {
        self.caches
            .classes
            .get_or_init(|| Arc::new(ClockClasses::build(&self.clocks_mhz)))
            .clone()
    }

    /// Flat speed factors of every host relative to a DAG reference
    /// clock — `speed_factor(h, refclk)` for all `h` as one contiguous
    /// array, cached per reference clock and shared by clones. The
    /// values are bit-identical to per-host [`speed_factor`] calls.
    ///
    /// [`speed_factor`]: ResourceCollection::speed_factor
    pub fn speed_factors(&self, dag_ref_clock_mhz: f64) -> Arc<[f64]> {
        let key = dag_ref_clock_mhz.to_bits();
        let mut cache = self.caches.speeds.lock().unwrap();
        if let Some((_, v)) = cache.iter().find(|(k, _)| *k == key) {
            return v.clone();
        }
        let v: Arc<[f64]> = self
            .clocks_mhz
            .iter()
            .map(|c| c / dag_ref_clock_mhz)
            .collect();
        // A given RC only ever meets a handful of reference clocks;
        // the bound is a leak guard, not a working-set limit.
        if cache.len() >= 16 {
            cache.clear();
        }
        cache.push((key, v.clone()));
        v
    }

    /// A homogeneous RC: `size` hosts at `clock_mhz`, homogeneous
    /// connectivity — the baseline of Section V.2.
    pub fn homogeneous(size: usize, clock_mhz: f64) -> ResourceCollection {
        ResourceCollection::new(vec![clock_mhz; size], CommModel::Uniform)
    }

    /// A clock-heterogeneous RC (Section V.4): clocks drawn uniformly in
    /// `[clock·(1−h), clock]`, so `h = 0` is homogeneous and `h = 0.3`
    /// means hosts as slow as 70% of the nominal clock. Deterministic
    /// per `(size, h, seed)`, and *prefix-stable*: the first `k` hosts of
    /// an RC of size `s₁ > k` equal the hosts of a size-`k` RC built with
    /// the same seed, so turnaround-vs-size curves vary only the size.
    pub fn heterogeneous(
        size: usize,
        clock_mhz: f64,
        heterogeneity: f64,
        seed: u64,
    ) -> ResourceCollection {
        assert!(
            (0.0..1.0).contains(&heterogeneity),
            "heterogeneity must be in [0,1)"
        );
        if heterogeneity == 0.0 {
            return Self::homogeneous(size, clock_mhz);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let lo = clock_mhz * (1.0 - heterogeneity);
        let clocks = (0..size).map(|_| rng.gen_range(lo..=clock_mhz)).collect();
        ResourceCollection::new(clocks, CommModel::Uniform)
    }

    /// Adds bandwidth heterogeneity (Section V.5): each host gets a link
    /// slowdown factor drawn uniformly in `[1, 1/(1−h)]`.
    pub fn with_bandwidth_heterogeneity(mut self, heterogeneity: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&heterogeneity),
            "bandwidth heterogeneity must be in [0,1)"
        );
        if heterogeneity == 0.0 {
            self.comm = CommModel::Uniform;
            return self;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let hi = 1.0 / (1.0 - heterogeneity);
        let f = (0..self.len()).map(|_| rng.gen_range(1.0..=hi)).collect();
        self.comm = CommModel::PerHostFactor(f);
        self
    }

    /// Space-sharing model of Section III.2.3: "for a processor with
    /// clock rate of 3.0 GHz that is being space shared by five virtual
    /// processors, we can model each virtual processor as having clock
    /// rate of 0.6 GHz and any application using that virtual processor
    /// has dedicated access". Returns an RC with `ways` virtual
    /// processors per physical host, each at `clock / ways`.
    pub fn space_shared(&self, ways: u32) -> ResourceCollection {
        assert!(ways >= 1, "space sharing needs at least one way");
        let mut clocks = Vec::with_capacity(self.len() * ways as usize);
        for &c in &self.clocks_mhz {
            for _ in 0..ways {
                clocks.push(c / ways as f64);
            }
        }
        let comm = match &self.comm {
            CommModel::Uniform => CommModel::Uniform,
            CommModel::PerHostFactor(f) => {
                let mut out = Vec::with_capacity(f.len() * ways as usize);
                for &x in f {
                    for _ in 0..ways {
                        out.push(x);
                    }
                }
                CommModel::PerHostFactor(out)
            }
            CommModel::Clustered {
                host_cluster,
                k,
                factors,
            } => {
                let mut out = Vec::with_capacity(host_cluster.len() * ways as usize);
                for &c in host_cluster {
                    for _ in 0..ways {
                        out.push(c);
                    }
                }
                CommModel::Clustered {
                    host_cluster: out,
                    k: *k,
                    factors: factors.clone(),
                }
            }
        };
        ResourceCollection::new(clocks, comm)
    }

    /// Number of hosts (the RC size).
    #[inline]
    pub fn len(&self) -> usize {
        self.clocks_mhz.len()
    }

    /// True when the RC has no hosts (never for constructed RCs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clocks_mhz.is_empty()
    }

    /// Clock rate of host `i` in MHz.
    #[inline]
    pub fn clock_mhz(&self, i: usize) -> f64 {
        self.clocks_mhz[i]
    }

    /// All clock rates.
    #[inline]
    pub fn clocks(&self) -> &[f64] {
        &self.clocks_mhz
    }

    /// Fastest clock in the RC, MHz.
    pub fn fastest_clock_mhz(&self) -> f64 {
        self.clocks_mhz.iter().copied().fold(0.0, f64::max)
    }

    /// Slowest clock in the RC, MHz.
    pub fn slowest_clock_mhz(&self) -> f64 {
        self.clocks_mhz
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Measured clock heterogeneity `1 − min/max`.
    pub fn clock_heterogeneity(&self) -> f64 {
        1.0 - self.slowest_clock_mhz() / self.fastest_clock_mhz()
    }

    /// Execution-speed factor of host `i` relative to a DAG's reference
    /// clock: task time on the host = `w_v / speed_factor`.
    #[inline]
    pub fn speed_factor(&self, i: usize, dag_ref_clock_mhz: f64) -> f64 {
        self.clocks_mhz[i] / dag_ref_clock_mhz
    }

    /// Communication slowdown factor between hosts `i` and `j`
    /// (`i == j` → 0: co-located tasks exchange data for free).
    #[inline]
    pub fn comm_factor(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        match &self.comm {
            CommModel::Uniform => 1.0,
            CommModel::PerHostFactor(f) => f[i].max(f[j]),
            CommModel::Clustered {
                host_cluster,
                k,
                factors,
            } => {
                let (a, b) = (host_cluster[i] as usize, host_cluster[j] as usize);
                factors[a * k + b]
            }
        }
    }

    /// The communication model.
    pub fn comm_model(&self) -> &CommModel {
        &self.comm
    }

    /// Extends the RC with late-joining hosts at the given clocks
    /// (host churn: machines appearing mid-run, Section II.4.1's vgMON
    /// scenario). Existing hosts keep their indices; joined hosts are
    /// appended in order and communicate at the reference bandwidth —
    /// factor 1.0 under [`CommModel::PerHostFactor`], and a fresh
    /// singleton cluster with unit rows under [`CommModel::Clustered`].
    pub fn extended(&self, extra_clocks_mhz: &[f64]) -> ResourceCollection {
        if extra_clocks_mhz.is_empty() {
            return self.clone();
        }
        let mut clocks = self.clocks_mhz.clone();
        clocks.extend_from_slice(extra_clocks_mhz);
        let m = extra_clocks_mhz.len();
        let comm = match &self.comm {
            CommModel::Uniform => CommModel::Uniform,
            CommModel::PerHostFactor(f) => {
                let mut f = f.clone();
                f.extend(std::iter::repeat_n(1.0, m));
                CommModel::PerHostFactor(f)
            }
            CommModel::Clustered {
                host_cluster,
                k,
                factors,
            } => {
                // One new cluster holds every joined host; its rows and
                // columns in the factor matrix are all 1.0.
                let nk = k + 1;
                let mut nf = vec![1.0f64; nk * nk];
                for i in 0..*k {
                    for j in 0..*k {
                        nf[i * nk + j] = factors[i * k + j];
                    }
                }
                let mut hc = host_cluster.clone();
                hc.extend(std::iter::repeat_n(*k as u32, m));
                CommModel::Clustered {
                    host_cluster: hc,
                    k: nk,
                    factors: nf,
                }
            }
        };
        ResourceCollection::new(clocks, comm)
    }

    /// The first `k` hosts as a new RC (used to sweep RC sizes over one
    /// consistent host family). `k` is clamped to the RC size.
    pub fn prefix(&self, k: usize) -> ResourceCollection {
        let k = k.clamp(1, self.len());
        let clocks = self.clocks_mhz[..k].to_vec();
        let comm = match &self.comm {
            CommModel::Uniform => CommModel::Uniform,
            CommModel::PerHostFactor(f) => CommModel::PerHostFactor(f[..k].to_vec()),
            CommModel::Clustered {
                host_cluster,
                k: nk,
                factors,
            } => CommModel::Clustered {
                host_cluster: host_cluster[..k].to_vec(),
                k: *nk,
                factors: factors.clone(),
            },
        };
        ResourceCollection::new(clocks, comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_appends_hosts_preserving_prefix() {
        let base = ResourceCollection::heterogeneous(6, 3000.0, 0.3, 5)
            .with_bandwidth_heterogeneity(0.4, 9);
        let ext = base.extended(&[2000.0, 2500.0]);
        assert_eq!(ext.len(), 8);
        for h in 0..6 {
            assert_eq!(ext.clock_mhz(h), base.clock_mhz(h));
        }
        assert_eq!(ext.clock_mhz(6), 2000.0);
        assert_eq!(ext.clock_mhz(7), 2500.0);
        // Prefix pairs keep their factors; joined hosts talk at the
        // reference bandwidth (their per-host factor is 1, and factors
        // combine by max of endpoints).
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(ext.comm_factor(i, j), base.comm_factor(i, j));
            }
        }
        assert_eq!(ext.comm_factor(6, 7), 1.0);
        // Empty extension is identity.
        assert_eq!(base.extended(&[]), base);
    }

    #[test]
    fn extended_clustered_adds_unit_cluster() {
        let rc = ResourceCollection::new(
            vec![1000.0, 2000.0],
            CommModel::Clustered {
                host_cluster: vec![0, 1],
                k: 2,
                factors: vec![1.0, 3.0, 3.0, 1.0],
            },
        );
        let ext = rc.extended(&[1500.0]);
        assert_eq!(ext.comm_factor(0, 1), 3.0);
        assert_eq!(ext.comm_factor(0, 2), 1.0);
        assert_eq!(ext.comm_factor(1, 2), 1.0);
        assert_eq!(ext.comm_factor(2, 2), 0.0);
    }

    #[test]
    fn homogeneous_basics() {
        let rc = ResourceCollection::homogeneous(8, 2800.0);
        assert_eq!(rc.len(), 8);
        assert_eq!(rc.clock_heterogeneity(), 0.0);
        assert_eq!(rc.comm_factor(0, 0), 0.0);
        assert_eq!(rc.comm_factor(0, 1), 1.0);
        assert!((rc.speed_factor(3, 1400.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_range_and_determinism() {
        let rc = ResourceCollection::heterogeneous(100, 3000.0, 0.3, 7);
        assert!(rc.fastest_clock_mhz() <= 3000.0);
        assert!(rc.slowest_clock_mhz() >= 2100.0 - 1e-9);
        assert!(rc.clock_heterogeneity() <= 0.3 + 1e-9);
        let rc2 = ResourceCollection::heterogeneous(100, 3000.0, 0.3, 7);
        assert_eq!(rc, rc2);
    }

    #[test]
    fn heterogeneous_prefix_stable() {
        let big = ResourceCollection::heterogeneous(50, 3000.0, 0.4, 3);
        let small = ResourceCollection::heterogeneous(20, 3000.0, 0.4, 3);
        assert_eq!(&big.clocks()[..20], small.clocks());
        assert_eq!(big.prefix(20), small);
    }

    #[test]
    fn zero_heterogeneity_is_homogeneous() {
        let rc = ResourceCollection::heterogeneous(5, 2000.0, 0.0, 1);
        assert_eq!(rc, ResourceCollection::homogeneous(5, 2000.0));
    }

    #[test]
    fn bandwidth_heterogeneity_factors() {
        let rc = ResourceCollection::homogeneous(10, 2800.0).with_bandwidth_heterogeneity(0.5, 11);
        for i in 0..10 {
            for j in 0..10 {
                let f = rc.comm_factor(i, j);
                if i == j {
                    assert_eq!(f, 0.0);
                } else {
                    assert!((1.0..=2.0 + 1e-9).contains(&f), "factor {f}");
                    assert_eq!(f, rc.comm_factor(j, i));
                }
            }
        }
    }

    #[test]
    fn clustered_comm_lookup() {
        let rc = ResourceCollection::new(
            vec![2000.0, 2000.0, 3000.0],
            CommModel::Clustered {
                host_cluster: vec![0, 0, 1],
                k: 2,
                factors: vec![1.0, 4.0, 4.0, 1.0],
            },
        );
        assert_eq!(rc.comm_factor(0, 1), 1.0); // same cluster
        assert_eq!(rc.comm_factor(0, 2), 4.0);
        assert_eq!(rc.comm_factor(1, 1), 0.0); // same host
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_rc_rejected() {
        ResourceCollection::new(vec![], CommModel::Uniform);
    }

    #[test]
    fn space_sharing_splits_clocks() {
        // The paper's own example: 3.0 GHz shared five ways -> 0.6 GHz.
        let rc = ResourceCollection::homogeneous(2, 3000.0).space_shared(5);
        assert_eq!(rc.len(), 10);
        assert!(rc.clocks().iter().all(|&c| (c - 600.0).abs() < 1e-9));
        // Aggregate capacity is conserved.
        let total: f64 = rc.clocks().iter().sum();
        assert!((total - 6000.0).abs() < 1e-9);
    }

    #[test]
    fn space_sharing_preserves_cluster_structure() {
        let rc = ResourceCollection::new(
            vec![2000.0, 3000.0],
            CommModel::Clustered {
                host_cluster: vec![0, 1],
                k: 2,
                factors: vec![1.0, 4.0, 4.0, 1.0],
            },
        )
        .space_shared(2);
        assert_eq!(rc.len(), 4);
        // Virtual processors of the same physical host share a cluster.
        assert_eq!(rc.comm_factor(0, 1), 1.0);
        assert_eq!(rc.comm_factor(0, 2), 4.0);
    }

    #[test]
    fn clock_classes_partition_and_prefix_stability() {
        let rc = ResourceCollection::new(
            vec![1500.0, 2800.0, 1500.0, 750.0, 2800.0, 1500.0],
            CommModel::Uniform,
        );
        let cc = rc.clock_classes();
        assert_eq!(cc.count(), 3);
        // First-appearance order: 1500 -> 0, 2800 -> 1, 750 -> 2.
        assert_eq!(cc.slot(0), (0, 0));
        assert_eq!(cc.slot(1), (1, 0));
        assert_eq!(cc.slot(2), (0, 1));
        assert_eq!(cc.slot(3), (2, 0));
        assert_eq!(cc.slot(4), (1, 1));
        assert_eq!(cc.slot(5), (0, 2));
        assert_eq!(cc.members_in_prefix(0, 6), &[0, 2, 5]);
        // Prefix restriction: same classes, truncated member lists.
        assert_eq!(cc.classes_in_prefix(1), 1);
        assert_eq!(cc.classes_in_prefix(2), 2);
        assert_eq!(cc.classes_in_prefix(4), 3);
        assert_eq!(cc.members_in_prefix(0, 3), &[0, 2]);
        assert_eq!(cc.members_in_prefix(1, 3), &[1]);
        assert_eq!(cc.members_in_prefix(2, 3), &[] as &[u32]);
        // Clones share the partition and the uid; new RCs do not.
        let clone = rc.clone();
        assert_eq!(clone.uid(), rc.uid());
        let other = rc.prefix(6);
        assert_ne!(other.uid(), rc.uid());
    }

    #[test]
    fn speed_factors_match_per_host_queries() {
        let rc = ResourceCollection::heterogeneous(20, 3000.0, 0.4, 2);
        let flat = rc.speed_factors(1500.0);
        assert_eq!(flat.len(), 20);
        for h in 0..20 {
            assert_eq!(flat[h].to_bits(), rc.speed_factor(h, 1500.0).to_bits());
        }
        // Cached: the same Arc comes back.
        assert!(Arc::ptr_eq(&flat, &rc.speed_factors(1500.0)));
        assert!(!Arc::ptr_eq(&flat, &rc.speed_factors(2800.0)));
    }

    #[test]
    fn prefix_clamps() {
        let rc = ResourceCollection::homogeneous(4, 1000.0);
        assert_eq!(rc.prefix(0).len(), 1);
        assert_eq!(rc.prefix(99).len(), 4);
    }
}
