//! The resource specification generator (Chapter VII).
//!
//! Combines the size prediction model, the heuristic prediction model,
//! the heterogeneity/SCR adjustments and platform assumptions into one
//! [`ResourceSpec`], then renders it in the three target languages:
//! vgDL (Figure VII-5), a Condor ClassAd (Figure VII-3) and a SWORD XML
//! query (Figure VII-4).

use crate::heterogeneity::HeterogeneityAdjustment;
use crate::heurmodel::HeuristicPredictionModel;
use crate::sizemodel::ThresholdedSizeModel;
use crate::utility::UtilityFunction;
use rsg_dag::{Dag, DagStats};
use rsg_obs::Counter;
use rsg_sched::HeuristicKind;
use rsg_select::classad::{ClassAd, Expr};
use rsg_select::sword::{AttrRange, Bound, SwordGroup, SwordRequest};
use rsg_select::vgdl::{Aggregate, AggregateKind, CmpOp, NodeConstraint, VgdlSpec};

/// A generated resource specification — the common denominator behind
/// the three target languages.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpec {
    /// Requested RC size (the model's prediction).
    pub rc_size: u32,
    /// Smallest acceptable RC size (from the most permissive threshold
    /// of the ladder, letting the selector degrade gracefully).
    pub min_size: u32,
    /// Requested clock range (min, max), MHz.
    pub clock_mhz: (f64, f64),
    /// Heuristic to schedule with once the RC is bound.
    pub heuristic: HeuristicKind,
    /// Aggregate/topology requirement derived from the CCR.
    pub aggregate: AggregateKind,
    /// Knee threshold used for `rc_size`.
    pub threshold: f64,
    /// Memory floor, MB (from the application, default 512).
    pub memory_mb: u32,
}

/// A semantic defect in a [`ResourceSpec`] — the single source of truth
/// for the basic well-formedness rules. `rsg-analyze` maps each
/// violation onto a stable diagnostic code (SPEC001–SPEC005); the
/// generator itself checks them behind
/// [`GeneratorConfig::validate_output`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecViolation {
    /// `rc_size == 0`: an empty collection can run nothing.
    ZeroSize,
    /// `min_size > rc_size`: the floor exceeds the request.
    MinExceedsSize,
    /// `clock_mhz.0 > clock_mhz.1`: inverted clock range.
    ClockInverted,
    /// A clock bound is NaN, infinite at the lower end, or ≤ 0.
    BadClock,
    /// `memory_mb == 0`: no host can satisfy a zero-memory floor
    /// meaningfully; it always indicates a defaulting bug.
    ZeroMemory,
    /// `threshold` outside `(0, 1)` — thresholds are fractions of
    /// turnaround degradation.
    ThresholdOutOfRange,
}

impl std::fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecViolation::ZeroSize => write!(f, "requested RC size is zero"),
            SpecViolation::MinExceedsSize => write!(f, "min_size exceeds rc_size"),
            SpecViolation::ClockInverted => write!(f, "clock range is inverted (min > max)"),
            SpecViolation::BadClock => write!(f, "clock bound is non-finite or non-positive"),
            SpecViolation::ZeroMemory => write!(f, "memory floor is zero"),
            SpecViolation::ThresholdOutOfRange => {
                write!(f, "knee threshold outside (0, 1)")
            }
        }
    }
}

impl ResourceSpec {
    /// Checks the basic semantic well-formedness rules and returns
    /// every violated one (empty for a healthy spec). Deterministic
    /// order: the order of the checks below.
    pub fn violations(&self) -> Vec<SpecViolation> {
        let mut out = Vec::new();
        if self.rc_size == 0 {
            out.push(SpecViolation::ZeroSize);
        }
        if self.min_size > self.rc_size {
            out.push(SpecViolation::MinExceedsSize);
        }
        let (lo, hi) = self.clock_mhz;
        if lo.is_nan() || hi.is_nan() || lo.is_infinite() || lo <= 0.0 || hi <= 0.0 {
            out.push(SpecViolation::BadClock);
        } else if lo > hi {
            out.push(SpecViolation::ClockInverted);
        }
        if self.memory_mb == 0 {
            out.push(SpecViolation::ZeroMemory);
        }
        if !self.threshold.is_finite() || self.threshold <= 0.0 || self.threshold >= 1.0 {
            out.push(SpecViolation::ThresholdOutOfRange);
        }
        out
    }
}

/// Platform/application assumptions the generator needs beyond the
/// models (Table VII-2-ish knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Nominal clock of the target tier, MHz (e.g. 3500 in Figure
    /// VII-6).
    pub target_clock_mhz: f64,
    /// Heterogeneity tolerance `H`: the generator requests clocks in
    /// `[target·(1−H), target]`.
    pub heterogeneity_tolerance: f64,
    /// Optional utility function choosing among thresholds; `None`
    /// keeps the strictest (0.1%).
    pub utility: Option<UtilityFunction>,
    /// Rows of `(threshold, expected degradation, expected relative
    /// cost)` the utility chooses from, when known. Pairs with
    /// `utility`.
    pub threshold_tradeoffs: Vec<(f64, f64, f64)>,
    /// Memory floor, MB.
    pub memory_mb: u32,
    /// When set, the generator re-checks its own output with
    /// [`ResourceSpec::violations`]: a violation increments the
    /// `core.specgen.validation_failures` counter and aborts debug
    /// builds (a generated spec must never be malformed).
    pub validate_output: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            target_clock_mhz: 3500.0,
            heterogeneity_tolerance: 0.0,
            utility: None,
            threshold_tradeoffs: Vec::new(),
            memory_mb: 512,
            validate_output: false,
        }
    }
}

/// The generator: trained models plus adjustments.
#[derive(Debug, Clone)]
pub struct SpecGenerator {
    /// Size models per threshold.
    pub size_model: ThresholdedSizeModel,
    /// Heuristic model.
    pub heuristic_model: HeuristicPredictionModel,
    /// Optional heterogeneity size adjustment.
    pub het_adjustment: Option<HeterogeneityAdjustment>,
}

impl SpecGenerator {
    /// Builds a generator from trained models.
    pub fn new(
        size_model: ThresholdedSizeModel,
        heuristic_model: HeuristicPredictionModel,
    ) -> SpecGenerator {
        SpecGenerator {
            size_model,
            heuristic_model,
            het_adjustment: None,
        }
    }

    /// Generates the specification for a DAG.
    pub fn generate(&self, dag: &Dag, cfg: &GeneratorConfig) -> ResourceSpec {
        self.generate_from_stats(&DagStats::measure(dag), cfg)
    }

    /// Generates from pre-measured characteristics.
    pub fn generate_from_stats(&self, stats: &DagStats, cfg: &GeneratorConfig) -> ResourceSpec {
        static OBS_SPECS: Counter = Counter::new("core.specgen.specs_generated");
        let _span = rsg_obs::span("specgen/predict");
        OBS_SPECS.incr();
        // Threshold selection: utility over known trade-off rows, else
        // the strictest model.
        let threshold = match (&cfg.utility, cfg.threshold_tradeoffs.is_empty()) {
            (Some(u), false) => {
                let i = u.choose(&cfg.threshold_tradeoffs);
                cfg.threshold_tradeoffs[i].0
            }
            _ => self.size_model.strictest().theta,
        };
        let model = self
            .size_model
            .for_threshold(threshold)
            .unwrap_or_else(|| self.size_model.strictest());
        let mut size = model.predict(stats);

        // Heterogeneity adjustment: a tolerant request may need a few
        // more hosts to compensate for slower members.
        if cfg.heterogeneity_tolerance > 0.0 {
            if let Some(adj) = &self.het_adjustment {
                size = adj.adjust(size, cfg.heterogeneity_tolerance);
            }
        }
        let size = (size as u32).min(stats.width.max(1));

        // Minimum acceptable size: the most permissive model's
        // prediction (never above the requested size).
        let min_size = {
            let permissive = self.size_model.models.last().expect("non-empty ladder");
            (permissive.predict(stats) as u32).min(size).max(1)
        };

        let heuristic = self.heuristic_model.predict(stats);

        // Connectivity class from the CCR: communication-heavy DAGs
        // need a single well-connected cluster; communication-light
        // ones tolerate a (tight) bag (Section VII.2 discussion).
        let aggregate = if stats.ccr >= 0.3 {
            AggregateKind::ClusterOf
        } else if stats.ccr >= 0.001 {
            AggregateKind::TightBagOf
        } else {
            AggregateKind::LooseBagOf
        };

        let spec = ResourceSpec {
            rc_size: size,
            min_size,
            clock_mhz: (
                cfg.target_clock_mhz * (1.0 - cfg.heterogeneity_tolerance),
                cfg.target_clock_mhz,
            ),
            heuristic,
            aggregate,
            threshold,
            memory_mb: cfg.memory_mb,
        };
        if cfg.validate_output {
            static OBS_INVALID: Counter = Counter::new("core.specgen.validation_failures");
            let violations = spec.violations();
            if !violations.is_empty() {
                OBS_INVALID.incr();
            }
            debug_assert!(
                violations.is_empty(),
                "generated spec violates its own invariants: {violations:?}"
            );
        }
        spec
    }

    /// Renders a spec as vgDL (Figure VII-5).
    pub fn to_vgdl(spec: &ResourceSpec) -> VgdlSpec {
        let _span = rsg_obs::span("specgen/emit_vgdl");
        let mut constraints = vec![NodeConstraint::num("Clock", CmpOp::Ge, spec.clock_mhz.0)];
        if spec.clock_mhz.1.is_finite() {
            constraints.push(NodeConstraint::num("Clock", CmpOp::Le, spec.clock_mhz.1));
        }
        constraints.push(NodeConstraint::num(
            "Memory",
            CmpOp::Ge,
            spec.memory_mb as f64,
        ));
        VgdlSpec::single(Aggregate {
            kind: spec.aggregate,
            var: "nodes".into(),
            min: spec.min_size,
            max: spec.rc_size,
            rank: Some("Nodes".into()),
            constraints,
        })
    }

    /// Renders a spec as a Condor ClassAd request (Figure VII-3).
    pub fn to_classad(spec: &ResourceSpec) -> ClassAd {
        let _span = rsg_obs::span("specgen/emit_classad");
        let mut ad = ClassAd::new();
        ad.set("Type", Expr::Str("Job".into()));
        ad.set("Count", Expr::Num(spec.rc_size as f64));
        ad.set("MinCount", Expr::Num(spec.min_size as f64));
        ad.set(
            "SchedulingHeuristic",
            Expr::Str(spec.heuristic.name().into()),
        );
        let mut req = vec![
            Expr::bin(
                rsg_select::classad::BinOp::Eq,
                Expr::scoped("other", "Type"),
                Expr::Str("Machine".into()),
            ),
            Expr::bin(
                rsg_select::classad::BinOp::Eq,
                Expr::scoped("other", "OpSys"),
                Expr::Str("LINUX".into()),
            ),
            Expr::bin(
                rsg_select::classad::BinOp::Ge,
                Expr::scoped("other", "Clock"),
                Expr::Num(spec.clock_mhz.0),
            ),
            Expr::bin(
                rsg_select::classad::BinOp::Ge,
                Expr::scoped("other", "Memory"),
                Expr::Num(spec.memory_mb as f64),
            ),
        ];
        if spec.clock_mhz.1.is_finite() {
            req.push(Expr::bin(
                rsg_select::classad::BinOp::Le,
                Expr::scoped("other", "Clock"),
                Expr::Num(spec.clock_mhz.1),
            ));
        }
        ad.set("Requirements", Expr::and_all(req));
        ad.set("Rank", Expr::scoped("other", "Clock"));
        ad
    }

    /// Renders a spec as a SWORD request (Figure VII-4).
    pub fn to_sword(spec: &ResourceSpec) -> SwordRequest {
        let _span = rsg_obs::span("specgen/emit_sword");
        let group = SwordGroup {
            name: "rc".into(),
            num_machines: spec.rc_size,
            attrs: vec![
                AttrRange {
                    name: "clock".into(),
                    req_min: spec.clock_mhz.0,
                    des_min: spec.clock_mhz.1,
                    des_max: Bound::Max,
                    req_max: Bound::Max,
                    penalty: 1.0,
                },
                AttrRange {
                    name: "free_mem".into(),
                    req_min: spec.memory_mb as f64,
                    des_min: spec.memory_mb as f64 * 2.0,
                    des_max: Bound::Max,
                    req_max: Bound::Max,
                    penalty: 0.1,
                },
            ],
            os: Some("Linux".into()),
            region: None,
        };
        SwordRequest::with_groups(vec![group])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveConfig;
    use crate::heurmodel::HeuristicTraining;
    use crate::observation::{measure, ObservationGrid};

    fn generator() -> SpecGenerator {
        let grid = ObservationGrid::tiny();
        let cfg = CurveConfig::default();
        let tables = measure(&grid, &cfg, &[0.001, 0.05], 0);
        let size_model = ThresholdedSizeModel::fit(&tables);
        let mut t = HeuristicTraining::fast();
        t.sizes = vec![50, 200];
        t.instances = 1;
        let heur = crate::heurmodel::HeuristicPredictionModel::train(&t, &cfg);
        SpecGenerator::new(size_model, heur)
    }

    #[test]
    fn generates_consistent_spec() {
        let gen = generator();
        let dag = rsg_dag::RandomDagSpec {
            size: 150,
            ccr: 0.1,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.8,
            mean_comp: 20.0,
        }
        .generate(3);
        let spec = gen.generate(&dag, &GeneratorConfig::default());
        assert!(spec.rc_size >= 1);
        assert!(spec.min_size <= spec.rc_size);
        assert!(spec.clock_mhz.0 <= spec.clock_mhz.1);
        assert_eq!(spec.aggregate, AggregateKind::TightBagOf);
    }

    #[test]
    fn high_ccr_requests_a_cluster() {
        let gen = generator();
        let dag = rsg_dag::RandomDagSpec {
            size: 100,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.8,
            mean_comp: 20.0,
        }
        .generate(4);
        let spec = gen.generate(&dag, &GeneratorConfig::default());
        assert_eq!(spec.aggregate, AggregateKind::ClusterOf);
    }

    #[test]
    fn heterogeneity_tolerance_widens_clock_range() {
        let gen = generator();
        let dag = rsg_dag::workflows::fork_join(3, 20, 10.0, 0.1);
        let cfg = GeneratorConfig {
            heterogeneity_tolerance: 0.3,
            ..Default::default()
        };
        let spec = gen.generate(&dag, &cfg);
        assert!((spec.clock_mhz.0 - 3500.0 * 0.7).abs() < 1e-9);
        assert!((spec.clock_mhz.1 - 3500.0).abs() < 1e-9);
    }

    #[test]
    fn renders_all_three_languages() {
        let gen = generator();
        let dag = rsg_dag::montage::montage_1629_actual();
        let spec = gen.generate(&dag, &GeneratorConfig::default());

        let vgdl = SpecGenerator::to_vgdl(&spec);
        let vg_text = vgdl.to_string();
        assert!(vg_text.contains("Clock >="));
        // Round-trips through the vgDL parser.
        assert_eq!(rsg_select::vgdl::parse_vgdl(&vg_text).unwrap(), vgdl);

        let ad = SpecGenerator::to_classad(&spec);
        let ad_text = ad.to_string();
        assert!(ad_text.contains("Count"));
        assert!(ad_text.contains("other.Clock >="));
        assert_eq!(rsg_select::classad::parse_classad(&ad_text).unwrap(), ad);

        let sword = SpecGenerator::to_sword(&spec);
        let xml = rsg_select::sword::write_sword(&sword);
        assert!(xml.contains("<num_machines>"));
        assert_eq!(rsg_select::sword::parse_sword(&xml).unwrap(), sword);
    }

    #[test]
    fn violations_catch_each_defect_class() {
        let gen = generator();
        let dag = rsg_dag::workflows::fork_join(2, 10, 5.0, 0.1);
        let cfg = GeneratorConfig {
            validate_output: true,
            ..Default::default()
        };
        let good = gen.generate(&dag, &cfg);
        assert!(good.violations().is_empty(), "{:?}", good.violations());

        let mut s = good.clone();
        s.rc_size = 0;
        assert!(s.violations().contains(&SpecViolation::ZeroSize));
        assert!(s.violations().contains(&SpecViolation::MinExceedsSize));

        let mut s = good.clone();
        s.clock_mhz = (3500.0, 2000.0);
        assert_eq!(s.violations(), vec![SpecViolation::ClockInverted]);

        let mut s = good.clone();
        s.clock_mhz = (f64::NAN, 3500.0);
        assert_eq!(s.violations(), vec![SpecViolation::BadClock]);

        let mut s = good.clone();
        s.memory_mb = 0;
        assert_eq!(s.violations(), vec![SpecViolation::ZeroMemory]);

        let mut s = good;
        s.threshold = 1.5;
        assert_eq!(s.violations(), vec![SpecViolation::ThresholdOutOfRange]);
    }

    #[test]
    fn utility_picks_trade_off_threshold() {
        let gen = generator();
        let dag = rsg_dag::workflows::fork_join(2, 30, 10.0, 0.1);
        let cfg = GeneratorConfig {
            utility: Some(UtilityFunction::one_for_ten()),
            threshold_tradeoffs: vec![(0.001, 0.0, 0.0), (0.05, 0.005, -0.2)],
            ..Default::default()
        };
        let spec = gen.generate(&dag, &cfg);
        assert_eq!(spec.threshold, 0.05, "utility should pick the cheap row");
    }
}
