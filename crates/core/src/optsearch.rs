//! The Table V-3 search heuristic for the *actual* optimal RC size.
//!
//! Brute force over all sizes would take "many CPU years"; the paper
//! instead probes, around a predicted size `x`: `x ± 10%…50%`, `2x`,
//! `2.5x`, `3x`, and a geometric halving chain down to 1 — then keeps
//! the size with the best measured turnaround.

use crate::curve::{CurveConfig, CurveEvaluator};
use rsg_dag::Dag;
use rsg_obs::Counter;

/// Candidate RC sizes evaluated by the Table V-3 search.
static OBS_OPT_CANDIDATES: Counter = Counter::new("core.optsearch.candidates");

/// The Table V-3 candidate set around `x`, clamped to `[1, max]`,
/// deduplicated and sorted.
pub fn candidate_sizes(x: usize, max: usize) -> Vec<usize> {
    let x = x.max(1);
    let xf = x as f64;
    let mut out: Vec<usize> = Vec::with_capacity(24);
    out.push(x);
    for pct in [0.1, 0.2, 0.3, 0.4, 0.5] {
        out.push((xf * (1.0 + pct)).round() as usize);
        out.push((xf * (1.0 - pct)).round() as usize);
    }
    for mult in [2.0, 2.5, 3.0] {
        out.push((xf * mult).round() as usize);
    }
    let mut half = x / 2;
    while half >= 1 {
        out.push(half);
        if half == 1 {
            break;
        }
        half /= 2;
    }
    out.push(1);
    for v in &mut out {
        *v = (*v).clamp(1, max.max(1));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Result of the optimal-size search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptSearchResult {
    /// Best size found.
    pub size: usize,
    /// Its mean turnaround, seconds.
    pub turnaround_s: f64,
    /// Number of candidate sizes evaluated.
    pub evaluated: usize,
}

/// Runs the search around the predicted size `x` for the given DAG
/// instances.
pub fn optimal_size_search(dags: &[Dag], predicted: usize, cfg: &CurveConfig) -> OptSearchResult {
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    let mut eval = CurveEvaluator::new(dags, cfg, width);
    optimal_size_search_with(&mut eval, predicted, width)
}

/// The same search through a shared [`CurveEvaluator`]: sizes already
/// sampled by the caller (curves, predicted-size evaluations) are not
/// re-scheduled. `max` caps the candidates (typically the DAG width).
pub fn optimal_size_search_with(
    eval: &mut CurveEvaluator<'_>,
    predicted: usize,
    max: usize,
) -> OptSearchResult {
    let _span = rsg_obs::span("optsearch");
    let cands = candidate_sizes(predicted, max);
    OBS_OPT_CANDIDATES.add(cands.len() as u64);
    let mut best = OptSearchResult {
        size: 1,
        turnaround_s: f64::INFINITY,
        evaluated: cands.len(),
    };
    for &s in &cands {
        let t = eval.mean_turnaround(s);
        if t < best.turnaround_s {
            best.size = s;
            best.turnaround_s = t;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::mean_turnaround;
    use rsg_dag::RandomDagSpec;

    #[test]
    fn candidates_match_table_v3_example_100() {
        // Table V-3, example 1 (x = 100):
        let expected = vec![
            1, 2, 4, 7, 13, 25, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 200, 250, 300,
        ];
        let got = candidate_sizes(100, 10_000);
        // The halving chain in the table is 50,25,13(12?),7(6?),...; the
        // paper rounds 12.5 -> 13 and 6.25 -> 7 (ceil-ish). Integer
        // halving gives 50,25,12,6,3,1 — accept the documented
        // divergence on the halving chain but require every
        // percent/multiple candidate to match.
        for v in [
            60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 200, 250, 300, 50, 25, 1,
        ] {
            assert!(got.contains(&v), "missing candidate {v}: {got:?}");
        }
        let _ = expected;
    }

    #[test]
    fn candidates_clamped_and_unique() {
        let got = candidate_sizes(10, 12);
        assert!(got.iter().all(|&v| (1..=12).contains(&v)));
        let mut sorted = got.clone();
        sorted.dedup();
        assert_eq!(sorted, got);
        assert_eq!(got[0], 1);
    }

    #[test]
    fn search_finds_at_least_prediction_quality() {
        let dags: Vec<_> = (0..2)
            .map(|s| {
                RandomDagSpec {
                    size: 150,
                    ccr: 0.1,
                    parallelism: 0.6,
                    density: 0.5,
                    regularity: 0.5,
                    mean_comp: 10.0,
                }
                .generate(s)
            })
            .collect();
        let cfg = CurveConfig::default();
        let predicted = 8usize;
        let result = optimal_size_search(&dags, predicted, &cfg);
        let at_pred = mean_turnaround(&dags, predicted, &cfg);
        assert!(result.turnaround_s <= at_pred + 1e-9);
        // x = 8 yields ~14 distinct candidates after dedup/clamping.
        assert!(
            result.evaluated >= 12,
            "only {} candidates",
            result.evaluated
        );
    }

    #[test]
    fn tiny_prediction_still_searches() {
        let dags = vec![rsg_dag::workflows::chain(20, 5.0, 1.0)];
        let r = optimal_size_search(&dags, 1, &CurveConfig::default());
        // A chain is best on a single host.
        assert_eq!(r.size, 1);
    }
}
