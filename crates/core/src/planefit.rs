//! Least-squares plane fit (Section V.2.4).
//!
//! For a fixed DAG size and CCR the paper observes that
//! `log2(knee) ≈ a·α + b·β + c` (Figure V-4) and solves the 3×3 normal
//! equations for `(a, b, c)` by minimizing the mean squared error over
//! the observation grid.

/// A fitted plane `z = a·x + b·y + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneFit {
    /// Coefficient of the first coordinate (parallelism α).
    pub a: f64,
    /// Coefficient of the second coordinate (regularity β).
    pub b: f64,
    /// Intercept.
    pub c: f64,
}

impl PlaneFit {
    /// Fits the plane to `(x, y, z)` samples by the normal equations of
    /// Section V.2.4. Requires ≥ 3 non-degenerate samples.
    pub fn fit(samples: &[(f64, f64, f64)]) -> PlaneFit {
        assert!(samples.len() >= 3, "need at least 3 samples");
        let n = samples.len() as f64;
        let (mut sxx, mut sxy, mut sx, mut syy, mut sy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let (mut szx, mut szy, mut sz) = (0.0, 0.0, 0.0);
        for &(x, y, z) in samples {
            sxx += x * x;
            sxy += x * y;
            sx += x;
            syy += y * y;
            sy += y;
            szx += z * x;
            szy += z * y;
            sz += z;
        }
        let m = [[sxx, sxy, sx], [sxy, syy, sy], [sx, sy, n]];
        let rhs = [szx, szy, sz];
        let sol = solve3(m, rhs);
        PlaneFit {
            a: sol[0],
            b: sol[1],
            c: sol[2],
        }
    }

    /// Predicted `z` at `(x, y)`.
    #[inline]
    pub fn predict(&self, x: f64, y: f64) -> f64 {
        self.a * x + self.b * y + self.c
    }

    /// Mean relative error of the fit over samples whose `z != 0`.
    pub fn mean_relative_error(&self, samples: &[(f64, f64, f64)]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for &(x, y, z) in samples {
            if z.abs() > 1e-12 {
                total += ((self.predict(x, y) - z) / z).abs();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Degenerate systems fall back to a least-norm-ish answer by
/// perturbing the pivot (observation grids are never degenerate in
/// practice; the guard keeps the fit total).
fn solve3(mut m: [[f64; 3]; 3], mut rhs: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Pivot.
        let mut piv = col;
        for r in col + 1..3 {
            if m[r][col].abs() > m[piv][col].abs() {
                piv = r;
            }
        }
        m.swap(col, piv);
        rhs.swap(col, piv);
        let p = if m[col][col].abs() < 1e-12 {
            1e-12
        } else {
            m[col][col]
        };
        for r in col + 1..3 {
            let f = m[r][col] / p;
            let pivot_row = m[col];
            for (k, cell) in m[r].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[k];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = rhs[row];
        for k in row + 1..3 {
            acc -= m[row][k] * x[k];
        }
        let p = if m[row][row].abs() < 1e-12 {
            1e-12
        } else {
            m[row][row]
        };
        x[row] = acc / p;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_recovery_of_planar_data() {
        let truth = PlaneFit {
            a: 3.5,
            b: -1.25,
            c: 0.75,
        };
        let mut samples = Vec::new();
        for &x in &[0.3, 0.5, 0.7, 0.9] {
            for &y in &[0.0, 0.5, 1.0] {
                samples.push((x, y, truth.predict(x, y)));
            }
        }
        let fit = PlaneFit::fit(&samples);
        assert!((fit.a - truth.a).abs() < 1e-9);
        assert!((fit.b - truth.b).abs() < 1e-9);
        assert!((fit.c - truth.c).abs() < 1e-9);
        assert!(fit.mean_relative_error(&samples) < 1e-9);
    }

    #[test]
    fn noisy_fit_is_close() {
        let truth = PlaneFit {
            a: 2.0,
            b: 1.0,
            c: -0.5,
        };
        let mut samples = Vec::new();
        let mut sign = 1.0;
        for &x in &[0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
            for &y in &[0.01, 0.1, 0.3, 0.5, 0.8, 1.0] {
                samples.push((x, y, truth.predict(x, y) + sign * 0.05));
                sign = -sign;
            }
        }
        let fit = PlaneFit::fit(&samples);
        assert!((fit.a - truth.a).abs() < 0.2);
        assert!((fit.b - truth.b).abs() < 0.2);
    }

    #[test]
    fn solve3_identity() {
        let x = solve3(
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            [5.0, -2.0, 3.0],
        );
        assert_eq!(x, [5.0, -2.0, 3.0]);
    }

    #[test]
    fn solve3_requires_pivoting() {
        // Leading zero forces a row swap.
        let x = solve3(
            [[0.0, 2.0, 1.0], [1.0, 1.0, 1.0], [2.0, 0.0, 1.0]],
            [7.0, 6.0, 5.0],
        );
        // Verify by substitution.
        let check = |row: [f64; 3], rhs: f64| {
            let v = row[0] * x[0] + row[1] * x[1] + row[2] * x[2];
            assert!((v - rhs).abs() < 1e-9, "{v} vs {rhs}");
        };
        check([0.0, 2.0, 1.0], 7.0);
        check([1.0, 1.0, 1.0], 6.0);
        check([2.0, 0.0, 1.0], 5.0);
    }

    #[test]
    #[should_panic(expected = "at least 3 samples")]
    fn too_few_samples_panics() {
        PlaneFit::fit(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]);
    }
}
