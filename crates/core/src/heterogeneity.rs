//! Clock-rate-heterogeneity extension (Section V.4).
//!
//! The base model assumes homogeneous resources; real collections have
//! a clock-rate spread. This module sweeps heterogeneity `H = 1 −
//! min/max` and measures (Figures V-8…V-11): the performance
//! degradation of using the homogeneous prediction on heterogeneous
//! resources, the relative cost, and how the optimal RC size and
//! turnaround shift. A linear adjustment factor fitted on the sweep
//! lets the spec generator scale its prediction for a requested
//! heterogeneity tolerance.

use crate::curve::{CurveConfig, CurveEvaluator, RcFamily};
use crate::optsearch::optimal_size_search_with;
use rsg_dag::Dag;
use rsg_platform::CostModel;

/// One point of a heterogeneity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeterogeneityPoint {
    /// Clock heterogeneity H.
    pub heterogeneity: f64,
    /// Degradation of using the homogeneous prediction at this H.
    pub degradation: f64,
    /// Relative cost of the same.
    pub relative_cost: f64,
    /// Optimal RC size at this H.
    pub optimal_size: usize,
    /// Optimal turnaround at this H, seconds.
    pub optimal_turnaround_s: f64,
}

/// Sweeps heterogeneity values for one DAG configuration, holding the
/// homogeneous prediction fixed (Figures V-8…V-11).
pub fn heterogeneity_sweep(
    dags: &[Dag],
    homogeneous_prediction: usize,
    base: &CurveConfig,
    hs: &[f64],
    cost: &CostModel,
) -> Vec<HeterogeneityPoint> {
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    hs.iter()
        .map(|&h| {
            let cfg = CurveConfig {
                rc_family: RcFamily {
                    heterogeneity: h,
                    ..base.rc_family
                },
                ..*base
            };
            // Prediction probe and search share one evaluator per H.
            let mut eval = CurveEvaluator::new(dags, &cfg, width.max(homogeneous_prediction));
            let t_pred = eval.mean_turnaround(homogeneous_prediction);
            let s = optimal_size_search_with(&mut eval, homogeneous_prediction, width);
            let c_pred = cost.execution_cost(&cfg.rc_family.build(homogeneous_prediction), t_pred);
            let c_opt = cost.execution_cost(&cfg.rc_family.build(s.size), s.turnaround_s);
            HeterogeneityPoint {
                heterogeneity: h,
                degradation: (t_pred / s.turnaround_s - 1.0).max(0.0),
                relative_cost: cost.relative_cost(c_pred, c_opt),
                optimal_size: s.size,
                optimal_turnaround_s: s.turnaround_s,
            }
        })
        .collect()
}

/// Linear size-adjustment model: `size(H) ≈ size(0) · (1 + gamma · H)`,
/// fitted by least squares on a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeterogeneityAdjustment {
    /// Fitted slope γ.
    pub gamma: f64,
}

impl HeterogeneityAdjustment {
    /// Fits γ from sweep points (H = 0 must be present as reference).
    pub fn fit(points: &[HeterogeneityPoint]) -> HeterogeneityAdjustment {
        let base = points
            .iter()
            .find(|p| p.heterogeneity == 0.0)
            .map_or_else(|| points[0].optimal_size as f64, |p| p.optimal_size as f64)
            .max(1.0);
        // Least squares through origin on y = size/base − 1 vs H.
        let mut num = 0.0;
        let mut den = 0.0;
        for p in points {
            let y = p.optimal_size as f64 / base - 1.0;
            num += p.heterogeneity * y;
            den += p.heterogeneity * p.heterogeneity;
        }
        HeterogeneityAdjustment {
            gamma: if den > 0.0 { num / den } else { 0.0 },
        }
    }

    /// Adjusted size for heterogeneity `h`.
    pub fn adjust(&self, homogeneous_size: usize, h: f64) -> usize {
        ((homogeneous_size as f64) * (1.0 + self.gamma * h))
            .round()
            .max(1.0) as usize
    }

    /// The heterogeneity tolerance at which predicted degradation would
    /// exceed `max_degradation`, assuming degradation grows like
    /// `slope · H` (fitted separately from a sweep's degradations).
    pub fn tolerance_for(points: &[HeterogeneityPoint], max_degradation: f64) -> f64 {
        // Fit degradation = slope * H through the origin.
        let mut num = 0.0;
        let mut den = 0.0;
        for p in points {
            num += p.heterogeneity * p.degradation;
            den += p.heterogeneity * p.heterogeneity;
        }
        let slope = if den > 0.0 { num / den } else { 0.0 };
        if slope <= 0.0 {
            0.9 // degradation insensitive to H: tolerate almost anything
        } else {
            (max_degradation / slope).clamp(0.0, 0.9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;

    fn dags() -> Vec<Dag> {
        (0..2)
            .map(|s| {
                RandomDagSpec {
                    size: 150,
                    ccr: 0.1,
                    parallelism: 0.6,
                    density: 0.5,
                    regularity: 0.8,
                    mean_comp: 15.0,
                }
                .generate(s)
            })
            .collect()
    }

    #[test]
    fn sweep_shapes() {
        let ds = dags();
        let cfg = CurveConfig::default();
        let pts = heterogeneity_sweep(&ds, 10, &cfg, &[0.0, 0.3], &CostModel::default());
        assert_eq!(pts.len(), 2);
        // At H=0 the "homogeneous prediction" is exactly evaluated; its
        // degradation is bounded by search noise.
        assert!(pts[0].degradation >= 0.0);
        // Heterogeneous hosts are slower on average -> optimal
        // turnaround cannot improve.
        assert!(pts[1].optimal_turnaround_s >= pts[0].optimal_turnaround_s * 0.95);
    }

    #[test]
    fn adjustment_fit_and_apply() {
        let pts = vec![
            HeterogeneityPoint {
                heterogeneity: 0.0,
                degradation: 0.0,
                relative_cost: 0.0,
                optimal_size: 100,
                optimal_turnaround_s: 10.0,
            },
            HeterogeneityPoint {
                heterogeneity: 0.5,
                degradation: 0.1,
                relative_cost: 0.0,
                optimal_size: 120,
                optimal_turnaround_s: 11.0,
            },
        ];
        let adj = HeterogeneityAdjustment::fit(&pts);
        assert!((adj.gamma - 0.4).abs() < 1e-9, "gamma {}", adj.gamma);
        assert_eq!(adj.adjust(100, 0.5), 120);
        assert_eq!(adj.adjust(100, 0.0), 100);
    }

    #[test]
    fn tolerance_inverse_to_slope() {
        let mk = |h: f64, d: f64| HeterogeneityPoint {
            heterogeneity: h,
            degradation: d,
            relative_cost: 0.0,
            optimal_size: 10,
            optimal_turnaround_s: 1.0,
        };
        // degradation = 0.2 * H -> tolerance for 5% = 0.25.
        let pts = vec![mk(0.0, 0.0), mk(0.5, 0.1)];
        let tol = HeterogeneityAdjustment::tolerance_for(&pts, 0.05);
        assert!((tol - 0.25).abs() < 1e-9, "tol {tol}");
        // Insensitive: wide tolerance.
        let flat = vec![mk(0.0, 0.0), mk(0.5, 0.0)];
        assert_eq!(HeterogeneityAdjustment::tolerance_for(&flat, 0.05), 0.9);
    }
}
