//! Specification generation for mixed-parallel applications — the
//! extension the dissertation sketches in Section III.1: "generating
//! resource specifications requiring clusters instead of hosts for each
//! node in the DAG".
//!
//! Tasks are partitioned by processor demand into *classes*; each class
//! with demand > 1 becomes a set of `ClusterOf` aggregates (one per
//! concurrently runnable task of that class, capped), while the
//! sequential tasks reuse the scalar size-prediction model. The result
//! renders as a multi-aggregate vgDL joined by `close` connectives —
//! exactly the language feature vgDL was designed around (Figure II-1).

use crate::specgen::{GeneratorConfig, ResourceSpec, SpecGenerator};
use rsg_dag::mixed::MixedDag;
use rsg_dag::DagStats;
use rsg_select::vgdl::{Aggregate, AggregateKind, CmpOp, NodeConstraint, Proximity, VgdlSpec};

/// Cluster request for one demand class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassRequest {
    /// Processors per cluster (the class demand).
    pub procs: u32,
    /// Concurrent clusters requested (bounded class width).
    pub clusters: u32,
}

/// A mixed-parallel resource specification: scalar hosts for the
/// sequential tasks plus clusters per data-parallel class.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedResourceSpec {
    /// Specification for the sequential (demand = 1) portion.
    pub base: ResourceSpec,
    /// Cluster classes, largest demand first.
    pub classes: Vec<ClassRequest>,
}

/// Upper bound on concurrent clusters requested per class — grid sites
/// rarely co-allocate more, and the vgDL stays readable.
pub const MAX_CLUSTERS_PER_CLASS: u32 = 8;

impl SpecGenerator {
    /// Generates a mixed-parallel specification. The scalar model
    /// predicts the sequential portion; each demand class requests as
    /// many clusters as its per-level task concurrency, capped at
    /// [`MAX_CLUSTERS_PER_CLASS`].
    pub fn generate_mixed(&self, m: &MixedDag, cfg: &GeneratorConfig) -> MixedResourceSpec {
        let dag = m.dag();
        let base = self.generate_from_stats(&DagStats::measure(dag), cfg);

        let mut classes = Vec::new();
        for demand in m.demand_classes() {
            if demand <= 1 {
                continue;
            }
            // Class width: the max number of class-`demand` tasks in any
            // level — the most clusters that could run concurrently.
            let mut per_level = vec![0u32; dag.height() as usize];
            for t in dag.tasks() {
                if m.profile(t).demand == demand {
                    per_level[dag.level(t) as usize] += 1;
                }
            }
            let width = per_level.iter().copied().max().unwrap_or(0);
            if width == 0 {
                continue;
            }
            classes.push(ClassRequest {
                procs: demand,
                clusters: width.min(MAX_CLUSTERS_PER_CLASS),
            });
        }
        MixedResourceSpec { base, classes }
    }

    /// Renders a mixed spec as multi-aggregate vgDL: the sequential
    /// TightBag first, then one `ClusterOf` per requested cluster,
    /// joined `close` (intermediate data flows between the stages).
    pub fn to_vgdl_mixed(spec: &MixedResourceSpec) -> VgdlSpec {
        let mut aggregates = Vec::new();
        // Sequential portion (if any hosts are needed).
        let base_vgdl = Self::to_vgdl(&spec.base);
        let (_, base_agg) = base_vgdl
            .aggregates
            .into_iter()
            .next()
            .expect("one aggregate");
        aggregates.push((None, base_agg));

        for (k, class) in spec.classes.iter().enumerate() {
            for c in 0..class.clusters {
                let var = format!("c{k}_{c}");
                aggregates.push((
                    Some(Proximity::Close),
                    Aggregate {
                        kind: AggregateKind::ClusterOf,
                        var,
                        min: class.procs,
                        max: class.procs,
                        rank: Some("Clock".into()),
                        constraints: vec![
                            NodeConstraint::num("Clock", CmpOp::Ge, spec.base.clock_mhz.0),
                            NodeConstraint::num("Memory", CmpOp::Ge, spec.base.memory_mb as f64),
                        ],
                    },
                ));
            }
        }
        VgdlSpec { aggregates }
    }
}

impl SpecGenerator {
    /// Renders a mixed spec as a Gangmatching ClassAd (Figure II-2
    /// style): one `Ports` entry per requested cluster, each
    /// constraining a whole-cluster candidate ad (`Hosts >= procs`),
    /// plus the scalar attributes of the sequential portion.
    pub fn to_classad_mixed(spec: &MixedResourceSpec) -> rsg_select::classad::ClassAd {
        use rsg_select::classad::{BinOp, ClassAd, Expr};
        let mut ad = Self::to_classad(&spec.base);
        let mut ports = Vec::new();
        for class in &spec.classes {
            for _ in 0..class.clusters {
                let mut port = ClassAd::new();
                port.set("Label", Expr::attr("cluster"));
                port.set("Rank", Expr::scoped("cluster", "Clock"));
                port.set(
                    "Constraint",
                    Expr::and_all(vec![
                        Expr::bin(
                            BinOp::Eq,
                            Expr::scoped("cluster", "Type"),
                            Expr::Str("Machine".into()),
                        ),
                        Expr::bin(
                            BinOp::Ge,
                            Expr::scoped("cluster", "Hosts"),
                            Expr::Num(class.procs as f64),
                        ),
                        Expr::bin(
                            BinOp::Ge,
                            Expr::scoped("cluster", "Clock"),
                            Expr::Num(spec.base.clock_mhz.0),
                        ),
                    ]),
                );
                ports.push(port);
            }
        }
        if !ports.is_empty() {
            ad.set("Ports", Expr::AdList(ports));
        }
        ad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveConfig;
    use crate::heurmodel::{HeuristicPredictionModel, HeuristicTraining};
    use crate::observation::{measure, ObservationGrid};
    use crate::sizemodel::ThresholdedSizeModel;
    use rsg_dag::mixed::random_mixed;
    use rsg_dag::RandomDagSpec;

    fn generator() -> SpecGenerator {
        let grid = ObservationGrid::tiny();
        let cfg = CurveConfig::default();
        let tables = measure(&grid, &cfg, &[0.001], 0);
        let mut t = HeuristicTraining::fast();
        t.sizes = vec![50, 200];
        t.instances = 1;
        SpecGenerator::new(
            ThresholdedSizeModel::fit(&tables),
            HeuristicPredictionModel::train(&t, &cfg),
        )
    }

    fn mixed() -> MixedDag {
        random_mixed(
            RandomDagSpec {
                size: 80,
                ccr: 0.1,
                parallelism: 0.5,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 50.0,
            },
            &[1, 16, 64],
            3,
        )
    }

    #[test]
    fn classes_cover_parallel_demands() {
        let spec = generator().generate_mixed(&mixed(), &GeneratorConfig::default());
        // Demands 16 and 64 appear; demand 1 folded into the base.
        let procs: Vec<u32> = spec.classes.iter().map(|c| c.procs).collect();
        assert!(procs.contains(&64));
        assert!(procs.contains(&16));
        assert!(!procs.contains(&1));
        for c in &spec.classes {
            assert!(c.clusters >= 1 && c.clusters <= MAX_CLUSTERS_PER_CLASS);
        }
        // Largest demand first.
        assert!(procs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn mixed_vgdl_renders_and_parses() {
        let gen = generator();
        let spec = gen.generate_mixed(&mixed(), &GeneratorConfig::default());
        let vgdl = SpecGenerator::to_vgdl_mixed(&spec);
        let text = vgdl.to_string();
        assert!(text.contains("ClusterOf"));
        assert!(text.contains("close"));
        let re = rsg_select::vgdl::parse_vgdl(&text).unwrap();
        assert_eq!(re, vgdl);
        // One aggregate for the base + one per requested cluster.
        let total_clusters: u32 = spec.classes.iter().map(|c| c.clusters).sum();
        assert_eq!(vgdl.aggregates.len() as u32, 1 + total_clusters);
    }

    #[test]
    fn mixed_classad_gangmatch_ports() {
        let gen = generator();
        let spec = gen.generate_mixed(&mixed(), &GeneratorConfig::default());
        let ad = SpecGenerator::to_classad_mixed(&spec);
        let text = ad.to_string();
        // Round-trips through the ClassAd parser.
        let re = rsg_select::classad::parse_classad(&text).unwrap();
        assert_eq!(re, ad);
        // One port per requested cluster.
        match ad.get("Ports") {
            Some(rsg_select::classad::Expr::AdList(ports)) => {
                let want: u32 = spec.classes.iter().map(|c| c.clusters).sum();
                assert_eq!(ports.len() as u32, want);
                assert!(ports.iter().all(|p| p.get("Constraint").is_some()));
            }
            other => panic!("Ports missing: {other:?}"),
        }
        // Gangmatching binds against cluster ads with enough hosts.
        let mut mm = rsg_select::Matchmaker::new();
        for i in 0..40u32 {
            let mut m = rsg_select::classad::ClassAd::new();
            m.set("Type", rsg_select::classad::Expr::Str("Machine".into()));
            m.set("Hosts", rsg_select::classad::Expr::Num(80.0 + i as f64));
            m.set("Clock", rsg_select::classad::Expr::Num(3600.0));
            mm.advertise(m);
        }
        let gang = mm.gangmatch(&ad);
        assert!(gang.is_some(), "gangmatch should bind all ports");
    }

    #[test]
    fn all_sequential_has_no_classes() {
        let dag = rsg_dag::workflows::fork_join(2, 10, 5.0, 0.1);
        let profiles = vec![rsg_dag::ParallelProfile::sequential(); dag.len()];
        let m = MixedDag::new(dag, profiles);
        let spec = generator().generate_mixed(&m, &GeneratorConfig::default());
        assert!(spec.classes.is_empty());
    }
}
