//! Alternative resource specifications (Section VII.4).
//!
//! When the best resource request cannot be fulfilled — not enough
//! 3.5 GHz hosts, say — the generator degrades the specification along
//! an ordered ladder instead of failing: (1) a slower clock tier with a
//! compensating size increase (the Figure VII-6/VII-7 trade-off), (2) a
//! wider heterogeneity tolerance, (3) the smaller RC size of a more
//! permissive knee threshold. A negotiation loop walks the ladder
//! against an actual selector until something binds.
//!
//! Two negotiators are provided. [`negotiate`] is the simple walk: one
//! ask per rung, first bind wins. [`negotiate_with_retry`] is the
//! robust variant for flaky selectors (see `rsg_select::flaky`): it
//! distinguishes *transient* failures (injected rejections, timeouts —
//! retried on the same rung with capped exponential backoff) from
//! *permanent* ones (the platform genuinely lacks the resources —
//! descend immediately, re-asking is futile), enforces a per-attempt
//! deadline and a total negotiation deadline, and terminates in an
//! explicit [`Unfulfillable`] outcome instead of looping forever. All
//! time is simulated: latencies and backoffs accumulate on a virtual
//! clock, so experiments are fast and deterministic.

use crate::curve::{mean_turnaround, CurveConfig, RcFamily};
use crate::specgen::ResourceSpec;
use rsg_dag::Dag;
use rsg_obs::{Counter, TimingHistogram};
use rsg_platform::ResourceCollection;
use rsg_select::flaky::SelectionOutcome;

/// How a spec was degraded relative to the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// The original request.
    None,
    /// Moved to a slower clock tier with a compensating size increase.
    SlowerClock,
    /// Widened the tolerated clock range.
    WiderHeterogeneity,
    /// Accepted a smaller collection (more permissive threshold).
    SmallerSize,
}

/// An alternative specification with its provenance and its predicted
/// turnaround (for ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct Alternative {
    /// The degraded spec.
    pub spec: ResourceSpec,
    /// What was degraded.
    pub degradation: Degradation,
    /// Predicted turnaround of the degraded request, seconds.
    pub predicted_turnaround_s: f64,
}

/// The size multiplier needed when moving from `clock_hi` to `clock_lo`
/// so the slower tier matches the faster tier's turnaround, measured
/// empirically on the DAG (Figure VII-7's "relative RC size
/// threshold"). Returns `None` when no size on the slower tier matches
/// within the DAG width.
pub fn tier_size_threshold(
    dags: &[Dag],
    size_hi: usize,
    clock_hi_mhz: f64,
    clock_lo_mhz: f64,
    cfg: &CurveConfig,
) -> Option<f64> {
    assert!(clock_lo_mhz < clock_hi_mhz);
    let hi_cfg = CurveConfig {
        rc_family: RcFamily {
            clock_mhz: clock_hi_mhz,
            ..cfg.rc_family
        },
        ..*cfg
    };
    let target = mean_turnaround(dags, size_hi, &hi_cfg);
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    let lo_cfg = CurveConfig {
        rc_family: RcFamily {
            clock_mhz: clock_lo_mhz,
            ..cfg.rc_family
        },
        ..*cfg
    };
    // Walk sizes upward from size_hi until the slow tier matches (2%
    // slack) or the width is exhausted.
    let mut s = size_hi.max(1);
    while s <= width {
        let t = mean_turnaround(dags, s, &lo_cfg);
        if t <= target * 1.02 {
            return Some(s as f64 / size_hi.max(1) as f64);
        }
        s = ((s as f64) * 1.25).ceil() as usize;
    }
    None
}

/// Builds the ordered alternative ladder for a spec.
///
/// `clock_tiers` must be descending (e.g. `[3500, 3000, 2500]` MHz);
/// `dags` ground the turnaround predictions.
pub fn alternatives(
    original: &ResourceSpec,
    dags: &[Dag],
    clock_tiers: &[f64],
    cfg: &CurveConfig,
) -> Vec<Alternative> {
    let mut out = Vec::new();
    let eval = |size: usize, clock: f64, het: f64| -> f64 {
        let fam = RcFamily {
            clock_mhz: clock,
            heterogeneity: het,
            ..cfg.rc_family
        };
        mean_turnaround(
            dags,
            size.max(1),
            &CurveConfig {
                rc_family: fam,
                ..*cfg
            },
        )
    };

    // 0. The original.
    out.push(Alternative {
        spec: original.clone(),
        degradation: Degradation::None,
        predicted_turnaround_s: eval(original.rc_size as usize, original.clock_mhz.1, 0.0),
    });

    // 1. Slower clock tiers with compensating size. Tiers are deduped
    // and ordered descending so repeated inputs cannot produce
    // duplicate rungs.
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    let mut tiers: Vec<f64> = clock_tiers
        .iter()
        .copied()
        .filter(|&t| t.is_finite() && t > 0.0 && t < original.clock_mhz.1)
        .collect();
    tiers.sort_by(|a, b| b.total_cmp(a));
    tiers.dedup();
    for tier in tiers {
        let ratio = tier_size_threshold(
            dags,
            original.rc_size as usize,
            original.clock_mhz.1,
            tier,
            cfg,
        )
        .unwrap_or(original.clock_mhz.1 / tier);
        let new_size = (((original.rc_size as f64) * ratio).round() as usize).clamp(1, width);
        let mut spec = original.clone();
        spec.clock_mhz = (tier * (1.0 - het_of(original)), tier);
        spec.rc_size = new_size as u32;
        spec.min_size = spec.min_size.min(spec.rc_size);
        out.push(Alternative {
            spec,
            degradation: Degradation::SlowerClock,
            predicted_turnaround_s: eval(new_size, tier, 0.0),
        });
    }

    // 2. Wider heterogeneity at the original tier — only when the range
    // actually widens (a request already at the 0.6 cap would otherwise
    // repeat rung 0 verbatim).
    {
        let wider = (het_of(original) + 0.3).min(0.6);
        if wider > het_of(original) + 1e-9 {
            let mut spec = original.clone();
            spec.clock_mhz = (original.clock_mhz.1 * (1.0 - wider), original.clock_mhz.1);
            out.push(Alternative {
                spec,
                degradation: Degradation::WiderHeterogeneity,
                predicted_turnaround_s: eval(
                    original.rc_size as usize,
                    original.clock_mhz.1,
                    wider,
                ),
            });
        }
    }

    // 3. Smaller size (the spec's own min_size floor).
    if original.min_size < original.rc_size {
        let mut spec = original.clone();
        spec.rc_size = original.min_size;
        out.push(Alternative {
            spec,
            degradation: Degradation::SmallerSize,
            predicted_turnaround_s: eval(original.min_size as usize, original.clock_mhz.1, 0.0),
        });
    }

    // Keep the original first; order the degraded tail by predicted
    // turnaround.
    out[1..].sort_by(|a, b| {
        a.predicted_turnaround_s
            .total_cmp(&b.predicted_turnaround_s)
    });
    debug_assert!(
        ladder_violations(&out).is_empty(),
        "alternatives() built an inconsistent ladder: {:?}",
        ladder_violations(&out)
    );
    out
}

/// Checks the structural invariants of a degradation ladder and
/// describes every violated one (empty for a healthy ladder): the first
/// rung is the undegraded original, every later rung is strictly weaker
/// than it along its declared degradation axis, the tail is ordered by
/// predicted turnaround, no rung repeats another's spec, and all
/// predictions are finite. `alternatives()` asserts this in debug
/// builds; `rsg-analyze` maps violations onto the SPEC007 diagnostic.
pub fn ladder_violations(ladder: &[Alternative]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(first) = ladder.first() else {
        out.push("ladder is empty".to_string());
        return out;
    };
    if first.degradation != Degradation::None {
        out.push(format!(
            "rung 0 must be the undegraded original, got {:?}",
            first.degradation
        ));
    }
    let orig = &first.spec;
    for (i, alt) in ladder.iter().enumerate() {
        if !alt.predicted_turnaround_s.is_finite() {
            out.push(format!("rung {i}: non-finite predicted turnaround"));
        }
        if i == 0 {
            continue;
        }
        let weaker = match alt.degradation {
            Degradation::None => {
                out.push(format!("rung {i}: duplicate undegraded rung"));
                continue;
            }
            Degradation::SlowerClock => alt.spec.clock_mhz.1 < orig.clock_mhz.1,
            Degradation::WiderHeterogeneity => het_of(&alt.spec) > het_of(orig) + 1e-12,
            Degradation::SmallerSize => alt.spec.rc_size < orig.rc_size,
        };
        if !weaker {
            out.push(format!(
                "rung {i} ({:?}) is not strictly weaker than the original",
                alt.degradation
            ));
        }
    }
    for w in ladder.windows(2).enumerate().skip(1) {
        let (i, pair) = w;
        if pair[0].predicted_turnaround_s > pair[1].predicted_turnaround_s + 1e-9 {
            out.push(format!("degraded tail unordered at rungs {i}..{}", i + 1));
        }
    }
    for (i, a) in ladder.iter().enumerate() {
        for (j, b) in ladder.iter().enumerate().skip(i + 1) {
            if a.spec == b.spec {
                out.push(format!("rungs {i} and {j} carry identical specs"));
            }
        }
    }
    out
}

fn het_of(spec: &ResourceSpec) -> f64 {
    if spec.clock_mhz.1 > 0.0 {
        1.0 - spec.clock_mhz.0 / spec.clock_mhz.1
    } else {
        0.0
    }
}

/// Walks the alternative ladder against a selector callback until one
/// binds; returns the bound index and whatever the selector produced.
///
/// Each rung is asked exactly once (try-once-then-descend), so a
/// selector that always rejects terminates after `ladder.len()` asks.
pub fn negotiate<T>(
    ladder: &[Alternative],
    mut try_bind: impl FnMut(&ResourceSpec) -> Option<T>,
) -> Option<(usize, T)> {
    let policy = RetryPolicy {
        max_attempts_per_rung: 1,
        ..RetryPolicy::default()
    };
    negotiate_with_retry(ladder, &policy, |spec| match try_bind(spec) {
        Some(v) => BindAttempt::Bound {
            value: v,
            latency_s: 0.0,
        },
        None => BindAttempt::Rejected { latency_s: 0.0 },
    })
    .ok()
    .map(|n| (n.rung, n.value))
}

/// Negotiation attempts, by the rung's degradation kind.
fn attempts_counter(d: Degradation) -> &'static Counter {
    static NONE: Counter = Counter::new("core.negotiate.attempts.original");
    static CLOCK: Counter = Counter::new("core.negotiate.attempts.slower_clock");
    static HET: Counter = Counter::new("core.negotiate.attempts.wider_het");
    static SIZE: Counter = Counter::new("core.negotiate.attempts.smaller_size");
    match d {
        Degradation::None => &NONE,
        Degradation::SlowerClock => &CLOCK,
        Degradation::WiderHeterogeneity => &HET,
        Degradation::SmallerSize => &SIZE,
    }
}

/// Negotiations that bound a spec.
static OBS_BOUND: Counter = Counter::new("core.negotiate.bound");
/// Negotiations that terminated unfulfillable.
static OBS_UNFULFILLABLE: Counter = Counter::new("core.negotiate.unfulfillable");
/// Simulated backoff waits.
static OBS_BACKOFF: TimingHistogram = TimingHistogram::new("core.negotiate.backoff");

/// Retry/backoff/deadline knobs for [`negotiate_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Asks per rung before descending on transient failures (permanent
    /// rejections descend after one ask regardless). At least 1.
    pub max_attempts_per_rung: u32,
    /// First backoff wait, seconds; attempt `k` waits
    /// `base · 2^(k−1)`, capped.
    pub backoff_base_s: f64,
    /// Upper bound on a single backoff wait, seconds.
    pub backoff_cap_s: f64,
    /// Per-attempt response deadline: a reply slower than this is
    /// treated as a transient timeout (even a successful bind — the
    /// client already gave up), seconds.
    pub attempt_deadline_s: f64,
    /// Total simulated-time budget for the whole negotiation, seconds.
    pub total_deadline_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts_per_rung: 3,
            backoff_base_s: 0.5,
            backoff_cap_s: 8.0,
            attempt_deadline_s: 30.0,
            total_deadline_s: 300.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based count of failures
    /// so far): capped exponential.
    fn backoff_s(&self, attempt: u32) -> f64 {
        let exp = self.backoff_base_s * 2f64.powi(attempt.saturating_sub(1) as i32);
        exp.min(self.backoff_cap_s)
    }
}

/// One selector response, as the negotiator sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum BindAttempt<T> {
    /// The spec was bound.
    Bound {
        /// What the selector produced.
        value: T,
        /// Simulated response latency, seconds.
        latency_s: f64,
    },
    /// A transient failure (injected rejection, timeout, overload):
    /// retrying the *same* spec may succeed.
    Transient {
        /// Seconds burned on the failed ask.
        latency_s: f64,
    },
    /// A permanent rejection (the platform genuinely lacks matching
    /// resources): descend the ladder, re-asking is futile.
    Rejected {
        /// Seconds burned on the failed ask.
        latency_s: f64,
    },
}

/// Converts a flaky-selector outcome into a negotiator attempt:
/// full fulfillment binds; partial fulfillment binds iff at least
/// `min_size` hosts were delivered; injected rejections and timeouts
/// are transient; an unmatched platform is a permanent rejection.
pub fn attempt_from_outcome(
    outcome: SelectionOutcome,
    min_size: u32,
) -> BindAttempt<ResourceCollection> {
    match outcome {
        SelectionOutcome::Fulfilled { rc, latency_s } => BindAttempt::Bound {
            value: rc,
            latency_s,
        },
        SelectionOutcome::Partial { rc, latency_s, .. } => {
            if rc.len() >= min_size as usize {
                BindAttempt::Bound {
                    value: rc,
                    latency_s,
                }
            } else {
                BindAttempt::Transient { latency_s }
            }
        }
        SelectionOutcome::Rejected { latency_s } | SelectionOutcome::TimedOut { latency_s } => {
            BindAttempt::Transient { latency_s }
        }
        SelectionOutcome::Unmatched { latency_s } => BindAttempt::Rejected { latency_s },
    }
}

/// What a negotiation run did, whichever way it ended.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NegotiationStats {
    /// Selector asks issued.
    pub attempts: u64,
    /// Transient failures seen (including over-deadline replies).
    pub transient_failures: u64,
    /// Permanent rejections seen.
    pub permanent_rejections: u64,
    /// Ladder rungs visited.
    pub rungs_visited: usize,
    /// Simulated seconds spent waiting in backoff.
    pub backoff_total_s: f64,
    /// Total simulated negotiation time: latencies + backoffs, seconds.
    pub elapsed_s: f64,
}

/// A successful negotiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Negotiated<T> {
    /// Index of the rung that bound.
    pub rung: usize,
    /// What the selector produced.
    pub value: T,
    /// How much negotiating it took.
    pub stats: NegotiationStats,
}

/// Terminal failure: the ladder is exhausted or the deadline is spent.
/// No further negotiation can succeed under this policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unfulfillable {
    /// How much negotiating was done before giving up.
    pub stats: NegotiationStats,
    /// True when the total deadline, not ladder exhaustion, ended the
    /// negotiation.
    pub deadline_hit: bool,
}

impl std::fmt::Display for Unfulfillable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unfulfillable after {} attempts over {} rungs ({:.1}s simulated{})",
            self.stats.attempts,
            self.stats.rungs_visited,
            self.stats.elapsed_s,
            if self.deadline_hit {
                ", total deadline hit"
            } else {
                ", ladder exhausted"
            }
        )
    }
}

impl std::error::Error for Unfulfillable {}

/// Walks the ladder against a fallible selector with bounded retries.
///
/// Per rung: up to [`RetryPolicy::max_attempts_per_rung`] asks, with
/// capped exponential backoff between transient failures; a permanent
/// [`BindAttempt::Rejected`] descends immediately. A reply slower than
/// the per-attempt deadline counts as transient (latency clamped to the
/// deadline — the client stopped waiting). The negotiation is bounded:
/// at most `rungs × max_attempts` asks, and the simulated clock
/// (latencies + backoffs) must stay under
/// [`RetryPolicy::total_deadline_s`]. Always terminates with either a
/// [`Negotiated`] bind or an explicit [`Unfulfillable`].
pub fn negotiate_with_retry<T>(
    ladder: &[Alternative],
    policy: &RetryPolicy,
    mut try_bind: impl FnMut(&ResourceSpec) -> BindAttempt<T>,
) -> Result<Negotiated<T>, Unfulfillable> {
    let max_attempts = policy.max_attempts_per_rung.max(1);
    let mut stats = NegotiationStats::default();
    let mut clock_s = 0.0f64;

    for (rung, alt) in ladder.iter().enumerate() {
        stats.rungs_visited = rung + 1;
        let mut failures_on_rung = 0u32;
        for attempt in 1..=max_attempts {
            if clock_s >= policy.total_deadline_s {
                stats.elapsed_s = clock_s;
                OBS_UNFULFILLABLE.incr();
                return Err(Unfulfillable {
                    stats,
                    deadline_hit: true,
                });
            }
            stats.attempts += 1;
            attempts_counter(alt.degradation).incr();
            let reply = try_bind(&alt.spec);
            let (outcome, latency_s) = match reply {
                BindAttempt::Bound { value, latency_s } => {
                    if latency_s <= policy.attempt_deadline_s {
                        clock_s += latency_s;
                        stats.elapsed_s = clock_s;
                        OBS_BOUND.incr();
                        return Ok(Negotiated { rung, value, stats });
                    }
                    // The bind arrived after the client gave up.
                    (BindKind::Transient, policy.attempt_deadline_s)
                }
                BindAttempt::Transient { latency_s } => (
                    BindKind::Transient,
                    latency_s.min(policy.attempt_deadline_s),
                ),
                BindAttempt::Rejected { latency_s } => {
                    (BindKind::Rejected, latency_s.min(policy.attempt_deadline_s))
                }
            };
            clock_s += latency_s;
            match outcome {
                BindKind::Rejected => {
                    stats.permanent_rejections += 1;
                    break; // descend: re-asking this rung is futile
                }
                BindKind::Transient => {
                    stats.transient_failures += 1;
                    failures_on_rung += 1;
                    if attempt < max_attempts {
                        let wait = policy.backoff_s(failures_on_rung);
                        clock_s += wait;
                        stats.backoff_total_s += wait;
                        if rsg_obs::enabled() {
                            OBS_BACKOFF.record_secs(wait);
                        }
                    }
                }
            }
        }
    }
    stats.elapsed_s = clock_s;
    OBS_UNFULFILLABLE.incr();
    Err(Unfulfillable {
        stats,
        deadline_hit: false,
    })
}

/// Internal failure classification after deadline clamping.
enum BindKind {
    Transient,
    Rejected,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_sched::HeuristicKind;
    use rsg_select::vgdl::AggregateKind;

    fn spec(size: u32, clock: f64) -> ResourceSpec {
        ResourceSpec {
            rc_size: size,
            min_size: size / 2,
            clock_mhz: (clock, clock),
            heuristic: HeuristicKind::Mcp,
            aggregate: AggregateKind::TightBagOf,
            threshold: 0.001,
            memory_mb: 512,
        }
    }

    fn dags() -> Vec<Dag> {
        vec![rsg_dag::workflows::fork_join(4, 40, 10.0, 0.05)]
    }

    #[test]
    fn tier_threshold_requires_more_slow_hosts() {
        let ds = dags();
        let cfg = CurveConfig::default();
        // From 3.5 GHz to 3.0 GHz, matching turnaround needs >= 1 x as
        // many hosts (Figure VII-7 reports ratios above 1).
        if let Some(r) = tier_size_threshold(&ds, 10, 3500.0, 3000.0, &cfg) {
            assert!(r >= 1.0, "ratio {r}");
        }
    }

    #[test]
    fn ladder_contains_all_degradations() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        assert_eq!(alts[0].degradation, Degradation::None);
        let kinds: Vec<_> = alts.iter().map(|a| a.degradation).collect();
        assert!(kinds.contains(&Degradation::SlowerClock));
        assert!(kinds.contains(&Degradation::WiderHeterogeneity));
        assert!(kinds.contains(&Degradation::SmallerSize));
        // Degraded tail sorted by predicted turnaround.
        for w in alts[1..].windows(2) {
            assert!(w[0].predicted_turnaround_s <= w[1].predicted_turnaround_s + 1e-9);
        }
    }

    #[test]
    fn ladder_survives_duplicate_tiers_and_capped_het() {
        let ds = dags();
        // Duplicate and unordered tier inputs must not produce
        // duplicate rungs.
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3000.0, 3500.0, 3000.0, 3000.0],
            &CurveConfig::default(),
        );
        assert_eq!(
            alts.iter()
                .filter(|a| a.degradation == Degradation::SlowerClock)
                .count(),
            1
        );
        assert!(ladder_violations(&alts).is_empty());
        // A request already at the 0.6 heterogeneity cap gets no
        // wider-heterogeneity rung (it would repeat the original).
        let mut capped = spec(10, 3500.0);
        capped.clock_mhz = (3500.0 * 0.4, 3500.0);
        let alts = alternatives(&capped, &ds, &[3000.0], &CurveConfig::default());
        assert!(!alts
            .iter()
            .any(|a| a.degradation == Degradation::WiderHeterogeneity));
        assert!(ladder_violations(&alts).is_empty());
    }

    #[test]
    fn ladder_violations_flag_each_defect() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        assert!(ladder_violations(&alts).is_empty());
        assert_eq!(ladder_violations(&[]), vec!["ladder is empty"]);

        // First rung degraded.
        let mut bad = alts.clone();
        bad[0].degradation = Degradation::SmallerSize;
        assert!(ladder_violations(&bad)
            .iter()
            .any(|v| v.contains("undegraded original")));

        // A rung that is not weaker than the original.
        let mut bad = alts.clone();
        if let Some(r) = bad
            .iter_mut()
            .find(|a| a.degradation == Degradation::SlowerClock)
        {
            r.spec.clock_mhz = (3500.0, 3600.0);
        }
        assert!(ladder_violations(&bad)
            .iter()
            .any(|v| v.contains("not strictly weaker")));

        // Unordered tail.
        let mut bad = alts.clone();
        let n = bad.len();
        bad[1].predicted_turnaround_s = bad[n - 1].predicted_turnaround_s + 100.0;
        assert!(ladder_violations(&bad)
            .iter()
            .any(|v| v.contains("unordered")));

        // Duplicate specs.
        let mut bad = alts;
        let clone = bad[0].spec.clone();
        bad[1].spec = clone;
        assert!(ladder_violations(&bad)
            .iter()
            .any(|v| v.contains("identical specs")));
    }

    #[test]
    fn negotiate_walks_until_bind() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        // Selector that rejects everything at 3.5 GHz.
        let result = negotiate(&alts, |s| {
            if s.clock_mhz.1 < 3500.0 {
                Some(s.rc_size)
            } else {
                None
            }
        });
        let (idx, size) = result.unwrap();
        assert!(idx > 0);
        assert!(size >= 1);
        // Selector that always fails.
        assert!(negotiate(&alts, |_| Option::<u32>::None).is_none());
    }

    #[test]
    fn always_reject_selector_terminates_unfulfillable() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        // Permanent rejections: exactly one ask per rung, then descend.
        let mut asks = 0u64;
        let err = negotiate_with_retry(&alts, &RetryPolicy::default(), |_| {
            asks += 1;
            BindAttempt::<u32>::Rejected { latency_s: 0.1 }
        })
        .unwrap_err();
        assert_eq!(asks, alts.len() as u64, "permanent rejects must not re-ask");
        assert_eq!(err.stats.attempts, asks);
        assert_eq!(err.stats.permanent_rejections, asks);
        assert_eq!(err.stats.rungs_visited, alts.len());
        assert!(!err.deadline_hit);

        // Transient failures: bounded by max_attempts_per_rung per rung.
        let policy = RetryPolicy {
            max_attempts_per_rung: 3,
            ..Default::default()
        };
        let mut asks = 0u64;
        let err = negotiate_with_retry(&alts, &policy, |_| {
            asks += 1;
            BindAttempt::<u32>::Transient { latency_s: 0.1 }
        })
        .unwrap_err();
        assert_eq!(asks, 3 * alts.len() as u64);
        assert_eq!(err.stats.transient_failures, asks);
        assert!(err.stats.backoff_total_s > 0.0);
        assert!(!err.deadline_hit);
    }

    #[test]
    fn transient_then_bind_retries_same_rung_with_backoff() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        let mut calls = 0u32;
        let n = negotiate_with_retry(&alts, &RetryPolicy::default(), |s| {
            calls += 1;
            if calls < 3 {
                BindAttempt::Transient { latency_s: 1.0 }
            } else {
                BindAttempt::Bound {
                    value: s.rc_size,
                    latency_s: 1.0,
                }
            }
        })
        .unwrap();
        // Two transient failures then a bind — all on the original rung.
        assert_eq!(n.rung, 0);
        assert_eq!(n.stats.attempts, 3);
        assert_eq!(n.stats.transient_failures, 2);
        // Backoff: 0.5 + 1.0; elapsed: 3 x 1.0s latency + 1.5s backoff.
        assert!((n.stats.backoff_total_s - 1.5).abs() < 1e-12);
        assert!((n.stats.elapsed_s - 4.5).abs() < 1e-12);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            backoff_base_s: 0.5,
            backoff_cap_s: 4.0,
            ..Default::default()
        };
        assert_eq!(p.backoff_s(1), 0.5);
        assert_eq!(p.backoff_s(2), 1.0);
        assert_eq!(p.backoff_s(3), 2.0);
        assert_eq!(p.backoff_s(4), 4.0);
        assert_eq!(p.backoff_s(10), 4.0, "cap must hold");
    }

    #[test]
    fn slow_bind_counts_as_transient_timeout() {
        let ds = dags();
        let alts = alternatives(&spec(10, 3500.0), &ds, &[3500.0], &CurveConfig::default());
        let policy = RetryPolicy {
            max_attempts_per_rung: 1,
            attempt_deadline_s: 5.0,
            ..Default::default()
        };
        // Every reply "succeeds" but takes 60s > 5s deadline: the
        // client never sees a bind.
        let err = negotiate_with_retry(&alts, &policy, |s| BindAttempt::Bound {
            value: s.rc_size,
            latency_s: 60.0,
        })
        .unwrap_err();
        assert_eq!(err.stats.transient_failures, err.stats.attempts);
        // Each ask burned only the deadline, not the full latency.
        assert!((err.stats.elapsed_s - 5.0 * err.stats.attempts as f64).abs() < 1e-9);
    }

    #[test]
    fn total_deadline_terminates_negotiation() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        let policy = RetryPolicy {
            max_attempts_per_rung: 100,
            backoff_base_s: 10.0,
            backoff_cap_s: 10.0,
            total_deadline_s: 35.0,
            ..Default::default()
        };
        let err = negotiate_with_retry(&alts, &policy, |_| BindAttempt::<u32>::Transient {
            latency_s: 1.0,
        })
        .unwrap_err();
        assert!(err.deadline_hit);
        // 1s ask + 10s backoff per attempt: the 35s budget allows ~4
        // asks, far below 100 per rung.
        assert!(err.stats.attempts <= 5, "attempts {}", err.stats.attempts);
    }

    #[test]
    fn attempt_mapping_from_selector_outcomes() {
        let rc = |n: usize| rsg_platform::ResourceCollection::homogeneous(n, 1500.0);
        assert!(matches!(
            attempt_from_outcome(
                SelectionOutcome::Fulfilled {
                    rc: rc(10),
                    latency_s: 0.5
                },
                5
            ),
            BindAttempt::Bound { .. }
        ));
        // Partial above the floor binds; below it is transient.
        assert!(matches!(
            attempt_from_outcome(
                SelectionOutcome::Partial {
                    rc: rc(6),
                    found: 10,
                    latency_s: 0.5
                },
                5
            ),
            BindAttempt::Bound { .. }
        ));
        assert!(matches!(
            attempt_from_outcome(
                SelectionOutcome::Partial {
                    rc: rc(3),
                    found: 10,
                    latency_s: 0.5
                },
                5
            ),
            BindAttempt::Transient { .. }
        ));
        assert!(matches!(
            attempt_from_outcome(SelectionOutcome::Rejected { latency_s: 0.5 }, 5),
            BindAttempt::Transient { .. }
        ));
        assert!(matches!(
            attempt_from_outcome(SelectionOutcome::TimedOut { latency_s: 60.0 }, 5),
            BindAttempt::Transient { .. }
        ));
        assert!(matches!(
            attempt_from_outcome(SelectionOutcome::Unmatched { latency_s: 0.5 }, 5),
            BindAttempt::Rejected { .. }
        ));
    }

    #[test]
    fn legacy_negotiate_still_walks_once_per_rung() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        let mut asks = 0usize;
        let result = negotiate(&alts, |s| {
            asks += 1;
            (s.clock_mhz.1 < 3500.0).then_some(s.rc_size)
        });
        let (idx, _) = result.unwrap();
        assert!(idx > 0);
        assert_eq!(asks, idx + 1, "one ask per rung up to the bind");
    }

    #[test]
    fn slower_tier_size_never_exceeds_width() {
        let ds = dags();
        let width = ds[0].width();
        let alts = alternatives(
            &spec(width, 3500.0),
            &ds,
            &[3500.0, 1750.0],
            &CurveConfig::default(),
        );
        for a in &alts {
            assert!(a.spec.rc_size <= width);
        }
    }
}
