//! Alternative resource specifications (Section VII.4).
//!
//! When the best resource request cannot be fulfilled — not enough
//! 3.5 GHz hosts, say — the generator degrades the specification along
//! an ordered ladder instead of failing: (1) a slower clock tier with a
//! compensating size increase (the Figure VII-6/VII-7 trade-off), (2) a
//! wider heterogeneity tolerance, (3) the smaller RC size of a more
//! permissive knee threshold. A negotiation loop walks the ladder
//! against an actual selector until something binds.

use crate::curve::{mean_turnaround, CurveConfig, RcFamily};
use crate::specgen::ResourceSpec;
use rsg_dag::Dag;

/// How a spec was degraded relative to the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// The original request.
    None,
    /// Moved to a slower clock tier with a compensating size increase.
    SlowerClock,
    /// Widened the tolerated clock range.
    WiderHeterogeneity,
    /// Accepted a smaller collection (more permissive threshold).
    SmallerSize,
}

/// An alternative specification with its provenance and its predicted
/// turnaround (for ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct Alternative {
    /// The degraded spec.
    pub spec: ResourceSpec,
    /// What was degraded.
    pub degradation: Degradation,
    /// Predicted turnaround of the degraded request, seconds.
    pub predicted_turnaround_s: f64,
}

/// The size multiplier needed when moving from `clock_hi` to `clock_lo`
/// so the slower tier matches the faster tier's turnaround, measured
/// empirically on the DAG (Figure VII-7's "relative RC size
/// threshold"). Returns `None` when no size on the slower tier matches
/// within the DAG width.
pub fn tier_size_threshold(
    dags: &[Dag],
    size_hi: usize,
    clock_hi_mhz: f64,
    clock_lo_mhz: f64,
    cfg: &CurveConfig,
) -> Option<f64> {
    assert!(clock_lo_mhz < clock_hi_mhz);
    let hi_cfg = CurveConfig {
        rc_family: RcFamily {
            clock_mhz: clock_hi_mhz,
            ..cfg.rc_family
        },
        ..*cfg
    };
    let target = mean_turnaround(dags, size_hi, &hi_cfg);
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    let lo_cfg = CurveConfig {
        rc_family: RcFamily {
            clock_mhz: clock_lo_mhz,
            ..cfg.rc_family
        },
        ..*cfg
    };
    // Walk sizes upward from size_hi until the slow tier matches (2%
    // slack) or the width is exhausted.
    let mut s = size_hi.max(1);
    while s <= width {
        let t = mean_turnaround(dags, s, &lo_cfg);
        if t <= target * 1.02 {
            return Some(s as f64 / size_hi.max(1) as f64);
        }
        s = ((s as f64) * 1.25).ceil() as usize;
    }
    None
}

/// Builds the ordered alternative ladder for a spec.
///
/// `clock_tiers` must be descending (e.g. `[3500, 3000, 2500]` MHz);
/// `dags` ground the turnaround predictions.
pub fn alternatives(
    original: &ResourceSpec,
    dags: &[Dag],
    clock_tiers: &[f64],
    cfg: &CurveConfig,
) -> Vec<Alternative> {
    let mut out = Vec::new();
    let eval = |size: usize, clock: f64, het: f64| -> f64 {
        let fam = RcFamily {
            clock_mhz: clock,
            heterogeneity: het,
            ..cfg.rc_family
        };
        mean_turnaround(
            dags,
            size.max(1),
            &CurveConfig {
                rc_family: fam,
                ..*cfg
            },
        )
    };

    // 0. The original.
    out.push(Alternative {
        spec: original.clone(),
        degradation: Degradation::None,
        predicted_turnaround_s: eval(original.rc_size as usize, original.clock_mhz.1, 0.0),
    });

    // 1. Slower clock tiers with compensating size.
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    for &tier in clock_tiers.iter().filter(|&&t| t < original.clock_mhz.1) {
        let ratio = tier_size_threshold(
            dags,
            original.rc_size as usize,
            original.clock_mhz.1,
            tier,
            cfg,
        )
        .unwrap_or(original.clock_mhz.1 / tier);
        let new_size = (((original.rc_size as f64) * ratio).round() as usize).clamp(1, width);
        let mut spec = original.clone();
        spec.clock_mhz = (tier * (1.0 - het_of(original)), tier);
        spec.rc_size = new_size as u32;
        spec.min_size = spec.min_size.min(spec.rc_size);
        out.push(Alternative {
            spec,
            degradation: Degradation::SlowerClock,
            predicted_turnaround_s: eval(new_size, tier, 0.0),
        });
    }

    // 2. Wider heterogeneity at the original tier.
    {
        let wider = (het_of(original) + 0.3).min(0.6);
        let mut spec = original.clone();
        spec.clock_mhz = (original.clock_mhz.1 * (1.0 - wider), original.clock_mhz.1);
        out.push(Alternative {
            spec,
            degradation: Degradation::WiderHeterogeneity,
            predicted_turnaround_s: eval(original.rc_size as usize, original.clock_mhz.1, wider),
        });
    }

    // 3. Smaller size (the spec's own min_size floor).
    if original.min_size < original.rc_size {
        let mut spec = original.clone();
        spec.rc_size = original.min_size;
        out.push(Alternative {
            spec,
            degradation: Degradation::SmallerSize,
            predicted_turnaround_s: eval(original.min_size as usize, original.clock_mhz.1, 0.0),
        });
    }

    // Keep the original first; order the degraded tail by predicted
    // turnaround.
    out[1..].sort_by(|a, b| {
        a.predicted_turnaround_s
            .total_cmp(&b.predicted_turnaround_s)
    });
    out
}

fn het_of(spec: &ResourceSpec) -> f64 {
    if spec.clock_mhz.1 > 0.0 {
        1.0 - spec.clock_mhz.0 / spec.clock_mhz.1
    } else {
        0.0
    }
}

/// Walks the alternative ladder against a selector callback until one
/// binds; returns the bound index and whatever the selector produced.
pub fn negotiate<T>(
    ladder: &[Alternative],
    mut try_bind: impl FnMut(&ResourceSpec) -> Option<T>,
) -> Option<(usize, T)> {
    for (i, alt) in ladder.iter().enumerate() {
        if let Some(bound) = try_bind(&alt.spec) {
            return Some((i, bound));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_sched::HeuristicKind;
    use rsg_select::vgdl::AggregateKind;

    fn spec(size: u32, clock: f64) -> ResourceSpec {
        ResourceSpec {
            rc_size: size,
            min_size: size / 2,
            clock_mhz: (clock, clock),
            heuristic: HeuristicKind::Mcp,
            aggregate: AggregateKind::TightBagOf,
            threshold: 0.001,
            memory_mb: 512,
        }
    }

    fn dags() -> Vec<Dag> {
        vec![rsg_dag::workflows::fork_join(4, 40, 10.0, 0.05)]
    }

    #[test]
    fn tier_threshold_requires_more_slow_hosts() {
        let ds = dags();
        let cfg = CurveConfig::default();
        // From 3.5 GHz to 3.0 GHz, matching turnaround needs >= 1 x as
        // many hosts (Figure VII-7 reports ratios above 1).
        if let Some(r) = tier_size_threshold(&ds, 10, 3500.0, 3000.0, &cfg) {
            assert!(r >= 1.0, "ratio {r}");
        }
    }

    #[test]
    fn ladder_contains_all_degradations() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        assert_eq!(alts[0].degradation, Degradation::None);
        let kinds: Vec<_> = alts.iter().map(|a| a.degradation).collect();
        assert!(kinds.contains(&Degradation::SlowerClock));
        assert!(kinds.contains(&Degradation::WiderHeterogeneity));
        assert!(kinds.contains(&Degradation::SmallerSize));
        // Degraded tail sorted by predicted turnaround.
        for w in alts[1..].windows(2) {
            assert!(w[0].predicted_turnaround_s <= w[1].predicted_turnaround_s + 1e-9);
        }
    }

    #[test]
    fn negotiate_walks_until_bind() {
        let ds = dags();
        let alts = alternatives(
            &spec(10, 3500.0),
            &ds,
            &[3500.0, 3000.0],
            &CurveConfig::default(),
        );
        // Selector that rejects everything at 3.5 GHz.
        let result = negotiate(&alts, |s| {
            if s.clock_mhz.1 < 3500.0 {
                Some(s.rc_size)
            } else {
                None
            }
        });
        let (idx, size) = result.unwrap();
        assert!(idx > 0);
        assert!(size >= 1);
        // Selector that always fails.
        assert!(negotiate(&alts, |_| Option::<u32>::None).is_none());
    }

    #[test]
    fn slower_tier_size_never_exceeds_width() {
        let ds = dags();
        let width = ds[0].width();
        let alts = alternatives(
            &spec(width, 3500.0),
            &ds,
            &[3500.0, 1750.0],
            &CurveConfig::default(),
        );
        for a in &alts {
            assert!(a.spec.rc_size <= width);
        }
    }
}
