//! The heuristic prediction model (Chapter VI).
//!
//! Application performance depends on the scheduling heuristic as much
//! as on the RC: MCP wins for small DAGs where its placement quality
//! dominates, cheaper heuristics (FCA) win for large DAGs where MCP's
//! scheduling time eats the gains (Figure VI-1), with the crossover
//! depending on CCR (Figure VI-2). The model tabulates, per `(DAG
//! size, CCR)` cell, the heuristic with the best *optimal turnaround*
//! (each heuristic evaluated at its own best RC size) and predicts by
//! nearest grid cell (log-scale on size).

use crate::curve::{turnaround_curve, CurveConfig};
use rayon::prelude::*;
use rsg_dag::{DagStats, RandomDagSpec};
use rsg_sched::HeuristicKind;

/// Per-cell training result.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// DAG size of the cell.
    pub size: usize,
    /// CCR of the cell.
    pub ccr: f64,
    /// Optimal turnaround per heuristic, seconds (each at its own best
    /// RC size) — the Figure VI-1 series.
    pub optimal_turnaround: Vec<(HeuristicKind, f64)>,
}

impl CellResult {
    /// The winning heuristic of the cell.
    pub fn best(&self) -> HeuristicKind {
        self.optimal_turnaround
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one heuristic")
            .0
    }
}

/// Trained heuristic prediction model.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicPredictionModel {
    /// Grid sizes (ascending).
    pub sizes: Vec<usize>,
    /// Grid CCRs (ascending).
    pub ccrs: Vec<f64>,
    /// Training detail per cell, row-major `(size, ccr)`.
    pub cells: Vec<CellResult>,
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct HeuristicTraining {
    /// DAG sizes of the observation set (Table VI-1).
    pub sizes: Vec<usize>,
    /// CCR values.
    pub ccrs: Vec<f64>,
    /// Heuristics to compare.
    pub heuristics: Vec<HeuristicKind>,
    /// Fixed parallelism of the training DAGs.
    pub alpha: f64,
    /// Fixed regularity.
    pub beta: f64,
    /// Instances per cell.
    pub instances: usize,
    /// Mean computational cost.
    pub mean_comp: f64,
    /// Density of the training DAGs.
    pub density: f64,
}

impl HeuristicTraining {
    /// A fast preset (minutes of training) comparing MCP against the
    /// cheap heuristics. The size range reaches far enough for MCP's
    /// scheduling time to lose the lead (the Figure VI-1 crossover),
    /// with the mean cost scaled down to keep makespans commensurate.
    pub fn fast() -> HeuristicTraining {
        HeuristicTraining {
            sizes: vec![200, 1000, 4000],
            ccrs: vec![0.01, 0.5],
            heuristics: vec![
                HeuristicKind::Mcp,
                HeuristicKind::Fca,
                HeuristicKind::Fcfs,
                HeuristicKind::Greedy,
            ],
            alpha: 0.8,
            beta: 0.8,
            instances: 2,
            mean_comp: 5.0,
            density: 0.2,
        }
    }

    /// The Table VI-1 observation set (paper scale).
    pub fn paper() -> HeuristicTraining {
        HeuristicTraining {
            sizes: vec![100, 500, 1000, 5000, 10_000],
            ccrs: vec![0.01, 0.1, 0.3, 0.5, 0.8, 1.0],
            heuristics: vec![
                HeuristicKind::Mcp,
                HeuristicKind::Dls,
                HeuristicKind::Fca,
                HeuristicKind::Fcfs,
            ],
            alpha: 0.7,
            beta: 0.5,
            instances: 10,
            mean_comp: 40.0,
            density: 0.5,
        }
    }
}

impl HeuristicPredictionModel {
    /// Trains the model: per cell, per heuristic, the minimum of the
    /// turnaround-vs-size curve.
    pub fn train(t: &HeuristicTraining, base: &CurveConfig) -> HeuristicPredictionModel {
        let _span = rsg_obs::span("train_heuristic");
        let cells: Vec<(usize, f64)> = t
            .sizes
            .iter()
            .flat_map(|&n| t.ccrs.iter().map(move |&c| (n, c)))
            .collect();
        let results: Vec<CellResult> = cells
            .par_iter()
            .map(|&(n, ccr)| {
                let spec = RandomDagSpec {
                    size: n,
                    ccr,
                    parallelism: t.alpha,
                    density: t.density,
                    regularity: t.beta,
                    mean_comp: t.mean_comp,
                };
                let dags: Vec<_> = (0..t.instances)
                    .map(|k| spec.generate(0xC0FFEE ^ (n as u64) << 20 ^ (k as u64)))
                    .collect();
                let optimal_turnaround = t
                    .heuristics
                    .iter()
                    .map(|&h| {
                        let cfg = CurveConfig {
                            heuristic: h,
                            ..*base
                        };
                        let curve = turnaround_curve(&dags, &cfg);
                        (h, curve.argmin().1)
                    })
                    .collect();
                CellResult {
                    size: n,
                    ccr,
                    optimal_turnaround,
                }
            })
            .collect();
        HeuristicPredictionModel {
            sizes: t.sizes.clone(),
            ccrs: t.ccrs.clone(),
            cells: results,
        }
    }

    /// A degenerate single-cell model that always predicts `h` — the
    /// default when no trained heuristic model is supplied (the CLI and
    /// the serving registry both fall back to this; construction is
    /// free, no training runs). It still emits the `train_heuristic`
    /// span so run reports show the heuristic-model stage regardless of
    /// which path produced the model.
    pub fn fixed(h: HeuristicKind) -> HeuristicPredictionModel {
        let _span = rsg_obs::span("train_heuristic");
        HeuristicPredictionModel {
            sizes: vec![1],
            ccrs: vec![0.0],
            cells: vec![CellResult {
                size: 1,
                ccr: 0.0,
                optimal_turnaround: vec![(h, 0.0)],
            }],
        }
    }

    /// Cell at grid indices.
    pub fn cell(&self, si: usize, ci: usize) -> &CellResult {
        &self.cells[si * self.ccrs.len() + ci]
    }

    /// Predicts the best heuristic for a DAG by nearest grid cell
    /// (log-scale distance on size, linear on CCR).
    pub fn predict(&self, stats: &DagStats) -> HeuristicKind {
        self.predict_chars(stats.size as f64, stats.ccr)
    }

    /// Predicts from explicit characteristics.
    pub fn predict_chars(&self, n: f64, ccr: f64) -> HeuristicKind {
        let si = nearest_log(&self.sizes, n);
        let ci = nearest(&self.ccrs, ccr);
        self.cell(si, ci).best()
    }

    /// The crossover DAG size (if any) at which the winner at the given
    /// CCR switches away from MCP — the Figure VI-2 boundary.
    pub fn mcp_crossover_size(&self, ccr: f64) -> Option<usize> {
        let ci = nearest(&self.ccrs, ccr);
        let mut saw_mcp = false;
        for (si, &n) in self.sizes.iter().enumerate() {
            let best = self.cell(si, ci).best();
            if best == HeuristicKind::Mcp {
                saw_mcp = true;
            } else if saw_mcp {
                return Some(n);
            }
        }
        None
    }
}

fn nearest(xs: &[f64], x: f64) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| (*a - x).abs().total_cmp(&(*b - x).abs()))
        .map_or(0, |(i, _)| i)
}

fn nearest_log(xs: &[usize], x: f64) -> usize {
    let lx = x.max(1.0).ln();
    xs.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            ((**a as f64).ln() - lx)
                .abs()
                .total_cmp(&(((**b as f64).ln()) - lx).abs())
        })
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> HeuristicPredictionModel {
        let mut t = HeuristicTraining::fast();
        t.sizes = vec![50, 200];
        t.instances = 2;
        HeuristicPredictionModel::train(&t, &CurveConfig::default())
    }

    #[test]
    fn training_produces_all_cells() {
        let m = trained();
        assert_eq!(m.cells.len(), 2 * 2);
        for c in &m.cells {
            assert_eq!(c.optimal_turnaround.len(), 4);
            assert!(c.optimal_turnaround.iter().all(|(_, t)| *t > 0.0));
        }
    }

    #[test]
    fn prediction_returns_trained_heuristic() {
        let m = trained();
        let h = m.predict_chars(100.0, 0.1);
        assert!([
            HeuristicKind::Mcp,
            HeuristicKind::Fca,
            HeuristicKind::Fcfs,
            HeuristicKind::Greedy
        ]
        .contains(&h));
    }

    #[test]
    fn nearest_helpers() {
        assert_eq!(nearest(&[0.01, 0.5, 1.0], 0.4), 1);
        assert_eq!(nearest(&[0.01, 0.5, 1.0], 0.05), 0);
        assert_eq!(nearest_log(&[100, 1000, 10000], 3000.0), 1);
        assert_eq!(nearest_log(&[100, 1000, 10000], 4000.0), 2);
    }

    #[test]
    fn best_is_minimum() {
        let c = CellResult {
            size: 10,
            ccr: 0.1,
            optimal_turnaround: vec![
                (HeuristicKind::Mcp, 5.0),
                (HeuristicKind::Fca, 3.0),
                (HeuristicKind::Fcfs, 9.0),
            ],
        };
        assert_eq!(c.best(), HeuristicKind::Fca);
    }

    #[test]
    fn crossover_detection() {
        // Construct a model by hand: MCP wins small, FCA wins large.
        let mk = |size: usize, winner: HeuristicKind| CellResult {
            size,
            ccr: 0.1,
            optimal_turnaround: vec![
                (
                    HeuristicKind::Mcp,
                    if winner == HeuristicKind::Mcp {
                        1.0
                    } else {
                        2.0
                    },
                ),
                (
                    HeuristicKind::Fca,
                    if winner == HeuristicKind::Fca {
                        1.0
                    } else {
                        2.0
                    },
                ),
            ],
        };
        let m = HeuristicPredictionModel {
            sizes: vec![100, 1000, 10000],
            ccrs: vec![0.1],
            cells: vec![
                mk(100, HeuristicKind::Mcp),
                mk(1000, HeuristicKind::Mcp),
                mk(10000, HeuristicKind::Fca),
            ],
        };
        assert_eq!(m.mcp_crossover_size(0.1), Some(10000));
        assert_eq!(m.predict_chars(150.0, 0.1), HeuristicKind::Mcp);
        assert_eq!(m.predict_chars(9000.0, 0.1), HeuristicKind::Fca);
    }
}
