//! SCR — scheduling-to-computation clock-rate ratio (Section V.7).
//!
//! The knee exists because scheduling time grows with RC size; a faster
//! scheduler (higher SCR) pushes the knee outward, a slower one pulls
//! it in. The paper plots predicted RC size change against SCR
//! (Figures V-18…V-22) and fits per-configuration formulas (Figures
//! V-23/V-24). We model the shift as a power law `knee(SCR) ≈ knee(1) ·
//! SCR^γ` fitted on log-log samples.

use crate::curve::{turnaround_curve, CurveConfig};
use crate::knee::find_knee;
use rsg_dag::Dag;
use rsg_sched::SchedTimeModel;

/// One SCR sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrPoint {
    /// Scheduler-to-compute clock ratio (1 = the paper's 2.80 GHz
    /// scheduler with the default compute clock).
    pub scr: f64,
    /// Measured knee at this SCR.
    pub knee: usize,
}

/// Sweeps the scheduler clock and measures the knee at each SCR.
pub fn scr_sweep(dags: &[Dag], base: &CurveConfig, scrs: &[f64], theta: f64) -> Vec<ScrPoint> {
    scrs.iter()
        .map(|&scr| {
            let cfg = CurveConfig {
                time_model: SchedTimeModel {
                    scheduler_clock_mhz: rsg_sched::SCHEDULER_CLOCK_MHZ * scr,
                    ..base.time_model
                },
                ..*base
            };
            let curve = turnaround_curve(dags, &cfg);
            ScrPoint {
                scr,
                knee: find_knee(&curve, theta),
            }
        })
        .collect()
}

/// Fitted power law `knee(SCR) = k1 · SCR^γ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrModel {
    /// Knee at SCR = 1.
    pub k1: f64,
    /// Exponent γ ≥ 0 (faster scheduler, bigger best RC).
    pub gamma: f64,
}

impl ScrModel {
    /// Fits on log-log least squares.
    pub fn fit(points: &[ScrPoint]) -> ScrModel {
        assert!(points.len() >= 2);
        let xs: Vec<f64> = points.iter().map(|p| p.scr.ln()).collect();
        let ys: Vec<f64> = points.iter().map(|p| (p.knee.max(1) as f64).ln()).collect();
        let n = xs.len() as f64;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let den = n * sxx - sx * sx;
        let gamma = if den.abs() < 1e-12 {
            0.0
        } else {
            (n * sxy - sx * sy) / den
        };
        let intercept = (sy - gamma * sx) / n;
        ScrModel {
            k1: intercept.exp(),
            gamma,
        }
    }

    /// Knee predicted at a given SCR.
    pub fn predict(&self, scr: f64) -> f64 {
        (self.k1 * scr.powf(self.gamma)).max(1.0)
    }

    /// Scales an externally predicted size from SCR = 1 to `scr`.
    pub fn rescale(&self, size_at_unit_scr: usize, scr: f64) -> usize {
        ((size_at_unit_scr as f64) * scr.powf(self.gamma))
            .round()
            .max(1.0) as usize
    }

    /// Renders the fitted formula (the Figure V-23 presentation).
    pub fn formula(&self) -> String {
        format!("knee(SCR) = {:.1} * SCR^{:.3}", self.k1, self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;

    #[test]
    fn fit_recovers_power_law() {
        let pts = vec![
            ScrPoint { scr: 0.5, knee: 71 },
            ScrPoint {
                scr: 1.0,
                knee: 100,
            },
            ScrPoint {
                scr: 2.0,
                knee: 141,
            },
            ScrPoint {
                scr: 4.0,
                knee: 200,
            },
        ];
        let m = ScrModel::fit(&pts);
        assert!((m.gamma - 0.5).abs() < 0.02, "gamma {}", m.gamma);
        assert!((m.k1 - 100.0).abs() < 3.0, "k1 {}", m.k1);
        assert!((m.predict(1.0) - 100.0).abs() < 3.0);
        assert_eq!(
            m.rescale(100, 4.0),
            ((100.0 * 4.0f64.powf(m.gamma)).round()) as usize
        );
        assert!(m.formula().starts_with("knee(SCR) ="));
    }

    #[test]
    fn sweep_knee_monotone_in_scr() {
        // Faster scheduler -> scheduling gets cheaper -> the knee moves
        // to (weakly) larger RCs.
        let dags: Vec<Dag> = (0..2)
            .map(|s| {
                RandomDagSpec {
                    size: 200,
                    ccr: 0.05,
                    parallelism: 0.7,
                    density: 0.5,
                    regularity: 0.8,
                    mean_comp: 5.0,
                }
                .generate(s)
            })
            .collect();
        // Use a deliberately expensive per-op cost so scheduling time
        // matters at this small scale.
        let cfg = CurveConfig {
            time_model: SchedTimeModel {
                sec_per_op: 2e-4,
                ..SchedTimeModel::default()
            },
            ..CurveConfig::default()
        };
        let pts = scr_sweep(&dags, &cfg, &[0.25, 1.0, 4.0], 0.02);
        assert!(
            pts[0].knee <= pts[2].knee,
            "knee at SCR 0.25 ({}) should not exceed knee at SCR 4 ({})",
            pts[0].knee,
            pts[2].knee
        );
    }

    #[test]
    fn degenerate_single_scr_fit() {
        let pts = vec![
            ScrPoint { scr: 1.0, knee: 50 },
            ScrPoint { scr: 1.0, knee: 50 },
        ];
        let m = ScrModel::fit(&pts);
        assert_eq!(m.gamma, 0.0);
        assert!((m.predict(8.0) - 50.0).abs() < 1.0);
    }
}
