//! Turnaround-vs-RC-size curves (Figures V-2 / V-3).
//!
//! The raw material of the size prediction model: for one DAG
//! configuration (averaged over instances), evaluate the application
//! turn-around time over a ladder of RC sizes built from one consistent
//! host family.

use rsg_dag::Dag;
use rsg_obs::Counter;
use rsg_platform::ResourceCollection;
use rsg_sched::{
    evaluate, evaluate_prefix, evaluate_reference, HeuristicKind, SchedTimeModel, TurnaroundReport,
};
use std::collections::HashMap;

/// [`CurveEvaluator`] lookups served from the per-size memo.
static OBS_CURVE_MEMO_HITS: Counter = Counter::new("core.curve.memo_hits");
/// [`CurveEvaluator`] lookups that had to schedule (memo misses).
static OBS_CURVE_MEMO_MISSES: Counter = Counter::new("core.curve.memo_misses");
/// Times a [`CurveEvaluator`] outgrew its RC and rebuilt it.
static OBS_CURVE_RC_REBUILDS: Counter = Counter::new("core.curve.rc_rebuilds");

/// A family of resource collections parameterized only by size, so that
/// curves vary exactly one variable (prefix-stable heterogeneous draws,
/// see [`ResourceCollection::heterogeneous`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcFamily {
    /// Nominal (fastest) clock, MHz.
    pub clock_mhz: f64,
    /// Clock heterogeneity in `[0, 1)` (0 = homogeneous, Section V.4).
    pub heterogeneity: f64,
    /// Bandwidth heterogeneity in `[0, 1)` (Section V.5).
    pub bw_heterogeneity: f64,
    /// Seed of the host draws.
    pub seed: u64,
}

impl RcFamily {
    /// Homogeneous family at the given clock — the Chapter V baseline.
    pub fn homogeneous(clock_mhz: f64) -> RcFamily {
        RcFamily {
            clock_mhz,
            heterogeneity: 0.0,
            bw_heterogeneity: 0.0,
            seed: 0,
        }
    }

    /// Homogeneous family at the DAG reference clock (speed factor 1).
    pub fn reference() -> RcFamily {
        Self::homogeneous(rsg_dag::REFERENCE_CLOCK_MHZ)
    }

    /// Builds the RC of a given size.
    pub fn build(&self, size: usize) -> ResourceCollection {
        let rc = if self.heterogeneity == 0.0 {
            ResourceCollection::homogeneous(size, self.clock_mhz)
        } else {
            ResourceCollection::heterogeneous(size, self.clock_mhz, self.heterogeneity, self.seed)
        };
        if self.bw_heterogeneity > 0.0 {
            rc.with_bandwidth_heterogeneity(self.bw_heterogeneity, self.seed ^ 0xBEEF)
        } else {
            rc
        }
    }
}

/// Everything fixed while a curve sweeps RC size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveConfig {
    /// Scheduling heuristic.
    pub heuristic: HeuristicKind,
    /// Scheduling-time model.
    pub time_model: SchedTimeModel,
    /// Host family.
    pub rc_family: RcFamily,
}

impl Default for CurveConfig {
    fn default() -> Self {
        CurveConfig {
            heuristic: HeuristicKind::Mcp,
            time_model: SchedTimeModel::default(),
            rc_family: RcFamily::reference(),
        }
    }
}

/// A sampled turnaround-vs-size curve: `(rc_size, mean turnaround)`
/// pairs in increasing size order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Curve {
    /// Sampled points.
    pub points: Vec<(usize, f64)>,
}

impl Curve {
    /// The size with the lowest turnaround (smallest such size on ties).
    pub fn argmin(&self) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for &(s, t) in &self.points {
            if t < best.1 {
                best = (s, t);
            }
        }
        best
    }

    /// Turnaround at a sampled size, if that exact size was sampled.
    pub fn at(&self, size: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(_, t)| *t)
    }
}

/// Geometric size ladder from 1 to `max` (inclusive), growth ~1.35,
/// always containing 1, 2 and `max`.
pub fn size_ladder(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut out = vec![1usize];
    let mut x = 2.0f64;
    while (x as usize) < max {
        let v = x as usize;
        if *out.last().unwrap() != v {
            out.push(v);
        }
        x *= 1.35;
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

/// Mean turnaround of `dags` on RCs of the exact given size.
///
/// Builds a fresh RC per call — the simple reference path. Sweeps that
/// revisit sizes (curves, knee refinement, the optimal-size search)
/// should go through a [`CurveEvaluator`], which reuses one max-size RC
/// across all sizes and memoizes results, with bit-identical numbers.
pub fn mean_turnaround(dags: &[Dag], size: usize, cfg: &CurveConfig) -> f64 {
    let rc = cfg.rc_family.build(size);
    let total: f64 = dags
        .iter()
        .map(|d| evaluate(d, &rc, cfg.heuristic, &cfg.time_model).turnaround_s())
        .sum();
    total / dags.len() as f64
}

/// [`mean_turnaround`] through the reference (fast-kernel-free)
/// heuristic implementations: fresh RC per call, full host scans. The
/// before-optimization baseline of the sweep benchmark; returns the
/// same numbers as every optimized path.
pub fn mean_turnaround_reference(dags: &[Dag], size: usize, cfg: &CurveConfig) -> f64 {
    let rc = cfg.rc_family.build(size);
    let total: f64 = dags
        .iter()
        .map(|d| evaluate_reference(d, &rc, cfg.heuristic, &cfg.time_model).turnaround_s())
        .sum();
    total / dags.len() as f64
}

/// Memoizing turnaround evaluator over one `(dags, cfg)` pair.
///
/// Two reuse layers, both bit-identical to [`mean_turnaround`]:
///
/// * **RC prefix reuse** — one maximum-size RC is built and every
///   smaller size is evaluated as a prefix view of it
///   ([`evaluate_prefix`]). Valid because [`RcFamily`] draws are
///   prefix-stable: `build(k)` equals the first `k` hosts of
///   `build(n)` for any `n ≥ k`.
/// * **Per-size memoization** — curve sampling, knee refinement (which
///   bisects over already-sampled neighborhoods, once per threshold)
///   and the Table V-3 search revisit sizes; each size is scheduled
///   once.
pub struct CurveEvaluator<'a> {
    dags: &'a [Dag],
    cfg: CurveConfig,
    rc: ResourceCollection,
    memo: HashMap<usize, f64>,
}

impl<'a> CurveEvaluator<'a> {
    /// Creates an evaluator with an RC pre-built for sizes up to
    /// `capacity` (it grows on demand past that).
    pub fn new(dags: &'a [Dag], cfg: &CurveConfig, capacity: usize) -> CurveEvaluator<'a> {
        assert!(!dags.is_empty());
        CurveEvaluator {
            dags,
            cfg: *cfg,
            rc: cfg.rc_family.build(capacity.max(1)),
            memo: HashMap::new(),
        }
    }

    /// The configuration this evaluator sweeps.
    pub fn cfg(&self) -> &CurveConfig {
        &self.cfg
    }

    /// Mean turnaround of the instance set at `size` (memoized).
    pub fn mean_turnaround(&mut self, size: usize) -> f64 {
        if let Some(&t) = self.memo.get(&size) {
            OBS_CURVE_MEMO_HITS.incr();
            return t;
        }
        OBS_CURVE_MEMO_MISSES.incr();
        if size > self.rc.len() {
            OBS_CURVE_RC_REBUILDS.incr();
            self.rc = self.cfg.rc_family.build(size);
        }
        let total: f64 = self
            .dags
            .iter()
            .map(|d| {
                evaluate_prefix(d, &self.rc, size, self.cfg.heuristic, &self.cfg.time_model)
                    .turnaround_s()
            })
            .sum();
        let t = total / self.dags.len() as f64;
        self.memo.insert(size, t);
        t
    }

    /// Samples a curve at explicit sizes (sorted, deduplicated).
    pub fn curve(&mut self, sizes: &[usize]) -> Curve {
        let mut points: Vec<(usize, f64)> = sizes
            .iter()
            .map(|&s| (s, self.mean_turnaround(s)))
            .collect();
        points.sort_by_key(|&(s, _)| s);
        points.dedup_by_key(|&mut (s, _)| s);
        Curve { points }
    }
}

/// Full report (not just the mean) for a single DAG at one size.
pub fn report_at(dag: &Dag, size: usize, cfg: &CurveConfig) -> TurnaroundReport {
    let rc = cfg.rc_family.build(size);
    evaluate(dag, &rc, cfg.heuristic, &cfg.time_model)
}

/// Samples a turnaround curve for a set of DAG instances over the
/// geometric ladder up to the DAGs' maximum width.
pub fn turnaround_curve(dags: &[Dag], cfg: &CurveConfig) -> Curve {
    assert!(!dags.is_empty());
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap();
    turnaround_curve_sizes(dags, &size_ladder(width), cfg)
}

/// Samples a curve at explicit sizes (one shared max-size RC).
pub fn turnaround_curve_sizes(dags: &[Dag], sizes: &[usize], cfg: &CurveConfig) -> Curve {
    let capacity = sizes.iter().copied().max().unwrap_or(1);
    CurveEvaluator::new(dags, cfg, capacity).curve(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;

    fn dags() -> Vec<Dag> {
        (0..3)
            .map(|seed| {
                RandomDagSpec {
                    size: 200,
                    ccr: 0.1,
                    parallelism: 0.6,
                    density: 0.5,
                    regularity: 0.5,
                    mean_comp: 10.0,
                }
                .generate(seed)
            })
            .collect()
    }

    #[test]
    fn ladder_shape() {
        let l = size_ladder(100);
        assert_eq!(l[0], 1);
        assert!(l.contains(&2));
        assert_eq!(*l.last().unwrap(), 100);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(size_ladder(1), vec![1]);
        assert_eq!(size_ladder(2), vec![1, 2]);
    }

    #[test]
    fn curve_decreases_then_flattens() {
        let ds = dags();
        let c = turnaround_curve(&ds, &CurveConfig::default());
        assert!(c.points.len() >= 5);
        let first = c.points[0].1;
        let (argmin, best) = c.argmin();
        assert!(best < first, "parallelism should help");
        assert!(argmin > 1);
    }

    #[test]
    fn argmin_finds_smallest_min() {
        let c = Curve {
            points: vec![(1, 10.0), (2, 5.0), (4, 5.0), (8, 6.0)],
        };
        assert_eq!(c.argmin(), (2, 5.0));
        assert_eq!(c.at(4), Some(5.0));
        assert_eq!(c.at(3), None);
    }

    #[test]
    fn evaluator_matches_reference_mean_turnaround() {
        let ds = dags();
        // Heterogeneous clocks + bandwidth: the hardest prefix case
        // (and one where the fast placement kernel declines).
        let cfg = CurveConfig {
            rc_family: RcFamily {
                clock_mhz: 3000.0,
                heterogeneity: 0.3,
                bw_heterogeneity: 0.4,
                seed: 7,
            },
            ..CurveConfig::default()
        };
        let mut eval = CurveEvaluator::new(&ds, &cfg, 40);
        for size in [1usize, 3, 17, 40, 64] {
            let reference = mean_turnaround(&ds, size, &cfg);
            assert_eq!(eval.mean_turnaround(size), reference, "size {size}");
            // Memoized second read.
            assert_eq!(eval.mean_turnaround(size), reference, "size {size}");
        }
        // Default (homogeneous, MCP fast path) family too.
        let cfg = CurveConfig::default();
        let mut eval = CurveEvaluator::new(&ds, &cfg, 16);
        for size in [1usize, 8, 16] {
            assert_eq!(eval.mean_turnaround(size), mean_turnaround(&ds, size, &cfg));
        }
    }

    #[test]
    fn heterogeneous_family_prefix_consistency() {
        let fam = RcFamily {
            clock_mhz: 3000.0,
            heterogeneity: 0.3,
            bw_heterogeneity: 0.0,
            seed: 5,
        };
        let small = fam.build(10);
        let big = fam.build(30);
        assert_eq!(&big.clocks()[..10], small.clocks());
    }

    #[test]
    fn reference_family_has_unit_speed() {
        let rc = RcFamily::reference().build(4);
        assert_eq!(rc.clock_mhz(0), rsg_dag::REFERENCE_CLOCK_MHZ);
    }
}
