//! # rsg-core — automatic resource specification generation
//!
//! The primary contribution of Huang, Casanova & Chien, *"Automatic
//! Resource Specification Generation for Resource Selection"* (SC 2007):
//! given a DAG-structured workflow, predict the resource-collection
//! size, clock-rate range and scheduling heuristic that minimize the
//! application turn-around time (optionally trading performance for
//! cost), and emit that prediction as a concrete resource specification
//! for vgES (vgDL), Condor (ClassAds) and SWORD (XML) — with degraded
//! alternatives when the optimal request cannot be fulfilled.
//!
//! The pipeline (Figure V-1 / VII-1):
//!
//! ```text
//! DAG characteristics ─┬─> heuristic prediction model ──┐
//!                      └─> RC size prediction model ────┼─> spec generator ─> vgDL / ClassAd / SWORD
//!        utility function ──────────────────────────────┘        │
//!                                                alternative-spec algorithm
//! ```
//!
//! * [`curve`] — turnaround-vs-RC-size curves (the raw phenomenon).
//! * [`knee`] — knee detection with the paper's threshold θ.
//! * [`planefit`] — least-squares fit of `log2(knee) = aα + bβ + c`.
//! * [`observation`] — observation-set driver (Table V-1 grid).
//! * [`sizemodel`] — the size prediction model with bilinear
//!   interpolation across DAG size and CCR, one plane per grid cell and
//!   per threshold.
//! * [`persist`] — TSV (de)serialization of trained models.
//! * [`store`] — crash-safe artifact store: checksummed envelopes,
//!   atomic writes, quarantine-and-rebuild, and the sweep checkpoint
//!   journal.
//! * [`optsearch`] — the Table V-3 heuristic that derives the *actual*
//!   optimal RC size around a prediction.
//! * [`validate`] — the Table V-5/V-7 validation metrics.
//! * [`utility`] — performance/cost trade-off (Section V.3.2.3).
//! * [`heterogeneity`] — clock-rate-heterogeneity extension (Section V.4).
//! * [`scr`] — scheduler-clock-ratio correction (Section V.7).
//! * [`heurmodel`] — the heuristic prediction model (Chapter VI).
//! * [`specgen`] — the resource specification generator (Chapter VII).
//! * [`mixedspec`] — the mixed-parallel extension (clusters per DAG node).
//! * [`alternative`] — alternative resource specifications (Section VII.4).

#![warn(missing_docs)]

pub mod alternative;
pub mod curve;
pub mod heterogeneity;
pub mod heurmodel;
pub mod knee;
pub mod mixedspec;
pub mod observation;
pub mod optsearch;
pub mod persist;
pub mod planefit;
pub mod push;
pub mod scr;
pub mod sizemodel;
pub mod specgen;
pub mod store;
pub mod utility;
pub mod validate;

pub use alternative::{
    attempt_from_outcome, ladder_violations, negotiate, negotiate_with_retry, Alternative,
    BindAttempt, Degradation, Negotiated, NegotiationStats, RetryPolicy, Unfulfillable,
};
pub use curve::{turnaround_curve, Curve, CurveConfig, CurveEvaluator, RcFamily};
pub use heurmodel::HeuristicPredictionModel;
pub use knee::find_knee;
pub use observation::{
    measure_checkpointed, measure_shard, merge_shards, shard_journal_path, sweep_fingerprint,
    CheckpointConfig, KneeTable, ObservationGrid, ShardSpec,
};
pub use planefit::PlaneFit;
pub use push::{
    measure_on_platform, AuditReport, BatchOutcome, DeltaJournal, DeltaRecord, PushEngine,
    Staleness,
};
pub use sizemodel::{SizePredictionModel, ThresholdedSizeModel};
pub use specgen::{ResourceSpec, SpecGenerator, SpecViolation};
pub use store::{StoreError, SweepJournal};
pub use utility::UtilityFunction;

/// The paper's default knee threshold: 0.1% (Section V.2.2).
pub const DEFAULT_KNEE_THRESHOLD: f64 = 0.001;

/// The threshold ladder used for the utility trade-off (Section
/// V.3.2.3): 0.1%, 0.5%, 1%, 2%, 5%, 10%.
pub const THRESHOLD_LADDER: [f64; 6] = [0.001, 0.005, 0.01, 0.02, 0.05, 0.10];
