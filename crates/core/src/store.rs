//! Crash-safe artifact store: checksummed envelopes, atomic writes,
//! quarantine-and-rebuild, and the sweep checkpoint journal.
//!
//! Every durable artifact the pipeline writes (trained models, knee
//! tables, sweep caches) goes through this module so that a crash,
//! preemption or partial write can never leave a corrupt file that is
//! later *trusted*. The discipline is the one long-lived Condor daemons
//! use: write to a temporary file, fsync, rename into place, and verify
//! a checksum on every load.
//!
//! # Envelope format
//!
//! An envelope is a one-line header followed by the raw payload bytes:
//!
//! ```text
//! rsg-artifact<TAB>v1<TAB><kind><TAB><payload-bytes><TAB><fnv64-hex>
//! <payload ...>
//! ```
//!
//! The checksum is FNV-1a (64-bit) over the payload, computed in-crate
//! to stay dependency-free. A load re-derives it and fails with a typed
//! [`StoreError`] — never a panic, never silently wrong data — when
//! anything disagrees.
//!
//! # Journal format
//!
//! The sweep checkpoint journal (see
//! [`observation::measure_checkpointed`](crate::observation::measure_checkpointed))
//! is append-only, one self-checksummed line per completed grid cell:
//!
//! ```text
//! rsg-sweep-journal<TAB>v1<TAB><fingerprint-hex><TAB><thetas>
//! cell<TAB><idx><TAB><knee0><TAB>...<TAB><fnv64-hex-of-prefix>
//! ```
//!
//! A torn tail (the line being appended when the process died) fails
//! its line checksum; replay truncates the journal back to the last
//! good line and the sweep recomputes only what is missing. A header
//! whose fingerprint does not match the current configuration moves the
//! whole journal aside (`*.corrupt`) and starts fresh.

use rsg_obs::{Counter, TimingHistogram};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Envelope-format version written by this crate.
pub const ENVELOPE_VERSION: &str = "v1";
/// Journal-format version written by this crate.
pub const JOURNAL_VERSION: &str = "v1";

/// Completed atomic artifact writes.
static OBS_WRITES: Counter = Counter::new("core.store.writes");
/// fsync calls issued by the store (artifact writes + journal appends).
static OBS_FSYNCS: Counter = Counter::new("core.store.fsyncs");
/// Envelope/journal checksum verifications that failed.
static OBS_CHECKSUM_FAILURES: Counter = Counter::new("core.store.checksum_failures");
/// Artifacts moved aside to `*.corrupt`.
static OBS_QUARANTINED: Counter = Counter::new("core.store.quarantined");
/// Journal replays that recovered at least one completed cell.
static OBS_JOURNAL_REPLAYS: Counter = Counter::new("core.store.journal_replays");
/// Sweep cells restored from a journal instead of being recomputed.
static OBS_CELLS_RESUMED: Counter = Counter::new("core.store.cells_resumed");
/// Cells appended to a checkpoint journal.
static OBS_CELLS_CHECKPOINTED: Counter = Counter::new("core.store.cells_checkpointed");
/// Wall-clock of atomic artifact writes (write + fsync + rename).
static OBS_WRITE_TIME: TimingHistogram = TimingHistogram::new("core.store.write_ns");

/// Typed errors for every durable-artifact operation: loading, storing,
/// decoding and journal replay. Each variant carries enough context
/// (path, line, section) to act on without a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An OS-level I/O failure (open, read, write, fsync, rename).
    Io {
        /// File the operation targeted.
        path: String,
        /// The operation that failed (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The OS error message.
        msg: String,
    },
    /// The file does not start with the expected magic string.
    BadMagic {
        /// File (empty when decoding from memory).
        path: String,
        /// What the first line actually was (truncated).
        found: String,
    },
    /// The artifact uses a format version this build cannot read.
    Version {
        /// File (empty when decoding from memory).
        path: String,
        /// The version string found.
        found: String,
    },
    /// The payload is shorter than its header claims.
    Truncated {
        /// File (empty when decoding from memory).
        path: String,
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The payload checksum does not match its header.
    Checksum {
        /// File (empty when decoding from memory).
        path: String,
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        found: u64,
    },
    /// The envelope holds a different artifact kind than expected.
    Kind {
        /// File (empty when decoding from memory).
        path: String,
        /// Kind the caller required.
        expected: String,
        /// Kind recorded in the envelope.
        found: String,
    },
    /// A payload section failed to parse.
    Parse {
        /// Artifact family (`"size-model"`, `"knee-table"`, …).
        artifact: &'static str,
        /// 1-based line number within the document.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A journal was written under a different configuration
    /// fingerprint than the current run's.
    Fingerprint {
        /// Journal file.
        path: String,
        /// Fingerprint of the current configuration.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
    /// A checkpointed sweep stopped early (injected cell budget); the
    /// journal holds everything completed so far and a restart resumes.
    Aborted {
        /// Cells durable in the journal.
        completed: usize,
        /// Cells the full sweep needs.
        total: usize,
    },
}

impl StoreError {
    /// Constructs a parse error (1-based `line` within the document).
    pub fn parse(artifact: &'static str, line: usize, msg: impl Into<String>) -> StoreError {
        StoreError::Parse {
            artifact,
            line,
            msg: msg.into(),
        }
    }

    /// Constructs an I/O error from a `std::io::Error`.
    pub fn io(path: &Path, op: &'static str, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            op,
            msg: e.to_string(),
        }
    }

    /// Shifts a [`StoreError::Parse`] line number by `offset` lines —
    /// used when a section decoder ran on a slice of a larger document.
    pub fn with_line_offset(self, offset: usize) -> StoreError {
        match self {
            StoreError::Parse {
                artifact,
                line,
                msg,
            } => StoreError::Parse {
                artifact,
                line: line + offset,
                msg,
            },
            other => other,
        }
    }

    /// Fills in the file path on variants decoded from memory.
    pub fn with_path(self, p: &Path) -> StoreError {
        let set = |path: String| {
            if path.is_empty() {
                p.display().to_string()
            } else {
                path
            }
        };
        match self {
            StoreError::BadMagic { path, found } => StoreError::BadMagic {
                path: set(path),
                found,
            },
            StoreError::Version { path, found } => StoreError::Version {
                path: set(path),
                found,
            },
            StoreError::Truncated {
                path,
                expected,
                found,
            } => StoreError::Truncated {
                path: set(path),
                expected,
                found,
            },
            StoreError::Checksum {
                path,
                expected,
                found,
            } => StoreError::Checksum {
                path: set(path),
                expected,
                found,
            },
            StoreError::Kind {
                path,
                expected,
                found,
            } => StoreError::Kind {
                path: set(path),
                expected,
                found,
            },
            other => other,
        }
    }

    /// Whether the artifact bytes themselves are damaged (as opposed to
    /// unreadable, unparseable or merely stale) — the cases a cache
    /// should quarantine and rebuild rather than surface.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::BadMagic { .. }
                | StoreError::Version { .. }
                | StoreError::Truncated { .. }
                | StoreError::Checksum { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = |path: &str| {
            if path.is_empty() {
                String::new()
            } else {
                format!(" in {path}")
            }
        };
        match self {
            StoreError::Io { path, op, msg } => write!(f, "cannot {op} {path}: {msg}"),
            StoreError::BadMagic { path, found } => {
                write!(f, "not an rsg artifact{}: starts '{found}'", at(path))
            }
            StoreError::Version { path, found } => {
                write!(f, "unsupported artifact version '{found}'{}", at(path))
            }
            StoreError::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "truncated artifact{}: header promises {expected} payload bytes, found {found}",
                at(path)
            ),
            StoreError::Checksum {
                path,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch{}: header {expected:016x}, payload {found:016x}",
                at(path)
            ),
            StoreError::Kind {
                path,
                expected,
                found,
            } => write!(
                f,
                "wrong artifact kind{}: expected '{expected}', found '{found}'",
                at(path)
            ),
            StoreError::Parse {
                artifact,
                line,
                msg,
            } => write!(f, "{artifact} decode error at line {line}: {msg}"),
            StoreError::Fingerprint {
                path,
                expected,
                found,
            } => write!(
                f,
                "journal {path} was written under configuration {found:016x}, \
                 current is {expected:016x}",
            ),
            StoreError::Aborted { completed, total } => write!(
                f,
                "sweep aborted by cell budget: {completed}/{total} cells journaled"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<rsg_dag::io::DagIoError> for StoreError {
    fn from(e: rsg_dag::io::DagIoError) -> StoreError {
        StoreError::parse("dag", e.line, e.msg)
    }
}

/// FNV-1a 64-bit hash — the store's dependency-free checksum.
///
/// ```
/// // The canonical FNV-1a test vector.
/// assert_eq!(rsg_core::store::fnv1a(b""), 0xcbf29ce484222325);
/// assert_eq!(rsg_core::store::fnv1a(b"a"), 0xaf63dc4c8601ec8c);
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Wraps a payload in a versioned, checksummed envelope.
pub fn wrap_envelope(kind: &str, payload: &str) -> String {
    format!(
        "rsg-artifact\t{ENVELOPE_VERSION}\t{kind}\t{}\t{:016x}\n{payload}",
        payload.len(),
        fnv1a(payload.as_bytes())
    )
}

/// Validates an envelope and returns `(kind, payload)`. Errors carry no
/// path (decode-from-memory); callers with a file attach it via
/// [`StoreError::with_path`].
pub fn unwrap_envelope(text: &str) -> Result<(&str, &str), StoreError> {
    let nopath = String::new;
    let (header, payload) = text.split_once('\n').ok_or_else(|| StoreError::BadMagic {
        path: nopath(),
        found: text.chars().take(40).collect(),
    })?;
    let fields: Vec<&str> = header.split('\t').collect();
    if fields.first() != Some(&"rsg-artifact") {
        return Err(StoreError::BadMagic {
            path: nopath(),
            found: header.chars().take(40).collect(),
        });
    }
    if fields.get(1) != Some(&ENVELOPE_VERSION) {
        return Err(StoreError::Version {
            path: nopath(),
            found: fields.get(1).unwrap_or(&"").to_string(),
        });
    }
    let &[kind, len, sum] = &fields[2..] else {
        return Err(StoreError::BadMagic {
            path: nopath(),
            found: header.chars().take(40).collect(),
        });
    };
    let expected_len: usize = len.parse().map_err(|_| StoreError::BadMagic {
        path: nopath(),
        found: header.chars().take(40).collect(),
    })?;
    let expected_sum = u64::from_str_radix(sum, 16).map_err(|_| StoreError::BadMagic {
        path: nopath(),
        found: header.chars().take(40).collect(),
    })?;
    if payload.len() != expected_len {
        return Err(StoreError::Truncated {
            path: nopath(),
            expected: expected_len,
            found: payload.len(),
        });
    }
    let found_sum = fnv1a(payload.as_bytes());
    if found_sum != expected_sum {
        OBS_CHECKSUM_FAILURES.incr();
        return Err(StoreError::Checksum {
            path: nopath(),
            expected: expected_sum,
            found: found_sum,
        });
    }
    Ok((kind, payload))
}

/// Whether a file's first bytes look like a store envelope (used to
/// accept legacy bare-TSV artifacts alongside wrapped ones).
pub fn looks_like_envelope(text: &str) -> bool {
    text.starts_with("rsg-artifact\t")
}

/// Atomically writes an envelope-wrapped artifact: the payload goes to
/// `<path>.tmp-<pid>` in the same directory, is fsynced, and is renamed
/// into place, so a crash at any instant leaves either the old file or
/// the new one — never a torn mixture.
pub fn write_atomic(path: &Path, kind: &str, payload: &str) -> Result<(), StoreError> {
    let t0 = std::time::Instant::now();
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(path, "create parent of", &e))?;
    }
    let tmp = tmp_path(path);
    let body = wrap_envelope(kind, payload);
    let mut f = File::create(&tmp).map_err(|e| StoreError::io(&tmp, "create", &e))?;
    f.write_all(body.as_bytes())
        .map_err(|e| StoreError::io(&tmp, "write", &e))?;
    f.sync_all()
        .map_err(|e| StoreError::io(&tmp, "fsync", &e))?;
    OBS_FSYNCS.incr();
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        StoreError::io(path, "rename into", &e)
    })?;
    OBS_WRITES.incr();
    OBS_WRITE_TIME.record(t0.elapsed());
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

/// Reads an envelope-wrapped artifact, verifying magic, version, length
/// and checksum, and requiring the stored kind to be `expect_kind`.
pub fn read_artifact(path: &Path, expect_kind: &str) -> Result<String, StoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| StoreError::io(path, "read", &e))?;
    let (kind, payload) = unwrap_envelope(&text).map_err(|e| e.with_path(path))?;
    if kind != expect_kind {
        return Err(StoreError::Kind {
            path: path.display().to_string(),
            expected: expect_kind.to_string(),
            found: kind.to_string(),
        });
    }
    Ok(payload.to_string())
}

/// Moves a damaged artifact aside to `<path>.corrupt` (overwriting any
/// previous quarantine of the same file) so the slot can be rebuilt
/// while the evidence survives for inspection. Returns the quarantine
/// path, or `None` if the rename itself failed (e.g. the file vanished).
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".corrupt");
    let dest = path.with_file_name(name);
    match std::fs::rename(path, &dest) {
        Ok(()) => {
            OBS_QUARANTINED.incr();
            Some(dest)
        }
        Err(_) => None,
    }
}

/// Loads an envelope-wrapped artifact and decodes it, quarantining and
/// rebuilding on *any* damage: a missing file rebuilds silently, a
/// corrupt or undecodable one is moved to `*.corrupt` first. `rebuild`
/// returns the fresh value and the payload to persist; persistence
/// failures are reported to `warn` but never fail the load (the value
/// is still returned — the store degrades to compute-every-time).
pub fn load_or_rebuild<T>(
    path: &Path,
    kind: &str,
    decode: impl Fn(&str) -> Result<T, StoreError>,
    rebuild: impl FnOnce() -> (T, String),
    mut warn: impl FnMut(&str),
) -> T {
    let missing = !path.exists();
    if !missing {
        match read_artifact(path, kind).and_then(|payload| decode(&payload)) {
            Ok(v) => return v,
            Err(e) => match quarantine(path) {
                Some(q) => warn(&format!("{e}; quarantined to {}", q.display())),
                None => warn(&format!("{e}; could not quarantine")),
            },
        }
    }
    let (value, payload) = rebuild();
    if let Err(e) = write_atomic(path, kind, &payload) {
        warn(&format!("rebuilt {kind} not persisted: {e}"));
    }
    value
}

/// What a [`SweepJournal::open`] replay found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecovery {
    /// No journal existed; a fresh one was created.
    Fresh,
    /// The journal matched and `cells` completed cells were recovered.
    Resumed {
        /// Cells recovered from the journal.
        cells: usize,
    },
    /// The journal belonged to a different configuration (or was
    /// damaged beyond its header) and was quarantined; a fresh one was
    /// created.
    Quarantined,
}

/// An append-only, self-checksummed record of completed sweep cells.
///
/// Thread-safe: [`append`](SweepJournal::append) serializes through an
/// internal mutex so rayon workers can checkpoint concurrently.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    completed: HashMap<usize, Vec<f64>>,
    recovery: JournalRecovery,
    file: Mutex<File>,
}

impl SweepJournal {
    /// Opens (or creates) the journal at `path` for a sweep whose
    /// configuration digests to `fingerprint` and measures
    /// `thetas_len` thresholds per cell.
    ///
    /// Replay rules:
    /// * matching header → every line whose checksum and shape verify
    ///   is recovered; the first damaged line (a torn append) truncates
    ///   the journal back to the last good line;
    /// * mismatched or damaged header → the whole file is quarantined
    ///   to `*.corrupt` and a fresh journal starts.
    pub fn open(
        path: &Path,
        fingerprint: u64,
        thetas_len: usize,
    ) -> Result<SweepJournal, StoreError> {
        let mut completed = HashMap::new();
        let mut recovery = JournalRecovery::Fresh;
        let mut good_bytes = 0usize;

        match std::fs::read_to_string(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io(path, "read", &e)),
            Ok(text) => match Self::replay(&text, fingerprint, thetas_len) {
                Ok((cells, valid_len)) => {
                    good_bytes = valid_len;
                    if !cells.is_empty() {
                        OBS_JOURNAL_REPLAYS.incr();
                        OBS_CELLS_RESUMED.add(cells.len() as u64);
                        recovery = JournalRecovery::Resumed { cells: cells.len() };
                    }
                    completed = cells;
                }
                Err(_) => {
                    quarantine(path);
                    recovery = JournalRecovery::Quarantined;
                }
            },
        }

        if recovery == JournalRecovery::Fresh || recovery == JournalRecovery::Quarantined {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)
                    .map_err(|e| StoreError::io(path, "create parent of", &e))?;
            }
            let mut f = File::create(path).map_err(|e| StoreError::io(path, "create", &e))?;
            f.write_all(Self::header(fingerprint, thetas_len).as_bytes())
                .map_err(|e| StoreError::io(path, "write", &e))?;
            f.sync_all()
                .map_err(|e| StoreError::io(path, "fsync", &e))?;
            OBS_FSYNCS.incr();
            return Ok(SweepJournal {
                path: path.to_path_buf(),
                completed,
                recovery,
                file: Mutex::new(f),
            });
        }

        // Truncate any torn tail, then reopen for appending.
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "open", &e))?;
        f.set_len(good_bytes as u64)
            .map_err(|e| StoreError::io(path, "truncate", &e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "open", &e))?;
        Ok(SweepJournal {
            path: path.to_path_buf(),
            completed,
            recovery,
            file: Mutex::new(file),
        })
    }

    fn header(fingerprint: u64, thetas_len: usize) -> String {
        format!("rsg-sweep-journal\t{JOURNAL_VERSION}\t{fingerprint:016x}\t{thetas_len}\n")
    }

    /// Parses journal text; returns the recovered cells and the byte
    /// length of the valid prefix (header + good lines). A damaged
    /// *header* is an error (quarantine); a damaged *line* merely ends
    /// the valid prefix (torn append).
    fn replay(
        text: &str,
        fingerprint: u64,
        thetas_len: usize,
    ) -> Result<(HashMap<usize, Vec<f64>>, usize), StoreError> {
        let (header, _) = text.split_once('\n').ok_or_else(|| StoreError::BadMagic {
            path: String::new(),
            found: text.chars().take(40).collect(),
        })?;
        let fields: Vec<&str> = header.split('\t').collect();
        if fields.first() != Some(&"rsg-sweep-journal") {
            return Err(StoreError::BadMagic {
                path: String::new(),
                found: header.chars().take(40).collect(),
            });
        }
        if fields.get(1) != Some(&JOURNAL_VERSION) {
            return Err(StoreError::Version {
                path: String::new(),
                found: fields.get(1).unwrap_or(&"").to_string(),
            });
        }
        let found_fp = fields
            .get(2)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| StoreError::parse("sweep-journal", 1, "bad fingerprint field"))?;
        if found_fp != fingerprint {
            return Err(StoreError::Fingerprint {
                path: String::new(),
                expected: fingerprint,
                found: found_fp,
            });
        }
        let found_thetas: usize = fields
            .get(3)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| StoreError::parse("sweep-journal", 1, "bad theta-count field"))?;
        if found_thetas != thetas_len {
            return Err(StoreError::parse(
                "sweep-journal",
                1,
                format!("journal holds {found_thetas} thetas per cell, sweep wants {thetas_len}"),
            ));
        }

        let mut completed = HashMap::new();
        let mut good = header.len() + 1;
        for line in text[good..].split_inclusive('\n') {
            let body = line.strip_suffix('\n');
            match body.and_then(|b| Self::parse_line(b, thetas_len)) {
                Some((idx, knees)) => {
                    completed.insert(idx, knees);
                    good += line.len();
                }
                None => {
                    // Torn or damaged tail: stop here; everything after
                    // the last good line is recomputed.
                    OBS_CHECKSUM_FAILURES.incr();
                    break;
                }
            }
        }
        Ok((completed, good))
    }

    /// Parses one `cell` line, verifying its trailing checksum and that
    /// it carries exactly `thetas_len` knee values.
    fn parse_line(line: &str, thetas_len: usize) -> Option<(usize, Vec<f64>)> {
        let (prefix, sum) = line.rsplit_once('\t')?;
        let expected = u64::from_str_radix(sum, 16).ok()?;
        if fnv1a(prefix.as_bytes()) != expected {
            return None;
        }
        let mut parts = prefix.split('\t');
        if parts.next() != Some("cell") {
            return None;
        }
        let idx: usize = parts.next()?.parse().ok()?;
        let knees: Option<Vec<f64>> = parts.map(|s| s.parse().ok()).collect();
        let knees = knees?;
        if knees.len() != thetas_len {
            return None;
        }
        Some((idx, knees))
    }

    /// The cells recovered by replay: grid cell index → per-theta
    /// knees, exactly as they were measured before the interruption.
    pub fn completed(&self) -> &HashMap<usize, Vec<f64>> {
        &self.completed
    }

    /// What [`SweepJournal::open`] found on disk.
    pub fn recovery(&self) -> JournalRecovery {
        self.recovery
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends one completed cell (write + fsync under the
    /// journal lock). Knees serialize in shortest-round-trip form, so a
    /// replayed value is bit-identical to the measured one.
    pub fn append(&self, idx: usize, knees: &[f64]) -> Result<(), StoreError> {
        let mut prefix = format!("cell\t{idx}");
        for k in knees {
            prefix.push('\t');
            prefix.push_str(&k.to_string());
        }
        let line = format!("{prefix}\t{:016x}\n", fnv1a(prefix.as_bytes()));
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        f.write_all(line.as_bytes())
            .map_err(|e| StoreError::io(&self.path, "append to", &e))?;
        f.sync_data()
            .map_err(|e| StoreError::io(&self.path, "fsync", &e))?;
        OBS_FSYNCS.incr();
        OBS_CELLS_CHECKPOINTED.incr();
        Ok(())
    }

    /// Read-only validation of a journal file (used by `rsg store
    /// verify`): checks magic, version and every line checksum without
    /// truncating or quarantining anything. Returns `(fingerprint,
    /// thetas per cell, valid cells, damaged tail lines)`.
    pub fn verify(path: &Path) -> Result<(u64, usize, usize, usize), StoreError> {
        let text = std::fs::read_to_string(path).map_err(|e| StoreError::io(path, "read", &e))?;
        let (header, rest) = text.split_once('\n').ok_or_else(|| StoreError::BadMagic {
            path: path.display().to_string(),
            found: text.chars().take(40).collect(),
        })?;
        let fields: Vec<&str> = header.split('\t').collect();
        if fields.first() != Some(&"rsg-sweep-journal") {
            return Err(StoreError::BadMagic {
                path: path.display().to_string(),
                found: header.chars().take(40).collect(),
            });
        }
        if fields.get(1) != Some(&JOURNAL_VERSION) {
            return Err(StoreError::Version {
                path: path.display().to_string(),
                found: fields.get(1).unwrap_or(&"").to_string(),
            });
        }
        let fp = fields
            .get(2)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| {
                StoreError::parse("sweep-journal", 1, "bad fingerprint field").with_path(path)
            })?;
        let thetas: usize = fields.get(3).and_then(|s| s.parse().ok()).ok_or_else(|| {
            StoreError::parse("sweep-journal", 1, "bad theta-count field").with_path(path)
        })?;
        let mut good = 0usize;
        let mut bad = 0usize;
        for line in rest.split_inclusive('\n') {
            let ok = line
                .strip_suffix('\n')
                .and_then(|b| Self::parse_line(b, thetas))
                .is_some();
            if ok && bad == 0 {
                good += 1;
            } else if !line.trim().is_empty() {
                bad += 1;
            }
        }
        Ok((fp, thetas, good, bad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rsg-store-{tag}-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    #[test]
    fn envelope_round_trip() {
        let body = "hello\tworld\n1\t2\t3\n";
        let env = wrap_envelope("test-kind", body);
        let (kind, payload) = unwrap_envelope(&env).unwrap();
        assert_eq!(kind, "test-kind");
        assert_eq!(payload, body);
        assert!(looks_like_envelope(&env));
        assert!(!looks_like_envelope(body));
    }

    #[test]
    fn envelope_detects_damage() {
        let env = wrap_envelope("k", "payload payload payload");
        // Flip a payload byte.
        let mut bytes = env.clone().into_bytes();
        let n = bytes.len();
        bytes[n - 3] ^= 0x20;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            unwrap_envelope(&flipped),
            Err(StoreError::Checksum { .. })
        ));
        // Truncate the payload.
        let cut = &env[..env.len() - 4];
        assert!(matches!(
            unwrap_envelope(cut),
            Err(StoreError::Truncated { .. })
        ));
        // Wrong magic and wrong version.
        assert!(matches!(
            unwrap_envelope("garbage\nx"),
            Err(StoreError::BadMagic { .. })
        ));
        assert!(matches!(
            unwrap_envelope("rsg-artifact\tv9\tk\t1\t00\nx"),
            Err(StoreError::Version { .. })
        ));
        assert!(unwrap_envelope("").is_err());
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = tmpdir("atomic");
        let path = dir.join("artifact.tsv");
        write_atomic(&path, "knee-tables", "some\tpayload\n").unwrap();
        assert_eq!(
            read_artifact(&path, "knee-tables").unwrap(),
            "some\tpayload\n"
        );
        // Wrong kind is a typed error.
        assert!(matches!(
            read_artifact(&path, "size-model"),
            Err(StoreError::Kind { .. })
        ));
        // No temp droppings.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn load_or_rebuild_quarantines_corruption() {
        let dir = tmpdir("rebuild");
        let path = dir.join("cache.tsv");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("cache.tsv.corrupt"));
        let decode = |s: &str| -> Result<String, StoreError> { Ok(s.to_string()) };
        // Missing → rebuild silently.
        let v = load_or_rebuild(
            &path,
            "k",
            decode,
            || ("v1".to_string(), "v1".to_string()),
            |_| panic!("no warning expected for a missing cache"),
        );
        assert_eq!(v, "v1");
        // Cached → served without rebuild.
        let v = load_or_rebuild(
            &path,
            "k",
            decode,
            || panic!("must not rebuild a healthy cache"),
            |_| {},
        );
        assert_eq!(v, "v1");
        // Corrupt → quarantined + rebuilt.
        std::fs::write(&path, "garbage bytes, not an envelope").unwrap();
        let mut warned = false;
        let v = load_or_rebuild(
            &path,
            "k",
            decode,
            || ("v2".to_string(), "v2".to_string()),
            |_| warned = true,
        );
        assert_eq!(v, "v2");
        assert!(warned);
        assert!(dir.join("cache.tsv.corrupt").exists());
        // And the slot now holds the rebuilt artifact.
        assert_eq!(read_artifact(&path, "k").unwrap(), "v2");
    }

    #[test]
    fn journal_round_trip_and_torn_tail() {
        let dir = tmpdir("journal");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        {
            let j = SweepJournal::open(&path, 0xABCD, 2).unwrap();
            assert_eq!(j.recovery(), JournalRecovery::Fresh);
            j.append(3, &[1.5, 2.5]).unwrap();
            j.append(7, &[8.0, 16.0]).unwrap();
        }
        // Simulate a torn append: half a line at the tail.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"cell\t9\t4.0").unwrap();
        }
        let j = SweepJournal::open(&path, 0xABCD, 2).unwrap();
        assert_eq!(j.recovery(), JournalRecovery::Resumed { cells: 2 });
        assert_eq!(j.completed()[&3], vec![1.5, 2.5]);
        assert_eq!(j.completed()[&7], vec![8.0, 16.0]);
        // The torn bytes were truncated away; appending resumes cleanly.
        j.append(9, &[4.0, 5.0]).unwrap();
        drop(j);
        let j = SweepJournal::open(&path, 0xABCD, 2).unwrap();
        assert_eq!(j.completed().len(), 3);
        let (fp, thetas, good, bad) = SweepJournal::verify(&path).unwrap();
        assert_eq!((fp, thetas, good, bad), (0xABCD, 2, 3, 0));
    }

    #[test]
    fn journal_fingerprint_mismatch_quarantines() {
        let dir = tmpdir("journal-fp");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("sweep.journal.corrupt"));
        {
            let j = SweepJournal::open(&path, 1, 1).unwrap();
            j.append(0, &[2.0]).unwrap();
        }
        let j = SweepJournal::open(&path, 2, 1).unwrap();
        assert_eq!(j.recovery(), JournalRecovery::Quarantined);
        assert!(j.completed().is_empty());
        assert!(dir.join("sweep.journal.corrupt").exists());
    }

    #[test]
    fn journal_garbage_header_quarantines() {
        let dir = tmpdir("journal-hdr");
        let path = dir.join("sweep.journal");
        std::fs::write(&path, "total garbage\nmore garbage\n").unwrap();
        let j = SweepJournal::open(&path, 5, 1).unwrap();
        assert_eq!(j.recovery(), JournalRecovery::Quarantined);
        j.append(1, &[3.0]).unwrap();
        drop(j);
        let j = SweepJournal::open(&path, 5, 1).unwrap();
        assert_eq!(j.recovery(), JournalRecovery::Resumed { cells: 1 });
    }

    #[test]
    fn journal_floats_replay_bit_identical() {
        let dir = tmpdir("journal-bits");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let knees = [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1234.567891234e-7,
            2f64.powi(-40) + 1.0,
        ];
        {
            let j = SweepJournal::open(&path, 9, knees.len()).unwrap();
            j.append(0, &knees).unwrap();
        }
        let j = SweepJournal::open(&path, 9, knees.len()).unwrap();
        let back = &j.completed()[&0];
        for (a, b) in knees.iter().zip(back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} != {b}");
        }
    }
}
