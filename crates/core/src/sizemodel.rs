//! The RC size prediction model (Sections V.2.4–V.2.5).
//!
//! One plane `log2(knee) = a·α + b·β + c` is fitted per `(DAG size,
//! CCR)` grid cell; predictions for off-grid sizes and CCRs linearly
//! interpolate the *knee values* (not the planes' coefficients) between
//! the two surrounding sample points on each axis, exactly as the paper
//! interpolates its experimental curves (Figures V-5/V-6).

use crate::observation::KneeTable;
use crate::planefit::PlaneFit;
use rsg_dag::DagStats;

/// Size prediction model for one knee threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct SizePredictionModel {
    /// Knee threshold θ the model was trained for.
    pub theta: f64,
    sizes: Vec<f64>,
    ccrs: Vec<f64>,
    /// Row-major `(size, ccr)` plane fits.
    fits: Vec<PlaneFit>,
}

impl SizePredictionModel {
    /// Fits the model from a measured knee table.
    pub fn fit(table: &KneeTable) -> SizePredictionModel {
        let g = &table.grid;
        let mut fits = Vec::with_capacity(g.sizes.len() * g.ccrs.len());
        for si in 0..g.sizes.len() {
            for ci in 0..g.ccrs.len() {
                fits.push(PlaneFit::fit(&table.plane_samples(si, ci)));
            }
        }
        SizePredictionModel {
            theta: table.theta,
            sizes: g.sizes.iter().map(|&s| s as f64).collect(),
            ccrs: g.ccrs.clone(),
            fits,
        }
    }

    /// Reassembles a model from its parts (used by the TSV decoder).
    /// `fits` is row-major `(size, ccr)` and must match the axes.
    pub fn from_parts(
        theta: f64,
        sizes: Vec<f64>,
        ccrs: Vec<f64>,
        fits: Vec<PlaneFit>,
    ) -> SizePredictionModel {
        assert_eq!(fits.len(), sizes.len() * ccrs.len());
        SizePredictionModel {
            theta,
            sizes,
            ccrs,
            fits,
        }
    }

    fn fit_at(&self, si: usize, ci: usize) -> &PlaneFit {
        &self.fits[si * self.ccrs.len() + ci]
    }

    /// Knee predicted by the plane of one grid cell.
    fn cell_knee(&self, si: usize, ci: usize, alpha: f64, beta: f64) -> f64 {
        self.fit_at(si, ci).predict(alpha, beta).exp2()
    }

    /// Predicts the best RC size for explicit DAG characteristics. The
    /// result is clamped to at least 1; callers typically also clamp to
    /// the DAG width.
    pub fn predict_chars(&self, n: f64, ccr: f64, alpha: f64, beta: f64) -> f64 {
        let (s0, s1, st) = bracket(&self.sizes, n);
        let (c0, c1, ct) = bracket(&self.ccrs, ccr);
        // Bilinear interpolation of knee values.
        let k00 = self.cell_knee(s0, c0, alpha, beta);
        let k01 = self.cell_knee(s0, c1, alpha, beta);
        let k10 = self.cell_knee(s1, c0, alpha, beta);
        let k11 = self.cell_knee(s1, c1, alpha, beta);
        let k0 = k00 + (k01 - k00) * ct;
        let k1 = k10 + (k11 - k10) * ct;
        (k0 + (k1 - k0) * st).max(1.0)
    }

    /// Predicts the best RC size for a measured DAG, clamped to the
    /// DAG width (no RC larger than the width is ever useful).
    pub fn predict(&self, stats: &DagStats) -> usize {
        let k = self.predict_chars(
            stats.size as f64,
            stats.ccr,
            stats.parallelism,
            stats.regularity,
        );
        (k.round() as usize).clamp(1, stats.width.max(1) as usize)
    }

    /// Grid axes (sizes, ccrs) — exposed for reporting.
    pub fn axes(&self) -> (&[f64], &[f64]) {
        (&self.sizes, &self.ccrs)
    }

    /// The plane fitted for grid cell `(si, ci)`.
    pub fn plane(&self, si: usize, ci: usize) -> &PlaneFit {
        self.fit_at(si, ci)
    }
}

/// Finds the bracketing indices and interpolation weight of `x` in the
/// ascending axis `xs`; out-of-range values clamp to the edge cells.
fn bracket(xs: &[f64], x: f64) -> (usize, usize, f64) {
    assert!(!xs.is_empty());
    if xs.len() == 1 || x <= xs[0] {
        return (0, 0, 0.0);
    }
    let last = xs.len() - 1;
    if x >= xs[last] {
        return (last, last, 0.0);
    }
    let hi = xs.partition_point(|&v| v < x).max(1);
    let lo = hi - 1;
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    (lo, hi, t)
}

/// Models for the whole threshold ladder (Section V.3.2.3): one
/// [`SizePredictionModel`] per θ, sharing the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdedSizeModel {
    /// Models indexed like the thresholds they were trained for,
    /// ascending θ.
    pub models: Vec<SizePredictionModel>,
}

impl ThresholdedSizeModel {
    /// Fits a model per knee table.
    pub fn fit(tables: &[KneeTable]) -> ThresholdedSizeModel {
        let _span = rsg_obs::span("train_size_model");
        let mut models: Vec<SizePredictionModel> =
            tables.iter().map(SizePredictionModel::fit).collect();
        models.sort_by(|a, b| a.theta.total_cmp(&b.theta));
        ThresholdedSizeModel { models }
    }

    /// The model for the exact threshold, if trained.
    pub fn for_threshold(&self, theta: f64) -> Option<&SizePredictionModel> {
        self.models.iter().find(|m| (m.theta - theta).abs() < 1e-12)
    }

    /// The strictest (smallest-θ) model — the paper's 0.1% default.
    pub fn strictest(&self) -> &SizePredictionModel {
        &self.models[0]
    }

    /// Available thresholds, ascending.
    pub fn thresholds(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.theta).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveConfig;
    use crate::observation::{measure, ObservationGrid};

    fn trained() -> ThresholdedSizeModel {
        let grid = ObservationGrid::tiny();
        let tables = measure(&grid, &CurveConfig::default(), &[0.001, 0.05], 0);
        ThresholdedSizeModel::fit(&tables)
    }

    #[test]
    fn bracket_basics() {
        let xs = [1.0, 2.0, 4.0];
        assert_eq!(bracket(&xs, 0.5), (0, 0, 0.0));
        assert_eq!(bracket(&xs, 5.0), (2, 2, 0.0));
        let (lo, hi, t) = bracket(&xs, 3.0);
        assert_eq!((lo, hi), (1, 2));
        assert!((t - 0.5).abs() < 1e-12);
        // An exact grid point interpolates to itself from either cell.
        let (lo, hi, t) = bracket(&xs, 2.0);
        let v = xs[lo] + (xs[hi] - xs[lo]) * t;
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_positive_and_bounded() {
        let m = trained();
        let model = m.strictest();
        for &(n, ccr, a, b) in &[
            (100.0, 0.01, 0.5, 0.5),
            (125.0, 0.3, 0.6, 0.2),
            (200.0, 0.5, 0.7, 0.9),
        ] {
            let k = model.predict_chars(n, ccr, a, b);
            assert!(k >= 1.0, "knee {k}");
            assert!(k < 10_000.0, "knee {k} absurd");
        }
    }

    #[test]
    fn interpolation_is_between_cells() {
        let m = trained();
        let model = m.strictest();
        let lo = model.predict_chars(50.0, 0.01, 0.6, 0.5);
        let hi = model.predict_chars(200.0, 0.01, 0.6, 0.5);
        let mid = model.predict_chars(125.0, 0.01, 0.6, 0.5);
        let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        assert!(
            mid >= a - 1e-9 && mid <= b + 1e-9,
            "mid {mid} outside [{a}, {b}]"
        );
    }

    #[test]
    fn predict_clamps_to_width() {
        let m = trained();
        let model = m.strictest();
        let dag = rsg_dag::workflows::bag(10, 5.0);
        let stats = rsg_dag::DagStats::measure(&dag);
        let k = model.predict(&stats);
        assert!((1..=10).contains(&k));
    }

    #[test]
    fn threshold_lookup() {
        let m = trained();
        assert!(m.for_threshold(0.001).is_some());
        assert!(m.for_threshold(0.02).is_none());
        assert_eq!(m.thresholds(), vec![0.001, 0.05]);
        assert_eq!(m.strictest().theta, 0.001);
    }

    #[test]
    fn parallelism_increases_prediction_on_low_ccr() {
        let m = trained();
        let model = m.strictest();
        let low = model.predict_chars(200.0, 0.01, 0.4, 0.8);
        let high = model.predict_chars(200.0, 0.01, 0.7, 0.8);
        assert!(
            high > low,
            "α=0.7 should need more hosts than α=0.4: {high} vs {low}"
        );
    }
}
