//! Performance/cost utility functions (Section V.3.2.3).
//!
//! "A user may wish to trade off a 1% decrease in performance for a 10%
//! decrease in cost": the model exposes predicted sizes for the whole
//! threshold ladder, and the utility function chooses the threshold
//! whose (degradation, cost) combination scores best — or the best
//! degradation within a budget.

/// A linear performance/cost trade-off. With `perf_weight = 10` and
/// `cost_weight = 1`, one percent of degradation is worth ten percent of
/// cost — the paper's 1%/10% example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityFunction {
    /// Weight on turnaround degradation.
    pub perf_weight: f64,
    /// Weight on relative cost.
    pub cost_weight: f64,
}

impl Default for UtilityFunction {
    fn default() -> Self {
        // Minimize the plain sum of degradation and relative cost, the
        // "simple utility function" used for the Montage table (V-9).
        UtilityFunction {
            perf_weight: 1.0,
            cost_weight: 1.0,
        }
    }
}

impl UtilityFunction {
    /// The paper's 1%-performance-for-10%-cost example.
    pub fn one_for_ten() -> UtilityFunction {
        UtilityFunction {
            perf_weight: 10.0,
            cost_weight: 1.0,
        }
    }

    /// Utility score — lower is better.
    pub fn score(&self, degradation: f64, relative_cost: f64) -> f64 {
        self.perf_weight * degradation + self.cost_weight * relative_cost
    }

    /// Chooses the best `(threshold, degradation, relative_cost)` row.
    /// Returns the index of the winner.
    pub fn choose(&self, rows: &[(f64, f64, f64)]) -> usize {
        assert!(!rows.is_empty());
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, &(_, deg, cost)) in rows.iter().enumerate() {
            let s = self.score(deg, cost);
            if s < best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }

    /// Budget mode: the row with the least degradation whose absolute
    /// cost fits the budget; `None` when nothing fits.
    pub fn choose_within_budget(
        rows: &[(f64, f64, f64)],
        costs_dollars: &[f64],
        budget_dollars: f64,
    ) -> Option<usize> {
        assert_eq!(rows.len(), costs_dollars.len());
        rows.iter()
            .enumerate()
            .filter(|(i, _)| costs_dollars[*i] <= budget_dollars)
            .min_by(|(_, a), (_, b)| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_for_ten_prefers_cheap_when_degradation_small() {
        let u = UtilityFunction::one_for_ten();
        // (threshold, degradation, relative cost)
        let rows = [
            (0.001, 0.000, 0.00),
            (0.02, 0.009, -0.15), // ~1% slower, 15% cheaper
            (0.10, 0.060, -0.25), // 6% slower, 25% cheaper
        ];
        assert_eq!(u.choose(&rows), 1, "1%-for-10% picks the 2% threshold");
    }

    #[test]
    fn pure_performance_picks_strictest() {
        let u = UtilityFunction {
            perf_weight: 1.0,
            cost_weight: 0.0,
        };
        let rows = [(0.001, 0.0, 0.0), (0.05, 0.04, -0.5)];
        assert_eq!(u.choose(&rows), 0);
    }

    #[test]
    fn budget_mode() {
        let rows = [(0.001, 0.0, 0.0), (0.02, 0.01, -0.2), (0.10, 0.08, -0.4)];
        let costs = [10.0, 8.0, 6.0];
        assert_eq!(
            UtilityFunction::choose_within_budget(&rows, &costs, 9.0),
            Some(1)
        );
        assert_eq!(
            UtilityFunction::choose_within_budget(&rows, &costs, 5.0),
            None
        );
        assert_eq!(
            UtilityFunction::choose_within_budget(&rows, &costs, 100.0),
            Some(0)
        );
    }

    #[test]
    fn score_is_linear() {
        let u = UtilityFunction::default();
        assert!((u.score(0.01, -0.10) + 0.09).abs() < 1e-12);
    }
}
