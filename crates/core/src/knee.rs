//! Knee detection (Section V.2.2).
//!
//! "We define the best RC size as the smallest RC size such that a
//! bigger RC size would improve turnaround time by less than a
//! threshold of 0.1%." The threshold guards against experimental
//! fluctuation; larger thresholds (0.5% … 10%) implement the
//! cost/performance trade-off of Section V.3.2.3.

use crate::curve::Curve;
use rsg_obs::Counter;

/// Bisection iterations performed by [`refine_knee`] (across all
/// cells and thresholds of a sweep).
static OBS_REFINE_ITERS: Counter = Counter::new("core.knee.refine_iterations");
/// [`refine_knee`] calls that converged (interval closed) before
/// exhausting their round budget.
static OBS_REFINE_CONVERGED: Counter = Counter::new("core.knee.refine_converged_early");

/// Finds the knee of a sampled curve for threshold `theta` (e.g. 0.001
/// for the paper's 0.1%): the smallest sampled size whose turnaround is
/// within `theta` of everything achievable with more hosts.
pub fn find_knee(curve: &Curve, theta: f64) -> usize {
    assert!(!curve.points.is_empty(), "empty curve");
    assert!(theta >= 0.0);
    let n = curve.points.len();
    // Suffix minima of turnaround over strictly larger sizes.
    let mut suffix_min = vec![f64::INFINITY; n + 1];
    for i in (0..n).rev() {
        suffix_min[i] = suffix_min[i + 1].min(curve.points[i].1);
    }
    for i in 0..n {
        let (size, t) = curve.points[i];
        // Improvement achievable by any bigger RC:
        let best_later = suffix_min[i + 1];
        if best_later >= t * (1.0 - theta) {
            return size;
        }
    }
    curve.points[n - 1].0
}

/// Knees for several thresholds at once (ascending thresholds give
/// non-increasing knees).
pub fn find_knees(curve: &Curve, thetas: &[f64]) -> Vec<usize> {
    thetas.iter().map(|&t| find_knee(curve, t)).collect()
}

/// Refines a coarse knee by sampling between the preceding ladder point
/// and the knee: `eval(size)` must return the mean turnaround at that
/// size. Performs up to `rounds` bisection rounds.
pub fn refine_knee(
    curve: &Curve,
    theta: f64,
    rounds: u32,
    mut eval: impl FnMut(usize) -> f64,
) -> usize {
    let coarse = find_knee(curve, theta);
    let idx = curve
        .points
        .iter()
        .position(|&(s, _)| s == coarse)
        .expect("knee is a sampled point");
    if idx == 0 {
        return coarse;
    }
    let mut lo = curve.points[idx - 1].0; // knee is somewhere in (lo, hi]
    let mut hi = coarse;
    // Turnaround that must not be improvable by more than theta: the
    // minimum over everything >= the coarse knee.
    let target = curve.points[idx..]
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::INFINITY, f64::min);
    for _ in 0..rounds {
        if hi - lo <= 1 {
            OBS_REFINE_CONVERGED.incr();
            break;
        }
        OBS_REFINE_ITERS.incr();
        let mid = (lo + hi) / 2;
        let t_mid = eval(mid);
        if target >= t_mid * (1.0 - theta) {
            hi = mid; // mid already achieves within-theta performance
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(usize, f64)]) -> Curve {
        Curve {
            points: points.to_vec(),
        }
    }

    #[test]
    fn knee_of_flattening_curve() {
        // Gains: 2.5% between sizes 4 and 8, then 0.026% — under the
        // 0.1% threshold the knee is 8; a 5% threshold tolerates the
        // 2.5% gain too and stops at 4.
        let c = curve(&[(1, 100.0), (2, 50.0), (4, 40.0), (8, 39.0), (16, 38.99)]);
        assert_eq!(find_knee(&c, 0.001), 8);
        assert_eq!(find_knee(&c, 0.05), 4);
    }

    #[test]
    fn knee_when_curve_rises_again() {
        // Scheduling time makes big RCs worse (Figure V-3): knee sits at
        // the minimum.
        let c = curve(&[(1, 100.0), (4, 40.0), (16, 35.0), (64, 45.0), (256, 80.0)]);
        assert_eq!(find_knee(&c, 0.001), 16);
    }

    #[test]
    fn knee_monotone_in_threshold() {
        let c = curve(&[
            (1, 100.0),
            (2, 70.0),
            (4, 50.0),
            (8, 42.0),
            (16, 40.0),
            (32, 39.8),
            (64, 39.79),
        ]);
        let knees = find_knees(&c, &crate::THRESHOLD_LADDER);
        assert!(
            knees.windows(2).all(|w| w[0] >= w[1]),
            "higher threshold, smaller knee: {knees:?}"
        );
    }

    #[test]
    fn single_point_curve() {
        let c = curve(&[(1, 10.0)]);
        assert_eq!(find_knee(&c, 0.001), 1);
    }

    #[test]
    fn monotone_decreasing_to_the_end() {
        // Still improving at the last sample: knee = last size.
        let c = curve(&[(1, 100.0), (2, 50.0), (4, 25.0)]);
        assert_eq!(find_knee(&c, 0.001), 4);
    }

    #[test]
    fn refine_narrows_interval() {
        // True underlying function: turnaround 100/size until 20, flat
        // after; coarse ladder samples at 16 and 32 put the knee at 32;
        // refinement should find ~20-24.
        let f = |s: usize| -> f64 {
            if s >= 20 {
                5.0
            } else {
                100.0 / s as f64
            }
        };
        let c = curve(&[(1, f(1)), (4, f(4)), (16, f(16)), (32, f(32)), (64, f(64))]);
        let refined = refine_knee(&c, 0.001, 8, f);
        assert!(
            (20..=24).contains(&refined),
            "refined knee {refined} should be near 20"
        );
    }

    #[test]
    fn refine_on_first_point_is_identity() {
        let c = curve(&[(1, 5.0), (2, 5.0)]);
        assert_eq!(refine_knee(&c, 0.001, 4, |_| 5.0), 1);
    }
}
