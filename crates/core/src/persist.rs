//! Model persistence: a small self-describing TSV format for trained
//! models, so a model trained once (hours at paper scale) can be
//! reused across sessions and shipped alongside the library.
//!
//! Format, line-oriented:
//!
//! ```text
//! rsg-size-model<TAB>v1
//! theta<TAB>0.001
//! sizes<TAB>100<TAB>500<TAB>1000
//! ccrs<TAB>0.01<TAB>0.1
//! fit<TAB><si><TAB><ci><TAB><a><TAB><b><TAB><c>
//! ...
//! end
//! ```
//!
//! A [`ThresholdedSizeModel`] is a concatenation of sections.
//!
//! Decoding never trusts its input: every failure is a typed
//! [`StoreError`] carrying the artifact family and the 1-based line
//! number of the offending line — never a panic, and never a silently
//! misplaced value (cell indices are bounds-checked per axis). On-disk
//! artifacts additionally travel inside the checksummed envelope of
//! [`crate::store`], which catches byte-level damage before these
//! decoders ever run.

use crate::planefit::PlaneFit;
use crate::sizemodel::{SizePredictionModel, ThresholdedSizeModel};
use crate::store::StoreError;

/// Errors from decoding persisted models — an alias for the store-wide
/// typed taxonomy (the historical name, kept for callers).
pub type PersistError = StoreError;

impl SizePredictionModel {
    /// Serializes the model.
    pub fn to_tsv(&self) -> String {
        let (sizes, ccrs) = self.axes();
        let mut out = String::from("rsg-size-model\tv1\n");
        out.push_str(&format!("theta\t{}\n", self.theta));
        out.push_str("sizes");
        for s in sizes {
            out.push_str(&format!("\t{s}"));
        }
        out.push('\n');
        out.push_str("ccrs");
        for c in ccrs {
            out.push_str(&format!("\t{c}"));
        }
        out.push('\n');
        for si in 0..sizes.len() {
            for ci in 0..ccrs.len() {
                let f = self.plane(si, ci);
                out.push_str(&format!("fit\t{si}\t{ci}\t{}\t{}\t{}\n", f.a, f.b, f.c));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Decodes one model section starting at `lines`; returns the model
    /// and the number of lines consumed. Parse errors report 1-based
    /// line numbers relative to the start of the slice.
    pub fn from_tsv_lines(lines: &[&str]) -> Result<(SizePredictionModel, usize), StoreError> {
        const ART: &str = "size-model";
        let mut i = 0usize;
        let next = |i: &mut usize| -> Result<&str, StoreError> {
            let l = lines
                .get(*i)
                .ok_or_else(|| StoreError::parse(ART, *i + 1, "unexpected end of document"))?;
            *i += 1;
            Ok(l)
        };
        let header = next(&mut i)?;
        if !header.starts_with("rsg-size-model\tv1") {
            return Err(StoreError::parse(ART, i, format!("bad header '{header}'")));
        }
        let theta_line = next(&mut i)?;
        let theta: f64 = theta_line
            .strip_prefix("theta\t")
            .ok_or_else(|| StoreError::parse(ART, i, "missing theta"))?
            .parse()
            .map_err(|_| StoreError::parse(ART, i, "bad theta"))?;
        let parse_axis = |line: &str, lno: usize, tag: &str| -> Result<Vec<f64>, StoreError> {
            let rest = line
                .strip_prefix(tag)
                .ok_or_else(|| StoreError::parse(ART, lno, format!("missing {tag}")))?;
            let vals: Vec<f64> = rest
                .split('\t')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| StoreError::parse(ART, lno, format!("bad {tag} value '{s}'")))
                })
                .collect::<Result<_, _>>()?;
            if vals.is_empty() {
                return Err(StoreError::parse(ART, lno, format!("empty {tag} axis")));
            }
            Ok(vals)
        };
        let sizes = parse_axis(next(&mut i)?, i, "sizes")?;
        let ccrs = parse_axis(next(&mut i)?, i, "ccrs")?;
        let mut fits = vec![
            PlaneFit {
                a: 0.0,
                b: 0.0,
                c: 0.0
            };
            sizes.len() * ccrs.len()
        ];
        let mut seen = 0usize;
        loop {
            let line = next(&mut i)?;
            if line == "end" {
                break;
            }
            let mut parts = line.split('\t');
            if parts.next() != Some("fit") {
                return Err(StoreError::parse(
                    ART,
                    i,
                    format!("expected fit line, got '{line}'"),
                ));
            }
            let mut num = |lno: usize| -> Result<f64, StoreError> {
                parts
                    .next()
                    .ok_or_else(|| StoreError::parse(ART, lno, "short fit line"))?
                    .parse()
                    .map_err(|_| StoreError::parse(ART, lno, "bad fit number"))
            };
            let si = num(i)? as usize;
            let ci = num(i)? as usize;
            let (a, b, c) = (num(i)?, num(i)?, num(i)?);
            // Bounds-check each axis separately: a line like
            // `fit 0 99 …` with a small combined index must not land
            // in another cell's slot.
            if si >= sizes.len() || ci >= ccrs.len() {
                return Err(StoreError::parse(
                    ART,
                    i,
                    format!(
                        "fit index ({si}, {ci}) outside the {}x{} grid",
                        sizes.len(),
                        ccrs.len()
                    ),
                ));
            }
            fits[si * ccrs.len() + ci] = PlaneFit { a, b, c };
            seen += 1;
        }
        if seen != fits.len() {
            return Err(StoreError::parse(
                ART,
                i,
                format!("expected {} fits, found {seen}", fits.len()),
            ));
        }
        Ok((SizePredictionModel::from_parts(theta, sizes, ccrs, fits), i))
    }

    /// Decodes a single-model document.
    pub fn from_tsv(text: &str) -> Result<SizePredictionModel, StoreError> {
        let lines: Vec<&str> = text.lines().collect();
        let (m, _) = Self::from_tsv_lines(&lines)?;
        Ok(m)
    }
}

impl ThresholdedSizeModel {
    /// Serializes the full threshold ladder.
    pub fn to_tsv(&self) -> String {
        self.models.iter().map(|m| m.to_tsv()).collect()
    }

    /// Decodes a ladder document.
    pub fn from_tsv(text: &str) -> Result<ThresholdedSizeModel, StoreError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut models = Vec::new();
        let mut pos = 0usize;
        while pos < lines.len() {
            if lines[pos].trim().is_empty() {
                pos += 1;
                continue;
            }
            let (m, used) = SizePredictionModel::from_tsv_lines(&lines[pos..])
                .map_err(|e| e.with_line_offset(pos))?;
            models.push(m);
            pos += used;
        }
        if models.is_empty() {
            return Err(StoreError::parse("size-model", 1, "no models in document"));
        }
        models.sort_by(|a, b| a.theta.total_cmp(&b.theta));
        Ok(ThresholdedSizeModel { models })
    }
}

impl crate::heurmodel::HeuristicPredictionModel {
    /// Serializes the heuristic model:
    ///
    /// ```text
    /// rsg-heur-model<TAB>v1
    /// sizes<TAB>...
    /// ccrs<TAB>...
    /// cell<TAB><si><TAB><ci><TAB>MCP:12.5<TAB>FCA:13.1 ...
    /// end
    /// ```
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("rsg-heur-model\tv1\n");
        out.push_str("sizes");
        for s in &self.sizes {
            out.push_str(&format!("\t{s}"));
        }
        out.push('\n');
        out.push_str("ccrs");
        for c in &self.ccrs {
            out.push_str(&format!("\t{c}"));
        }
        out.push('\n');
        for si in 0..self.sizes.len() {
            for ci in 0..self.ccrs.len() {
                let cell = self.cell(si, ci);
                out.push_str(&format!("cell\t{si}\t{ci}"));
                for (h, t) in &cell.optimal_turnaround {
                    out.push_str(&format!("\t{}:{}", h.name(), t));
                }
                out.push('\n');
            }
        }
        out.push_str("end\n");
        out
    }

    /// Decodes a heuristic-model document.
    pub fn from_tsv(text: &str) -> Result<crate::heurmodel::HeuristicPredictionModel, StoreError> {
        use crate::heurmodel::CellResult;
        use rsg_sched::HeuristicKind;
        const ART: &str = "heur-model";
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| StoreError::parse(ART, 1, "empty document"))?;
        if !header.starts_with("rsg-heur-model\tv1") {
            return Err(StoreError::parse(ART, 1, format!("bad header '{header}'")));
        }
        let axis = |line: Option<&str>, lno: usize, tag: &str| -> Result<Vec<f64>, StoreError> {
            let line = line.ok_or_else(|| StoreError::parse(ART, lno, format!("missing {tag}")))?;
            let vals: Vec<f64> = line
                .strip_prefix(tag)
                .ok_or_else(|| StoreError::parse(ART, lno, format!("missing {tag}")))?
                .split('\t')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| StoreError::parse(ART, lno, format!("bad {tag} value '{s}'")))
                })
                .collect::<Result<_, _>>()?;
            if vals.is_empty() {
                return Err(StoreError::parse(ART, lno, format!("empty {tag} axis")));
            }
            Ok(vals)
        };
        let sizes: Vec<usize> = axis(lines.next(), 2, "sizes")?
            .into_iter()
            .map(|s| s as usize)
            .collect();
        let ccrs = axis(lines.next(), 3, "ccrs")?;
        let mut cells: Vec<Option<CellResult>> = vec![None; sizes.len() * ccrs.len()];
        for (off, line) in lines.enumerate() {
            let lno = off + 4;
            if line == "end" {
                break;
            }
            let mut parts = line.split('\t');
            if parts.next() != Some("cell") {
                return Err(StoreError::parse(
                    ART,
                    lno,
                    format!("expected cell line, got '{line}'"),
                ));
            }
            let si: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| StoreError::parse(ART, lno, "bad cell si"))?;
            let ci: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| StoreError::parse(ART, lno, "bad cell ci"))?;
            let mut optimal_turnaround = Vec::new();
            for pair in parts {
                let (name, t) = pair
                    .split_once(':')
                    .ok_or_else(|| StoreError::parse(ART, lno, format!("bad pair '{pair}'")))?;
                let h = HeuristicKind::parse(name).ok_or_else(|| {
                    StoreError::parse(ART, lno, format!("unknown heuristic '{name}'"))
                })?;
                let t: f64 = t
                    .parse()
                    .map_err(|_| StoreError::parse(ART, lno, format!("bad turnaround '{t}'")))?;
                optimal_turnaround.push((h, t));
            }
            if optimal_turnaround.is_empty() {
                return Err(StoreError::parse(ART, lno, "cell with no heuristics"));
            }
            // Per-axis bounds checks: a bad `ci` with a small combined
            // index must error, not overwrite a different cell.
            if si >= sizes.len() || ci >= ccrs.len() {
                return Err(StoreError::parse(
                    ART,
                    lno,
                    format!(
                        "cell index ({si}, {ci}) outside the {}x{} grid",
                        sizes.len(),
                        ccrs.len()
                    ),
                ));
            }
            cells[si * ccrs.len() + ci] = Some(CellResult {
                size: sizes[si],
                ccr: ccrs[ci],
                optimal_turnaround,
            });
        }
        let cells: Option<Vec<CellResult>> = cells.into_iter().collect();
        let cells = cells.ok_or_else(|| StoreError::parse(ART, 1, "missing cells"))?;
        Ok(crate::heurmodel::HeuristicPredictionModel { sizes, ccrs, cells })
    }
}

impl crate::observation::KneeTable {
    /// Serializes one knee table:
    ///
    /// ```text
    /// rsg-knee-table<TAB>v1
    /// theta<TAB>0.001
    /// sizes<TAB>100<TAB>300
    /// ccrs<TAB>...
    /// alphas<TAB>...
    /// betas<TAB>...
    /// grid<TAB><density><TAB><mean_comp><TAB><instances>
    /// knees<TAB><v0><TAB><v1> ...   (grid-index order)
    /// end
    /// ```
    ///
    /// Floats print in shortest-round-trip form, so a decode restores
    /// them bit-for-bit.
    pub fn to_tsv(&self) -> String {
        let g = &self.grid;
        let mut out = String::from("rsg-knee-table\tv1\n");
        out.push_str(&format!("theta\t{}\n", self.theta));
        let axis = |out: &mut String, tag: &str, vals: &[f64]| {
            out.push_str(tag);
            for v in vals {
                out.push_str(&format!("\t{v}"));
            }
            out.push('\n');
        };
        let sizes: Vec<f64> = g.sizes.iter().map(|&s| s as f64).collect();
        axis(&mut out, "sizes", &sizes);
        axis(&mut out, "ccrs", &g.ccrs);
        axis(&mut out, "alphas", &g.alphas);
        axis(&mut out, "betas", &g.betas);
        out.push_str(&format!(
            "grid\t{}\t{}\t{}\n",
            g.density, g.mean_comp, g.instances
        ));
        out.push_str("knees");
        for v in self.knees() {
            out.push_str(&format!("\t{v}"));
        }
        out.push('\n');
        out.push_str("end\n");
        out
    }

    /// Decodes one knee-table section starting at `lines`; returns the
    /// table and the number of lines consumed. Parse errors report
    /// 1-based line numbers relative to the start of the slice.
    pub fn from_tsv_lines(
        lines: &[&str],
    ) -> Result<(crate::observation::KneeTable, usize), StoreError> {
        use crate::observation::{KneeTable, ObservationGrid};
        const ART: &str = "knee-table";
        let mut i = 0usize;
        let next = |i: &mut usize| -> Result<&str, StoreError> {
            let l = lines
                .get(*i)
                .ok_or_else(|| StoreError::parse(ART, *i + 1, "unexpected end of document"))?;
            *i += 1;
            Ok(l)
        };
        let header = next(&mut i)?;
        if !header.starts_with("rsg-knee-table\tv1") {
            return Err(StoreError::parse(ART, i, format!("bad header '{header}'")));
        }
        let field = |line: &str, lno: usize, tag: &str| -> Result<Vec<f64>, StoreError> {
            line.strip_prefix(tag)
                .ok_or_else(|| StoreError::parse(ART, lno, format!("missing {tag}")))?
                .split('\t')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| StoreError::parse(ART, lno, format!("bad {tag} value '{s}'")))
                })
                .collect()
        };
        let theta = *field(next(&mut i)?, i, "theta")?
            .first()
            .ok_or_else(|| StoreError::parse(ART, i, "missing theta"))?;
        let sizes: Vec<usize> = field(next(&mut i)?, i, "sizes")?
            .into_iter()
            .map(|s| s as usize)
            .collect();
        let ccrs = field(next(&mut i)?, i, "ccrs")?;
        let alphas = field(next(&mut i)?, i, "alphas")?;
        let betas = field(next(&mut i)?, i, "betas")?;
        let grid_line = field(next(&mut i)?, i, "grid")?;
        if grid_line.len() != 3 {
            return Err(StoreError::parse(ART, i, "grid line needs 3 values"));
        }
        let grid = ObservationGrid {
            sizes,
            ccrs,
            alphas,
            betas,
            density: grid_line[0],
            mean_comp: grid_line[1],
            instances: grid_line[2] as usize,
        };
        let knees = field(next(&mut i)?, i, "knees")?;
        if next(&mut i)? != "end" {
            return Err(StoreError::parse(ART, i, "missing end"));
        }
        let table =
            KneeTable::from_parts(grid, theta, knees).map_err(|e| e.with_line_offset(i - 1))?;
        Ok((table, i))
    }
}

/// Serializes measured knee tables (one section per threshold, in the
/// given order).
///
/// Round-trips through [`knee_tables_from_tsv`]:
///
/// ```
/// use rsg_core::observation::{KneeTable, ObservationGrid};
/// use rsg_core::persist::{knee_tables_from_tsv, knee_tables_to_tsv};
///
/// let grid = ObservationGrid {
///     sizes: vec![100],
///     ccrs: vec![0.1],
///     alphas: vec![0.5],
///     betas: vec![0.5],
///     density: 0.5,
///     mean_comp: 10.0,
///     instances: 1,
/// };
/// let table = KneeTable::from_parts(grid, 0.05, vec![24.0]).unwrap();
/// let tsv = knee_tables_to_tsv(std::slice::from_ref(&table));
/// assert_eq!(knee_tables_from_tsv(&tsv).unwrap(), vec![table]);
/// ```
pub fn knee_tables_to_tsv(tables: &[crate::observation::KneeTable]) -> String {
    tables.iter().map(|t| t.to_tsv()).collect()
}

/// Decodes a knee-table document, preserving section order.
pub fn knee_tables_from_tsv(text: &str) -> Result<Vec<crate::observation::KneeTable>, StoreError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut tables = Vec::new();
    let mut pos = 0usize;
    while pos < lines.len() {
        if lines[pos].trim().is_empty() {
            pos += 1;
            continue;
        }
        let (t, used) = crate::observation::KneeTable::from_tsv_lines(&lines[pos..])
            .map_err(|e| e.with_line_offset(pos))?;
        tables.push(t);
        pos += used;
    }
    if tables.is_empty() {
        return Err(StoreError::parse(
            "knee-table",
            1,
            "no knee tables in document",
        ));
    }
    Ok(tables)
}

/// Artifact kind recorded in size-model envelopes (`rsg train --out`).
pub const SIZE_MODEL_KIND: &str = "size-model";

/// Artifact kind recorded in heuristic-model envelopes
/// (`rsg train-heuristic --out`).
pub const HEUR_MODEL_KIND: &str = "heur-model";

/// Reads a possibly envelope-wrapped artifact file. A bare (legacy)
/// file is returned as-is; a wrapped one is checksum-verified and must
/// carry the expected `kind`. This is the single on-disk read path for
/// trained models, shared by the CLI and the serving registry.
pub fn read_model_payload(path: &std::path::Path, kind: &str) -> Result<String, StoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| StoreError::io(path, "read model", &e))?;
    if !crate::store::looks_like_envelope(&text) {
        return Ok(text);
    }
    let (found, payload) = crate::store::unwrap_envelope(&text).map_err(|e| e.with_path(path))?;
    if found != kind {
        return Err(StoreError::Kind {
            path: path.display().to_string(),
            expected: kind.to_string(),
            found: found.to_string(),
        });
    }
    Ok(payload.to_string())
}

/// Loads a [`ThresholdedSizeModel`] from disk, verifying the store
/// envelope when present.
pub fn load_size_model(path: &std::path::Path) -> Result<ThresholdedSizeModel, StoreError> {
    let payload = read_model_payload(path, SIZE_MODEL_KIND)?;
    ThresholdedSizeModel::from_tsv(&payload)
}

/// Loads a [`crate::heurmodel::HeuristicPredictionModel`] from disk,
/// verifying the store envelope when present.
pub fn load_heuristic_model(
    path: &std::path::Path,
) -> Result<crate::heurmodel::HeuristicPredictionModel, StoreError> {
    let payload = read_model_payload(path, HEUR_MODEL_KIND)?;
    crate::heurmodel::HeuristicPredictionModel::from_tsv(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveConfig;
    use crate::observation::{measure, ObservationGrid};

    fn trained() -> ThresholdedSizeModel {
        let grid = ObservationGrid::tiny();
        let tables = measure(&grid, &CurveConfig::default(), &[0.001, 0.05], 0);
        ThresholdedSizeModel::fit(&tables)
    }

    #[test]
    fn round_trip_single_model() {
        let ladder = trained();
        let m = ladder.strictest();
        let text = m.to_tsv();
        let back = SizePredictionModel::from_tsv(&text).unwrap();
        assert_eq!(back.theta, m.theta);
        // Predictions must match bit-for-bit (axes + fits identical).
        for &(n, ccr, a, b) in &[(100.0, 0.01, 0.5, 0.5), (170.0, 0.3, 0.7, 0.9)] {
            assert_eq!(
                back.predict_chars(n, ccr, a, b),
                m.predict_chars(n, ccr, a, b)
            );
        }
    }

    #[test]
    fn round_trip_ladder() {
        let ladder = trained();
        let text = ladder.to_tsv();
        let back = ThresholdedSizeModel::from_tsv(&text).unwrap();
        assert_eq!(back.thresholds(), ladder.thresholds());
        assert_eq!(
            back.strictest().predict_chars(120.0, 0.1, 0.6, 0.5),
            ladder.strictest().predict_chars(120.0, 0.1, 0.6, 0.5)
        );
    }

    #[test]
    fn corrupt_documents_rejected() {
        assert!(SizePredictionModel::from_tsv("").is_err());
        assert!(SizePredictionModel::from_tsv("garbage\t1\n").is_err());
        let good = trained().strictest().to_tsv();
        // Drop the final fit line -> count mismatch.
        let truncated: String = {
            let mut lines: Vec<&str> = good.lines().collect();
            let last_fit = lines.iter().rposition(|l| l.starts_with("fit")).unwrap();
            lines.remove(last_fit);
            lines.join("\n")
        };
        assert!(SizePredictionModel::from_tsv(&truncated).is_err());
        assert!(ThresholdedSizeModel::from_tsv("\n\n").is_err());
    }

    #[test]
    fn decode_errors_carry_typed_context() {
        // An un-parseable theta reports its artifact and line number.
        let e = SizePredictionModel::from_tsv("rsg-size-model\tv1\ntheta\tbogus\n").unwrap_err();
        match e {
            StoreError::Parse { artifact, line, .. } => {
                assert_eq!(artifact, "size-model");
                assert_eq!(line, 2);
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        // Empty axes are rejected before they can panic a later
        // prediction.
        let e = SizePredictionModel::from_tsv("rsg-size-model\tv1\ntheta\t0.1\nsizes\nccrs\t1\n")
            .unwrap_err();
        assert!(e.to_string().contains("empty sizes axis"), "{e}");
    }

    #[test]
    fn out_of_range_axis_indices_rejected() {
        // `fit 0 9 …` has a small combined index on a 2x1 grid (idx 9
        // would wrap into another row if only the flat bound were
        // checked) — it must be a typed error, not a misplaced value.
        let doc = "rsg-size-model\tv1\ntheta\t0.1\nsizes\t10\t20\nccrs\t0.5\n\
                   fit\t0\t9\t1\t1\t1\nend\n";
        let e = SizePredictionModel::from_tsv(doc).unwrap_err();
        assert!(e.to_string().contains("outside"), "{e}");
        let doc = "rsg-heur-model\tv1\nsizes\t10\t20\nccrs\t0.5\ncell\t0\t9\tMCP:1\nend\n";
        let e = crate::heurmodel::HeuristicPredictionModel::from_tsv(doc).unwrap_err();
        assert!(e.to_string().contains("outside"), "{e}");
    }

    #[test]
    fn heuristic_model_round_trip() {
        let mut t = crate::heurmodel::HeuristicTraining::fast();
        t.sizes = vec![50, 200];
        t.instances = 1;
        let m = crate::heurmodel::HeuristicPredictionModel::train(&t, &CurveConfig::default());
        let text = m.to_tsv();
        let back = crate::heurmodel::HeuristicPredictionModel::from_tsv(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.predict_chars(120.0, 0.3), m.predict_chars(120.0, 0.3));
    }

    #[test]
    fn heuristic_model_corrupt_rejected() {
        assert!(crate::heurmodel::HeuristicPredictionModel::from_tsv("").is_err());
        assert!(
            crate::heurmodel::HeuristicPredictionModel::from_tsv(
                "rsg-heur-model\tv1\nsizes\t10\nccrs\t0.1\nend\n"
            )
            .is_err(),
            "missing cells must be rejected"
        );
        assert!(crate::heurmodel::HeuristicPredictionModel::from_tsv(
            "rsg-heur-model\tv1\nsizes\t10\nccrs\t0.1\ncell\t0\t0\tBogus:1\nend\n"
        )
        .is_err());
    }

    #[test]
    fn knee_tables_round_trip_bitwise() {
        let grid = ObservationGrid::tiny();
        let tables = measure(&grid, &CurveConfig::default(), &[0.001, 0.05], 2);
        let text = knee_tables_to_tsv(&tables);
        let back = knee_tables_from_tsv(&text).unwrap();
        // The decode must restore every field — grid, theta, knees —
        // exactly, preserving the threshold order.
        assert_eq!(back, tables);
    }

    #[test]
    fn knee_tables_corrupt_rejected() {
        assert!(knee_tables_from_tsv("").is_err());
        assert!(knee_tables_from_tsv("garbage\tv1\n").is_err());
        let grid = ObservationGrid::tiny();
        let tables = measure(&grid, &CurveConfig::default(), &[0.001], 0);
        let good = knee_tables_to_tsv(&tables);
        // Drop one knee value -> cell-count mismatch.
        let truncated: String = good
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("knees") {
                    let mut vals: Vec<&str> = rest.split('\t').filter(|s| !s.is_empty()).collect();
                    vals.pop();
                    format!("knees\t{}", vals.join("\t"))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(knee_tables_from_tsv(&truncated).is_err());
        // A missing terminator is rejected too.
        assert!(knee_tables_from_tsv(good.trim_end_matches("end\n")).is_err());
    }

    #[test]
    fn extra_whitespace_between_sections_ok() {
        let ladder = trained();
        let text = ladder
            .models
            .iter()
            .map(|m| m.to_tsv())
            .collect::<Vec<_>>()
            .join("\n\n");
        let back = ThresholdedSizeModel::from_tsv(&text).unwrap();
        assert_eq!(back.models.len(), ladder.models.len());
    }
}
