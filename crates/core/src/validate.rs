//! Validation harness (Section V.3): measures, per DAG configuration,
//! how far the model's predicted RC size is from the search-derived
//! optimum in size, turnaround degradation, and EC2-style relative
//! cost — the three Table V-5 metrics — plus the "current practice"
//! comparison of Table V-7 (DAG width as the RC size).

use crate::curve::{mean_turnaround, CurveConfig, CurveEvaluator};
use crate::optsearch::optimal_size_search_with;
use crate::sizemodel::SizePredictionModel;
use rsg_dag::{Dag, DagStats};
use rsg_platform::CostModel;

/// Metrics for one DAG configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigValidation {
    /// Model-predicted RC size.
    pub predicted_size: usize,
    /// Search-derived optimal RC size.
    pub optimal_size: usize,
    /// Mean turnaround at the predicted size, seconds.
    pub predicted_turnaround_s: f64,
    /// Mean turnaround at the optimal size, seconds.
    pub optimal_turnaround_s: f64,
    /// `|pred − opt| / opt`.
    pub size_diff: f64,
    /// `T_pred / T_opt − 1` (≥ 0 up to search noise).
    pub degradation: f64,
    /// EC2-relative cost: `cost_pred / cost_opt − 1`.
    pub relative_cost: f64,
    /// Whether the paper would exclude the configuration (single-host
    /// optimum: high CCR + low parallelism, Section V.3.2.2).
    pub excluded: bool,
}

/// Validates the model on one set of DAG instances (one configuration).
pub fn validate_config(
    dags: &[Dag],
    model: &SizePredictionModel,
    cfg: &CurveConfig,
    cost: &CostModel,
) -> ConfigValidation {
    let stats = DagStats::measure(&dags[0]);
    let predicted = model.predict(&stats);
    // One evaluator for the predicted-size probe and the search: the
    // search revisits the predicted size, and every size shares one
    // max-size RC.
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    let mut eval = CurveEvaluator::new(dags, cfg, width.max(predicted));
    let t_pred = eval.mean_turnaround(predicted);
    let search = optimal_size_search_with(&mut eval, predicted, width);
    let (optimal, t_opt) = (search.size, search.turnaround_s);

    let cost_of = |size: usize, t: f64| cost.execution_cost(&cfg.rc_family.build(size), t);
    let c_pred = cost_of(predicted, t_pred);
    let c_opt = cost_of(optimal, t_opt);

    ConfigValidation {
        predicted_size: predicted,
        optimal_size: optimal,
        predicted_turnaround_s: t_pred,
        optimal_turnaround_s: t_opt,
        size_diff: (predicted as f64 - optimal as f64).abs() / optimal.max(1) as f64,
        degradation: (t_pred / t_opt - 1.0).max(0.0),
        relative_cost: cost.relative_cost(c_pred, c_opt),
        excluded: optimal <= 1,
    }
}

/// The current practice of Section V.3.3: request the DAG width.
pub fn validate_width_practice(
    dags: &[Dag],
    baseline: &ConfigValidation,
    cfg: &CurveConfig,
    cost: &CostModel,
) -> ConfigValidation {
    let width = dags.iter().map(|d| d.width() as usize).max().unwrap_or(1);
    let t_width = mean_turnaround(dags, width, cfg);
    let c_width = cost.execution_cost(&cfg.rc_family.build(width), t_width);
    let c_opt = cost.execution_cost(
        &cfg.rc_family.build(baseline.optimal_size),
        baseline.optimal_turnaround_s,
    );
    ConfigValidation {
        predicted_size: width,
        optimal_size: baseline.optimal_size,
        predicted_turnaround_s: t_width,
        optimal_turnaround_s: baseline.optimal_turnaround_s,
        size_diff: (width as f64 - baseline.optimal_size as f64).abs()
            / baseline.optimal_size.max(1) as f64,
        degradation: (t_width / baseline.optimal_turnaround_s - 1.0).max(0.0),
        relative_cost: cost.relative_cost(c_width, c_opt),
        excluded: baseline.excluded,
    }
}

/// Aggregate over configurations (one Table V-5 cell).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ValidationSummary {
    /// Mean `size_diff` over included configurations.
    pub avg_size_diff: f64,
    /// Mean degradation.
    pub avg_degradation: f64,
    /// Mean relative cost (negative = cheaper than optimal config).
    pub avg_relative_cost: f64,
    /// Configurations included.
    pub included: usize,
    /// Configurations excluded (single-host optimum).
    pub excluded: usize,
}

impl ValidationSummary {
    /// Aggregates per-config validations, skipping excluded ones.
    pub fn aggregate(configs: &[ConfigValidation]) -> ValidationSummary {
        let mut s = ValidationSummary::default();
        for c in configs {
            if c.excluded {
                s.excluded += 1;
                continue;
            }
            s.avg_size_diff += c.size_diff;
            s.avg_degradation += c.degradation;
            s.avg_relative_cost += c.relative_cost;
            s.included += 1;
        }
        if s.included > 0 {
            let n = s.included as f64;
            s.avg_size_diff /= n;
            s.avg_degradation /= n;
            s.avg_relative_cost /= n;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{measure, ObservationGrid};
    use crate::sizemodel::ThresholdedSizeModel;
    use rsg_dag::RandomDagSpec;

    fn model_and_cfg() -> (ThresholdedSizeModel, CurveConfig) {
        let grid = ObservationGrid::tiny();
        let cfg = CurveConfig::default();
        let tables = measure(&grid, &cfg, &[0.001], 0);
        (ThresholdedSizeModel::fit(&tables), cfg)
    }

    #[test]
    fn validation_on_observation_cell_is_tight() {
        let (model, cfg) = model_and_cfg();
        // Validate on a config close to an observation cell.
        let dags: Vec<_> = (0..2)
            .map(|s| {
                RandomDagSpec {
                    size: 200,
                    ccr: 0.01,
                    parallelism: 0.7,
                    density: 0.5,
                    regularity: 0.9,
                    mean_comp: 20.0,
                }
                .generate(100 + s)
            })
            .collect();
        let v = validate_config(&dags, model.strictest(), &cfg, &CostModel::default());
        assert!(
            v.degradation < 0.25,
            "degradation {} too large for an on-grid config",
            v.degradation
        );
        assert!(v.predicted_size >= 1);
        assert!(v.optimal_turnaround_s <= v.predicted_turnaround_s + 1e-9);
    }

    #[test]
    fn width_practice_is_larger_and_pricier() {
        let (model, cfg) = model_and_cfg();
        let dags: Vec<_> = (0..2)
            .map(|s| {
                RandomDagSpec {
                    size: 200,
                    ccr: 0.5,
                    parallelism: 0.7,
                    density: 0.5,
                    regularity: 0.9,
                    mean_comp: 20.0,
                }
                .generate(200 + s)
            })
            .collect();
        let cost = CostModel::default();
        let base = validate_config(&dags, model.strictest(), &cfg, &cost);
        let width = validate_width_practice(&dags, &base, &cfg, &cost);
        assert!(width.predicted_size >= base.optimal_size);
        assert!(
            width.relative_cost >= base.relative_cost,
            "width practice should not be cheaper: {} vs {}",
            width.relative_cost,
            base.relative_cost
        );
    }

    #[test]
    fn summary_aggregation() {
        let c = ConfigValidation {
            predicted_size: 10,
            optimal_size: 12,
            predicted_turnaround_s: 11.0,
            optimal_turnaround_s: 10.0,
            size_diff: 2.0 / 12.0,
            degradation: 0.1,
            relative_cost: -0.05,
            excluded: false,
        };
        let mut excluded = c;
        excluded.excluded = true;
        let s = ValidationSummary::aggregate(&[c, c, excluded]);
        assert_eq!(s.included, 2);
        assert_eq!(s.excluded, 1);
        assert!((s.avg_degradation - 0.1).abs() < 1e-12);
        assert!((s.avg_relative_cost + 0.05).abs() < 1e-12);
    }
}
