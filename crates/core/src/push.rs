//! Push-mode incremental recomputation with self-healing reconciliation.
//!
//! The paper sweeps a *static* platform snapshot; a long-lived service
//! tracks a live grid where hosts join and leave, clocks and bandwidths
//! drift, and prices change. A full resweep per change is unaffordable
//! and a missed change is silently wrong, so this module maintains the
//! model state — sweep cells, knee tables, planar fits, the cost
//! model — as an explicit dependency DAG keyed by the sweep fingerprint
//! (the same digest the checkpoint journals record), and propagates
//! [`PlatformDelta`]s through it, dirtying and recomputing only the
//! cells whose platform footprint actually changed.
//!
//! Robustness is the headline contract, in three layers:
//!
//! * **Transport** — deltas arrive through [`DeltaJournal`], a
//!   checksummed append-only journal with the same discipline as the
//!   sweep checkpoint journal: torn tails truncate back to the last
//!   good record, a damaged or mismatched header quarantines the file
//!   to `*.corrupt`, and every record carries a sequence number so the
//!   engine can detect duplicates, reorderings and gaps instead of
//!   trusting delivery order.
//! * **Apply** — [`PushEngine::submit_batch`] is transactional:
//!   every delta in a batch is validated against a scratch copy of the
//!   platform before anything is committed, so one bad record rolls
//!   back the whole batch. Duplicates (seq ≤ applied) are idempotently
//!   skipped; out-of-order records are parked in a bounded buffer until
//!   the gap fills (quarantine-and-resync, never a panic); the
//!   [`Staleness`] stamp (applied seq + lag) rides on every answer so
//!   a consumer always knows how current the state is.
//! * **Audit** — [`PushEngine::audit`] periodically recomputes a
//!   seeded random sample of cells from scratch off the live platform
//!   and asserts bit-identity against the incremental state. Any
//!   divergence quarantines the cell, forces a selective recompute,
//!   and bumps `push.divergence` — the engine heals itself rather than
//!   serving the wrong number.
//!
//! Bit-identity between the incremental state and a from-scratch
//! resweep ([`measure_on_platform`]) is structural, not numerical luck:
//! both paths derive each cell's [`RcFamily`] from the platform with
//! the same function and evaluate the cell with the same
//! `compute_cell` kernel, and cells are mutually independent.

use crate::curve::{CurveConfig, RcFamily};
use crate::observation::{
    assemble_tables, cell_list, compute_cell_rc, prepare, sweep_fingerprint, KneeTable,
    ObservationGrid, SweepInputs,
};
use crate::sizemodel::ThresholdedSizeModel;
use crate::store::{fnv1a, quarantine, JournalRecovery, StoreError};
use rayon::prelude::*;
use rsg_obs::Counter;
use rsg_platform::delta::{DeltaError, PlatformDelta};
use rsg_platform::{CostModel, Platform};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Deltas applied to the live platform (post-dedup, post-ordering).
static OBS_DELTAS_APPLIED: Counter = Counter::new("push.deltas_applied");
/// Duplicate deltas (seq ≤ applied or already parked) skipped idempotently.
static OBS_DELTAS_DUPLICATE: Counter = Counter::new("push.deltas_duplicate");
/// Out-of-order deltas parked awaiting a gap fill.
static OBS_DELTAS_PARKED: Counter = Counter::new("push.deltas_parked");
/// Deltas dropped as invalid or unparkable (bounded buffer overflow).
static OBS_DELTAS_REJECTED: Counter = Counter::new("push.deltas_rejected");
/// Cells dirtied by delta propagation.
static OBS_CELLS_DIRTIED: Counter = Counter::new("push.cells_dirtied");
/// Cells recomputed (delta propagation + divergence repair).
static OBS_CELLS_RECOMPUTED: Counter = Counter::new("push.cells_recomputed");
/// Anti-entropy audit passes run.
static OBS_AUDITS: Counter = Counter::new("push.audits");
/// Audited cells whose incremental state diverged from scratch.
static OBS_DIVERGENCE: Counter = Counter::new("push.divergence");
/// Batches that closed a pre-existing sequence gap.
static OBS_RESYNCS: Counter = Counter::new("push.resyncs");

/// Version tag folded into the delta-journal header fingerprint check.
const DELTA_JOURNAL_VERSION: &str = "v1";

/// Out-of-order records the engine will park before refusing more. A
/// hostile stream of far-future sequence numbers fills this buffer and
/// then gets rejected record-by-record — it can never exhaust memory.
pub const MAX_PARKED: usize = 4096;

/// One sequenced platform delta, as carried by the journal and the
/// admin endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaRecord {
    /// Position in the delta stream; starts at 1, strictly increasing
    /// at the source.
    pub seq: u64,
    /// The platform change itself.
    pub delta: PlatformDelta,
}

/// An append-only, self-checksummed journal of [`DeltaRecord`]s — the
/// durable transport between a platform-monitoring source and the
/// [`PushEngine`]. Same discipline as the sweep checkpoint journal:
/// matching header → replay every record whose checksum verifies,
/// truncating a torn tail back to the last good line; mismatched or
/// damaged header → quarantine to `*.corrupt` and start fresh.
#[derive(Debug)]
pub struct DeltaJournal {
    path: PathBuf,
    recovered: Vec<DeltaRecord>,
    recovery: JournalRecovery,
    file: Mutex<File>,
}

impl DeltaJournal {
    /// The on-disk magic that identifies a delta journal.
    pub const MAGIC: &'static str = "rsg-delta-journal";

    fn header(fingerprint: u64) -> String {
        format!(
            "{}\t{DELTA_JOURNAL_VERSION}\t{fingerprint:016x}\n",
            Self::MAGIC
        )
    }

    /// Opens (or creates) the journal at `path` for an engine whose
    /// configuration digests to `fingerprint`. On
    /// [`JournalRecovery::Resumed`], [`recovered`](Self::recovered)
    /// holds every intact record in file order (duplicates and
    /// reorderings included — the engine's apply path owns those).
    pub fn open(path: &Path, fingerprint: u64) -> Result<DeltaJournal, StoreError> {
        let mut recovered = Vec::new();
        let mut recovery = JournalRecovery::Fresh;
        let mut good_bytes = 0usize;

        match std::fs::read_to_string(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io(path, "read", &e)),
            Ok(text) => match Self::replay(&text, fingerprint) {
                Ok((records, valid_len)) => {
                    good_bytes = valid_len;
                    recovery = JournalRecovery::Resumed {
                        cells: records.len(),
                    };
                    recovered = records;
                }
                Err(_) => {
                    quarantine(path);
                    recovery = JournalRecovery::Quarantined;
                }
            },
        }

        if recovery == JournalRecovery::Fresh || recovery == JournalRecovery::Quarantined {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)
                    .map_err(|e| StoreError::io(path, "create parent of", &e))?;
            }
            let mut f = File::create(path).map_err(|e| StoreError::io(path, "create", &e))?;
            f.write_all(Self::header(fingerprint).as_bytes())
                .map_err(|e| StoreError::io(path, "write", &e))?;
            f.sync_all()
                .map_err(|e| StoreError::io(path, "fsync", &e))?;
            return Ok(DeltaJournal {
                path: path.to_path_buf(),
                recovered,
                recovery,
                file: Mutex::new(f),
            });
        }

        // Truncate any torn tail, then reopen for appending.
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "open", &e))?;
        f.set_len(good_bytes as u64)
            .map_err(|e| StoreError::io(path, "truncate", &e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "open", &e))?;
        Ok(DeltaJournal {
            path: path.to_path_buf(),
            recovered,
            recovery,
            file: Mutex::new(file),
        })
    }

    /// Parses journal text; returns the intact records and the byte
    /// length of the valid prefix. A damaged *header* is an error
    /// (quarantine); a damaged *record* merely ends the valid prefix.
    fn replay(text: &str, fingerprint: u64) -> Result<(Vec<DeltaRecord>, usize), StoreError> {
        let (header, _) = text.split_once('\n').ok_or_else(|| StoreError::BadMagic {
            path: String::new(),
            found: text.chars().take(40).collect(),
        })?;
        let fields: Vec<&str> = header.split('\t').collect();
        if fields.first() != Some(&Self::MAGIC) {
            return Err(StoreError::BadMagic {
                path: String::new(),
                found: header.chars().take(40).collect(),
            });
        }
        if fields.get(1) != Some(&DELTA_JOURNAL_VERSION) {
            return Err(StoreError::Version {
                path: String::new(),
                found: fields.get(1).unwrap_or(&"").to_string(),
            });
        }
        let found_fp = fields
            .get(2)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| StoreError::parse("delta-journal", 1, "bad fingerprint field"))?;
        if found_fp != fingerprint {
            return Err(StoreError::Fingerprint {
                path: String::new(),
                expected: fingerprint,
                found: found_fp,
            });
        }

        let mut records = Vec::new();
        let mut good = header.len() + 1;
        for line in text[good..].split_inclusive('\n') {
            let body = line.strip_suffix('\n');
            match body.and_then(Self::parse_line) {
                Some(rec) => {
                    records.push(rec);
                    good += line.len();
                }
                None => break, // torn or damaged tail
            }
        }
        Ok((records, good))
    }

    /// Parses one `delta` line, verifying its trailing checksum. The
    /// sequence number must parse as `u64` — a hostile or bit-flipped
    /// seq field fails here and classifies the line as damaged.
    fn parse_line(line: &str) -> Option<DeltaRecord> {
        let (prefix, sum) = line.rsplit_once('\t')?;
        let expected = u64::from_str_radix(sum, 16).ok()?;
        if fnv1a(prefix.as_bytes()) != expected {
            return None;
        }
        let rest = prefix.strip_prefix("delta\t")?;
        let (seq_field, delta_tsv) = rest.split_once('\t')?;
        let seq: u64 = seq_field.parse().ok()?;
        let delta = PlatformDelta::from_tsv(delta_tsv).ok()?;
        Some(DeltaRecord { seq, delta })
    }

    /// The records recovered by replay, in file order.
    pub fn recovered(&self) -> &[DeltaRecord] {
        &self.recovered
    }

    /// What [`DeltaJournal::open`] found on disk (`cells` counts
    /// recovered delta records).
    pub fn recovery(&self) -> JournalRecovery {
        self.recovery
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn encode(rec: &DeltaRecord) -> String {
        let prefix = format!("delta\t{}\t{}", rec.seq, rec.delta.to_tsv());
        format!("{prefix}\t{:016x}\n", fnv1a(prefix.as_bytes()))
    }

    /// Durably appends one record (write + fsync under the journal
    /// lock).
    pub fn append(&self, rec: &DeltaRecord) -> Result<(), StoreError> {
        let line = Self::encode(rec);
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        f.write_all(line.as_bytes())
            .map_err(|e| StoreError::io(&self.path, "append to", &e))?;
        f.sync_data()
            .map_err(|e| StoreError::io(&self.path, "fsync", &e))?;
        Ok(())
    }

    /// Durably appends a whole batch as one write + one fsync. On any
    /// error the file is truncated back to its pre-append length
    /// (best-effort), so a failed append never leaves a partial batch
    /// behind — the journal either holds the whole batch or none of it.
    pub fn append_batch(&self, recs: &[DeltaRecord]) -> Result<(), StoreError> {
        let mut buf = String::new();
        for rec in recs {
            buf.push_str(&Self::encode(rec));
        }
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let rollback = f.metadata().map(|m| m.len()).ok();
        let res = f
            .write_all(buf.as_bytes())
            .map_err(|e| StoreError::io(&self.path, "append to", &e))
            .and_then(|()| {
                f.sync_data()
                    .map_err(|e| StoreError::io(&self.path, "fsync", &e))
            });
        if res.is_err() {
            if let Some(len) = rollback {
                let _ = f.set_len(len);
            }
        }
        res
    }

    /// Read-only validation of a delta journal (used by `rsg store
    /// verify`): checks magic, version and every record checksum
    /// without truncating or quarantining anything. Returns
    /// `(fingerprint, valid records, damaged tail lines)`.
    pub fn verify(path: &Path) -> Result<(u64, usize, usize), StoreError> {
        let text = std::fs::read_to_string(path).map_err(|e| StoreError::io(path, "read", &e))?;
        let (header, rest) = text.split_once('\n').ok_or_else(|| StoreError::BadMagic {
            path: path.display().to_string(),
            found: text.chars().take(40).collect(),
        })?;
        let fields: Vec<&str> = header.split('\t').collect();
        if fields.first() != Some(&Self::MAGIC) {
            return Err(StoreError::BadMagic {
                path: path.display().to_string(),
                found: header.chars().take(40).collect(),
            });
        }
        if fields.get(1) != Some(&DELTA_JOURNAL_VERSION) {
            return Err(StoreError::Version {
                path: path.display().to_string(),
                found: fields.get(1).unwrap_or(&"").to_string(),
            });
        }
        let fp = fields
            .get(2)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| {
                StoreError::parse("delta-journal", 1, "bad fingerprint field").with_path(path)
            })?;
        let mut good = 0usize;
        let mut bad = 0usize;
        for line in rest.split_inclusive('\n') {
            let ok = line.strip_suffix('\n').and_then(Self::parse_line).is_some();
            if ok && bad == 0 {
                good += 1;
            } else if !line.trim().is_empty() {
                bad += 1;
            }
        }
        Ok((fp, good, bad))
    }

    /// Read-only decode of a delta journal: the header fingerprint,
    /// every intact record in file order, and the count of damaged
    /// lines after the valid prefix. Unlike [`open`](Self::open) this
    /// never truncates, quarantines or creates anything — it is the
    /// introspection surface an offline auditor folds from. Same header
    /// strictness as [`verify`](Self::verify); the caller decides what
    /// a fingerprint mismatch means.
    pub fn read_records(path: &Path) -> Result<(u64, Vec<DeltaRecord>, usize), StoreError> {
        let (fp, _, _) = Self::verify(path)?;
        let text = std::fs::read_to_string(path).map_err(|e| StoreError::io(path, "read", &e))?;
        let rest = text.split_once('\n').map_or("", |(_, r)| r);
        let mut records = Vec::new();
        let mut damaged = 0usize;
        for line in rest.split_inclusive('\n') {
            match line.strip_suffix('\n').and_then(Self::parse_line) {
                Some(rec) if damaged == 0 => records.push(rec),
                _ => {
                    if !line.trim().is_empty() {
                        damaged += 1;
                    }
                }
            }
        }
        Ok((fp, records, damaged))
    }
}

/// Lifecycle of one node in the model dependency DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Consistent with the current platform.
    Clean,
    /// Invalidated by a delta; awaiting recompute.
    Dirty,
    /// Failed an anti-entropy audit; excluded until selectively
    /// recomputed.
    Quarantined,
}

/// What a dependency-DAG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// One sweep cell (index into the grid's cell list).
    Cell(usize),
    /// The assembled knee tables (one per θ), downstream of every cell.
    Tables,
    /// The planar fits / thresholded size model, downstream of the
    /// tables.
    Fit,
    /// The resource cost model, downstream of price deltas only.
    Cost,
}

/// One node of the model dependency DAG: a stable key (derived from the
/// sweep fingerprint), what it models, which nodes it depends on, and
/// its lifecycle state.
#[derive(Debug, Clone)]
pub struct DepNode {
    /// Stable identity: `fnv1a("{sweep_fp}|{kind}")` — ties every node
    /// to the sweep configuration the journals are keyed by.
    pub key: u64,
    /// What the node models.
    pub kind: NodeKind,
    /// Indices (into the engine's node list) this node depends on.
    pub deps: Vec<usize>,
    /// Current lifecycle state.
    pub state: NodeState,
}

/// How current the engine's answers are: the last applied delta
/// sequence number and how many known deltas are still unapplied
/// (parked behind a gap). Wall-clock age is layered on by the serving
/// tier — the engine itself is clock-free so replay stays
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staleness {
    /// Highest contiguously applied sequence number.
    pub applied_seq: u64,
    /// Highest sequence number ever *accepted* — applied or parked.
    /// Records the engine rejected (parked-buffer overflow) do not
    /// count: the caller was told they were refused, so they must not
    /// inflate the lag until they are actually redelivered.
    pub highest_seen: u64,
    /// `highest_seen - applied_seq`: 0 means fully current.
    pub lag: u64,
}

/// What one [`PushEngine::submit_batch`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Records applied to the platform (batch + drained parked).
    pub applied: usize,
    /// Records skipped as duplicates.
    pub duplicates: usize,
    /// Records parked awaiting a gap fill.
    pub parked: usize,
    /// Previously parked records dropped at drain time (invalid against
    /// the state the gap fill produced).
    pub rejected: usize,
    /// Cells dirtied by the applied deltas.
    pub dirtied: usize,
    /// Cells recomputed (== dirtied; recompute is eager).
    pub recomputed: usize,
    /// Whether this batch closed a pre-existing sequence gap.
    pub resynced: bool,
}

/// What one [`PushEngine::audit`] pass found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// Cells recomputed from scratch and compared.
    pub checked: usize,
    /// Cells whose incremental state diverged (each was quarantined and
    /// selectively recomputed before this call returned).
    pub divergent: usize,
}

/// Derives the [`RcFamily`] a cell of capacity `cap` sees on
/// `platform`: walk clusters fastest-first until the prefix holds `cap`
/// hosts (the cell's *footprint*), then summarize the prefix as a
/// family — fastest clock as the nominal clock, clock spread as
/// heterogeneity, worst intra-footprint communication factor as
/// bandwidth heterogeneity. Deltas outside the footprint leave the
/// family — and therefore the cell — untouched; that locality is what
/// makes single-cluster deltas cheap.
///
/// Both the incremental engine and [`measure_on_platform`] call this
/// exact function, so their per-cell inputs are bit-identical by
/// construction.
pub fn derive_family(platform: &Platform, base: &CurveConfig, cap: usize) -> RcFamily {
    let order = platform.clusters_by_clock_desc();
    let clusters = platform.clusters();
    let mut prefix = Vec::new();
    let mut hosts = 0usize;
    for id in order {
        prefix.push(id);
        hosts += clusters[id.index()].hosts as usize;
        if hosts >= cap {
            break;
        }
    }
    let fastest = clusters[prefix[0].index()].clock_mhz;
    let slowest = clusters[prefix[prefix.len() - 1].index()].clock_mhz;
    let heterogeneity = (1.0 - slowest / fastest).clamp(0.0, 0.95);
    let mut max_cf = 1.0f64;
    for (i, &a) in prefix.iter().enumerate() {
        for &b in prefix.iter().skip(i + 1) {
            max_cf = max_cf.max(platform.comm_factor(a, b));
        }
    }
    let bw_heterogeneity = (1.0 - 1.0 / max_cf).clamp(0.0, 0.95);
    RcFamily {
        clock_mhz: fastest,
        heterogeneity,
        bw_heterogeneity,
        seed: base.rc_family.seed,
    }
}

/// From-scratch platform-aware sweep: every cell evaluated against the
/// RC its footprint on `platform` implies. This is the reference the
/// anti-entropy audit and the convergence tests compare the incremental
/// state against — and the expensive thing [`PushEngine`] exists to
/// avoid rerunning per delta.
pub fn measure_on_platform(
    grid: &ObservationGrid,
    cfg: &CurveConfig,
    thetas: &[f64],
    refine_rounds: u32,
    platform: &Platform,
) -> Vec<KneeTable> {
    let inputs = prepare(grid, cfg);
    let per_cell: Vec<Vec<f64>> = (0..inputs.cells.len())
        .into_par_iter()
        .map(|c| {
            let cap = *inputs.ladders[c].last().unwrap();
            let fam = derive_family(platform, cfg, cap);
            compute_cell_rc(&inputs, cfg, thetas, refine_rounds, c, &fam.build(cap))
        })
        .collect();
    assemble_tables(grid, &inputs.cells, &per_cell, thetas)
}

/// The push-mode incremental recomputation engine. See the module docs
/// for the contract; see [`PushEngine::submit_batch`] for the delta
/// path and [`PushEngine::audit`] for the reconciliation path.
pub struct PushEngine {
    grid: ObservationGrid,
    cfg: CurveConfig,
    thetas: Vec<f64>,
    refine_rounds: u32,
    fingerprint: u64,
    inputs: SweepInputs,
    platform: Platform,
    cost: CostModel,
    families: Vec<RcFamily>,
    per_cell: Vec<Vec<f64>>,
    tables: Vec<KneeTable>,
    model: ThresholdedSizeModel,
    nodes: Vec<DepNode>,
    applied_seq: u64,
    highest_seen: u64,
    pending: BTreeMap<u64, DeltaRecord>,
}

impl PushEngine {
    /// Builds the engine with a full initial sweep of `platform` — the
    /// last full sweep it ever needs while the journal stays healthy.
    pub fn new(
        grid: ObservationGrid,
        cfg: CurveConfig,
        thetas: Vec<f64>,
        refine_rounds: u32,
        platform: Platform,
        cost: CostModel,
    ) -> PushEngine {
        let fingerprint = sweep_fingerprint(&grid, &cfg, &thetas, refine_rounds);
        let inputs = prepare(&grid, &cfg);
        let ncells = inputs.cells.len();
        let families: Vec<RcFamily> = (0..ncells)
            .map(|c| derive_family(&platform, &cfg, *inputs.ladders[c].last().unwrap()))
            .collect();
        let per_cell: Vec<Vec<f64>> = (0..ncells)
            .into_par_iter()
            .map(|c| {
                let cap = *inputs.ladders[c].last().unwrap();
                compute_cell_rc(
                    &inputs,
                    &cfg,
                    &thetas,
                    refine_rounds,
                    c,
                    &families[c].build(cap),
                )
            })
            .collect();
        let tables = assemble_tables(&grid, &inputs.cells, &per_cell, &thetas);
        let model = ThresholdedSizeModel::fit(&tables);

        // The explicit dependency DAG: cells feed the tables, the
        // tables feed the fit; the cost model stands alone under price
        // deltas. Keys fold the sweep fingerprint so a node's identity
        // changes exactly when the journals' identity does.
        let key = |tag: &str| fnv1a(format!("{fingerprint:016x}|{tag}").as_bytes());
        let mut nodes: Vec<DepNode> = (0..ncells)
            .map(|c| DepNode {
                key: key(&format!("cell/{c}")),
                kind: NodeKind::Cell(c),
                deps: Vec::new(),
                state: NodeState::Clean,
            })
            .collect();
        nodes.push(DepNode {
            key: key("tables"),
            kind: NodeKind::Tables,
            deps: (0..ncells).collect(),
            state: NodeState::Clean,
        });
        nodes.push(DepNode {
            key: key("fit"),
            kind: NodeKind::Fit,
            deps: vec![ncells],
            state: NodeState::Clean,
        });
        nodes.push(DepNode {
            key: key("cost"),
            kind: NodeKind::Cost,
            deps: Vec::new(),
            state: NodeState::Clean,
        });

        PushEngine {
            grid,
            cfg,
            thetas,
            refine_rounds,
            fingerprint,
            inputs,
            platform,
            cost,
            families,
            per_cell,
            tables,
            model,
            nodes,
            applied_seq: 0,
            highest_seen: 0,
            pending: BTreeMap::new(),
        }
    }

    /// The engine's sweep fingerprint — the digest its delta journal
    /// and dependency-DAG node keys are derived from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The current (delta-tracked) platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The current cost model.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// The knee tables consistent with every applied delta.
    pub fn tables(&self) -> &[KneeTable] {
        &self.tables
    }

    /// The thresholded size model fitted to [`tables`](Self::tables).
    pub fn model(&self) -> &ThresholdedSizeModel {
        &self.model
    }

    /// The dependency DAG (cells, tables, fit, cost) for introspection.
    pub fn nodes(&self) -> &[DepNode] {
        &self.nodes
    }

    /// Number of sweep cells under management.
    pub fn cells(&self) -> usize {
        self.inputs.cells.len()
    }

    /// How current the engine is. `lag > 0` means a sequence gap is
    /// open: the source must re-deliver the missing records (resync) —
    /// until then answers are stale-but-stamped, never wrong.
    pub fn staleness(&self) -> Staleness {
        Staleness {
            applied_seq: self.applied_seq,
            highest_seen: self.highest_seen,
            lag: self.highest_seen - self.applied_seq,
        }
    }

    /// The lowest missing sequence number, when a gap is open.
    pub fn gap(&self) -> Option<u64> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.applied_seq + 1)
        }
    }

    /// Applies a batch of delta records transactionally.
    ///
    /// Classification per record: `seq ≤ applied`, or already parked
    /// with the *same* payload → duplicate, skipped idempotently;
    /// already parked with a *different* payload → the source is
    /// contradicting itself, and the whole batch is refused with
    /// [`DeltaError::ConflictingSeq`] rather than silently picking a
    /// side; contiguous with the applied prefix → applied (possibly
    /// draining parked records behind it); future → parked (bounded by
    /// [`MAX_PARKED`]; overflow rejects the record, never grows
    /// memory, and does not advance `highest_seen`).
    ///
    /// Validation is all-or-nothing for the *incoming* records: every
    /// delta that would apply is first checked against a scratch copy
    /// of the platform, and any failure returns `Err` with no state
    /// change at all — the serving tier maps this to a 422 with the
    /// batch rolled back. A *previously parked* record that turns out
    /// invalid when its gap finally fills is dropped and its sequence
    /// number skipped (`push.deltas_rejected`) — a poisoned record must
    /// not wedge the stream forever.
    ///
    /// On success the dirty set is recomputed eagerly: per-cell
    /// families are rederived from the mutated platform and exactly the
    /// cells whose family changed are recomputed, then the downstream
    /// tables and fit rebuilt.
    pub fn submit_batch(&mut self, records: &[DeltaRecord]) -> Result<BatchOutcome, DeltaError> {
        let mut out = BatchOutcome::default();
        let gap_was_open = !self.pending.is_empty();

        // Stage everything on scratch copies; commit only on success.
        let mut platform = self.platform.clone();
        let mut cost = self.cost;
        let mut pending = self.pending.clone();
        let mut applied_seq = self.applied_seq;
        let mut highest_seen = self.highest_seen;
        let mut applied_any = false;

        let mut incoming: Vec<DeltaRecord> = records.to_vec();
        incoming.sort_by_key(|r| r.seq);

        for rec in &incoming {
            if rec.seq <= applied_seq {
                out.duplicates += 1;
                continue;
            }
            if let Some(parked) = pending.get(&rec.seq) {
                if parked.delta == rec.delta {
                    out.duplicates += 1;
                    continue;
                }
                // Same seq, different payload: a correction the
                // first-write-wins park would silently discard. Refuse
                // the batch so the conflict is surfaced instead.
                return Err(DeltaError::ConflictingSeq(rec.seq));
            }
            if rec.seq == applied_seq + 1 {
                // Incoming and contiguous: strict validation — any
                // failure rejects the whole batch.
                rec.delta.apply(&mut platform, &mut cost)?;
                applied_seq = rec.seq;
                highest_seen = highest_seen.max(rec.seq);
                out.applied += 1;
                applied_any = true;
                // Drain parked records now contiguous. These were
                // accepted in an earlier batch; if the state the gap
                // fill produced makes one invalid, drop it and move on
                // rather than wedging the stream.
                while let Some(next) = pending.remove(&(applied_seq + 1)) {
                    match next.delta.apply(&mut platform, &mut cost) {
                        Ok(()) => {
                            out.applied += 1;
                            applied_any = true;
                        }
                        Err(_) => out.rejected += 1,
                    }
                    applied_seq = next.seq;
                    highest_seen = highest_seen.max(next.seq);
                }
            } else if pending.len() >= MAX_PARKED {
                // Overflow: the record is refused, so it must not
                // ratchet highest_seen — a rejected seq the caller was
                // told about would otherwise count as lag forever.
                out.rejected += 1;
            } else {
                // Future record: park it (bounded). Structural
                // validation only — range checks against the platform
                // happen at drain time, once the intervening records
                // have shaped the state.
                pending.insert(rec.seq, *rec);
                out.parked += 1;
                highest_seen = highest_seen.max(rec.seq);
            }
        }

        // Commit.
        self.platform = platform;
        self.cost = cost;
        self.pending = pending;
        self.applied_seq = applied_seq;
        self.highest_seen = highest_seen;

        OBS_DELTAS_APPLIED.add(out.applied as u64);
        OBS_DELTAS_DUPLICATE.add(out.duplicates as u64);
        OBS_DELTAS_PARKED.add(out.parked as u64);
        OBS_DELTAS_REJECTED.add(out.rejected as u64);
        // A resync completes when a batch drains a previously parked
        // buffer: the gap that forced the quarantine is closed.
        if gap_was_open && applied_any && self.pending.is_empty() {
            out.resynced = true;
            OBS_RESYNCS.incr();
        }

        if applied_any {
            let (dirtied, recomputed) = self.propagate();
            out.dirtied = dirtied;
            out.recomputed = recomputed;
        }
        Ok(out)
    }

    /// Rederives every cell's family from the current platform, marks
    /// the changed ones dirty in the dependency DAG, recomputes exactly
    /// those, and rebuilds the downstream tables and fit. Returns
    /// `(dirtied, recomputed)`.
    fn propagate(&mut self) -> (usize, usize) {
        let ncells = self.inputs.cells.len();
        let fresh: Vec<RcFamily> = (0..ncells)
            .map(|c| {
                derive_family(
                    &self.platform,
                    &self.cfg,
                    *self.inputs.ladders[c].last().unwrap(),
                )
            })
            .collect();
        let dirty: Vec<usize> = (0..ncells)
            .filter(|&c| fresh[c] != self.families[c])
            .collect();
        for &c in &dirty {
            self.nodes[c].state = NodeState::Dirty;
        }
        if !dirty.is_empty() {
            let tables_node = ncells;
            self.nodes[tables_node].state = NodeState::Dirty;
            self.nodes[tables_node + 1].state = NodeState::Dirty;
        }
        OBS_CELLS_DIRTIED.add(dirty.len() as u64);

        self.families = fresh;
        let recomputed: Vec<(usize, Vec<f64>)> = dirty
            .par_iter()
            .map(|&c| {
                let cap = *self.inputs.ladders[c].last().unwrap();
                (
                    c,
                    compute_cell_rc(
                        &self.inputs,
                        &self.cfg,
                        &self.thetas,
                        self.refine_rounds,
                        c,
                        &self.families[c].build(cap),
                    ),
                )
            })
            .collect();
        for (c, knees) in recomputed {
            self.per_cell[c] = knees;
            self.nodes[c].state = NodeState::Clean;
        }
        OBS_CELLS_RECOMPUTED.add(dirty.len() as u64);

        if !dirty.is_empty() {
            self.rebuild_downstream();
        }
        (dirty.len(), dirty.len())
    }

    /// Rebuilds the tables and fit nodes from the per-cell state.
    fn rebuild_downstream(&mut self) {
        let ncells = self.inputs.cells.len();
        self.tables = assemble_tables(&self.grid, &self.inputs.cells, &self.per_cell, &self.thetas);
        self.model = ThresholdedSizeModel::fit(&self.tables);
        self.nodes[ncells].state = NodeState::Clean;
        self.nodes[ncells + 1].state = NodeState::Clean;
    }

    /// Anti-entropy audit: recomputes a seeded random sample of cells
    /// from scratch off the live platform and compares bit-for-bit
    /// against the incremental state. A divergent cell is quarantined,
    /// selectively recomputed from the fresh value, and counted in
    /// `push.divergence`; the downstream tables and fit are rebuilt
    /// before the call returns, so the engine never keeps serving a
    /// number it knows to be wrong.
    ///
    /// The sample is deterministic in `(fingerprint, applied_seq,
    /// salt)` — two replicas auditing at the same point check the same
    /// cells.
    pub fn audit(&mut self, sample: usize, salt: u64) -> AuditReport {
        OBS_AUDITS.incr();
        let ncells = self.inputs.cells.len();
        let mut state = self
            .fingerprint
            .wrapping_add(self.applied_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt);
        let mut picked = std::collections::BTreeSet::new();
        for _ in 0..sample.min(ncells) * 4 {
            // splitmix64 step
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            picked.insert((z % ncells as u64) as usize);
            if picked.len() >= sample.min(ncells) {
                break;
            }
        }

        let mut report = AuditReport {
            checked: picked.len(),
            divergent: 0,
        };
        let mut repaired = false;
        for c in picked {
            let cap = *self.inputs.ladders[c].last().unwrap();
            let fam = derive_family(&self.platform, &self.cfg, cap);
            let fresh = compute_cell_rc(
                &self.inputs,
                &self.cfg,
                &self.thetas,
                self.refine_rounds,
                c,
                &fam.build(cap),
            );
            let identical = fresh.len() == self.per_cell[c].len()
                && fresh
                    .iter()
                    .zip(&self.per_cell[c])
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !identical {
                self.nodes[c].state = NodeState::Quarantined;
                OBS_DIVERGENCE.incr();
                report.divergent += 1;
                self.per_cell[c] = fresh;
                self.families[c] = fam;
                self.nodes[c].state = NodeState::Clean;
                OBS_CELLS_RECOMPUTED.incr();
                repaired = true;
            }
        }
        if repaired {
            self.rebuild_downstream();
        }
        report
    }

    /// Test / drill hook: corrupts one cell's incremental state in a
    /// way only the anti-entropy audit can detect (the dependency DAG
    /// still reads `Clean`). Used by the convergence tests and the
    /// chaos bench to prove the audit actually repairs divergence.
    pub fn poison_cell(&mut self, c: usize) {
        for k in &mut self.per_cell[c] {
            *k += 1.0;
        }
        self.rebuild_downstream();
    }
}

/// The cell list of a grid, exposed for tools that want to label cells
/// the way the engine indexes them.
pub fn engine_cell_list(grid: &ObservationGrid) -> Vec<(usize, usize, usize, usize)> {
    cell_list(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::THRESHOLD_LADDER;
    use rsg_platform::{ClusterId, ResourceGenSpec, TopologySpec};

    fn tiny_platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 12,
                year: 2006,
                target_hosts: Some(420),
            },
            TopologySpec::default(),
            11,
        )
    }

    fn engine() -> PushEngine {
        PushEngine::new(
            ObservationGrid::tiny(),
            CurveConfig::default(),
            THRESHOLD_LADDER.to_vec(),
            0,
            tiny_platform(),
            CostModel::default(),
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rsg-push-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn initial_state_matches_from_scratch() {
        let eng = engine();
        let reference = measure_on_platform(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &THRESHOLD_LADDER,
            0,
            &tiny_platform(),
        );
        assert_eq!(eng.tables(), &reference[..]);
    }

    #[test]
    fn duplicate_and_out_of_order_records_converge() {
        let mut eng = engine();
        let slowest = *eng.platform().clusters_by_clock_desc().last().unwrap();
        let fastest = eng.platform().clusters_by_clock_desc()[0];
        let r1 = DeltaRecord {
            seq: 1,
            delta: PlatformDelta::HostJoin {
                cluster: slowest,
                hosts: 3,
            },
        };
        let r2 = DeltaRecord {
            seq: 2,
            delta: PlatformDelta::ClockDrift {
                cluster: fastest,
                clock_mhz: eng.platform().clusters()[fastest.index()].clock_mhz + 100.0,
            },
        };
        let r3 = DeltaRecord {
            seq: 3,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.2,
            },
        };
        // Deliver out of order with duplicates: 3, 1, 3, 2, 1.
        let out = eng.submit_batch(&[r3, r1]).unwrap();
        assert_eq!(out.applied, 1); // r1
        assert_eq!(out.parked, 1); // r3
        assert_eq!(eng.staleness().lag, 2);
        assert_eq!(eng.gap(), Some(2));
        let out = eng.submit_batch(&[r3, r2, r1]).unwrap();
        assert_eq!(out.applied, 2); // r2 + drained r3
        assert_eq!(out.duplicates, 2);
        assert!(out.resynced);
        assert_eq!(eng.staleness().lag, 0);
        assert_eq!(eng.gap(), None);
        assert_eq!(eng.cost().dollars_per_hour, 0.2);

        // Incremental state now matches a from-scratch sweep of the
        // final platform, bit for bit.
        let reference = measure_on_platform(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &THRESHOLD_LADDER,
            0,
            eng.platform(),
        );
        assert_eq!(eng.tables(), &reference[..]);
    }

    #[test]
    fn bad_delta_rolls_back_whole_batch() {
        let mut eng = engine();
        let before_seq = eng.staleness().applied_seq;
        let slowest = *eng.platform().clusters_by_clock_desc().last().unwrap();
        let good = DeltaRecord {
            seq: 1,
            delta: PlatformDelta::HostJoin {
                cluster: slowest,
                hosts: 1,
            },
        };
        let bad = DeltaRecord {
            seq: 2,
            delta: PlatformDelta::ClockDrift {
                cluster: ClusterId(0),
                clock_mhz: f64::INFINITY,
            },
        };
        let err = eng.submit_batch(&[good, bad]).unwrap_err();
        assert!(matches!(err, DeltaError::BadClock(_)));
        // Nothing committed — not even the good record.
        assert_eq!(eng.staleness().applied_seq, before_seq);
        assert_eq!(eng.staleness().lag, 0);
    }

    #[test]
    fn audit_detects_and_repairs_poison() {
        let mut eng = engine();
        eng.poison_cell(0);
        // Audit the whole grid so cell 0 is certainly sampled.
        let report = eng.audit(eng.cells(), 7);
        assert_eq!(report.divergent, 1);
        let reference = measure_on_platform(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &THRESHOLD_LADDER,
            0,
            eng.platform(),
        );
        assert_eq!(eng.tables(), &reference[..]);
        // A second audit finds nothing.
        let report = eng.audit(eng.cells(), 7);
        assert_eq!(report.divergent, 0);
    }

    #[test]
    fn out_of_footprint_delta_dirties_nothing() {
        let mut eng = engine();
        // The slowest cluster is outside every cell's footprint (caps
        // are small relative to the fast prefix), so shrinking it is
        // invisible to the models.
        let slowest = *eng.platform().clusters_by_clock_desc().last().unwrap();
        let rec = DeltaRecord {
            seq: 1,
            delta: PlatformDelta::HostLeave {
                cluster: slowest,
                hosts: 1,
            },
        };
        let out = eng.submit_batch(&[rec]).unwrap();
        assert_eq!(out.applied, 1);
        assert_eq!(out.dirtied, 0);
        assert_eq!(out.recomputed, 0);
    }

    #[test]
    fn parked_buffer_is_bounded() {
        let mut eng = engine();
        let slowest = *eng.platform().clusters_by_clock_desc().last().unwrap();
        let far: Vec<DeltaRecord> = (0..MAX_PARKED as u64 + 10)
            .map(|i| DeltaRecord {
                seq: 1_000_000 + i,
                delta: PlatformDelta::HostJoin {
                    cluster: slowest,
                    hosts: 1,
                },
            })
            .collect();
        let out = eng.submit_batch(&far).unwrap();
        assert_eq!(out.parked, MAX_PARKED);
        assert_eq!(out.rejected, 10);
        assert_eq!(out.applied, 0);
        // Rejected records do not ratchet highest_seen: the lag counts
        // only what was actually accepted (applied or parked).
        let s = eng.staleness();
        assert_eq!(s.highest_seen, 1_000_000 + MAX_PARKED as u64 - 1);
    }

    #[test]
    fn conflicting_parked_payload_rejects_the_batch() {
        let mut eng = engine();
        let parked = DeltaRecord {
            seq: 5,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.2,
            },
        };
        let out = eng.submit_batch(&[parked]).unwrap();
        assert_eq!(out.parked, 1);

        // Same payload redelivered: legal idempotent duplicate.
        let out = eng.submit_batch(&[parked]).unwrap();
        assert_eq!(out.duplicates, 1);

        // Different payload under the same seq: the source contradicts
        // itself — refuse the batch, don't silently keep either side.
        let conflict = DeltaRecord {
            seq: 5,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.9,
            },
        };
        let err = eng.submit_batch(&[conflict]).unwrap_err();
        assert_eq!(err, DeltaError::ConflictingSeq(5));
        // Nothing changed: the original parked record is still there.
        assert_eq!(eng.staleness().highest_seen, 5);
        assert_eq!(eng.gap(), Some(1));
    }

    #[test]
    fn journal_round_trip_and_torn_tail() {
        let dir = tmpdir("journal");
        let path = dir.join("deltas.journal");
        let fp = 0xDEAD_BEEF_u64;
        let j = DeltaJournal::open(&path, fp).unwrap();
        assert_eq!(j.recovery(), JournalRecovery::Fresh);
        let recs = [
            DeltaRecord {
                seq: 1,
                delta: PlatformDelta::HostJoin {
                    cluster: ClusterId(2),
                    hosts: 4,
                },
            },
            DeltaRecord {
                seq: 2,
                delta: PlatformDelta::PriceChange {
                    dollars_per_hour: 0.15,
                },
            },
        ];
        for r in &recs {
            j.append(r).unwrap();
        }
        drop(j);

        // Tear the tail mid-record.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"delta\t3\tprice\t0.").unwrap();
        }
        let (vfp, good, bad) = DeltaJournal::verify(&path).unwrap();
        assert_eq!(vfp, fp);
        assert_eq!(good, 2);
        assert_eq!(bad, 1);

        let j = DeltaJournal::open(&path, fp).unwrap();
        assert_eq!(j.recovery(), JournalRecovery::Resumed { cells: 2 });
        assert_eq!(j.recovered(), &recs[..]);
        drop(j);

        // Wrong fingerprint quarantines.
        let j = DeltaJournal::open(&path, fp ^ 1).unwrap();
        assert_eq!(j.recovery(), JournalRecovery::Quarantined);
        assert!(std::fs::read_dir(&dir).unwrap().any(|e| e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .contains("corrupt")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_rejects_hostile_lines() {
        let dir = tmpdir("hostile");
        let path = dir.join("deltas.journal");
        let fp = 0x1234_u64;
        // Valid header, hostile bodies: bad checksum, bad seq, bad TSV.
        let header = format!("rsg-delta-journal\tv1\t{fp:016x}\n");
        for tail in [
            "delta\t1\tprice\t0.1\t0000000000000000\n",
            "delta\t99999999999999999999999\tprice\t0.1\tdeadbeef\n",
            "delta\t-1\tprice\t0.1\tdeadbeef\n",
            "garbage\n",
        ] {
            std::fs::write(&path, format!("{header}{tail}")).unwrap();
            let (_, good, bad) = DeltaJournal::verify(&path).unwrap();
            assert_eq!(good, 0, "{tail:?}");
            assert_eq!(bad, 1, "{tail:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
