//! Observation-set driver (Section V.2.3).
//!
//! The paper builds its size prediction model by measuring knee values
//! over the cross product of DAG characteristics in Table V-1 (1260
//! configurations × 10 instances). This module drives that sweep — in
//! parallel with rayon — and stores the per-cell knees for every
//! threshold of interest.

use crate::curve::{mean_turnaround_reference, size_ladder, Curve, CurveConfig};
use crate::knee::{find_knee, refine_knee};
use rayon::prelude::*;
use rsg_dag::{Dag, RandomDagSpec};
use rsg_sched::evaluate_prefix;
use std::collections::HashMap;

/// The observation-grid axes (Table V-1) and instance count.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationGrid {
    /// DAG sizes (tasks).
    pub sizes: Vec<usize>,
    /// CCR values.
    pub ccrs: Vec<f64>,
    /// Parallelism values α.
    pub alphas: Vec<f64>,
    /// Regularity values β.
    pub betas: Vec<f64>,
    /// Fixed density δ.
    pub density: f64,
    /// Fixed mean computational cost ω, seconds.
    pub mean_comp: f64,
    /// Instances per configuration.
    pub instances: usize,
}

impl ObservationGrid {
    /// The full Table V-1 grid: 5 × 6 × 7 × 6 = 1260 configurations, 10
    /// instances each. Paper-scale: hours of CPU even in Rust.
    pub fn paper() -> ObservationGrid {
        ObservationGrid {
            sizes: vec![100, 500, 1000, 5000, 10_000],
            ccrs: vec![0.01, 0.1, 0.3, 0.5, 0.8, 1.0],
            alphas: vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            betas: vec![0.01, 0.1, 0.3, 0.5, 0.8, 1.0],
            density: 0.5,
            mean_comp: 40.0,
            instances: 10,
        }
    }

    /// A reduced grid that trains a usable model in seconds-to-minutes;
    /// the default for examples and the `fast` experiment preset.
    pub fn fast() -> ObservationGrid {
        ObservationGrid {
            sizes: vec![100, 300, 800],
            ccrs: vec![0.01, 0.1, 0.5, 1.0],
            alphas: vec![0.3, 0.5, 0.7, 0.9],
            betas: vec![0.01, 0.5, 1.0],
            density: 0.5,
            mean_comp: 40.0,
            instances: 3,
        }
    }

    /// A minimal grid for unit tests.
    pub fn tiny() -> ObservationGrid {
        ObservationGrid {
            sizes: vec![50, 200],
            ccrs: vec![0.01, 0.5],
            alphas: vec![0.4, 0.7],
            betas: vec![0.1, 0.9],
            density: 0.5,
            mean_comp: 20.0,
            instances: 2,
        }
    }

    /// Number of configurations (cells).
    pub fn cells(&self) -> usize {
        self.sizes.len() * self.ccrs.len() * self.alphas.len() * self.betas.len()
    }

    fn index(&self, si: usize, ci: usize, ai: usize, bi: usize) -> usize {
        ((si * self.ccrs.len() + ci) * self.alphas.len() + ai) * self.betas.len() + bi
    }

    /// The [`RandomDagSpec`] of one cell.
    pub fn spec(&self, si: usize, ci: usize, ai: usize, bi: usize) -> RandomDagSpec {
        RandomDagSpec {
            size: self.sizes[si],
            ccr: self.ccrs[ci],
            parallelism: self.alphas[ai],
            density: self.density,
            regularity: self.betas[bi],
            mean_comp: self.mean_comp,
        }
    }

    /// Deterministic instances of one cell.
    pub fn instances_of(&self, si: usize, ci: usize, ai: usize, bi: usize) -> Vec<Dag> {
        let spec = self.spec(si, ci, ai, bi);
        let base = cell_seed(si, ci, ai, bi);
        (0..self.instances)
            .map(|k| spec.generate(base.wrapping_add(k as u64)))
            .collect()
    }
}

/// Deterministic seed per grid cell.
fn cell_seed(si: usize, ci: usize, ai: usize, bi: usize) -> u64 {
    let mut z = (si as u64) << 48 | (ci as u64) << 32 | (ai as u64) << 16 | bi as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Measured knee values over a grid for one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct KneeTable {
    /// The grid the knees were measured on.
    pub grid: ObservationGrid,
    /// The knee threshold θ.
    pub theta: f64,
    knees: Vec<f64>,
}

impl KneeTable {
    /// Rebuilds a table from its parts (the persistence path); the knee
    /// vector must be in grid-index order and cover every cell.
    pub fn from_parts(
        grid: ObservationGrid,
        theta: f64,
        knees: Vec<f64>,
    ) -> Result<KneeTable, String> {
        if knees.len() != grid.cells() {
            return Err(format!(
                "knee table has {} values for a {}-cell grid",
                knees.len(),
                grid.cells()
            ));
        }
        Ok(KneeTable { grid, theta, knees })
    }

    /// The raw knee values in grid-index order (see
    /// [`ObservationGrid::cells`]).
    pub fn knees(&self) -> &[f64] {
        &self.knees
    }

    /// Knee at a cell.
    pub fn knee(&self, si: usize, ci: usize, ai: usize, bi: usize) -> f64 {
        self.knees[self.grid.index(si, ci, ai, bi)]
    }

    /// The `(α, β, log2 knee)` samples of one `(size, CCR)` slice — the
    /// Figure V-4 surface.
    pub fn plane_samples(&self, si: usize, ci: usize) -> Vec<(f64, f64, f64)> {
        let mut out = Vec::new();
        for (ai, &a) in self.grid.alphas.iter().enumerate() {
            for (bi, &b) in self.grid.betas.iter().enumerate() {
                let k = self.knee(si, ci, ai, bi).max(1.0);
                out.push((a, b, k.log2()));
            }
        }
        out
    }
}

fn cell_list(grid: &ObservationGrid) -> Vec<(usize, usize, usize, usize)> {
    (0..grid.sizes.len())
        .flat_map(|si| {
            (0..grid.ccrs.len()).flat_map(move |ci| {
                (0..grid.alphas.len())
                    .flat_map(move |ai| (0..grid.betas.len()).map(move |bi| (si, ci, ai, bi)))
            })
        })
        .collect()
}

fn assemble_tables(
    grid: &ObservationGrid,
    cells: &[(usize, usize, usize, usize)],
    per_cell: &[Vec<f64>],
    thetas: &[f64],
) -> Vec<KneeTable> {
    thetas
        .iter()
        .enumerate()
        .map(|(ti, &theta)| {
            let mut knees = vec![0.0f64; grid.cells()];
            for (cell_idx, &(si, ci, ai, bi)) in cells.iter().enumerate() {
                knees[grid.index(si, ci, ai, bi)] = per_cell[cell_idx][ti];
            }
            KneeTable {
                grid: grid.clone(),
                theta,
                knees,
            }
        })
        .collect()
}

/// Measures knee tables for every threshold in `thetas` over the grid.
/// `refine_rounds > 0` bisects between ladder points for sharper knees.
///
/// This is the optimized sweep — bit-identical to [`measure_naive`]:
///
/// * parallelism is over `(cell × instance)` tasks, not cells, so the
///   few expensive cells (large size × high parallelism) cannot
///   serialize the tail of the sweep;
/// * one maximum-size RC is built for the whole grid and every
///   evaluation uses a prefix view of it (prefix-stable families);
/// * per-cell `(size → mean turnaround)` results are memoized and
///   shared between curve sampling and knee refinement across all
///   thresholds;
/// * MCP/DLS placement goes through the candidate-set kernel
///   ([`rsg_sched::heuristics::placement`]) where it applies.
pub fn measure(
    grid: &ObservationGrid,
    cfg: &CurveConfig,
    thetas: &[f64],
    refine_rounds: u32,
) -> Vec<KneeTable> {
    let cells = cell_list(grid);
    let ninst = grid.instances.max(1);
    let ntasks = cells.len() * ninst;

    // Phase 1 — generate every DAG instance, in parallel over
    // (cell × instance). Instance k of a cell keeps its seed
    // `cell_seed(..) + k` regardless of schedule order.
    let dags: Vec<Dag> = (0..ntasks)
        .into_par_iter()
        .map(|i| {
            let (si, ci, ai, bi) = cells[i / ninst];
            let spec = grid.spec(si, ci, ai, bi);
            spec.generate(cell_seed(si, ci, ai, bi).wrapping_add((i % ninst) as u64))
        })
        .collect();

    // Per-cell ladders (bounded by the cell's widest instance) and the
    // single grid-wide RC every evaluation takes prefixes of.
    let ladders: Vec<Vec<usize>> = (0..cells.len())
        .map(|c| {
            let width = dags[c * ninst..(c + 1) * ninst]
                .iter()
                .map(|d| d.width() as usize)
                .max()
                .unwrap();
            size_ladder(width)
        })
        .collect();
    let global_max = ladders
        .iter()
        .map(|l| *l.last().unwrap())
        .max()
        .unwrap_or(1);
    let rc = cfg.rc_family.build(global_max);

    // Phase 2 — evaluate each instance over its cell's ladder, in
    // parallel over (cell × instance).
    let per_instance: Vec<Vec<f64>> = (0..ntasks)
        .into_par_iter()
        .map(|i| {
            let d = &dags[i];
            ladders[i / ninst]
                .iter()
                .map(|&s| evaluate_prefix(d, &rc, s, cfg.heuristic, &cfg.time_model).turnaround_s())
                .collect()
        })
        .collect();

    // Reduce to per-cell mean curves, summing in instance order (the
    // same left-to-right fold as the naive per-cell loop).
    let curves: Vec<Curve> = (0..cells.len())
        .map(|c| {
            let points = ladders[c]
                .iter()
                .enumerate()
                .map(|(j, &s)| {
                    let mut total = 0.0f64;
                    for k in 0..ninst {
                        total += per_instance[c * ninst + k][j];
                    }
                    (s, total / ninst as f64)
                })
                .collect();
            Curve { points }
        })
        .collect();

    // Phase 3 — knees per (cell, theta); refinement evaluations share
    // one per-cell (size → mean) memo across all thresholds.
    let per_cell: Vec<Vec<f64>> = (0..cells.len())
        .into_par_iter()
        .map(|c| {
            let curve = &curves[c];
            let cell_dags = &dags[c * ninst..(c + 1) * ninst];
            let mut memo: HashMap<usize, f64> = curve.points.iter().copied().collect();
            thetas
                .iter()
                .map(|&theta| {
                    let k = if refine_rounds > 0 {
                        refine_knee(curve, theta, refine_rounds, |s| {
                            *memo.entry(s).or_insert_with(|| {
                                let total: f64 = cell_dags
                                    .iter()
                                    .map(|d| {
                                        evaluate_prefix(d, &rc, s, cfg.heuristic, &cfg.time_model)
                                            .turnaround_s()
                                    })
                                    .sum();
                                total / ninst as f64
                            })
                        })
                    } else {
                        find_knee(curve, theta)
                    };
                    k as f64
                })
                .collect()
        })
        .collect();

    assemble_tables(grid, &cells, &per_cell, thetas)
}

/// The unoptimized observation sweep: parallel over cells only, a fresh
/// exact-size RC per evaluation, full host scans in MCP/DLS, no
/// memoization. Kept as the reference implementation — [`measure`] must
/// produce bit-identical tables (asserted in tests and by the
/// `bench_sweep` binary, which also records the speedup between the
/// two).
pub fn measure_naive(
    grid: &ObservationGrid,
    cfg: &CurveConfig,
    thetas: &[f64],
    refine_rounds: u32,
) -> Vec<KneeTable> {
    let cells = cell_list(grid);

    // Per-cell knees for each theta, in parallel over cells.
    let per_cell: Vec<Vec<f64>> = cells
        .par_iter()
        .map(|&(si, ci, ai, bi)| {
            let dags = grid.instances_of(si, ci, ai, bi);
            let width = dags.iter().map(|d| d.width() as usize).max().unwrap();
            let points = size_ladder(width)
                .into_iter()
                .map(|s| (s, mean_turnaround_reference(&dags, s, cfg)))
                .collect();
            let curve = Curve { points };
            thetas
                .iter()
                .map(|&theta| {
                    let k = if refine_rounds > 0 {
                        refine_knee(&curve, theta, refine_rounds, |s| {
                            mean_turnaround_reference(&dags, s, cfg)
                        })
                    } else {
                        find_knee(&curve, theta)
                    };
                    k as f64
                })
                .collect()
        })
        .collect();

    assemble_tables(grid, &cells, &per_cell, thetas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_measures() {
        let grid = ObservationGrid::tiny();
        let tables = measure(&grid, &CurveConfig::default(), &[0.001, 0.05], 0);
        assert_eq!(tables.len(), 2);
        let t = &tables[0];
        for si in 0..grid.sizes.len() {
            for ci in 0..grid.ccrs.len() {
                for ai in 0..grid.alphas.len() {
                    for bi in 0..grid.betas.len() {
                        let k = t.knee(si, ci, ai, bi);
                        assert!(k >= 1.0, "knee {k} must be >= 1");
                    }
                }
            }
        }
    }

    #[test]
    fn fast_measure_matches_naive() {
        let grid = ObservationGrid::tiny();
        let cfg = CurveConfig::default();
        for refine in [0u32, 2] {
            let fast = measure(&grid, &cfg, &[0.001, 0.05], refine);
            let naive = measure_naive(&grid, &cfg, &[0.001, 0.05], refine);
            assert_eq!(fast, naive, "refine_rounds = {refine}");
        }
    }

    #[test]
    fn knee_grows_with_parallelism() {
        // Low-CCR slice: higher α needs more hosts (Table V-2 trend).
        let grid = ObservationGrid {
            sizes: vec![300],
            ccrs: vec![0.01],
            alphas: vec![0.3, 0.8],
            betas: vec![0.8],
            density: 0.5,
            mean_comp: 20.0,
            instances: 2,
        };
        let t = &measure(&grid, &CurveConfig::default(), &[0.001], 0)[0];
        let low = t.knee(0, 0, 0, 0);
        let high = t.knee(0, 0, 1, 0);
        assert!(
            high > low,
            "knee should grow with parallelism: α=0.3 → {low}, α=0.8 → {high}"
        );
    }

    #[test]
    fn higher_threshold_never_bigger_knee() {
        let grid = ObservationGrid::tiny();
        let tables = measure(&grid, &CurveConfig::default(), &[0.001, 0.10], 0);
        for si in 0..grid.sizes.len() {
            for ci in 0..grid.ccrs.len() {
                for ai in 0..grid.alphas.len() {
                    for bi in 0..grid.betas.len() {
                        assert!(tables[1].knee(si, ci, ai, bi) <= tables[0].knee(si, ci, ai, bi));
                    }
                }
            }
        }
    }

    #[test]
    fn cell_instances_deterministic() {
        let grid = ObservationGrid::tiny();
        let a = grid.instances_of(0, 0, 0, 0);
        let b = grid.instances_of(0, 0, 0, 0);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].edge_count(), b[0].edge_count());
        let c = grid.instances_of(0, 0, 0, 1);
        // Different cell, different DAG shape (regularity differs).
        assert!(a[0].level_sizes() != c[0].level_sizes() || a[0].edge_count() != c[0].edge_count());
    }

    #[test]
    fn plane_samples_cover_slice() {
        let grid = ObservationGrid::tiny();
        let t = &measure(&grid, &CurveConfig::default(), &[0.001], 0)[0];
        let samples = t.plane_samples(0, 0);
        assert_eq!(samples.len(), grid.alphas.len() * grid.betas.len());
        assert!(samples.iter().all(|&(_, _, z)| z >= 0.0));
    }
}
