//! # rsg-bench — experiment harness shared code
//!
//! Experiment binaries (one per paper table/figure) live in `src/bin/`;
//! Criterion benches in `benches/`. This library holds the shared
//! output formatting and the fast/full experiment presets.

pub mod experiments;
pub mod report;

pub use report::Table;
