//! Table VI-2: application turn-around times per heuristic for the
//! smallest observation size (100 tasks in the paper) across RC sizes.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::{secs, Table};
use rsg_core::curve::{turnaround_curve_sizes, CurveConfig};
use rsg_dag::RandomDagSpec;
use rsg_sched::HeuristicKind;

fn main() {
    let scale = Scale::from_env();
    let spec = RandomDagSpec {
        size: 100,
        ccr: 0.1,
        parallelism: 0.7,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 40.0,
    };
    let dags = instances(spec, scale.instances(), 66);
    let sizes = [1usize, 2, 4, 8, 16, 32];
    let heuristics = [
        HeuristicKind::Mcp,
        HeuristicKind::Dls,
        HeuristicKind::Fca,
        HeuristicKind::Fcfs,
        HeuristicKind::Greedy,
    ];

    let mut table = Table::new(
        std::iter::once("RC size".to_string())
            .chain(heuristics.iter().map(|h| h.to_string()))
            .collect(),
    );
    let curves: Vec<_> = heuristics
        .iter()
        .map(|&h| {
            turnaround_curve_sizes(
                &dags,
                &sizes,
                &CurveConfig {
                    heuristic: h,
                    ..CurveConfig::default()
                },
            )
        })
        .collect();
    for (i, &s) in sizes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for c in &curves {
            row.push(secs(c.points[i].1));
        }
        table.row(row);
    }
    table.print("Table VI-2: turnaround per heuristic, DAG size 100");
}
