//! Figure VII-7: the relative RC-size threshold for moving from
//! 3.5 GHz collections to slower tiers — how many more slow hosts make
//! up for the clock deficit.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::Table;
use rsg_core::alternative::tier_size_threshold;
use rsg_core::curve::CurveConfig;
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let spec = RandomDagSpec {
        size: match scale {
            Scale::Full => 5000,
            Scale::Fast => 800,
        },
        ccr: 0.1,
        parallelism: 0.8,
        density: 0.5,
        regularity: 0.8,
        mean_comp: 40.0,
    };
    let dags = instances(spec, scale.instances(), 99);
    let cfg = CurveConfig::default();
    let base_sizes: Vec<usize> = match scale {
        Scale::Full => vec![50, 100, 200, 400],
        Scale::Fast => vec![25, 50, 100, 200],
    };
    let tiers = [3000.0, 2500.0, 2000.0];

    let mut table = Table::new(
        std::iter::once("base size @3.5GHz".to_string())
            .chain(tiers.iter().map(|t| format!("ratio to {t:.0} MHz")))
            .collect(),
    );
    for &s in &base_sizes {
        let mut row = vec![s.to_string()];
        for &tier in &tiers {
            match tier_size_threshold(&dags, s, 3500.0, tier, &cfg) {
                Some(r) => row.push(format!("{r:.2}")),
                None => row.push("n/a".to_string()),
            }
        }
        table.row(row);
    }
    table.print("Figure VII-7: relative RC-size thresholds for slower clock tiers");
    println!("(a ratio r means: prefer the slower tier only if it offers >= r x the hosts)");
}
