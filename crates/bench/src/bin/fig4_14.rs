//! Figure IV-14: varying mean computational cost for random DAGs.

use rsg_bench::experiments::chapter4_random_sweep;

fn main() {
    chapter4_random_sweep(
        "Figure IV-14: varying mean computational cost (ratios vs Greedy/VG)",
        "mean comp (s)",
        &[1.0, 5.0, 40.0, 100.0],
        |spec, v| spec.mean_comp = v,
    );
}
