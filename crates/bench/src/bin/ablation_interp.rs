//! Ablation: bilinear interpolation of knee values across (DAG size,
//! CCR) — the paper's choice — versus snapping to the nearest grid
//! cell. Evaluated on midpoint configurations where interpolation
//! should matter most.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::mean_turnaround;
use rsg_core::optsearch::optimal_size_search;
use rsg_dag::{DagStats, RandomDagSpec};

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let strictest = model.strictest();
    let (grid_sizes, grid_ccrs) = {
        let (s, c) = strictest.axes();
        (s.to_vec(), c.to_vec())
    };

    let mut table = Table::new(vec![
        "config",
        "bilinear size",
        "nearest size",
        "optimal",
        "bilinear degradation",
        "nearest degradation",
    ]);
    for sw in grid_sizes.windows(2) {
        let n = ((sw[0] + sw[1]) / 2.0) as usize;
        for cw in grid_ccrs.windows(2).take(2) {
            let ccr = (cw[0] + cw[1]) / 2.0;
            let spec = RandomDagSpec {
                size: n,
                ccr,
                parallelism: 0.7,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 40.0,
            };
            let dags = instances(spec, scale.instances(), n as u64 ^ ccr.to_bits());
            let stats = DagStats::measure(&dags[0]);
            let bilinear = strictest.predict(&stats);
            // Nearest-cell prediction: snap n and CCR to the closest
            // grid values before predicting.
            let snap = |xs: &[f64], x: f64| -> f64 {
                *xs.iter()
                    .min_by(|a, b| (**a - x).abs().total_cmp(&(**b - x).abs()))
                    .unwrap()
            };
            let nearest = {
                let k = strictest.predict_chars(
                    snap(&grid_sizes, n as f64),
                    snap(&grid_ccrs, ccr),
                    stats.parallelism,
                    stats.regularity,
                );
                (k.round() as usize).clamp(1, stats.width as usize)
            };
            let opt = optimal_size_search(&dags, bilinear, &cfg);
            let d = |size: usize| {
                (mean_turnaround(&dags, size, &cfg) / opt.turnaround_s - 1.0).max(0.0)
            };
            table.row(vec![
                format!("n={n} ccr={ccr:.3}"),
                bilinear.to_string(),
                nearest.to_string(),
                opt.size.to_string(),
                pct(d(bilinear)),
                pct(d(nearest)),
            ]);
        }
    }
    table.print("Ablation: bilinear vs nearest-cell size prediction on midpoint configs");
}
