//! Tables V-8/V-9: applying the predictive model to the Montage DAGs —
//! level populations, then model-vs-current-practice across knee
//! thresholds.

use rsg_bench::experiments::{trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::mean_turnaround;
use rsg_core::optsearch::optimal_size_search;
use rsg_dag::montage::{montage_1629_actual, montage_4469_actual};
use rsg_dag::DagStats;
use rsg_platform::CostModel;

fn main() {
    let scale = Scale::from_env();

    // Table V-8: level populations.
    let mut levels = Table::new(vec!["level", "task", "1629-task", "4469-task"]);
    let d1629 = montage_1629_actual();
    let d4469 = montage_4469_actual();
    for (i, name) in rsg_dag::montage::MONTAGE_TASK_NAMES.iter().enumerate() {
        levels.row(vec![
            (i + 1).to_string(),
            name.to_string(),
            d1629.level_size(i as u32).to_string(),
            d4469.level_size(i as u32).to_string(),
        ]);
    }
    levels.print("Table V-8: Montage level populations");

    let (model, cfg) = trained_size_model(scale);
    let cost = CostModel::default();

    let dags = match scale {
        Scale::Full => vec![d1629, d4469],
        Scale::Fast => vec![d1629],
    };
    for dag in &dags {
        let stats = DagStats::measure(dag);
        let insts = vec![dag.clone()];
        let predicted0 = model.strictest().predict(&stats);
        let opt = optimal_size_search(&insts, predicted0, &cfg);
        let c_opt = cost.execution_cost(&cfg.rc_family.build(opt.size), opt.turnaround_s);

        let mut table = Table::new(vec![
            "threshold",
            "model size",
            "model degradation",
            "model rel cost",
        ]);
        for m in &model.models {
            let size = m.predict(&stats);
            let t = mean_turnaround(&insts, size, &cfg);
            let c = cost.execution_cost(&cfg.rc_family.build(size), t);
            table.row(vec![
                pct(m.theta),
                size.to_string(),
                pct((t / opt.turnaround_s - 1.0).max(0.0)),
                pct(cost.relative_cost(c, c_opt)),
            ]);
        }
        table.print(&format!(
            "Table V-9: predictive model on Montage {} (optimal size {} @ {:.1}s)",
            dag.len(),
            opt.size,
            opt.turnaround_s
        ));

        // Current practice: the width.
        let width = stats.width as usize;
        let t_w = mean_turnaround(&insts, width, &cfg);
        let c_w = cost.execution_cost(&cfg.rc_family.build(width), t_w);
        println!(
            "current practice (width {width}): degradation {}, relative cost {}\n",
            pct((t_w / opt.turnaround_s - 1.0).max(0.0)),
            pct(cost.relative_cost(c_w, c_opt)),
        );
    }
}
