//! Figures V-16/V-17: performance degradation and relative cost of the
//! size model under different scheduling heuristics and resource
//! conditions (homogeneous / clock-heterogeneous / bandwidth-
//! heterogeneous) — the Chapter V sensitivity analysis.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::{CurveConfig, RcFamily};
use rsg_core::validate::validate_config;
use rsg_dag::RandomDagSpec;
use rsg_platform::CostModel;
use rsg_sched::HeuristicKind;

fn main() {
    let scale = Scale::from_env();
    // The model is trained with the MCP reference heuristic; the
    // sensitivity question is how far its predictions degrade when a
    // different heuristic or resource condition is used.
    let (model, base) = trained_size_model(scale);
    let strictest = model.strictest();
    let cost = CostModel::default();

    let spec = RandomDagSpec {
        size: match scale {
            Scale::Full => 5000,
            Scale::Fast => 500,
        },
        ccr: 0.1,
        parallelism: 0.7,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 40.0,
    };
    let dags = instances(spec, scale.instances(), 55);

    let conditions: Vec<(&str, RcFamily)> = vec![
        ("homogeneous", base.rc_family),
        (
            "clock het 0.3",
            RcFamily {
                heterogeneity: 0.3,
                ..base.rc_family
            },
        ),
        (
            "bw het 0.5",
            RcFamily {
                bw_heterogeneity: 0.5,
                ..base.rc_family
            },
        ),
    ];
    let heuristics = [
        HeuristicKind::Mcp,
        HeuristicKind::Dls,
        HeuristicKind::Fca,
        HeuristicKind::Fcfs,
    ];

    let mut table = Table::new(vec![
        "heuristic",
        "condition",
        "predicted",
        "optimal",
        "degradation",
        "relative cost",
    ]);
    for &h in &heuristics {
        for (cond, fam) in &conditions {
            let cfg = CurveConfig {
                heuristic: h,
                rc_family: *fam,
                ..base
            };
            let v = validate_config(&dags, strictest, &cfg, &cost);
            table.row(vec![
                h.to_string(),
                cond.to_string(),
                v.predicted_size.to_string(),
                v.optimal_size.to_string(),
                pct(v.degradation),
                pct(v.relative_cost),
            ]);
        }
    }
    table.print("Figures V-16/V-17: heuristic x resource-condition sensitivity");
}
