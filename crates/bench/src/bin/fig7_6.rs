//! Figure VII-6 / Table VII-2: application turn-around time as a
//! function of compute clock rate and RC size — the surface behind the
//! alternative-specification trade-off.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::{secs, Table};
use rsg_core::curve::{mean_turnaround, CurveConfig, RcFamily};
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let clocks = [3500.0, 3000.0, 2500.0, 2000.0, 1500.0];
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![50, 100, 200, 400, 800, 1600],
        Scale::Fast => vec![25, 50, 100, 200, 400],
    };
    let spec = RandomDagSpec {
        size: match scale {
            Scale::Full => 5000,
            Scale::Fast => 800,
        },
        ccr: 0.1,
        parallelism: 0.8,
        density: 0.5,
        regularity: 0.8,
        mean_comp: 40.0,
    };
    println!(
        "Table VII-2 setup: n={}, CCR=0.1, alpha=0.8, clock tiers {:?}",
        spec.size, clocks
    );
    let dags = instances(spec, scale.instances(), 88);

    let mut table = Table::new(
        std::iter::once("size\\clock".to_string())
            .chain(clocks.iter().map(|c| format!("{c:.0} MHz")))
            .collect(),
    );
    for &s in &sizes {
        let mut row = vec![s.to_string()];
        for &clock in &clocks {
            let cfg = CurveConfig {
                rc_family: RcFamily::homogeneous(clock),
                ..CurveConfig::default()
            };
            row.push(secs(mean_turnaround(&dags, s, &cfg)));
        }
        table.row(row);
    }
    table.print("Figure VII-6: turnaround vs clock rate x RC size");
}
