//! Table V-2: knee values over the alpha x beta grid for the anchor
//! DAG size at CCR = 0.01 (5000 tasks in the paper).

use rsg_bench::experiments::{chapter5_anchor_size, instances, Scale};
use rsg_bench::report::Table;
use rsg_core::curve::{turnaround_curve, CurveConfig};
use rsg_core::knee::find_knee;
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let n = chapter5_anchor_size(scale);
    let alphas = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let betas = [0.01, 0.1, 0.3, 0.5, 0.8, 1.0];
    let cfg = CurveConfig::default();

    let mut table = Table::new(
        std::iter::once("alpha\\beta".to_string())
            .chain(betas.iter().map(|b| format!("{b}")))
            .collect(),
    );
    for &a in &alphas {
        let mut row = vec![format!("{a}")];
        for &b in &betas {
            let spec = RandomDagSpec {
                size: n,
                ccr: 0.01,
                parallelism: a,
                density: 0.5,
                regularity: b,
                mean_comp: 40.0,
            };
            let dags = instances(spec, scale.instances(), a.to_bits() ^ b.to_bits());
            let curve = turnaround_curve(&dags, &cfg);
            row.push(find_knee(&curve, 0.001).to_string());
        }
        table.row(row);
    }
    table.print(&format!("Table V-2: knee values (n={n}, CCR=0.01)"));
}
