//! Figure V-2: application turn-around time as a function of RC size
//! for various regularity values (size 1000, CCR 0.01, parallelism
//! 0.6 at full scale).

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::{secs, Table};
use rsg_core::curve::{turnaround_curve, CurveConfig};
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Full => 1000,
        Scale::Fast => 400,
    };
    let betas = [0.01, 0.1, 0.5, 1.0];
    let cfg = CurveConfig::default();

    let mut curves = Vec::new();
    for &beta in &betas {
        let spec = RandomDagSpec {
            size: n,
            ccr: 0.01,
            parallelism: 0.6,
            density: 0.5,
            regularity: beta,
            mean_comp: 40.0,
        };
        let dags = instances(spec, scale.instances(), beta.to_bits());
        curves.push(turnaround_curve(&dags, &cfg));
    }

    // Join the sampled sizes across all curves.
    let mut sizes: Vec<usize> = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|&(s, _)| s))
        .collect();
    sizes.sort_unstable();
    sizes.dedup();

    let mut table = Table::new(
        std::iter::once("RC size".to_string())
            .chain(betas.iter().map(|b| format!("beta={b}")))
            .collect(),
    );
    for &s in &sizes {
        let mut row = vec![s.to_string()];
        for c in &curves {
            row.push(c.at(s).map_or_else(|| "-".into(), secs));
        }
        table.row(row);
    }
    table.print(&format!(
        "Figure V-2: turnaround vs RC size (n={n}, CCR=0.01, alpha=0.6)"
    ));
}
