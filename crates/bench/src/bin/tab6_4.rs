//! Tables VI-4/VI-5 and Figures VI-4/VI-5: validation of the combined
//! heuristic + size prediction models on off-grid points — breakdown of
//! correct / acceptable / wrong predictions and the mean degradation
//! from the best possible turnaround.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::{turnaround_curve, CurveConfig};
use rsg_core::heurmodel::{HeuristicPredictionModel, HeuristicTraining};
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let training = match scale {
        Scale::Full => HeuristicTraining::paper(),
        Scale::Fast => HeuristicTraining::fast(),
    };
    let cfg = CurveConfig::default();
    let model = HeuristicPredictionModel::train(&training, &cfg);

    // Validation points: geometric midpoints of the size grid at both
    // on-grid and midpoint CCRs (Table VI-4).
    let mut points: Vec<(usize, f64)> = Vec::new();
    for w in training.sizes.windows(2) {
        let mid = ((w[0] * w[1]) as f64).sqrt() as usize;
        for cw in training.ccrs.windows(2) {
            points.push((mid, (cw[0] + cw[1]) / 2.0));
        }
        points.push((mid, training.ccrs[0]));
    }

    let mut table = Table::new(vec![
        "size",
        "CCR",
        "predicted",
        "actual best",
        "degradation",
        "verdict",
    ]);
    let mut correct = 0usize;
    let mut acceptable = 0usize;
    let mut wrong = 0usize;
    let mut total_deg = 0.0;
    for &(n, ccr) in &points {
        let spec = RandomDagSpec {
            size: n,
            ccr,
            parallelism: training.alpha,
            density: training.density,
            regularity: training.beta,
            mean_comp: training.mean_comp,
        };
        let dags = instances(spec, scale.instances(), n as u64 ^ ccr.to_bits());
        let predicted = model.predict_chars(n as f64, ccr);
        // Ground truth: every heuristic's optimal turnaround.
        let mut best = (predicted, f64::INFINITY);
        let mut predicted_t = f64::INFINITY;
        for &h in &training.heuristics {
            let t = turnaround_curve(
                &dags,
                &CurveConfig {
                    heuristic: h,
                    ..cfg
                },
            )
            .argmin()
            .1;
            if t < best.1 {
                best = (h, t);
            }
            if h == predicted {
                predicted_t = t;
            }
        }
        let deg = (predicted_t / best.1 - 1.0).max(0.0);
        total_deg += deg;
        let verdict = if predicted == best.0 {
            correct += 1;
            "correct"
        } else if deg <= 0.05 {
            acceptable += 1;
            "acceptable (<=5%)"
        } else {
            wrong += 1;
            "wrong"
        };
        table.row(vec![
            n.to_string(),
            format!("{ccr}"),
            predicted.to_string(),
            best.0.to_string(),
            pct(deg),
            verdict.to_string(),
        ]);
    }
    table.print("Table VI-4 / Figure VI-4: heuristic model validation breakdown");
    println!(
        "correct: {correct}, acceptable: {acceptable}, wrong: {wrong} (of {})",
        points.len()
    );
    println!(
        "Figure VI-5: mean degradation from best possible turnaround: {}",
        pct(total_deg / points.len() as f64)
    );
}
