//! Figure V-5: knee values as a function of DAG size (CCR 0.01,
//! parallelism 0.7) for various regularity values.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::Table;
use rsg_core::curve::{turnaround_curve, CurveConfig};
use rsg_core::knee::find_knee;
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![100, 500, 1000, 5000, 10_000],
        Scale::Fast => vec![100, 300, 800],
    };
    let betas = [0.01, 0.5, 1.0];
    let cfg = CurveConfig::default();

    let mut table = Table::new(
        std::iter::once("size".to_string())
            .chain(betas.iter().map(|b| format!("beta={b}")))
            .collect(),
    );
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for &b in &betas {
            let spec = RandomDagSpec {
                size: n,
                ccr: 0.01,
                parallelism: 0.7,
                density: 0.5,
                regularity: b,
                mean_comp: 40.0,
            };
            let dags = instances(spec, scale.instances(), (n as u64) ^ b.to_bits());
            row.push(find_knee(&turnaround_curve(&dags, &cfg), 0.001).to_string());
        }
        table.row(row);
    }
    table.print("Figure V-5: knee vs DAG size (CCR=0.01, alpha=0.7)");
}
