//! Figure IV-13: varying regularity for random DAGs.

use rsg_bench::experiments::chapter4_random_sweep;

fn main() {
    chapter4_random_sweep(
        "Figure IV-13: varying regularity (ratios vs Greedy/VG)",
        "regularity",
        &[0.1, 0.2, 0.5, 0.8, 1.0],
        |spec, v| spec.regularity = v,
    );
}
