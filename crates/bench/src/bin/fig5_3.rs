//! Figure V-3: turnaround vs RC size for a bigger DAG (size 5000, CCR
//! 0.01, parallelism 0.7) — the knee sharpens and the curve rises again
//! as scheduling time dominates.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::{secs, Table};
use rsg_core::curve::{turnaround_curve, CurveConfig};
use rsg_core::knee::find_knee;
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Full => 5000,
        Scale::Fast => 800,
    };
    let betas = [0.01, 0.5, 1.0];
    let cfg = CurveConfig::default();

    let mut table = Table::new(vec![
        "beta".to_string(),
        "knee @0.1%".to_string(),
        "turnaround@knee (s)".to_string(),
        "turnaround@width (s)".to_string(),
    ]);
    for &beta in &betas {
        let spec = RandomDagSpec {
            size: n,
            ccr: 0.01,
            parallelism: 0.7,
            density: 0.5,
            regularity: beta,
            mean_comp: 40.0,
        };
        let dags = instances(spec, scale.instances(), beta.to_bits());
        let curve = turnaround_curve(&dags, &cfg);
        let knee = find_knee(&curve, 0.001);
        let t_knee = curve.at(knee).unwrap();
        let t_width = curve.points.last().unwrap().1;
        table.row(vec![
            format!("{beta}"),
            knee.to_string(),
            secs(t_knee),
            secs(t_width),
        ]);
        println!("curve beta={beta}:");
        for &(s, t) in &curve.points {
            println!("  {s:>7}  {}", secs(t));
        }
    }
    table.print(&format!(
        "Figure V-3: knees (n={n}, CCR=0.01, alpha=0.7); turnaround rises past the knee"
    ));
}
