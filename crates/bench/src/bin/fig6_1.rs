//! Figure VI-1 and Figure VI-2: optimal application turn-around time
//! per heuristic as a function of DAG size, and the MCP-vs-FCA
//! decision surface over (size, CCR).

use rsg_bench::experiments::Scale;
use rsg_bench::report::{secs, Table};
use rsg_core::curve::CurveConfig;
use rsg_core::heurmodel::{HeuristicPredictionModel, HeuristicTraining};

fn main() {
    let scale = Scale::from_env();
    let training = match scale {
        Scale::Full => HeuristicTraining::paper(),
        Scale::Fast => HeuristicTraining::fast(),
    };
    eprintln!(
        "[training] heuristic model on {} x {} cells ...",
        training.sizes.len(),
        training.ccrs.len()
    );
    let model = HeuristicPredictionModel::train(&training, &CurveConfig::default());

    // Figure VI-1: per-heuristic optimal turnaround vs size (first CCR).
    let mut fig = Table::new(
        std::iter::once("size".to_string())
            .chain(training.heuristics.iter().map(|h| h.to_string()))
            .collect(),
    );
    for (si, &n) in model.sizes.iter().enumerate() {
        let cell = model.cell(si, 0);
        let mut row = vec![n.to_string()];
        for &(_, t) in &cell.optimal_turnaround {
            row.push(secs(t));
        }
        fig.row(row);
    }
    fig.print(&format!(
        "Figure VI-1: optimal turnaround per heuristic vs DAG size (CCR={})",
        model.ccrs[0]
    ));

    // Figure VI-2: the winner per (size, CCR) cell.
    let mut surface = Table::new(
        std::iter::once("size\\CCR".to_string())
            .chain(model.ccrs.iter().map(|c| format!("{c}")))
            .collect(),
    );
    for (si, &n) in model.sizes.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for ci in 0..model.ccrs.len() {
            row.push(model.cell(si, ci).best().to_string());
        }
        surface.row(row);
    }
    surface.print("Figure VI-2: best-heuristic decision surface");
    for &ccr in &model.ccrs {
        match model.mcp_crossover_size(ccr) {
            Some(n) => println!("CCR {ccr}: MCP loses the lead at size {n}"),
            None => println!("CCR {ccr}: no crossover inside the grid"),
        }
    }
}
