//! Figure V-4: the log2(knee) surface over (alpha, beta) is planar —
//! fit the plane and report the mean relative error (the paper reports
//! at most 16% for the 5000-task slice).

use rsg_bench::experiments::{chapter5_anchor_size, instances, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::{turnaround_curve, CurveConfig};
use rsg_core::knee::find_knee;
use rsg_core::planefit::PlaneFit;
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let n = chapter5_anchor_size(scale);
    let alphas = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let betas = [0.01, 0.1, 0.3, 0.5, 0.8, 1.0];
    let cfg = CurveConfig::default();

    let mut samples = Vec::new();
    let mut table = Table::new(vec!["alpha", "beta", "knee", "log2(knee)"]);
    for &a in &alphas {
        for &b in &betas {
            let spec = RandomDagSpec {
                size: n,
                ccr: 0.01,
                parallelism: a,
                density: 0.5,
                regularity: b,
                mean_comp: 40.0,
            };
            let dags = instances(spec, scale.instances(), a.to_bits() ^ b.to_bits());
            let knee = find_knee(&turnaround_curve(&dags, &cfg), 0.001).max(1) as f64;
            samples.push((a, b, knee.log2()));
            table.row(vec![
                format!("{a}"),
                format!("{b}"),
                format!("{knee}"),
                format!("{:.3}", knee.log2()),
            ]);
        }
    }
    table.print(&format!("Figure V-4: log2 knee surface (n={n}, CCR=0.01)"));

    let fit = PlaneFit::fit(&samples);
    println!(
        "planar fit: log2(knee) = {:.3}*alpha + {:.3}*beta + {:.3}",
        fit.a, fit.b, fit.c
    );
    println!(
        "mean relative error of the fit: {} (paper: <= 16%)",
        pct(fit.mean_relative_error(&samples))
    );
}
