//! Incremental-vs-full recomputation benchmark for the push engine.
//!
//! Builds a [`PushEngine`] over the tiny observation grid and a
//! generated platform, times one from-scratch resweep of the whole
//! model state, then times single-delta batches through the
//! incremental path — the headline number is the speedup of applying
//! one platform delta over recomputing everything it could have
//! touched. A final convergence block drives a seeded, shuffled,
//! duplicated delta stream (plus one corrupt journal record) through
//! a journal round-trip and asserts the incremental state is
//! bit-identical to a from-scratch sweep of the final platform, with
//! zero divergence found by the anti-entropy audit.
//!
//! Writes `BENCH_push.json`. Pass `--quick` for the CI-scale run
//! (smaller platform, single timing rep); the schema is identical.

use rsg_bench::report::Table;
use rsg_core::curve::CurveConfig;
use rsg_core::observation::ObservationGrid;
use rsg_core::push::{measure_on_platform, DeltaJournal, DeltaRecord, PushEngine};
use rsg_core::THRESHOLD_LADDER;
use rsg_platform::delta::PlatformDelta;
use rsg_platform::{CostModel, Platform, ResourceGenSpec, TopologySpec};
use std::time::Instant;

struct Case {
    name: &'static str,
    dirtied: usize,
    recomputed: usize,
    incremental_ms: f64,
    speedup: f64,
}

fn platform(quick: bool) -> Platform {
    let spec = if quick {
        ResourceGenSpec {
            clusters: 12,
            year: 2006,
            target_hosts: Some(420),
        }
    } else {
        ResourceGenSpec {
            clusters: 40,
            year: 2006,
            target_hosts: Some(1200),
        }
    };
    Platform::generate(spec, TopologySpec::default(), 11)
}

fn engine(quick: bool) -> PushEngine {
    PushEngine::new(
        ObservationGrid::tiny(),
        CurveConfig::default(),
        THRESHOLD_LADDER.to_vec(),
        0,
        platform(quick),
        CostModel::default(),
    )
}

/// Times one full from-scratch resweep of the engine's current
/// platform, best of `reps`.
fn time_full_resweep(eng: &PushEngine, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let tables = measure_on_platform(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &THRESHOLD_LADDER,
            0,
            eng.platform(),
        );
        assert!(!tables.is_empty());
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// A tiny deterministic generator (splitmix64) so the chaos stream is
/// identical across runs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a seeded stream of `n` valid deltas against `p` (applied in
/// sequence so host arithmetic stays legal).
fn delta_stream(p: &Platform, n: usize, seed: u64) -> Vec<DeltaRecord> {
    let mut state = seed;
    let mut scratch = p.clone();
    let mut cost = CostModel::default();
    let mut out = Vec::with_capacity(n);
    for seq in 1..=n as u64 {
        let clusters = scratch.clusters().len();
        let delta = loop {
            let c = rsg_platform::ClusterId((splitmix(&mut state) % clusters as u64) as u32);
            let have = scratch.clusters()[c.index()].hosts;
            let candidate = match splitmix(&mut state) % 5 {
                0 => PlatformDelta::HostJoin {
                    cluster: c,
                    hosts: 1 + (splitmix(&mut state) % 4) as u32,
                },
                1 if have > 2 => PlatformDelta::HostLeave {
                    cluster: c,
                    hosts: 1,
                },
                2 => PlatformDelta::ClockDrift {
                    cluster: c,
                    clock_mhz: (scratch.clusters()[c.index()].clock_mhz
                        * (0.95 + (splitmix(&mut state) % 11) as f64 / 100.0))
                        .clamp(900.0, 30_000.0),
                },
                3 => PlatformDelta::BandwidthDrift {
                    cluster: c,
                    factor: 0.5 + (splitmix(&mut state) % 100) as f64 / 100.0,
                },
                _ => PlatformDelta::PriceChange {
                    dollars_per_hour: 0.05 + (splitmix(&mut state) % 40) as f64 / 100.0,
                },
            };
            if candidate.apply(&mut scratch, &mut cost).is_ok() {
                break candidate;
            }
        };
        out.push(DeltaRecord { seq, delta });
    }
    out
}

/// The convergence-under-fault proof: shuffled chunks with injected
/// duplicates, one corrupt journal record, journal replay into a fresh
/// engine, then bit-identity against a from-scratch sweep plus a
/// clean full audit. Returns (deltas, duplicates, bit_identical,
/// divergent_after_resync, audited).
fn convergence_block(quick: bool, seed: u64) -> (usize, usize, bool, usize, usize) {
    let n = if quick { 12 } else { 24 };
    let stream = delta_stream(&platform(quick), n, seed);

    // Shuffle into delivery order and duplicate every third record.
    let mut order: Vec<usize> = (0..stream.len()).collect();
    let mut state = seed ^ 0xDEAD_BEEF;
    for i in (1..order.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut delivery: Vec<DeltaRecord> = order.iter().map(|&i| stream[i]).collect();
    let dupes: Vec<DeltaRecord> = delivery.iter().step_by(3).copied().collect();
    let duplicates = dupes.len();
    delivery.extend(dupes);

    // Journal the hostile delivery order, then splice one corrupt
    // record into the middle of the file.
    let dir = std::env::temp_dir().join(format!("rsg-bench-push-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let jpath = dir.join("deltas.journal");
    let fp = engine(quick).fingerprint();
    {
        let j = DeltaJournal::open(&jpath, fp).expect("journal");
        for rec in &delivery {
            j.append(rec).expect("append");
        }
    }
    let text = std::fs::read_to_string(&jpath).expect("read journal");
    let mut lines: Vec<&str> = text.lines().collect();
    let corrupt = "delta\t9999\tprice\t0.5\t0123456789abcdef";
    lines.insert(lines.len() / 2, corrupt);
    std::fs::write(&jpath, format!("{}\n", lines.join("\n"))).expect("rewrite");

    // Replay through a fresh engine. The corrupt record fails its
    // checksum, so the journal truncates there (everything after a
    // damaged record is untrusted) — the replayed prefix leaves the
    // engine lagging, which is exactly the quarantine-and-resync
    // contract: idempotent redelivery of the stream closes the gap.
    let j = DeltaJournal::open(&jpath, fp).expect("reopen");
    let recovered: Vec<DeltaRecord> = j.recovered().to_vec();
    assert!(
        recovered.len() < delivery.len(),
        "the corrupt record should have truncated the replay"
    );
    let mut eng = engine(quick);
    for chunk in recovered.chunks(5) {
        eng.submit_batch(chunk).expect("replay chunk");
    }
    for chunk in delivery.chunks(5) {
        let out = eng.submit_batch(chunk).expect("resync chunk");
        for rec in chunk {
            if out.applied > 0 || out.duplicates > 0 {
                // Redelivered records are re-journaled; duplicates are
                // deduped on the next replay by idempotent apply.
                j.append(rec).expect("re-append");
            }
        }
    }
    drop(j);
    let lag = eng.staleness().lag;

    let reference = measure_on_platform(
        &ObservationGrid::tiny(),
        &CurveConfig::default(),
        &THRESHOLD_LADDER,
        0,
        eng.platform(),
    );
    let bit_identical = lag == 0 && eng.tables() == &reference[..];
    let cells = eng.cells();
    let report = eng.audit(cells, seed);
    let _ = std::fs::remove_dir_all(&dir);
    (
        stream.len(),
        duplicates,
        bit_identical,
        report.divergent,
        report.checked,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };

    eprintln!("bench_push: building engine (initial sweep)…");
    let mut eng = engine(quick);
    let cells = eng.cells();
    let clusters = eng.platform().clusters().len();
    let hosts: u32 = eng.platform().clusters().iter().map(|c| c.hosts).sum();

    eprintln!("bench_push: timing full resweep ({reps} rep(s))…");
    let full_ms = time_full_resweep(&eng, reps);

    let by_clock = eng.platform().clusters_by_clock_desc();
    let slowest = *by_clock.last().expect("clusters");
    let fastest = by_clock[0];
    let fast_clock = eng.platform().clusters()[fastest.index()].clock_mhz;
    let singles = [
        (
            "single-host join (outside footprint)",
            PlatformDelta::HostJoin {
                cluster: slowest,
                hosts: 1,
            },
        ),
        (
            "price change (cost node only)",
            PlatformDelta::PriceChange {
                dollars_per_hour: 0.42,
            },
        ),
        (
            "clock drift on fastest cluster (worst case)",
            PlatformDelta::ClockDrift {
                cluster: fastest,
                clock_mhz: fast_clock * 1.02,
            },
        ),
    ];

    let mut cases = Vec::new();
    for (i, (name, delta)) in singles.into_iter().enumerate() {
        let rec = DeltaRecord {
            seq: i as u64 + 1,
            delta,
        };
        let started = Instant::now();
        let out = eng.submit_batch(&[rec]).expect("apply");
        let incremental_ms = started.elapsed().as_secs_f64() * 1e3;
        cases.push(Case {
            name,
            dirtied: out.dirtied,
            recomputed: out.recomputed,
            incremental_ms,
            speedup: full_ms / incremental_ms.max(1e-6),
        });
    }

    eprintln!("bench_push: convergence-under-fault block…");
    let (deltas, duplicates, bit_identical, divergent, audited) =
        convergence_block(quick, 0xBADC_0FFE);
    assert!(
        bit_identical,
        "incremental state diverged from the from-scratch resweep"
    );
    assert_eq!(divergent, 0, "anti-entropy audit found divergent cells");

    let mut table = Table::new(vec!["case", "dirtied", "recomputed", "ms", "speedup"]);
    for c in &cases {
        table.row(vec![
            c.name.to_string(),
            c.dirtied.to_string(),
            c.recomputed.to_string(),
            format!("{:.3}", c.incremental_ms),
            format!("{:.1}x", c.speedup),
        ]);
    }

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"benchmark\": \"rsg-push incremental recomputation\",\n");
    j.push_str("  \"schema\": \"rsg-bench-push/v1\",\n");
    j.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    j.push_str(&format!(
        "  \"engine\": {{\"cells\": {cells}, \"clusters\": {clusters}, \"hosts\": {hosts}}},\n"
    ));
    j.push_str(&format!("  \"full_resweep_ms\": {full_ms:.3},\n"));
    j.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"dirtied\": {}, \"recomputed\": {}, \
             \"incremental_ms\": {:.3}, \"speedup_vs_full\": {:.1}}}{}\n",
            c.name,
            c.dirtied,
            c.recomputed,
            c.incremental_ms,
            c.speedup,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"convergence\": {{\"deltas\": {deltas}, \"duplicates\": {duplicates}, \
         \"corrupt_records\": 1, \"bit_identical\": {bit_identical}, \
         \"divergent_after_resync\": {divergent}, \"audited_cells\": {audited}}}\n"
    ));
    j.push_str("}\n");
    std::fs::write("BENCH_push.json", &j).expect("failed to write BENCH_push.json");

    table.print("rsg-push incremental vs full resweep");
    eprintln!(
        "bench_push: full resweep {full_ms:.1} ms; single-host delta speedup {:.0}x; \
         convergence ok ({deltas} deltas, {duplicates} duplicates, 1 corrupt record)",
        cases[0].speedup
    );
}
