//! Table V-6: effects of varying DAG size between two observation
//! points — the midpoint should be the worst case and intermediate
//! sizes in between.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::validate::validate_config;
use rsg_dag::RandomDagSpec;
use rsg_platform::CostModel;

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let strictest = model.strictest();
    let (grid_sizes, _) = strictest.axes();
    // The last two observation sizes bracket the sweep.
    let lo = grid_sizes[grid_sizes.len() - 2] as usize;
    let hi = *grid_sizes.last().unwrap() as usize;
    let steps = 5usize;
    let cost = CostModel::default();

    let mut table = Table::new(vec![
        "size",
        "predicted",
        "optimal",
        "degradation",
        "relative cost",
    ]);
    for k in 0..=steps {
        let n = lo + (hi - lo) * k / steps;
        let spec = RandomDagSpec {
            size: n,
            ccr: 0.1,
            parallelism: 0.7,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        };
        let dags = instances(spec, scale.instances(), n as u64);
        let v = validate_config(&dags, strictest, &cfg, &cost);
        table.row(vec![
            n.to_string(),
            v.predicted_size.to_string(),
            v.optimal_size.to_string(),
            pct(v.degradation),
            pct(v.relative_cost),
        ]);
    }
    table.print(&format!(
        "Table V-6: varying DAG size between observation points {lo} and {hi}"
    ));
}
