//! Figures V-8/V-9: performance degradation and relative cost as a
//! function of clock-rate heterogeneity when the homogeneous
//! prediction is used unchanged.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::heterogeneity::heterogeneity_sweep;
use rsg_dag::{DagStats, RandomDagSpec};
use rsg_platform::CostModel;

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let hs = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![1000, 5000],
        Scale::Fast => vec![300, 800],
    };

    for &n in &sizes {
        let spec = RandomDagSpec {
            size: n,
            ccr: 0.1,
            parallelism: 0.7,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        };
        let dags = instances(spec, scale.instances(), n as u64);
        let prediction = model.strictest().predict(&DagStats::measure(&dags[0]));
        let pts = heterogeneity_sweep(&dags, prediction, &cfg, &hs, &CostModel::default());
        let mut table = Table::new(vec![
            "H",
            "degradation",
            "relative cost",
            "optimal size",
            "optimal turnaround (s)",
        ]);
        for p in &pts {
            table.row(vec![
                format!("{}", p.heterogeneity),
                pct(p.degradation),
                pct(p.relative_cost),
                p.optimal_size.to_string(),
                format!("{:.1}", p.optimal_turnaround_s),
            ]);
        }
        table.print(&format!(
            "Figures V-8/V-9: heterogeneity sweep, homogeneous prediction {prediction} (n={n})"
        ));
    }
}
