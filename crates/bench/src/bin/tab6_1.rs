//! Table VI-1: the observation set used to derive the heuristic
//! prediction model — DAG characteristics, heuristics compared, and
//! instance policy, at both scales.

use rsg_bench::experiments::Scale;
use rsg_bench::report::Table;
use rsg_core::heurmodel::HeuristicTraining;

fn main() {
    for (label, t) in [
        ("fast preset", HeuristicTraining::fast()),
        ("paper (Table VI-1)", HeuristicTraining::paper()),
    ] {
        let mut table = Table::new(vec!["characteristic", "values"]);
        table.row(vec!["DAG sizes".to_string(), format!("{:?}", t.sizes)]);
        table.row(vec!["CCR".to_string(), format!("{:?}", t.ccrs)]);
        table.row(vec![
            "heuristics".to_string(),
            t.heuristics
                .iter()
                .map(|h| h.name())
                .collect::<Vec<_>>()
                .join(", "),
        ]);
        table.row(vec!["parallelism".to_string(), t.alpha.to_string()]);
        table.row(vec!["regularity".to_string(), t.beta.to_string()]);
        table.row(vec!["density".to_string(), t.density.to_string()]);
        table.row(vec!["mean comp (s)".to_string(), t.mean_comp.to_string()]);
        table.row(vec!["instances/cell".to_string(), t.instances.to_string()]);
        table.print(&format!(
            "Table VI-1: heuristic-model observation set ({label})"
        ));
    }
    println!(
        "active scale for the other chapter-VI binaries: {:?}",
        Scale::from_env()
    );
}
