//! Figures VII-3/VII-4/VII-5: the specifications generated for the
//! Montage DAG in all three resource-selection languages.

use rsg_bench::experiments::{trained_size_model, Scale};
use rsg_core::curve::CurveConfig;
use rsg_core::heurmodel::{HeuristicPredictionModel, HeuristicTraining};
use rsg_core::specgen::{GeneratorConfig, SpecGenerator};

fn main() {
    let scale = Scale::from_env();
    let (size_model, _) = trained_size_model(scale);
    let training = match scale {
        Scale::Full => HeuristicTraining::paper(),
        Scale::Fast => HeuristicTraining::fast(),
    };
    let heur = HeuristicPredictionModel::train(&training, &CurveConfig::default());
    let generator = SpecGenerator::new(size_model, heur);

    let dag = match scale {
        Scale::Full => rsg_dag::montage::montage_4469_actual(),
        Scale::Fast => rsg_dag::montage::montage_1629_actual(),
    };
    let spec = generator.generate(&dag, &GeneratorConfig::default());
    println!(
        "Montage {} tasks -> RC size {} (min {}), clocks {:.0}..{:.0} MHz, heuristic {}\n",
        dag.len(),
        spec.rc_size,
        spec.min_size,
        spec.clock_mhz.0,
        spec.clock_mhz.1,
        spec.heuristic
    );

    println!("== Figure VII-3: generated ClassAd ==");
    println!("{}\n", SpecGenerator::to_classad(&spec));
    println!("== Figure VII-4: generated SWORD XML query ==");
    println!(
        "{}",
        rsg_select::sword::write_sword(&SpecGenerator::to_sword(&spec))
    );
    println!("== Figure VII-5: generated vgDL ==");
    println!("{}", SpecGenerator::to_vgdl(&spec));
}
