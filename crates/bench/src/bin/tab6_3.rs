//! Table VI-3: performance degradation when the heuristic model is
//! trained at resource heterogeneity 0.3 but resources are homogeneous
//! (and vice versa) — the heterogeneity robustness check.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::{turnaround_curve, CurveConfig, RcFamily};
use rsg_dag::RandomDagSpec;
use rsg_sched::HeuristicKind;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![100, 1000, 5000],
        Scale::Fast => vec![100, 400],
    };
    let heuristics = [HeuristicKind::Mcp, HeuristicKind::Fca, HeuristicKind::Fcfs];
    let base = CurveConfig::default();

    let mut table = Table::new(vec![
        "size",
        "heuristic",
        "H=0 optimal",
        "H=0.3 optimal",
        "delta",
    ]);
    for &n in &sizes {
        let spec = RandomDagSpec {
            size: n,
            ccr: 0.1,
            parallelism: 0.7,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        };
        let dags = instances(spec, scale.instances(), n as u64 ^ 3);
        for &h in &heuristics {
            let hom = turnaround_curve(
                &dags,
                &CurveConfig {
                    heuristic: h,
                    ..base
                },
            )
            .argmin()
            .1;
            let het = turnaround_curve(
                &dags,
                &CurveConfig {
                    heuristic: h,
                    rc_family: RcFamily {
                        heterogeneity: 0.3,
                        ..base.rc_family
                    },
                    ..base
                },
            )
            .argmin()
            .1;
            table.row(vec![
                n.to_string(),
                h.to_string(),
                format!("{hom:.1}"),
                format!("{het:.1}"),
                pct(het / hom - 1.0),
            ]);
        }
    }
    table.print("Table VI-3: optimal turnaround, heterogeneity 0.3 vs 0");
}
