//! Figure IV-11: varying parallelism for random DAGs.

use rsg_bench::experiments::chapter4_random_sweep;

fn main() {
    chapter4_random_sweep(
        "Figure IV-11: varying parallelism (ratios vs Greedy/VG)",
        "parallelism",
        &[0.1, 0.2, 0.5, 0.8, 1.0],
        |spec, v| spec.parallelism = v,
    );
}
