//! Closed-loop load generator for `rsg-serve`.
//!
//! Boots an in-process server (ephemeral port, models trained inline
//! on the tiny observation grid so the run needs no files), then
//! drives it with N concurrent closed-loop clients — each client
//! holds exactly one request in flight: connect, POST `/spec`, read
//! the full response, repeat. Per-request wall latencies are recorded
//! client-side and reduced to exact (sorted-sample) percentiles, so
//! `p999` is a real observation, not a histogram bracket.
//!
//! Writes `BENCH_serve.json` with requests/s and p50/p99/p999 per
//! concurrency level. Pass `--quick` for the CI-scale run (fewer
//! requests, smaller levels); both modes sweep at least three levels.
//!
//! `--chaos` switches to the seeded socket-level fault-injection
//! harness ([`rsg_serve::chaostcp`]) instead of the load sweep:
//!
//! ```text
//! bench_serve --chaos [--seed N] [--deadline-s S]
//!             [--target HOST:PORT]          # external daemon (CI)
//!             [--admin HOST:PORT]           # reload-under-load cycle
//!             [--reload-dir DIR] [--drain]  # …with these models; then drain
//! ```
//!
//! Without `--target` it boots an in-process daemon. With `--admin`
//! it also runs (a) a reload-under-load cycle when `--reload-dir` is
//! given — concurrent `/spec` clients must see zero failures across
//! repeated `/admin/reload`s, including a deliberately bad model dir
//! that must roll back — and (b) the delta-stream fault scenarios
//! against `/admin/platform`: corrupt record, duplicate flood,
//! out-of-order burst, and deltas landing mid-reload, after which the
//! daemon must still be alive and fully convergent. With `--drain` it
//! finishes by draining the daemon. Exits nonzero on any contract
//! violation, which is what the CI chaos-smoke step keys off.

use rsg_bench::report::Table;
use rsg_core::curve::CurveConfig;
use rsg_core::heurmodel::HeuristicPredictionModel;
use rsg_core::observation::{measure, ObservationGrid};
use rsg_core::ThresholdedSizeModel;
use rsg_sched::HeuristicKind;
use rsg_serve::{ModelRegistry, ServeConfig, Server};
use std::io::{Read, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// The request every client sends: characteristics-only, so the
/// server exercises the full predict-and-render path without DAG
/// parsing dominating.
const BODY: &str = "{\"characteristics\": {\"size\": 200, \"ccr\": 0.2, \"parallelism\": 0.6, \
                    \"density\": 0.5, \"regularity\": 0.7, \"mean_comp\": 30}}";

struct Level {
    clients: usize,
    requests: usize,
    elapsed_s: f64,
    latencies_ms: Vec<f64>,
}

impl Level {
    fn requests_per_s(&self) -> f64 {
        self.requests as f64 / self.elapsed_s.max(1e-9)
    }

    /// Exact sample percentile (nearest-rank) over the sorted set.
    fn percentile_ms(&self, q: f64) -> f64 {
        let n = self.latencies_ms.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_ms[rank - 1]
    }
}

fn one_request(addr: SocketAddr) -> f64 {
    let started = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "POST /spec HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        BODY.len(),
        BODY
    )
    .expect("send");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read");
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "non-200 under load: {}",
        reply.lines().next().unwrap_or("")
    );
    started.elapsed().as_secs_f64() * 1e3
}

fn run_level(addr: SocketAddr, clients: usize, requests: usize) -> Level {
    let per_client = requests / clients;
    let started = Instant::now();
    let lat: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    (0..per_client)
                        .map(|_| one_request(addr))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let mut latencies_ms = lat;
    latencies_ms.sort_by(f64::total_cmp);
    Level {
        clients,
        requests: clients * per_client,
        elapsed_s,
        latencies_ms,
    }
}

/// One `/spec` request that tolerates nothing: any non-200, short
/// read, or connect failure is returned as an error string.
fn checked_request(addr: SocketAddr) -> Result<(), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    write!(
        s,
        "POST /spec HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        BODY.len(),
        BODY
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    s.read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    if reply.starts_with("HTTP/1.1 200") {
        Ok(())
    } else {
        Err(format!(
            "non-200: {}",
            reply.lines().next().unwrap_or("<empty>")
        ))
    }
}

/// POST to the admin surface; returns the status line.
fn admin_post(addr: SocketAddr, path: &str, body: &str) -> Result<String, String> {
    admin_post_full(addr, path, body).map(|(status, _)| status)
}

/// POST to the admin surface; returns (status line, body).
fn admin_post_full(addr: SocketAddr, path: &str, body: &str) -> Result<(String, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect admin: {e}"))?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .map_err(|e| format!("timeout: {e}"))?;
    write!(
        s,
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    s.read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let status = reply.lines().next().unwrap_or("").to_string();
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// One price-change delta batch body (cheap: dirties no sweep cells,
/// so the scenarios stress the delta pipeline, not the kernel).
fn price_batch(seqs: &[u64]) -> String {
    let deltas: Vec<String> = seqs
        .iter()
        .map(|s| {
            format!(
                "{{\"seq\": {s}, \"delta\": \"price\\t0.{:02}\"}}",
                10 + s % 80
            )
        })
        .collect();
    format!("{{\"deltas\": [{}]}}", deltas.join(", "))
}

/// Delta-stream fault scenarios against a live daemon's
/// `/admin/platform`: a corrupt record (422, nothing applied), a
/// duplicate flood (idempotent), an out-of-order burst (parked then
/// drained), and deltas landing during `/admin/reload`s. The daemon
/// must stay alive and end fully convergent (lag 0). Assumes a fresh
/// daemon (delta sequence starts at 1). Returns violations.
fn delta_scenarios(addr: SocketAddr, admin: SocketAddr, reload_dir: Option<&str>) -> Vec<String> {
    let mut violations = Vec::new();
    fn check(
        violations: &mut Vec<String>,
        name: &str,
        got: Result<(String, String), String>,
        want: &str,
        body_has: &str,
    ) {
        match got {
            Ok((status, body)) if status.starts_with(want) && body.contains(body_has) => {}
            Ok((status, body)) => violations.push(format!(
                "{name}: got '{status}' body '{}', want '{want}' containing '{body_has}'",
                body.chars().take(200).collect::<String>()
            )),
            Err(e) => violations.push(format!("{name}: {e}")),
        }
    }

    // Corrupt record: refused wholesale, nothing applied.
    check(
        &mut violations,
        "corrupt-record",
        admin_post_full(
            admin,
            "/admin/platform",
            "{\"deltas\": [{\"seq\": 1, \"delta\": \"price\\tNaN\"}]}",
        ),
        "HTTP/1.1 422",
        "DELTA",
    );

    // Duplicate flood: the same two records, many times over.
    check(
        &mut violations,
        "duplicate-flood-first",
        admin_post_full(admin, "/admin/platform", &price_batch(&[1, 2])),
        "HTTP/1.1 200",
        "\"applied\": 2",
    );
    for i in 0..10 {
        check(
            &mut violations,
            &format!("duplicate-flood-{i}"),
            admin_post_full(admin, "/admin/platform", &price_batch(&[1, 2])),
            "HTTP/1.1 200",
            "\"duplicates\": 2",
        );
    }

    // Out-of-order burst: 5 and 4 park, 3 drains the chain.
    check(
        &mut violations,
        "out-of-order-park",
        admin_post_full(admin, "/admin/platform", &price_batch(&[5, 4])),
        "HTTP/1.1 200",
        "\"parked\": 2",
    );
    check(
        &mut violations,
        "out-of-order-drain",
        admin_post_full(admin, "/admin/platform", &price_batch(&[3])),
        "HTTP/1.1 200",
        "\"resynced\": true",
    );

    // Deltas during reloads: both admin verbs interleaved must all
    // succeed, and the stream must stay contiguous.
    std::thread::scope(|scope| {
        let reloads = scope.spawn(|| {
            let mut local = Vec::new();
            if let Some(dir) = reload_dir {
                for i in 0..3 {
                    match admin_post(admin, "/admin/reload", &format!("{{\"dir\": \"{dir}\"}}")) {
                        Ok(status) if status.starts_with("HTTP/1.1 200") => {}
                        other => local.push(format!("delta-during-reload reload {i}: {other:?}")),
                    }
                }
            }
            local
        });
        for seq in 6..=10u64 {
            check(
                &mut violations,
                &format!("delta-during-reload-seq{seq}"),
                admin_post_full(admin, "/admin/platform", &price_batch(&[seq])),
                "HTTP/1.1 200",
                "\"applied\": 1",
            );
        }
        violations.extend(reloads.join().expect("reload thread"));
    });

    // Convergent and alive: lag 0 on the final stamp, /readyz green.
    check(
        &mut violations,
        "final-convergence",
        admin_post_full(admin, "/admin/platform", "{\"audit\": {\"sample\": 4}}"),
        "HTTP/1.1 200",
        "\"lag\": 0",
    );
    check(
        &mut violations,
        "final-audit-clean",
        admin_post_full(admin, "/admin/platform", "{\"audit\": {\"sample\": 4}}"),
        "HTTP/1.1 200",
        "\"divergent\": 0",
    );
    if let Err(e) = checked_request(addr) {
        violations.push(format!("daemon dead after delta scenarios: {e}"));
    }
    violations
}

/// Reload-under-load: concurrent `/spec` clients while `cycles`
/// reloads land (one of them a deliberately bad directory that must
/// roll back). Returns the list of violations.
fn reload_under_load(
    addr: SocketAddr,
    admin: SocketAddr,
    reload_dir: &str,
    cycles: usize,
) -> Vec<String> {
    let stop = std::sync::atomic::AtomicBool::new(false);
    let failures = std::sync::Mutex::new(Vec::<String>::new());
    std::thread::scope(|scope| {
        for client in 0..4 {
            let stop = &stop;
            let failures = &failures;
            scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    if let Err(e) = checked_request(addr) {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("client {client}: {e}"));
                    }
                }
            });
        }
        for cycle in 0..cycles {
            // Every third cycle aims at a bad directory: the reload
            // must fail with a 500 and the clients must never notice.
            let (dir, want) = if cycle % 3 == 2 {
                ("/nonexistent/rsg-chaos-models", "HTTP/1.1 500")
            } else {
                (reload_dir, "HTTP/1.1 200")
            };
            match admin_post(admin, "/admin/reload", &format!("{{\"dir\": \"{dir}\"}}")) {
                Ok(status) if status.starts_with(want) => {}
                Ok(status) => failures.lock().unwrap().push(format!(
                    "reload cycle {cycle}: got '{status}', want '{want}'"
                )),
                Err(e) => failures
                    .lock()
                    .unwrap()
                    .push(format!("reload cycle {cycle}: {e}")),
            }
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    failures.into_inner().unwrap()
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The `--chaos` entry point; returns the process exit code.
fn chaos_main() -> i32 {
    let seed = arg_value("--seed")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FF_EE00);
    let deadline_s = arg_value("--deadline-s")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(2.0);
    let target = arg_value("--target");
    let admin = arg_value("--admin");
    let reload_dir = arg_value("--reload-dir");
    let drain = std::env::args().any(|a| a == "--drain");

    // Either drive an external daemon (CI) or boot one in-process.
    let mut local: Option<Server> = None;
    let addr: SocketAddr = match &target {
        Some(t) => t.parse().expect("bad --target address"),
        None => {
            eprintln!("bench_serve --chaos: training models (tiny grid)…");
            let tables = measure(
                &ObservationGrid::tiny(),
                &CurveConfig::default(),
                &rsg_core::THRESHOLD_LADDER,
                0,
            );
            let registry = ModelRegistry::from_models(
                ThresholdedSizeModel::fit(&tables),
                HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
            );
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                default_deadline_s: deadline_s,
                ..ServeConfig::default()
            };
            let server = Server::spawn(&cfg, registry).expect("spawn server");
            let a = server.addr();
            local = Some(server);
            a
        }
    };

    let chaos_cfg = rsg_serve::ChaosConfig {
        seed,
        deadline_hint_s: deadline_s,
        read_timeout_s: 15.0,
        connections_per_fault: 3,
    };
    eprintln!("bench_serve --chaos: seed {seed}, target {addr}, deadline hint {deadline_s}s");
    let report = match rsg_serve::chaostcp::run_chaos(addr, &chaos_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_serve --chaos: {e}");
            return 1;
        }
    };
    eprint!("{}", report.render());
    let mut failed = !report.passed();

    if let Some(admin) = &admin {
        let admin: SocketAddr = admin.parse().expect("bad --admin address");
        if let Some(dir) = &reload_dir {
            eprintln!("bench_serve --chaos: reload-under-load cycle against {admin}…");
            let violations = reload_under_load(addr, admin, dir, 6);
            if violations.is_empty() {
                eprintln!("  ok   reload-under-load       6 cycle(s), zero dropped requests");
            } else {
                failed = true;
                eprintln!("  FAIL reload-under-load");
                for v in &violations {
                    eprintln!("       - {v}");
                }
            }
        }
        eprintln!("bench_serve --chaos: delta-stream scenarios against {admin}…");
        let violations = delta_scenarios(addr, admin, reload_dir.as_deref());
        if violations.is_empty() {
            eprintln!(
                "  ok   delta-stream           corrupt / duplicate-flood / out-of-order / \
                 reload-interleave, convergent"
            );
        } else {
            failed = true;
            eprintln!("  FAIL delta-stream");
            for v in &violations {
                eprintln!("       - {v}");
            }
        }
        if drain {
            match admin_post(admin, "/admin/drain", "") {
                Ok(status) if status.starts_with("HTTP/1.1 200") => {
                    eprintln!("  ok   drain acknowledged");
                }
                other => {
                    failed = true;
                    eprintln!("  FAIL drain: {other:?}");
                }
            }
        }
    }

    if let Some(mut server) = local {
        server.shutdown();
    }
    if failed {
        eprintln!("bench_serve --chaos: FAILED (seed {seed})");
        1
    } else {
        eprintln!("bench_serve --chaos: passed (seed {seed})");
        0
    }
}

fn main() {
    if std::env::args().any(|a| a == "--chaos") {
        std::process::exit(chaos_main());
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let (levels, per_level): (&[usize], usize) = if quick {
        (&[1, 2, 4], 60)
    } else {
        (&[1, 4, 16], 480)
    };

    eprintln!("bench_serve: training models (tiny grid)…");
    let tables = measure(
        &ObservationGrid::tiny(),
        &CurveConfig::default(),
        &rsg_core::THRESHOLD_LADDER,
        0,
    );
    let registry = ModelRegistry::from_models(
        ThresholdedSizeModel::fit(&tables),
        HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
    );
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let mut server = Server::spawn(&cfg, registry).expect("spawn server");
    let addr = server.addr();

    let mut table = Table::new(vec![
        "clients", "requests", "req/s", "p50 ms", "p99 ms", "p999 ms",
    ]);
    let mut results: Vec<Level> = Vec::new();
    for &clients in levels {
        // A short warmup level fills the platform/model caches so the
        // measured window sees steady state.
        let _ = run_level(addr, clients, clients * 4);
        let level = run_level(addr, clients, per_level.max(clients));
        table.row(vec![
            level.clients.to_string(),
            level.requests.to_string(),
            format!("{:.0}", level.requests_per_s()),
            format!("{:.2}", level.percentile_ms(0.50)),
            format!("{:.2}", level.percentile_ms(0.99)),
            format!("{:.2}", level.percentile_ms(0.999)),
        ]);
        results.push(level);
    }
    server.shutdown();

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"benchmark\": \"rsg-serve closed-loop load\",\n");
    j.push_str("  \"schema\": \"rsg-bench-serve/v1\",\n");
    j.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    j.push_str("  \"endpoint\": \"/spec\",\n");
    j.push_str(&format!(
        "  \"server\": {{\"workers\": {}, \"queue_depth\": {}, \"default_deadline_s\": {}}},\n",
        cfg.workers, cfg.queue_depth, cfg.default_deadline_s
    ));
    j.push_str("  \"levels\": [\n");
    for (i, l) in results.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"elapsed_s\": {:.3}, \
             \"requests_per_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}, \"max_ms\": {:.3}}}{}\n",
            l.clients,
            l.requests,
            l.elapsed_s,
            l.requests_per_s(),
            l.percentile_ms(0.50),
            l.percentile_ms(0.99),
            l.percentile_ms(0.999),
            l.latencies_ms.last().copied().unwrap_or(0.0),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &j).expect("failed to write BENCH_serve.json");

    table.print("rsg-serve closed-loop load");
    eprintln!(
        "bench_serve: wrote BENCH_serve.json ({} levels{})",
        results.len(),
        if quick { ", quick mode" } else { "" }
    );
}
