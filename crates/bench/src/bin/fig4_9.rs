//! Figure IV-9: varying DAG sizes for random DAGs — turnaround ratios
//! relative to Greedy-on-VG (Table IV-3 sizes).

use rsg_bench::experiments::{chapter4_random_sweep, Scale};

fn main() {
    let sizes: Vec<f64> = match Scale::from_env() {
        Scale::Full => vec![44.0, 447.0, 4469.0, 8938.0],
        Scale::Fast => vec![44.0, 150.0, 450.0, 900.0],
    };
    chapter4_random_sweep(
        "Figure IV-9: varying DAG size (ratios vs Greedy/VG)",
        "size",
        &sizes,
        |spec, v| spec.size = v as usize,
    );
}
