//! Ablation: does bisection-refinement of the knee between geometric
//! ladder points improve the size prediction (vs the coarse ladder
//! knee)? The model's plane fit absorbs ladder quantization, so the
//! paper-relevant question is whether refinement changes prediction
//! quality enough to justify its extra curve evaluations.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::{mean_turnaround, turnaround_curve, CurveConfig};
use rsg_core::knee::{find_knee, refine_knee};
use rsg_core::optsearch::optimal_size_search;
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let cfg = CurveConfig::default();
    let mut table = Table::new(vec![
        "config",
        "coarse knee",
        "refined knee",
        "coarse degradation",
        "refined degradation",
        "extra evals",
    ]);
    for (label, n, ccr, alpha) in [
        ("n=300 ccr=0.01 a=0.7", 300usize, 0.01, 0.7),
        ("n=500 ccr=0.1  a=0.6", 500, 0.1, 0.6),
        ("n=800 ccr=0.5  a=0.8", 800, 0.5, 0.8),
    ] {
        let spec = RandomDagSpec {
            size: n,
            ccr,
            parallelism: alpha,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        };
        let dags = instances(spec, scale.instances(), n as u64);
        let curve = turnaround_curve(&dags, &cfg);
        let coarse = find_knee(&curve, 0.001);
        let mut extra = 0usize;
        let refined = refine_knee(&curve, 0.001, 6, |s| {
            extra += 1;
            mean_turnaround(&dags, s, &cfg)
        });
        // Quality: degradation of each knee vs the searched optimum.
        let opt = optimal_size_search(&dags, coarse, &cfg);
        let d =
            |size: usize| (mean_turnaround(&dags, size, &cfg) / opt.turnaround_s - 1.0).max(0.0);
        table.row(vec![
            label.to_string(),
            coarse.to_string(),
            refined.to_string(),
            pct(d(coarse)),
            pct(d(refined)),
            extra.to_string(),
        ]);
    }
    table.print("Ablation: knee refinement (6 bisection rounds) vs coarse ladder knee");
}
