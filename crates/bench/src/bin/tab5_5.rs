//! Table V-5: validation of the size prediction model — average
//! predicted-size difference, performance degradation and relative
//! cost, split into four quadrants: {observation-set, midpoint} DAG
//! sizes × {observation-set, midpoint} CCR values.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::validate::{validate_config, ConfigValidation, ValidationSummary};
use rsg_dag::RandomDagSpec;
use rsg_platform::CostModel;

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let strictest = model.strictest();
    let (grid_sizes, grid_ccrs) = strictest.axes();
    let cost = CostModel::default();

    let midpoints =
        |xs: &[f64]| -> Vec<f64> { xs.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect() };
    let obs_sizes: Vec<f64> = grid_sizes.to_vec();
    let mid_sizes = midpoints(grid_sizes);
    let obs_ccrs: Vec<f64> = grid_ccrs.to_vec();
    let mid_ccrs = midpoints(grid_ccrs);

    // Validation points: per size, a couple of (alpha, beta) combos.
    let combos = [(0.5, 0.5), (0.7, 0.9)];

    let mut table = Table::new(vec![
        "quadrant",
        "sizes",
        "avg size diff",
        "avg degradation",
        "avg relative cost",
        "included",
        "excluded",
    ]);
    for (q_label, sizes, ccrs) in [
        ("obs sizes x obs CCR", &obs_sizes, &obs_ccrs),
        ("obs sizes x mid CCR", &obs_sizes, &mid_ccrs),
        ("mid sizes x obs CCR", &mid_sizes, &obs_ccrs),
        ("mid sizes x mid CCR", &mid_sizes, &mid_ccrs),
    ] {
        for &n in sizes {
            let mut results: Vec<ConfigValidation> = Vec::new();
            for &ccr in ccrs {
                for &(a, b) in &combos {
                    let spec = RandomDagSpec {
                        size: n as usize,
                        ccr,
                        parallelism: a,
                        density: 0.5,
                        regularity: b,
                        mean_comp: 40.0,
                    };
                    let dags = instances(spec, scale.instances(), (n as u64) ^ ccr.to_bits());
                    results.push(validate_config(&dags, strictest, &cfg, &cost));
                }
            }
            let s = ValidationSummary::aggregate(&results);
            table.row(vec![
                q_label.to_string(),
                format!("{}", n as usize),
                pct(s.avg_size_diff),
                pct(s.avg_degradation),
                pct(s.avg_relative_cost),
                s.included.to_string(),
                s.excluded.to_string(),
            ]);
        }
    }
    table.print("Table V-5: size prediction model validation");
    println!("(paper: size diff 9-17%, degradation 0.18-1.93%, relative cost negative)");
}
