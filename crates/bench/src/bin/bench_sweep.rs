//! End-to-end benchmark of the observation-sweep fast path: runs the
//! reference sweep ([`rsg_core::observation::measure_naive`]) and the
//! optimized sweep ([`rsg_core::observation::measure`]) on the `fast`
//! grid, asserts the knee tables are bit-identical, measures
//! per-heuristic schedule throughput with and without the placement
//! kernel, and writes the results to `BENCH_sweep.json`.
//!
//! The timed comparison runs keep observability *disabled* (the
//! `rsg-obs` layer's documented overhead budget is measured against
//! these numbers). A third, untimed-for-the-headline sweep then re-runs
//! `measure` with observability and tracing enabled and asserts the
//! knee tables are still bit-identical, so instrumentation can never
//! perturb results. Pass `--obs` to embed the captured
//! [`rsg_obs::RunReport`] from that instrumented sweep under an `"obs"`
//! key in `BENCH_sweep.json`.
//!
//! The sweep speedup recorded here is the headline number of the
//! fast-path work; the run aborts if it falls below 5x so a regression
//! cannot slip through silently.
//!
//! Pass `--checkpoint` to also time a journal-checkpointed sweep
//! ([`rsg_core::observation::measure_checkpointed`] on a fresh journal,
//! so every cell is computed *and* fsynced): the tables must stay
//! bit-identical and the overhead lands in `BENCH_sweep.json` under
//! `checkpoint_s` / `checkpoint_overhead`.

use rsg_bench::report::{secs, Table};
use rsg_core::curve::CurveConfig;
use rsg_core::observation::{
    measure, measure_checkpointed, measure_naive, CheckpointConfig, ObservationGrid,
};
use rsg_core::THRESHOLD_LADDER;
use rsg_dag::RandomDagSpec;
use rsg_platform::ResourceCollection;
use rsg_sched::{ExecutionContext, HeuristicKind};
use std::time::Instant;

/// Refinement rounds used by the sweep comparison.
const REFINE_ROUNDS: u32 = 2;

/// Host counts for the placement-kernel throughput microbenchmark.
const HOST_COUNTS: [usize; 3] = [10, 100, 1000];

/// Number of tasks in the throughput DAG (per-task cost denominator).
const BENCH_TASKS: usize = 300;

/// Host-scaling extension of the microbenchmark: the reference scan is
/// still *run* once at every count (bit-identity stays pinned at
/// scale), but only *timed* up to [`HOST_COUNTS`]' maximum — above
/// that, timing it would dominate the benchmark's wall-clock for a
/// number nobody reads off this axis.
const SCALING_HOST_COUNTS: [usize; 4] = [10, 100, 1000, 10_000];

/// One throughput measurement: schedules per second at a host count.
struct Throughput {
    heuristic: HeuristicKind,
    hosts: usize,
    fast_per_s: f64,
    naive_per_s: f64,
}

/// One host-scaling sample: fast-path throughput plus the derived
/// per-task placement cost; the naive baseline where it was timed.
struct Scaling {
    heuristic: HeuristicKind,
    hosts: usize,
    fast_per_s: f64,
    per_task_us: f64,
    naive_per_s: Option<f64>,
}

/// Times `f` adaptively: repeats until at least `min_elapsed` seconds
/// have accumulated (and at least 3 repetitions ran), then returns
/// runs-per-second.
fn runs_per_second<F: FnMut()>(mut f: F, min_elapsed: f64) -> f64 {
    // Warm-up run, untimed.
    f();
    let mut reps = 0u64;
    let t0 = Instant::now();
    loop {
        f();
        reps += 1;
        let elapsed = t0.elapsed().as_secs_f64();
        if reps >= 3 && elapsed >= min_elapsed {
            return reps as f64 / elapsed;
        }
    }
}

fn bench_dag() -> rsg_dag::Dag {
    RandomDagSpec {
        size: BENCH_TASKS,
        ccr: 0.1,
        parallelism: 0.6,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 20.0,
    }
    .generate(11)
}

fn kernel_throughput() -> Vec<Throughput> {
    let dag = bench_dag();
    let mut out = Vec::new();
    for kind in [HeuristicKind::Mcp, HeuristicKind::Dls] {
        for &hosts in &HOST_COUNTS {
            let rc = ResourceCollection::homogeneous(hosts, 1500.0);
            let ctx = ExecutionContext::new(&dag, &rc);
            // Equal work check first: the fast kernel must reproduce the
            // naive schedule and op count exactly before we time it.
            let (s_fast, ops_fast) = kind.run(&ctx);
            let (s_naive, ops_naive) = kind.run_reference(&ctx);
            assert_eq!(ops_fast, ops_naive, "{kind} P={hosts}: op counts differ");
            assert_eq!(
                (s_fast.host, s_fast.start, s_fast.finish),
                (s_naive.host, s_naive.start, s_naive.finish),
                "{kind} P={hosts}: schedules differ"
            );
            let fast_per_s = runs_per_second(
                || {
                    let _ = kind.run(&ctx);
                },
                0.2,
            );
            let naive_per_s = runs_per_second(
                || {
                    let _ = kind.run_reference(&ctx);
                },
                0.2,
            );
            out.push(Throughput {
                heuristic: kind,
                hosts,
                fast_per_s,
                naive_per_s,
            });
        }
    }
    out
}

/// Extends the timed [`HOST_COUNTS`] samples up the host axis. Counts
/// already covered by `throughput` reuse those timings; larger counts
/// run the reference scan once (the bit-identity check) and time only
/// the fast path. `max_hosts` truncates the axis in `--quick` CI runs.
fn host_scaling(throughput: &[Throughput], max_hosts: usize) -> Vec<Scaling> {
    let dag = bench_dag();
    let mut out = Vec::new();
    for kind in [HeuristicKind::Mcp, HeuristicKind::Dls] {
        for &hosts in &SCALING_HOST_COUNTS {
            if hosts > max_hosts {
                continue;
            }
            let per_task = |per_s: f64| 1e6 / (per_s * BENCH_TASKS as f64);
            if let Some(t) = throughput
                .iter()
                .find(|t| t.heuristic == kind && t.hosts == hosts)
            {
                out.push(Scaling {
                    heuristic: kind,
                    hosts,
                    fast_per_s: t.fast_per_s,
                    per_task_us: per_task(t.fast_per_s),
                    naive_per_s: Some(t.naive_per_s),
                });
                continue;
            }
            eprintln!("bench_sweep: host-scaling {kind} at P={hosts}...");
            let rc = ResourceCollection::homogeneous(hosts, 1500.0);
            let ctx = ExecutionContext::new(&dag, &rc);
            let (s_fast, ops_fast) = kind.run(&ctx);
            let (s_naive, ops_naive) = kind.run_reference(&ctx);
            assert_eq!(ops_fast, ops_naive, "{kind} P={hosts}: op counts differ");
            assert_eq!(
                (s_fast.host, s_fast.start, s_fast.finish),
                (s_naive.host, s_naive.start, s_naive.finish),
                "{kind} P={hosts}: schedules differ"
            );
            let fast_per_s = runs_per_second(
                || {
                    let _ = kind.run(&ctx);
                },
                0.2,
            );
            out.push(Scaling {
                heuristic: kind,
                hosts,
                fast_per_s,
                per_task_us: per_task(fast_per_s),
                naive_per_s: None,
            });
        }
    }
    out
}

/// Minimal JSON string escaping (the strings here are ASCII labels).
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Wall-clock results of the three sweep runs.
struct SweepTimings {
    naive_s: f64,
    fast_s: f64,
    obs_on_s: f64,
    /// Wall-clock of the journal-checkpointed sweep (`--checkpoint`).
    checkpoint_s: Option<f64>,
    identical: bool,
}

fn write_json(
    path: &str,
    grid_label: &str,
    grid: &ObservationGrid,
    sweep: &SweepTimings,
    throughput: &[Throughput],
    scaling: &[Scaling],
    obs_report: Option<&rsg_obs::RunReport>,
) -> std::io::Result<()> {
    let SweepTimings {
        naive_s,
        fast_s,
        obs_on_s,
        checkpoint_s,
        identical,
    } = *sweep;
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"benchmark\": \"observation-sweep fast path\",\n");
    j.push_str("  \"grid\": {\n");
    j.push_str(&format!("    \"label\": {},\n", json_str(grid_label)));
    j.push_str(&format!("    \"cells\": {},\n", grid.cells()));
    j.push_str(&format!("    \"instances\": {}\n", grid.instances));
    j.push_str("  },\n");
    j.push_str(&format!(
        "  \"thetas\": [{}],\n",
        THRESHOLD_LADDER
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!("  \"refine_rounds\": {REFINE_ROUNDS},\n"));
    j.push_str("  \"sweep\": {\n");
    j.push_str(&format!("    \"naive_s\": {naive_s},\n"));
    j.push_str(&format!("    \"fast_s\": {fast_s},\n"));
    j.push_str(&format!("    \"speedup\": {},\n", naive_s / fast_s));
    j.push_str(&format!("    \"obs_on_s\": {obs_on_s},\n"));
    j.push_str(&format!(
        "    \"obs_on_overhead\": {},\n",
        obs_on_s / fast_s - 1.0
    ));
    if let Some(ckpt_s) = checkpoint_s {
        j.push_str(&format!("    \"checkpoint_s\": {ckpt_s},\n"));
        j.push_str(&format!(
            "    \"checkpoint_overhead\": {},\n",
            ckpt_s / fast_s - 1.0
        ));
    }
    j.push_str(&format!("    \"tables_identical\": {identical}\n"));
    j.push_str("  },\n");
    j.push_str("  \"placement_kernel\": [\n");
    for (i, t) in throughput.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"heuristic\": {}, \"hosts\": {}, \"fast_schedules_per_s\": {}, \
             \"naive_schedules_per_s\": {}, \"speedup\": {}}}{}\n",
            json_str(&t.heuristic.to_string()),
            t.hosts,
            t.fast_per_s,
            t.naive_per_s,
            t.fast_per_s / t.naive_per_s,
            if i + 1 < throughput.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"host_scaling\": [\n");
    for (i, s) in scaling.iter().enumerate() {
        let naive = match s.naive_per_s {
            Some(n) => format!(
                ", \"naive_schedules_per_s\": {}, \"speedup\": {}",
                n,
                s.fast_per_s / n
            ),
            None => String::new(),
        };
        j.push_str(&format!(
            "    {{\"heuristic\": {}, \"hosts\": {}, \"fast_schedules_per_s\": {}, \
             \"per_task_us\": {}{}}}{}\n",
            json_str(&s.heuristic.to_string()),
            s.hosts,
            s.fast_per_s,
            s.per_task_us,
            naive,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    if let Some(report) = obs_report {
        j.push_str("  ],\n");
        j.push_str(&format!("  \"obs\": {}\n", report.to_json().trim_end()));
    } else {
        j.push_str("  ]\n");
    }
    j.push_str("}\n");
    std::fs::write(path, j)
}

fn main() {
    let obs_mode = std::env::args().any(|a| a == "--obs");
    let checkpoint_mode = std::env::args().any(|a| a == "--checkpoint");
    // `--quick`: the reduced CI configuration — tiny grid, host axis
    // capped at 1k, headline speedup assertions skipped (CI machines
    // are too noisy to gate on them; the JSON *schema* is still
    // diffed there, so a key regression is caught).
    let quick_mode = std::env::args().any(|a| a == "--quick");
    let (grid_label, grid) = if quick_mode {
        ("tiny", ObservationGrid::tiny())
    } else {
        ("fast", ObservationGrid::fast())
    };
    let cfg = CurveConfig::default();

    eprintln!(
        "bench_sweep: {} cells x {} instances, {} thresholds, {} refine rounds",
        grid.cells(),
        grid.instances,
        THRESHOLD_LADDER.len(),
        REFINE_ROUNDS
    );

    eprintln!("bench_sweep: running reference sweep (measure_naive)...");
    let t0 = Instant::now();
    let naive_tables = measure_naive(&grid, &cfg, &THRESHOLD_LADDER, REFINE_ROUNDS);
    let naive_s = t0.elapsed().as_secs_f64();
    eprintln!("bench_sweep: reference sweep took {naive_s:.2}s");

    eprintln!("bench_sweep: running optimized sweep (measure)...");
    let t0 = Instant::now();
    let fast_tables = measure(&grid, &cfg, &THRESHOLD_LADDER, REFINE_ROUNDS);
    let fast_s = t0.elapsed().as_secs_f64();
    eprintln!("bench_sweep: optimized sweep took {fast_s:.2}s");

    assert_eq!(
        fast_tables, naive_tables,
        "optimized sweep diverged from the reference sweep"
    );
    let speedup = naive_s / fast_s;

    // Instrumentation must never perturb results: re-run the optimized
    // sweep with observability *and* live tracing enabled and require
    // bit-identical knee tables.
    eprintln!("bench_sweep: re-running optimized sweep with obs + trace enabled...");
    rsg_obs::enable(true);
    rsg_obs::set_trace(true);
    rsg_obs::reset();
    let t0 = Instant::now();
    let obs_tables = measure(&grid, &cfg, &THRESHOLD_LADDER, REFINE_ROUNDS);
    let obs_on_s = t0.elapsed().as_secs_f64();
    rsg_obs::set_trace(false);
    let obs_report = rsg_obs::RunReport::capture();
    rsg_obs::enable(false);
    assert_eq!(
        obs_tables, fast_tables,
        "sweep diverged when observability/tracing was enabled"
    );
    eprintln!(
        "bench_sweep: obs+trace sweep took {obs_on_s:.2}s ({:+.1}% vs obs-off)",
        (obs_on_s / fast_s - 1.0) * 100.0
    );

    // Optional: a checkpointed sweep on a fresh journal, so every cell
    // is both computed and fsynced — the worst case for the journal.
    let checkpoint_s = checkpoint_mode.then(|| {
        let journal = std::path::PathBuf::from("target/bench_sweep.journal");
        let _ = std::fs::remove_file(&journal);
        eprintln!("bench_sweep: running checkpointed sweep (measure_checkpointed)...");
        let ckpt = CheckpointConfig::new(&journal);
        let t0 = Instant::now();
        let ckpt_tables =
            measure_checkpointed(&grid, &cfg, &THRESHOLD_LADDER, REFINE_ROUNDS, &ckpt)
                .expect("checkpointed sweep failed");
        let ckpt_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            ckpt_tables, fast_tables,
            "checkpointed sweep diverged from the plain sweep"
        );
        let _ = std::fs::remove_file(&journal);
        eprintln!(
            "bench_sweep: checkpointed sweep took {ckpt_s:.2}s ({:+.2}% vs plain)",
            (ckpt_s / fast_s - 1.0) * 100.0
        );
        ckpt_s
    });

    eprintln!("bench_sweep: measuring placement-kernel throughput...");
    let throughput = kernel_throughput();
    let max_hosts = if quick_mode { 1000 } else { usize::MAX };
    let scaling = host_scaling(&throughput, max_hosts);

    let mut sweep_table = Table::new(vec!["sweep", "wall-clock (s)", "speedup"]);
    sweep_table.row(vec![
        "naive".to_string(),
        secs(naive_s),
        "1.00x".to_string(),
    ]);
    sweep_table.row(vec![
        "fast".to_string(),
        secs(fast_s),
        format!("{speedup:.2}x"),
    ]);
    sweep_table.print("Observation sweep: fast vs naive (bit-identical knee tables)");

    let mut kernel_table = Table::new(vec![
        "heuristic",
        "hosts",
        "fast sched/s",
        "naive sched/s",
        "speedup",
    ]);
    for t in &throughput {
        kernel_table.row(vec![
            t.heuristic.to_string(),
            t.hosts.to_string(),
            format!("{:.1}", t.fast_per_s),
            format!("{:.1}", t.naive_per_s),
            format!("{:.2}x", t.fast_per_s / t.naive_per_s),
        ]);
    }
    kernel_table.print("Placement-kernel schedule throughput (300-task DAG)");

    let mut scaling_table = Table::new(vec!["heuristic", "hosts", "fast sched/s", "us/task"]);
    for s in &scaling {
        scaling_table.row(vec![
            s.heuristic.to_string(),
            s.hosts.to_string(),
            format!("{:.1}", s.fast_per_s),
            format!("{:.2}", s.per_task_us),
        ]);
    }
    scaling_table.print("Host-scaling: fast-path throughput up the host axis");

    write_json(
        "BENCH_sweep.json",
        grid_label,
        &grid,
        &SweepTimings {
            naive_s,
            fast_s,
            obs_on_s,
            checkpoint_s,
            identical: true,
        },
        &throughput,
        &scaling,
        obs_mode.then_some(&obs_report),
    )
    .expect("failed to write BENCH_sweep.json");
    eprintln!(
        "bench_sweep: wrote BENCH_sweep.json (sweep speedup {speedup:.2}x{})",
        if obs_mode {
            ", run report embedded"
        } else {
            ""
        }
    );

    if quick_mode {
        eprintln!("bench_sweep: --quick run, speedup gates skipped");
        return;
    }
    assert!(
        speedup >= 5.0,
        "end-to-end sweep speedup {speedup:.2}x is below the required 5x"
    );
    let dls_1k = throughput
        .iter()
        .find(|t| t.heuristic == HeuristicKind::Dls && t.hosts == 1000)
        .expect("DLS 1k-host sample");
    let dls_speedup = dls_1k.fast_per_s / dls_1k.naive_per_s;
    assert!(
        dls_speedup >= 10.0,
        "DLS kernel speedup at 1k hosts is {dls_speedup:.1}x, below the required 10x"
    );
}
