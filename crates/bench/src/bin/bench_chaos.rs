//! Chaos benchmark: fault-injected execution and selection hardening.
//!
//! Two sweeps, both fully deterministic (every number written to
//! `BENCH_chaos.json` derives from simulated time, never wall-clock):
//!
//! 1. **Crash fraction × RC size.** For each crash fraction the knee-size
//!    request (θ = 1%) and a speculative +25% over-provisioned request
//!    are executed under seeded fault plans
//!    ([`rsg_sched::FaultPlanSpec`]) and rescued by the chaos engine
//!    ([`rsg_sched::execute_with_faults`]). The headline is the
//!    *knee-size stretch*: resilient turnaround relative to the
//!    fault-free run at the same size, and whether over-provisioning
//!    buys that stretch back. The zero-fault column doubles as a live
//!    differential check — it must be bit-identical to the plain
//!    simulator replay or the run aborts.
//!
//! 2. **Selector flakiness × retrying negotiator.** A hand-built
//!    resource spec and its degradation ladder
//!    ([`rsg_core::alternative::alternatives`]) are bound against a
//!    vgES finder wrapped in the flaky injector
//!    ([`rsg_select::FlakySelector`]), driven by the retrying
//!    negotiator ([`rsg_core::negotiate_with_retry`]). Per-rate
//!    attempt/backoff/rung statistics are recorded, along with the
//!    `core.negotiate.*` counters captured from `rsg-obs`.
//!
//! Pass `--fast` for the CI-scale run, `--obs` to embed the full
//! captured [`rsg_obs::RunReport`] under an `"obs"` key.

use rsg_bench::report::{secs, Table};
use rsg_core::alternative::{alternatives, attempt_from_outcome, negotiate_with_retry};
use rsg_core::curve::CurveConfig;
use rsg_core::specgen::ResourceSpec;
use rsg_core::{find_knee, turnaround_curve, RetryPolicy, SpecGenerator};
use rsg_dag::{Dag, RandomDagSpec};
use rsg_platform::{Platform, ResourceGenSpec, TopologySpec};
use rsg_sched::{
    evaluate_with_schedule, execute_with_faults, replay, resilient_turnaround, ExecutionContext,
    FaultPlanSpec, Perturbation, SchedTimeModel,
};
use rsg_select::vgdl::AggregateKind;
use rsg_select::{FlakyConfig, FlakySelector, VgesFinder};

/// Knee threshold of the chaos sweep: 1%.
const KNEE_THETA: f64 = 0.01;

/// Speculative over-provisioning factor compared against the knee.
const OVERPROVISION: f64 = 1.25;

/// Negotiations run per flakiness rate.
const NEGOTIATIONS_PER_RATE: usize = 20;

/// One (crash fraction, RC size) cell of the chaos sweep, averaged over
/// the DAG instances.
struct ChaosCell {
    crash_fraction: f64,
    rc_size: usize,
    role: &'static str,
    mean_turnaround_s: f64,
    mean_resilient_s: f64,
    mean_recovery_s: f64,
    /// Resilient turnaround over the fault-free turnaround at the same
    /// size (1.0 in the zero-fault column by construction).
    stretch: f64,
    crashes: u64,
    outages: u64,
    tasks_lost: u64,
    tasks_rescued: u64,
    work_lost_s: f64,
}

/// Aggregated negotiator behaviour at one flakiness rate.
struct NegotiatorCell {
    rate: f64,
    runs: usize,
    bound: usize,
    unfulfillable: usize,
    mean_attempts: f64,
    mean_rung: f64,
    mean_backoff_s: f64,
    mean_elapsed_s: f64,
}

fn instances(fast: bool) -> Vec<Dag> {
    let (count, size) = if fast { (3, 50) } else { (5, 80) };
    (0..count)
        .map(|seed| {
            RandomDagSpec {
                size,
                ccr: 0.4,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 10.0,
            }
            .generate(seed)
        })
        .collect()
}

/// Runs every DAG at `size` hosts under a fault plan drawn for
/// `crash_fraction` and returns the averaged cell. Zero-fault cells are
/// asserted bit-identical to the plain replay.
fn chaos_cell(
    dags: &[Dag],
    cfg: &CurveConfig,
    size: usize,
    role: &'static str,
    crash_fraction: f64,
) -> ChaosCell {
    let rc = cfg.rc_family.build(size);
    let model = SchedTimeModel::default();
    let mut cell = ChaosCell {
        crash_fraction,
        rc_size: size,
        role,
        mean_turnaround_s: 0.0,
        mean_resilient_s: 0.0,
        mean_recovery_s: 0.0,
        stretch: 0.0,
        crashes: 0,
        outages: 0,
        tasks_lost: 0,
        tasks_rescued: 0,
        work_lost_s: 0.0,
    };
    for (di, dag) in dags.iter().enumerate() {
        let (report, schedule) = evaluate_with_schedule(dag, &rc, cfg.heuristic, &model);
        let plan = FaultPlanSpec {
            seed: (di as u64).wrapping_mul(7919) ^ (crash_fraction * 1000.0) as u64,
            crash_fraction,
            outage_fraction: crash_fraction * 0.5,
            joins: usize::from(crash_fraction > 0.0),
            horizon_s: (report.makespan_s * 0.9).max(1.0),
            ..Default::default()
        }
        .generate(rc.len());
        let out = execute_with_faults(dag, &rc, &schedule, &plan, &Perturbation::none())
            .expect("the home node survives every generated plan");
        // Completeness: the rescue rescheduler must finish every task.
        for i in 0..dag.len() {
            assert!(
                out.start[i].is_finite() && out.finish[i] >= out.start[i],
                "task {i} lost under crash fraction {crash_fraction} at size {size}"
            );
        }
        if crash_fraction == 0.0 {
            // Live differential check: zero faults ⇒ bit-identical to
            // the plain simulator replay.
            let ctx = ExecutionContext::new(dag, &rc);
            let r = replay(&ctx, &schedule, &Perturbation::none());
            assert_eq!(
                out.makespan.to_bits(),
                r.makespan.to_bits(),
                "zero-fault chaos diverged from replay at size {size}"
            );
            for i in 0..dag.len() {
                assert_eq!(out.start[i].to_bits(), r.start[i].to_bits());
                assert_eq!(out.finish[i].to_bits(), r.finish[i].to_bits());
            }
        }
        let res = resilient_turnaround(&report, &out, &model);
        cell.mean_turnaround_s += report.turnaround_s();
        cell.mean_resilient_s += res.resilient_turnaround_s();
        cell.mean_recovery_s += res.recovery_overhead_s();
        cell.crashes += res.stats.crashes;
        cell.outages += res.stats.outages;
        cell.tasks_lost += res.stats.tasks_lost;
        cell.tasks_rescued += res.stats.tasks_rescued;
        cell.work_lost_s += res.work_lost_s;
    }
    let n = dags.len() as f64;
    cell.mean_turnaround_s /= n;
    cell.mean_resilient_s /= n;
    cell.mean_recovery_s /= n;
    cell.stretch = cell.mean_resilient_s / cell.mean_turnaround_s;
    cell
}

/// Runs [`NEGOTIATIONS_PER_RATE`] negotiations at one flakiness rate
/// over distinct flaky-selector seeds and aggregates the outcome.
fn negotiator_cell(
    ladder: &[rsg_core::Alternative],
    platform: &Platform,
    policy: &RetryPolicy,
    rate: f64,
) -> NegotiatorCell {
    let finder = VgesFinder::default();
    let mut cell = NegotiatorCell {
        rate,
        runs: NEGOTIATIONS_PER_RATE,
        bound: 0,
        unfulfillable: 0,
        mean_attempts: 0.0,
        mean_rung: 0.0,
        mean_backoff_s: 0.0,
        mean_elapsed_s: 0.0,
    };
    for run in 0..NEGOTIATIONS_PER_RATE {
        let cfg = FlakyConfig::from_seed_rate(0xC0FFEE ^ run as u64, rate);
        let mut flaky = FlakySelector::new(cfg).expect("valid flaky config");
        let result = negotiate_with_retry(ladder, policy, |spec| {
            let vg = SpecGenerator::to_vgdl(spec);
            attempt_from_outcome(flaky.select(|| finder.find(platform, &vg)), spec.min_size)
        });
        let stats = match &result {
            Ok(n) => {
                cell.bound += 1;
                cell.mean_rung += n.rung as f64;
                &n.stats
            }
            Err(u) => {
                cell.unfulfillable += 1;
                &u.stats
            }
        };
        cell.mean_attempts += stats.attempts as f64;
        cell.mean_backoff_s += stats.backoff_total_s;
        cell.mean_elapsed_s += stats.elapsed_s;
        if rate == 0.0 {
            let n = result.as_ref().expect("healthy selector must bind");
            assert_eq!(n.rung, 0, "healthy selector must bind the original spec");
            assert_eq!(n.stats.attempts, 1, "healthy bind must take one ask");
        }
    }
    let n = NEGOTIATIONS_PER_RATE as f64;
    cell.mean_attempts /= n;
    cell.mean_backoff_s /= n;
    cell.mean_elapsed_s /= n;
    if cell.bound > 0 {
        cell.mean_rung /= cell.bound as f64;
    }
    cell
}

/// Minimal JSON string escaping (the strings here are ASCII labels).
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    fast: bool,
    knee: usize,
    over: usize,
    instances: usize,
    cells: &[ChaosCell],
    policy: &RetryPolicy,
    negotiator: &[NegotiatorCell],
    negotiate_counters: &[(String, u64)],
    backoff_records: u64,
    obs_report: Option<&rsg_obs::RunReport>,
) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"benchmark\": \"chaos sweep & retrying negotiator\",\n");
    j.push_str(&format!(
        "  \"mode\": {},\n",
        json_str(if fast { "fast" } else { "full" })
    ));
    j.push_str(&format!(
        "  \"knee\": {{\"theta\": {KNEE_THETA}, \"size\": {knee}, \"over_size\": {over}}},\n"
    ));
    j.push_str(&format!("  \"instances\": {instances},\n"));
    j.push_str("  \"chaos\": [\n");
    for (i, c) in cells.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"crash_fraction\": {}, \"rc_size\": {}, \"role\": {}, \
             \"mean_turnaround_s\": {}, \"mean_resilient_s\": {}, \"mean_recovery_s\": {}, \
             \"stretch\": {}, \"crashes\": {}, \"outages\": {}, \"tasks_lost\": {}, \
             \"tasks_rescued\": {}, \"work_lost_s\": {}}}{}\n",
            c.crash_fraction,
            c.rc_size,
            json_str(c.role),
            c.mean_turnaround_s,
            c.mean_resilient_s,
            c.mean_recovery_s,
            c.stretch,
            c.crashes,
            c.outages,
            c.tasks_lost,
            c.tasks_rescued,
            c.work_lost_s,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"negotiator\": {\n");
    j.push_str(&format!(
        "    \"policy\": {{\"max_attempts_per_rung\": {}, \"backoff_base_s\": {}, \
         \"backoff_cap_s\": {}, \"attempt_deadline_s\": {}, \"total_deadline_s\": {}}},\n",
        policy.max_attempts_per_rung,
        policy.backoff_base_s,
        policy.backoff_cap_s,
        policy.attempt_deadline_s,
        policy.total_deadline_s,
    ));
    j.push_str("    \"rates\": [\n");
    for (i, c) in negotiator.iter().enumerate() {
        j.push_str(&format!(
            "      {{\"rate\": {}, \"runs\": {}, \"bound\": {}, \"unfulfillable\": {}, \
             \"mean_attempts\": {}, \"mean_rung\": {}, \"mean_backoff_s\": {}, \
             \"mean_elapsed_s\": {}}}{}\n",
            c.rate,
            c.runs,
            c.bound,
            c.unfulfillable,
            c.mean_attempts,
            c.mean_rung,
            c.mean_backoff_s,
            c.mean_elapsed_s,
            if i + 1 < negotiator.len() { "," } else { "" }
        ));
    }
    j.push_str("    ],\n");
    j.push_str("    \"obs_counters\": {");
    for (i, (name, v)) in negotiate_counters.iter().enumerate() {
        j.push_str(&format!(
            "{}{}: {v}",
            if i == 0 { "" } else { ", " },
            json_str(name)
        ));
    }
    j.push_str("},\n");
    j.push_str(&format!("    \"obs_backoff_records\": {backoff_records}\n"));
    if let Some(report) = obs_report {
        j.push_str("  },\n");
        j.push_str(&format!("  \"obs\": {}\n", report.to_json().trim_end()));
    } else {
        j.push_str("  }\n");
    }
    j.push_str("}\n");
    std::fs::write(path, j)
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let obs_mode = std::env::args().any(|a| a == "--obs");
    let dags = instances(fast);
    let cfg = CurveConfig::default();

    eprintln!(
        "bench_chaos: {} instances of {} tasks, θ = {KNEE_THETA}",
        dags.len(),
        dags[0].len()
    );
    let curve = turnaround_curve(&dags, &cfg);
    let knee = find_knee(&curve, KNEE_THETA);
    let over = ((knee as f64 * OVERPROVISION).ceil() as usize).max(knee + 1);
    eprintln!("bench_chaos: knee size {knee}, over-provisioned size {over}");

    let crash_fractions: &[f64] = if fast {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4]
    };
    let mut cells = Vec::new();
    for &f in crash_fractions {
        eprintln!("bench_chaos: crash fraction {:.0}%...", f * 100.0);
        cells.push(chaos_cell(&dags, &cfg, knee, "knee", f));
        cells.push(chaos_cell(&dags, &cfg, over, "over", f));
    }

    let mut chaos_table = Table::new(vec![
        "crash frac",
        "size (role)",
        "turnaround",
        "resilient",
        "stretch",
        "lost",
        "rescued",
    ]);
    for c in &cells {
        chaos_table.row(vec![
            format!("{:.0}%", c.crash_fraction * 100.0),
            format!("{} ({})", c.rc_size, c.role),
            secs(c.mean_turnaround_s),
            secs(c.mean_resilient_s),
            format!("{:.3}x", c.stretch),
            c.tasks_lost.to_string(),
            c.tasks_rescued.to_string(),
        ]);
    }
    chaos_table.print("Chaos sweep: crash fraction x RC size (knee vs +25% over-provisioned)");

    // --- Negotiator sweep -------------------------------------------------
    eprintln!("bench_chaos: building degradation ladder...");
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 40,
            year: 2006,
            target_hosts: Some(1200),
        },
        TopologySpec::default(),
        11,
    );
    let original = ResourceSpec {
        rc_size: knee as u32,
        min_size: ((knee / 2).max(1)) as u32,
        clock_mhz: (1200.0, 3500.0),
        heuristic: cfg.heuristic,
        aggregate: AggregateKind::LooseBagOf,
        threshold: KNEE_THETA,
        memory_mb: 512,
    };
    let ladder = alternatives(&original, &dags, &[3000.0, 2500.0, 2000.0], &cfg);
    eprintln!("bench_chaos: ladder has {} rungs", ladder.len());

    let flaky_rates: &[f64] = if fast {
        &[0.0, 0.35]
    } else {
        &[0.0, 0.2, 0.4, 0.6]
    };
    // A 20 s attempt deadline sits below the injector's 30 s latency
    // spikes, so a spiked reply counts as a transient timeout rather
    // than a slow success — the sweep then exercises the backoff and
    // ladder-descent paths, not just the happy path.
    let policy = RetryPolicy {
        attempt_deadline_s: 20.0,
        ..RetryPolicy::default()
    };
    rsg_obs::enable(true);
    rsg_obs::reset();
    let negotiator: Vec<NegotiatorCell> = flaky_rates
        .iter()
        .map(|&rate| {
            eprintln!("bench_chaos: negotiating at flakiness rate {rate}...");
            negotiator_cell(&ladder, &platform, &policy, rate)
        })
        .collect();
    let report = rsg_obs::RunReport::capture();
    rsg_obs::enable(false);
    let negotiate_counters: Vec<(String, u64)> = [
        "core.negotiate.attempts.original",
        "core.negotiate.attempts.slower_clock",
        "core.negotiate.attempts.wider_het",
        "core.negotiate.attempts.smaller_size",
        "core.negotiate.bound",
        "core.negotiate.unfulfillable",
    ]
    .iter()
    .map(|&name| (name.to_string(), report.counter(name)))
    .collect();
    let backoff_records = report
        .histogram("core.negotiate.backoff")
        .map_or(0, |h| h.count);

    let mut neg_table = Table::new(vec![
        "flaky rate",
        "bound",
        "unfulfillable",
        "mean attempts",
        "mean rung",
        "mean backoff",
        "mean elapsed",
    ]);
    for c in &negotiator {
        neg_table.row(vec![
            format!("{:.0}%", c.rate * 100.0),
            format!("{}/{}", c.bound, c.runs),
            c.unfulfillable.to_string(),
            format!("{:.2}", c.mean_attempts),
            format!("{:.2}", c.mean_rung),
            secs(c.mean_backoff_s),
            secs(c.mean_elapsed_s),
        ]);
    }
    neg_table.print("Retrying negotiator vs flaky selector (20 negotiations per rate)");

    write_json(
        "BENCH_chaos.json",
        fast,
        knee,
        over,
        dags.len(),
        &cells,
        &policy,
        &negotiator,
        &negotiate_counters,
        backoff_records,
        obs_mode.then_some(&report),
    )
    .expect("failed to write BENCH_chaos.json");
    eprintln!(
        "bench_chaos: wrote BENCH_chaos.json ({} chaos cells, {} negotiator rates{})",
        cells.len(),
        negotiator.len(),
        if obs_mode {
            ", run report embedded"
        } else {
            ""
        }
    );
}
