//! Figures IV-7 and IV-8: Montage makespan and turnaround ratios
//! relative to MCP-on-universe while varying the CCR
//! {0.1, 0.5, 1, 2, 10}.

use rsg_bench::experiments::{montage, six_schemes, universe, Scale};
use rsg_bench::report::Table;
use rsg_dag::montage::MontageComm;

fn main() {
    let scale = Scale::from_env();
    let platform = universe(scale);
    let ccrs = [0.1, 0.5, 1.0, 2.0, 10.0];

    let mut makespan = Table::new(vec![
        "CCR",
        "MCP/top",
        "MCP/VG",
        "Greedy/universe",
        "Greedy/top",
        "Greedy/VG",
    ]);
    let mut turnaround = makespan.clone();

    for &ccr in &ccrs {
        let dag = montage(scale, MontageComm::Ccr(ccr));
        let rows = six_schemes(&dag, &platform, 3000.0);
        let baseline = rows
            .iter()
            .find(|r| r.label == "MCP / universe")
            .expect("baseline scheme present");
        let get = |label: &str, of_makespan: bool| -> String {
            let r = rows.iter().find(|r| r.label == label).unwrap();
            let (num, den) = if of_makespan {
                (r.report.makespan_s, baseline.report.makespan_s)
            } else {
                (r.report.turnaround_s(), baseline.report.turnaround_s())
            };
            format!("{:.2}", num / den)
        };
        makespan.row(vec![
            format!("{ccr}"),
            get("MCP / top hosts", true),
            get("MCP / VG", true),
            get("Greedy / universe", true),
            get("Greedy / top hosts", true),
            get("Greedy / VG", true),
        ]);
        turnaround.row(vec![
            format!("{ccr}"),
            get("MCP / top hosts", false),
            get("MCP / VG", false),
            get("Greedy / universe", false),
            get("Greedy / top hosts", false),
            get("Greedy / VG", false),
        ]);
    }

    makespan.print("Figure IV-7: Montage makespan ratio vs MCP-on-universe, varying CCR");
    turnaround.print("Figure IV-8: Montage turnaround ratio vs MCP-on-universe, varying CCR");
}
