//! Figure V-7: utility vs knee threshold — the threshold ladder trades
//! turnaround degradation for (negative) relative cost; a 1%-for-10%
//! utility picks an interior threshold.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::curve::mean_turnaround;
use rsg_core::optsearch::optimal_size_search;
use rsg_core::utility::UtilityFunction;
use rsg_dag::{DagStats, RandomDagSpec};
use rsg_platform::CostModel;

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let cost = CostModel::default();

    let spec = RandomDagSpec {
        size: match scale {
            Scale::Full => 5000,
            Scale::Fast => 500,
        },
        ccr: 0.1,
        parallelism: 0.7,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 40.0,
    };
    let dags = instances(spec, scale.instances(), 77);
    let stats = DagStats::measure(&dags[0]);

    // Ground truth optimum around the strictest prediction.
    let predicted0 = model.strictest().predict(&stats);
    let opt = optimal_size_search(&dags, predicted0, &cfg);
    let c_opt = cost.execution_cost(&cfg.rc_family.build(opt.size), opt.turnaround_s);

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "threshold",
        "predicted size",
        "degradation",
        "relative cost",
        "utility (1%:10%)",
    ]);
    let utility = UtilityFunction::one_for_ten();
    for m in &model.models {
        let size = m.predict(&stats);
        let t = mean_turnaround(&dags, size, &cfg);
        let deg = (t / opt.turnaround_s - 1.0).max(0.0);
        let c = cost.execution_cost(&cfg.rc_family.build(size), t);
        let rel = cost.relative_cost(c, c_opt);
        rows.push((m.theta, deg, rel));
        table.row(vec![
            pct(m.theta),
            size.to_string(),
            pct(deg),
            pct(rel),
            format!("{:.4}", utility.score(deg, rel)),
        ]);
    }
    table.print("Figure V-7: utility vs threshold");
    let pick = utility.choose(&rows);
    println!(
        "1%-for-10% utility selects threshold {} (row {})",
        pct(rows[pick].0),
        pick
    );
}
