//! Figure V-6: knee values as a function of CCR (anchor size,
//! regularity 0.01) for various parallelism values.

use rsg_bench::experiments::{chapter5_anchor_size, instances, Scale};
use rsg_bench::report::Table;
use rsg_core::curve::{turnaround_curve, CurveConfig};
use rsg_core::knee::find_knee;
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let n = chapter5_anchor_size(scale);
    let ccrs = [0.01, 0.1, 0.3, 0.5, 0.8, 1.0];
    let alphas = [0.5, 0.7, 0.9];
    let cfg = CurveConfig::default();

    let mut table = Table::new(
        std::iter::once("CCR".to_string())
            .chain(alphas.iter().map(|a| format!("alpha={a}")))
            .collect(),
    );
    for &ccr in &ccrs {
        let mut row = vec![format!("{ccr}")];
        for &a in &alphas {
            let spec = RandomDagSpec {
                size: n,
                ccr,
                parallelism: a,
                density: 0.5,
                regularity: 0.01,
                mean_comp: 40.0,
            };
            let dags = instances(spec, scale.instances(), ccr.to_bits() ^ a.to_bits());
            row.push(find_knee(&turnaround_curve(&dags, &cfg), 0.001).to_string());
        }
        table.row(row);
    }
    table.print(&format!("Figure V-6: knee vs CCR (n={n}, beta=0.01)"));
}
