//! Figure IV-12: varying density for random DAGs.

use rsg_bench::experiments::chapter4_random_sweep;

fn main() {
    chapter4_random_sweep(
        "Figure IV-12: varying density (ratios vs Greedy/VG)",
        "density",
        &[0.1, 0.2, 0.5, 0.8, 1.0],
        |spec, v| spec.density = v,
    );
}
