//! Figures V-18…V-24: predicted RC size change as a function of SCR
//! (the scheduling-to-computation clock-rate ratio), with the fitted
//! power-law formulas of Figures V-23/V-24.

use rsg_bench::experiments::{instances, Scale};
use rsg_bench::report::Table;
use rsg_core::curve::{CurveConfig, RcFamily};
use rsg_core::scr::{scr_sweep, ScrModel};
use rsg_dag::RandomDagSpec;

fn main() {
    let scale = Scale::from_env();
    let scrs = [0.25, 0.5, 1.0, 2.0, 4.0];
    let base = CurveConfig::default();

    let configs: Vec<(&str, RandomDagSpec, f64)> = vec![
        (
            "small DAG, homogeneous",
            RandomDagSpec {
                size: match scale {
                    Scale::Full => 1000,
                    Scale::Fast => 300,
                },
                ccr: 0.01,
                parallelism: 0.7,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 5.0,
            },
            0.0,
        ),
        (
            "larger DAG, homogeneous",
            RandomDagSpec {
                size: match scale {
                    Scale::Full => 5000,
                    Scale::Fast => 800,
                },
                ccr: 0.01,
                parallelism: 0.9,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 5.0,
            },
            0.0,
        ),
        (
            "larger DAG, heterogeneity 0.3",
            RandomDagSpec {
                size: match scale {
                    Scale::Full => 5000,
                    Scale::Fast => 800,
                },
                ccr: 0.01,
                parallelism: 0.9,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 5.0,
            },
            0.3,
        ),
    ];

    for (label, spec, het) in configs {
        let dags = instances(spec, scale.instances(), het.to_bits() ^ spec.size as u64);
        let cfg = CurveConfig {
            rc_family: RcFamily {
                heterogeneity: het,
                ..base.rc_family
            },
            ..base
        };
        let pts = scr_sweep(&dags, &cfg, &scrs, 0.01);
        let mut table = Table::new(vec!["SCR", "knee"]);
        for p in &pts {
            table.row(vec![format!("{}", p.scr), p.knee.to_string()]);
        }
        table.print(&format!("Figures V-18..V-22: knee vs SCR ({label})"));
        let m = ScrModel::fit(&pts);
        println!("Figure V-23/V-24 formula for {label}: {}\n", m.formula());
    }
}
