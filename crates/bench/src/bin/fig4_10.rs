//! Figure IV-10: varying CCR for random DAGs (Table IV-3 values).

use rsg_bench::experiments::chapter4_random_sweep;

fn main() {
    chapter4_random_sweep(
        "Figure IV-10: varying CCR (ratios vs Greedy/VG)",
        "CCR",
        &[0.1, 0.2, 1.0, 2.0, 10.0],
        |spec, v| spec.ccr = v,
    );
}
