//! Beyond the paper: robustness of the predicted-size schedule to
//! runtime resource degradation — the operational scenario the vgMON
//! monitor of Section II.4.1 exists to detect. Replays MCP schedules
//! at the predicted RC size through the event-driven simulator while a
//! fraction of hosts slows down mid-run.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::Table;
use rsg_dag::{DagStats, RandomDagSpec};
use rsg_sched::simulator::{makespan_stretch, HostSlowdown, Perturbation};
use rsg_sched::{ExecutionContext, HeuristicKind};

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let spec = RandomDagSpec {
        size: match scale {
            Scale::Full => 5000,
            Scale::Fast => 500,
        },
        ccr: 0.1,
        parallelism: 0.7,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 40.0,
    };
    let dags = instances(spec, scale.instances(), 0x52);
    let predicted = model.strictest().predict(&DagStats::measure(&dags[0]));
    let rc = cfg.rc_family.build(predicted);
    println!("predicted RC size: {predicted} hosts");

    let mut table = Table::new(vec![
        "slowed hosts",
        "slowdown factor",
        "onset (fraction of makespan)",
        "mean makespan stretch",
    ]);
    for &(frac_hosts, factor, onset) in &[
        (0.1, 0.5, 0.0),
        (0.1, 0.25, 0.0),
        (0.25, 0.5, 0.0),
        (0.25, 0.5, 0.5),
        (0.5, 0.5, 0.0),
        (0.1, 0.1, 0.25),
    ] {
        let mut total = 0.0;
        for dag in &dags {
            let ctx = ExecutionContext::new(dag, &rc);
            let (s, _) = HeuristicKind::Mcp.run(&ctx);
            let k = ((rc.len() as f64) * frac_hosts).ceil() as usize;
            let p = Perturbation {
                host_slowdowns: (0..k)
                    .map(|h| HostSlowdown {
                        host: h,
                        from_s: s.makespan() * onset,
                        factor,
                    })
                    .collect(),
                comm_stretch: 1.0,
            };
            total += makespan_stretch(&ctx, &s, &p);
        }
        table.row(vec![
            format!("{:.0}%", frac_hosts * 100.0),
            format!("{factor}"),
            format!("{onset}"),
            format!("{:.3}x", total / dags.len() as f64),
        ]);
    }
    table.print("Robustness: makespan stretch under mid-run host degradation");
    println!("(even a few degraded hosts gate the whole DAG: static schedules are");
    println!(" brittle, which is exactly why vgES pairs selection with the vgMON");
    println!(" monitoring layer the paper describes)");
}
