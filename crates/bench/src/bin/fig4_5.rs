//! Figure IV-5: running the Montage workflow with actual communication
//! costs — scheduling time, makespan, selection time and turnaround
//! for the six Table IV-1 schemes.

use rsg_bench::experiments::{montage, six_schemes, universe, Scale};
use rsg_bench::report::{secs, Table};
use rsg_dag::montage::MontageComm;

fn main() {
    let scale = Scale::from_env();
    let platform = universe(scale);
    let dag = montage(scale, MontageComm::ActualFiles);
    println!(
        "Montage {} tasks on {} hosts ({:?} scale)",
        dag.len(),
        platform.total_hosts(),
        scale
    );

    let mut table = Table::new(vec![
        "scheme",
        "sched time (s)",
        "makespan (s)",
        "VG time (s)",
        "turnaround (s)",
    ]);
    for row in six_schemes(&dag, &platform, 3000.0) {
        table.row(vec![
            row.label.clone(),
            secs(row.report.sched_time_s),
            secs(row.report.makespan_s),
            secs(row.report.selection_time_s),
            secs(row.report.turnaround_s()),
        ]);
    }
    table.print("Figure IV-5: Montage with actual communication costs");
}
