//! Figures V-10/V-11: change of the *optimal* RC size and optimal
//! turnaround as clock-rate heterogeneity grows, plus the fitted
//! linear size-adjustment used by the spec generator.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::Table;
use rsg_core::heterogeneity::{heterogeneity_sweep, HeterogeneityAdjustment};
use rsg_dag::{DagStats, RandomDagSpec};
use rsg_platform::CostModel;

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let hs = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

    let spec = RandomDagSpec {
        size: match scale {
            Scale::Full => 5000,
            Scale::Fast => 500,
        },
        ccr: 0.1,
        parallelism: 0.7,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 40.0,
    };
    let dags = instances(spec, scale.instances(), 31);
    let prediction = model.strictest().predict(&DagStats::measure(&dags[0]));
    let pts = heterogeneity_sweep(&dags, prediction, &cfg, &hs, &CostModel::default());

    let mut table = Table::new(vec!["H", "optimal size", "optimal turnaround (s)"]);
    for p in &pts {
        table.row(vec![
            format!("{}", p.heterogeneity),
            p.optimal_size.to_string(),
            format!("{:.1}", p.optimal_turnaround_s),
        ]);
    }
    table.print("Figures V-10/V-11: optimal RC size and turnaround vs heterogeneity");

    let adj = HeterogeneityAdjustment::fit(&pts);
    println!(
        "fitted size adjustment: size(H) = size(0) * (1 + {:.3} * H)",
        adj.gamma
    );
    println!(
        "tolerance for <=5% degradation: H <= {:.2}",
        HeterogeneityAdjustment::tolerance_for(&pts, 0.05)
    );
}
