//! Table V-7: the current practice — requesting the DAG width — versus
//! the prediction model: similar turnaround for small DAGs, but
//! runaway size and cost as DAGs grow.

use rsg_bench::experiments::{instances, trained_size_model, Scale};
use rsg_bench::report::{pct, Table};
use rsg_core::validate::{validate_config, validate_width_practice};
use rsg_dag::RandomDagSpec;
use rsg_platform::CostModel;

fn main() {
    let scale = Scale::from_env();
    let (model, cfg) = trained_size_model(scale);
    let strictest = model.strictest();
    let (grid_sizes, _) = strictest.axes();
    let cost = CostModel::default();

    let mut table = Table::new(vec![
        "DAG size",
        "width size diff",
        "width degradation",
        "width rel cost",
        "model rel cost",
    ]);
    for &n in grid_sizes {
        let spec = RandomDagSpec {
            size: n as usize,
            ccr: 0.1,
            parallelism: 0.7,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        };
        let dags = instances(spec, scale.instances(), n.to_bits());
        let base = validate_config(&dags, strictest, &cfg, &cost);
        let width = validate_width_practice(&dags, &base, &cfg, &cost);
        table.row(vec![
            format!("{}", n as usize),
            pct(width.size_diff),
            pct(width.degradation),
            pct(width.relative_cost),
            pct(base.relative_cost),
        ]);
    }
    table.print("Table V-7: DAG width as the RC size (current practice)");
    println!("(paper: width practice up to ~880% size diff and 10x cost for big DAGs)");
}
