//! Plain-text/CSV table output shared by the experiment binaries.

use std::fmt::Write as _;

/// A simple aligned table that can also dump CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn to_text(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = width[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(&esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(&esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the text table, then the CSV under a marker (the format
    /// every experiment binary emits).
    pub fn print(&self, title: &str) {
        println!("== {title} ==");
        println!("{}", self.to_text());
        println!("--- csv ---");
        print!("{}", self.to_csv());
        println!();
    }
}

/// Formats a fraction as a percent string with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats seconds adaptively.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Reads the experiment scale preset from `RSG_SCALE` (`fast` default,
/// `full` for paper-scale runs).
pub fn scale_is_full() -> bool {
    std::env::var("RSG_SCALE").is_ok_and(|v| v == "full")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_text_and_csv() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "hello"]);
        t.row(vec!["22", "x,y"]);
        let text = t.to_text();
        assert!(text.contains("hello"));
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(1.5), "1.50");
        assert_eq!(secs(0.1234), "0.1234");
    }
}
