//! Shared machinery for the per-figure/per-table experiment binaries.
//!
//! Every binary honours the `RSG_SCALE` environment variable: the
//! default `fast` preset reproduces each experiment's *shape* in
//! seconds-to-minutes on a laptop core; `RSG_SCALE=full` switches to the
//! paper's parameters (Table IV-3 / V-1 scale — hours of CPU).

use crate::report::scale_is_full;
use rsg_core::curve::CurveConfig;
use rsg_dag::montage::{MontageComm, MontageSpec};
use rsg_dag::{Dag, RandomDagSpec};
use rsg_platform::{Platform, ResourceGenSpec, TopologySpec};
use rsg_sched::{evaluate, HeuristicKind, SchedTimeModel, TurnaroundReport};
use rsg_select::selection_time::SelectionTimeModel;
use rsg_select::vgdl::{Aggregate, AggregateKind, CmpOp, NodeConstraint, VgdlSpec};
use rsg_select::VgesFinder;

/// The experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters; same qualitative shape.
    Fast,
    /// The paper's parameters.
    Full,
}

impl Scale {
    /// Reads `RSG_SCALE` (`full` → [`Scale::Full`]).
    pub fn from_env() -> Scale {
        if scale_is_full() {
            Scale::Full
        } else {
            Scale::Fast
        }
    }

    /// Instances per configuration (paper: 10).
    pub fn instances(self) -> usize {
        match self {
            Scale::Fast => 3,
            Scale::Full => 10,
        }
    }
}

/// The experiment resource universe: the paper's 1000-cluster /
/// 33,667-host LSDE at full scale, a 200-cluster / 6000-host one at
/// fast scale.
pub fn universe(scale: Scale) -> Platform {
    let spec = match scale {
        Scale::Full => ResourceGenSpec::paper_universe(),
        Scale::Fast => ResourceGenSpec {
            clusters: 200,
            year: 2006,
            target_hosts: Some(6000),
        },
    };
    Platform::generate(spec, TopologySpec::default(), 42)
}

/// The Montage workload (paper: 4469 tasks; fast: 1629).
pub fn montage(scale: Scale, comm: MontageComm) -> Dag {
    match scale {
        Scale::Full => MontageSpec::m4469(comm).generate(),
        Scale::Fast => MontageSpec::m1629(comm).generate(),
    }
}

/// Instances of a random-DAG configuration with deterministic seeds.
pub fn instances(spec: RandomDagSpec, count: usize, salt: u64) -> Vec<Dag> {
    (0..count)
        .map(|k| spec.generate(salt.wrapping_mul(0x9E37).wrapping_add(k as u64)))
        .collect()
}

/// One row of the Chapter IV six-scheme comparison (Table IV-1 matrix).
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// Scheme label, e.g. "MCP / VG".
    pub label: String,
    /// Full turnaround report.
    pub report: TurnaroundReport,
}

/// Runs the six Chapter IV schemes on a DAG over a platform: {MCP,
/// Greedy} × {universe, top hosts, VG}. `vg_clock_mhz` is the Figure
/// IV-4 clock floor for the VG request.
pub fn six_schemes(dag: &Dag, platform: &Platform, vg_clock_mhz: f64) -> Vec<SchemeRow> {
    let model = SchedTimeModel::default();
    let sel = SelectionTimeModel::default();
    let width = dag.width() as usize;

    let universe_rc = platform.universe_rc();
    let top_rc = platform.top_hosts_rc(width.min(platform.total_hosts()));
    let vg_spec = VgdlSpec::single(Aggregate {
        kind: AggregateKind::TightBagOf,
        var: "nodes".into(),
        min: (width / 5).max(1) as u32,
        max: width as u32,
        rank: Some("Nodes".into()),
        constraints: vec![NodeConstraint::num("Clock", CmpOp::Ge, vg_clock_mhz)],
    });
    let vg_rc = VgesFinder::default()
        .find(platform, &vg_spec)
        .unwrap_or_else(|| platform.top_hosts_rc((width / 5).max(1)));

    let mut rows = Vec::new();
    for heuristic in [HeuristicKind::Mcp, HeuristicKind::Greedy] {
        for (name, rc, selected) in [
            ("universe", &universe_rc, false),
            ("top hosts", &top_rc, true),
            ("VG", &vg_rc, true),
        ] {
            let mut report = evaluate(dag, rc, heuristic, &model);
            if selected {
                report.selection_time_s = sel.seconds(platform.clusters().len());
            }
            rows.push(SchemeRow {
                label: format!("{heuristic} / {name}"),
                report,
            });
        }
    }
    rows
}

/// The Table IV-3 random-DAG default configuration at a given scale.
pub fn chapter4_default_spec(scale: Scale) -> RandomDagSpec {
    RandomDagSpec {
        size: match scale {
            Scale::Full => 4469,
            Scale::Fast => 900,
        },
        ccr: 1.0,
        parallelism: 0.5,
        density: 0.5,
        regularity: 0.5,
        // The paper's 40 s mean cost; the fast preset scales it down so
        // that the scheduling-time/makespan balance of the 33,667-host
        // universe is preserved on the reduced 6,000-host one.
        mean_comp: match scale {
            Scale::Full => 40.0,
            Scale::Fast => 8.0,
        },
    }
}

/// The default curve configuration (MCP, reference clock, default
/// scheduling-time model).
pub fn default_curve_config() -> CurveConfig {
    CurveConfig::default()
}

/// Mean turnaround of the six schemes over DAG instances — used by the
/// Chapter IV random-DAG sweeps. Returns `(label, mean turnaround)`.
pub fn scheme_means(dags: &[Dag], platform: &Platform, vg_clock_mhz: f64) -> Vec<(String, f64)> {
    let mut sums: Vec<(String, f64)> = Vec::new();
    for dag in dags {
        for row in six_schemes(dag, platform, vg_clock_mhz) {
            let t = row.report.turnaround_s();
            if let Some(slot) = sums.iter_mut().find(|(l, _)| *l == row.label) {
                slot.1 += t;
            } else {
                sums.push((row.label, t));
            }
        }
    }
    for slot in &mut sums {
        slot.1 /= dags.len() as f64;
    }
    sums
}

/// The Chapter V observation grid at a given scale (Table V-1 at full
/// scale).
pub fn observation_grid(scale: Scale) -> rsg_core::observation::ObservationGrid {
    match scale {
        Scale::Full => rsg_core::observation::ObservationGrid::paper(),
        Scale::Fast => rsg_core::observation::ObservationGrid::fast(),
    }
}

/// A short stable digest of everything the observation sweep depends
/// on — grid axes, curve configuration, thresholds, refinement, and the
/// observability configuration — used to key sweep caches so a config
/// change cannot serve stale tables. The obs fingerprint matters
/// because a sweep served from cache records no counters or spans: an
/// instrumented run must not be satisfied by a cache entry written with
/// observability off (or vice versa).
fn sweep_cache_key(
    grid: &rsg_core::observation::ObservationGrid,
    cfg: &CurveConfig,
    thetas: &[f64],
    refine_rounds: u32,
) -> String {
    // The same digest checkpoint journals record in their header
    // (grid + curve config + thetas + refinement + obs fingerprint +
    // sweep code version), so cache entries and journals invalidate
    // together.
    format!(
        "{:016x}",
        rsg_core::sweep_fingerprint(grid, cfg, thetas, refine_rounds)
    )
}

/// Measures (or loads) the observation-sweep knee tables for a grid and
/// configuration, cached as TSV under
/// `target/rsg_knee_tables_<key>.tsv` where `<key>` digests the grid,
/// curve config, thresholds, refinement and the current
/// [`rsg_obs::config_fingerprint`] (delete the file or set
/// `RSG_NO_CACHE=1` to re-measure).
pub fn observed_knee_tables(
    grid: &rsg_core::observation::ObservationGrid,
    cfg: &CurveConfig,
    thetas: &[f64],
    refine_rounds: u32,
) -> Vec<rsg_core::KneeTable> {
    let sweep = || {
        eprintln!(
            "[training] observation sweep on {} configurations x {} instances ...",
            grid.cells(),
            grid.instances
        );
        rsg_core::observation::measure(grid, cfg, thetas, refine_rounds)
    };
    if std::env::var("RSG_NO_CACHE").is_ok() {
        return sweep();
    }
    let key = sweep_cache_key(grid, cfg, thetas, refine_rounds);
    let cache = std::path::PathBuf::from(format!("target/rsg_knee_tables_{key}.tsv"));
    // The store quarantines a corrupt or stale entry to `*.corrupt` and
    // re-measures; a cache problem can never fail the experiment.
    rsg_core::store::load_or_rebuild(
        &cache,
        "knee-tables",
        |payload| {
            let tables = rsg_core::persist::knee_tables_from_tsv(payload)?;
            let matches = tables.len() == thetas.len()
                && tables
                    .iter()
                    .zip(thetas)
                    .all(|(t, &th)| t.theta == th && t.grid == *grid);
            if !matches {
                return Err(rsg_core::StoreError::parse(
                    "knee-tables",
                    1,
                    "cache entry does not match the requested sweep",
                ));
            }
            eprintln!(
                "[training] loaded cached knee tables from {}",
                cache.display()
            );
            Ok(tables)
        },
        || {
            let tables = sweep();
            let payload = rsg_core::persist::knee_tables_to_tsv(&tables);
            (tables, payload)
        },
        |w| eprintln!("[training] knee-table cache {}: {w}", cache.display()),
    )
}

/// Trains the thresholded size model for the whole threshold ladder at
/// the given scale, printing progress. Both the measured knee tables
/// and the fitted model are cached as TSV under `target/` (delete the
/// files or set `RSG_NO_CACHE=1` to retrain).
pub fn trained_size_model(scale: Scale) -> (rsg_core::ThresholdedSizeModel, CurveConfig) {
    let cfg = default_curve_config();
    let retrain = || {
        let grid = observation_grid(scale);
        let tables = observed_knee_tables(&grid, &cfg, &rsg_core::THRESHOLD_LADDER, 0);
        let model = rsg_core::ThresholdedSizeModel::fit(&tables);
        let payload = model.to_tsv();
        (model, payload)
    };
    if std::env::var("RSG_NO_CACHE").is_ok() {
        return (retrain().0, cfg);
    }
    let cache = std::path::PathBuf::from(format!(
        "target/rsg_size_model_{}.tsv",
        if scale == Scale::Full { "full" } else { "fast" }
    ));
    let model = rsg_core::store::load_or_rebuild(
        &cache,
        "size-model",
        |payload| {
            let model = rsg_core::ThresholdedSizeModel::from_tsv(payload)?;
            eprintln!(
                "[training] loaded cached size model from {}",
                cache.display()
            );
            Ok(model)
        },
        retrain,
        |w| eprintln!("[training] size-model cache {}: {w}", cache.display()),
    );
    (model, cfg)
}

/// The Chapter V anchor configuration: the biggest observation size at
/// CCR 0.01 (n = 5000 in the paper's Table V-2; the fast grid's largest
/// size otherwise).
pub fn chapter5_anchor_size(scale: Scale) -> usize {
    match scale {
        Scale::Full => 5000,
        Scale::Fast => 500,
    }
}

/// Driver shared by the Figure IV-9…IV-14 binaries: vary one random-DAG
/// characteristic and print mean turnaround ratios relative to the
/// Greedy-on-VG scheme (the paper's Figure IV-9 baseline).
pub fn chapter4_random_sweep(
    title: &str,
    axis: &str,
    values: &[f64],
    mut apply: impl FnMut(&mut RandomDagSpec, f64),
) {
    let scale = Scale::from_env();
    let platform = universe(scale);
    let mut table = crate::report::Table::new(vec![
        axis.to_string(),
        "MCP/universe".to_string(),
        "MCP/top".to_string(),
        "MCP/VG".to_string(),
        "Greedy/top".to_string(),
        "Greedy/VG".to_string(),
    ]);
    for &v in values {
        let mut spec = chapter4_default_spec(scale);
        apply(&mut spec, v);
        let dags = instances(spec, scale.instances(), v.to_bits());
        let means = scheme_means(&dags, &platform, 2500.0);
        let base = means
            .iter()
            .find(|(l, _)| l == "Greedy / VG")
            .map(|(_, t)| *t)
            .expect("baseline present");
        let ratio = |label: &str| -> String {
            let t = means.iter().find(|(l, _)| l == label).unwrap().1;
            format!("{:.2}", t / base)
        };
        table.row(vec![
            format!("{v}"),
            ratio("MCP / universe"),
            ratio("MCP / top hosts"),
            ratio("MCP / VG"),
            ratio("Greedy / top hosts"),
            ratio("Greedy / VG"),
        ]);
    }
    table.print(title);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_fast() {
        // Unless RSG_SCALE=full is exported by the harness.
        if std::env::var("RSG_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Fast);
        }
    }

    #[test]
    fn sweep_cache_key_tracks_obs_config() {
        let _guard = rsg_obs::test_guard();
        let grid = rsg_core::observation::ObservationGrid::tiny();
        let cfg = default_curve_config();
        let off = sweep_cache_key(&grid, &cfg, &[0.05], 1);
        rsg_obs::enable(true);
        let on = sweep_cache_key(&grid, &cfg, &[0.05], 1);
        rsg_obs::enable(false);
        assert_ne!(
            off, on,
            "an instrumented sweep must not share a cache entry with an obs-off one"
        );
    }

    #[test]
    fn corrupt_sweep_cache_quarantined_and_rebuilt() {
        // Serialized with other obs-touching tests: the cache key
        // digests the global obs configuration.
        let _guard = rsg_obs::test_guard();
        if std::env::var("RSG_NO_CACHE").is_ok() {
            return;
        }
        let grid = rsg_core::observation::ObservationGrid::tiny();
        let cfg = default_curve_config();
        let thetas = [0.02, 0.05];
        let clean = observed_knee_tables(&grid, &cfg, &thetas, 0);
        let key = sweep_cache_key(&grid, &cfg, &thetas, 0);
        let cache = format!("target/rsg_knee_tables_{key}.tsv");
        let quarantined = format!("{cache}.corrupt");
        let _ = std::fs::remove_file(&quarantined);

        // Garbage in the cache slot: the sweep must recover — the
        // entry is quarantined, re-measured, and the result identical.
        std::fs::write(&cache, "garbage bytes, definitely not an envelope").unwrap();
        let recovered = observed_knee_tables(&grid, &cfg, &thetas, 0);
        assert_eq!(recovered, clean);
        assert!(
            std::path::Path::new(&quarantined).exists(),
            "damaged entry must be preserved as {quarantined}"
        );

        // The rebuilt slot serves loads again (same tables, no sweep:
        // the envelope now present decodes cleanly).
        let reloaded = observed_knee_tables(&grid, &cfg, &thetas, 0);
        assert_eq!(reloaded, clean);
        let _ = std::fs::remove_file(&quarantined);
    }

    #[test]
    fn six_schemes_cover_matrix() {
        let p = Platform::generate(
            ResourceGenSpec {
                clusters: 30,
                year: 2006,
                target_hosts: Some(600),
            },
            TopologySpec::default(),
            3,
        );
        let dag = rsg_dag::workflows::fork_join(2, 20, 10.0, 1.0);
        let rows = six_schemes(&dag, &p, 1000.0);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.label == "MCP / universe"));
        assert!(rows.iter().any(|r| r.label == "Greedy / VG"));
        // Selected schemes carry selection time; implicit ones don't.
        for r in &rows {
            if r.label.ends_with("universe") {
                assert_eq!(r.report.selection_time_s, 0.0);
            } else {
                assert!(r.report.selection_time_s > 0.0);
            }
        }
    }

    #[test]
    fn scheme_means_average() {
        let p = Platform::generate(
            ResourceGenSpec {
                clusters: 20,
                year: 2006,
                target_hosts: Some(400),
            },
            TopologySpec::default(),
            4,
        );
        let dags = instances(
            RandomDagSpec {
                size: 60,
                ccr: 0.5,
                parallelism: 0.5,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 10.0,
            },
            2,
            9,
        );
        let means = scheme_means(&dags, &p, 500.0);
        assert_eq!(means.len(), 6);
        assert!(means.iter().all(|(_, t)| *t > 0.0));
    }
}
