//! Criterion benches for the synthetic generators: random DAGs,
//! Montage, and the LSDE platform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_dag::montage::{MontageComm, MontageSpec};
use rsg_dag::RandomDagSpec;
use rsg_platform::{Platform, ResourceGenSpec, TopologySpec};
use std::hint::black_box;

fn bench_random_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_dag_generate");
    group.sample_size(20);
    for n in [500usize, 4469] {
        let spec = RandomDagSpec {
            size: n,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(spec.generate(seed))
            });
        });
    }
    group.finish();
}

fn bench_montage(c: &mut Criterion) {
    c.bench_function("montage_4469_generate", |b| {
        b.iter(|| black_box(MontageSpec::m4469(MontageComm::ActualFiles).generate()));
    });
}

fn bench_platform(c: &mut Criterion) {
    c.bench_function("platform_1000_clusters", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Platform::generate(
                ResourceGenSpec::paper_universe(),
                TopologySpec::default(),
                seed,
            ))
        });
    });
    c.bench_function("universe_rc_33667_hosts", |b| {
        let p = Platform::paper_universe(1);
        b.iter(|| black_box(p.universe_rc()));
    });
}

criterion_group!(benches, bench_random_dag, bench_montage, bench_platform);
criterion_main!(benches);
