//! Criterion benches for the prediction-model kernels: knee detection,
//! plane fitting and size-model prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use rsg_core::curve::Curve;
use rsg_core::knee::{find_knee, find_knees};
use rsg_core::planefit::PlaneFit;
use std::hint::black_box;

fn synthetic_curve(points: usize) -> Curve {
    let mut size = 1usize;
    Curve {
        points: (0..points)
            .map(|i| {
                let t = 1000.0 / (size as f64) + 0.05 * size as f64 + (i % 3) as f64 * 0.01;
                let p = (size, t);
                size = (size as f64 * 1.3).ceil() as usize;
                p
            })
            .collect(),
    }
}

fn bench_knee(c: &mut Criterion) {
    let curve = synthetic_curve(40);
    c.bench_function("find_knee_40pts", |b| {
        b.iter(|| black_box(find_knee(&curve, 0.001)));
    });
    c.bench_function("find_knees_ladder", |b| {
        b.iter(|| black_box(find_knees(&curve, &rsg_core::THRESHOLD_LADDER)));
    });
}

fn bench_planefit(c: &mut Criterion) {
    let mut samples = Vec::new();
    for i in 0..7 {
        for j in 0..6 {
            let x = 0.3 + 0.1 * i as f64;
            let y = 0.2 * j as f64;
            samples.push((x, y, 8.0 * x - 1.0 * y + 0.5));
        }
    }
    c.bench_function("planefit_42samples", |b| {
        b.iter(|| black_box(PlaneFit::fit(&samples)));
    });
}

fn bench_prediction(c: &mut Criterion) {
    // Train once on the tiny grid; bench the prediction path.
    let grid = rsg_core::observation::ObservationGrid::tiny();
    let cfg = rsg_core::curve::CurveConfig::default();
    let tables = rsg_core::observation::measure(&grid, &cfg, &[0.001], 0);
    let model = rsg_core::SizePredictionModel::fit(&tables[0]);
    c.bench_function("sizemodel_predict", |b| {
        b.iter(|| black_box(model.predict_chars(black_box(333.0), 0.2, 0.65, 0.4)));
    });
}

criterion_group!(benches, bench_knee, bench_planefit, bench_prediction);
criterion_main!(benches);
