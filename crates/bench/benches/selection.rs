//! Criterion benches for the resource-selection substrates: the
//! matchmaker, the vgES finder, the SWORD engine, and the three
//! parsers.

use criterion::{criterion_group, criterion_main, Criterion};
use rsg_platform::{Platform, ResourceGenSpec, TopologySpec};
use rsg_select::classad::parse_classad;
use rsg_select::sword::{parse_sword, write_sword};
use rsg_select::vgdl::parse_vgdl;
use rsg_select::{Matchmaker, SwordEngine, VgesFinder};
use std::hint::black_box;

fn platform() -> Platform {
    Platform::generate(
        ResourceGenSpec {
            clusters: 300,
            year: 2006,
            target_hosts: Some(10_000),
        },
        TopologySpec::default(),
        11,
    )
}

fn bench_engines(c: &mut Criterion) {
    let p = platform();

    let mm = Matchmaker::from_platform(&p);
    let req = parse_classad(
        r#"[ Type = "Job"; Count = 500;
             Requirements = other.Type == "Machine" && other.Clock >= 2000;
             Rank = other.Clock ]"#,
    )
    .unwrap();
    c.bench_function("matchmaker_select_500_of_10000", |b| {
        b.iter(|| black_box(mm.select_hosts(&req, &p)));
    });

    let finder = VgesFinder::default();
    let vg =
        parse_vgdl("VG = TightBagOf(nodes) [100:500] [rank = Nodes] { nodes = [ Clock >= 2000 ] }")
            .unwrap();
    c.bench_function("vges_find_tightbag", |b| {
        b.iter(|| black_box(finder.find(&p, &vg)));
    });

    let sword = parse_sword(
        r#"<request>
             <dist_query_budget>30</dist_query_budget>
             <optimizer_budget>100</optimizer_budget>
             <group>
               <name>g</name>
               <num_machines>500</num_machines>
               <clock>2000.0, 3000.0, MAX, MAX, 1.0</clock>
             </group>
           </request>"#,
    )
    .unwrap();
    c.bench_function("sword_select_500_of_10000", |b| {
        b.iter(|| black_box(SwordEngine.select(&p, &sword)));
    });
}

fn bench_parsers(c: &mut Criterion) {
    let classad_src = r#"[ Type = "Job"; Owner = "somedude";
        Ports = {
          [ Label = cpu; Rank = cpu.KFlops/1E3 + cpu.Memory/32;
            Constraint = cpu.Type == "Machine" && cpu.Arch == "OPTERON" ],
          [ Label = cpu; Rank = cpu.MFlops/1E3;
            Constraint = cpu.Arch == "INTEL" && cpu.OpSys == "LINUX" ]
        } ]"#;
    c.bench_function("parse_classad_gangmatch", |b| {
        b.iter(|| black_box(parse_classad(classad_src).unwrap()));
    });

    let vgdl_src = r#"VG = ClusterOf(nodes) [32:64]
        { nodes = [ (Processor == Opteron) && (Clock >= 2000) && (Memory >= 1024) ] }
        close
        TightBagOf(nodes2) [32:128] { nodes2 = [ Clock >= 1000 ] }"#;
    c.bench_function("parse_vgdl_two_aggregates", |b| {
        b.iter(|| black_box(parse_vgdl(vgdl_src).unwrap()));
    });

    let sword_req = parse_sword(
        r#"<request><group><name>g</name><num_machines>5</num_machines>
           <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem></group></request>"#,
    )
    .unwrap();
    let xml = write_sword(&sword_req);
    c.bench_function("sword_xml_round_trip", |b| {
        b.iter(|| black_box(parse_sword(&write_sword(black_box(&sword_req))).unwrap()));
    });
    let _ = xml;
}

criterion_group!(benches, bench_engines, bench_parsers);
criterion_main!(benches);
