//! Criterion benches for the scheduling kernels: wall-clock cost of
//! each heuristic as the RC size grows — the real-world counterpart of
//! the op-count scheduling-time model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsg_dag::RandomDagSpec;
use rsg_platform::ResourceCollection;
use rsg_sched::{ExecutionContext, HeuristicKind};
use std::hint::black_box;

fn dag(n: usize) -> rsg_dag::Dag {
    RandomDagSpec {
        size: n,
        ccr: 0.1,
        parallelism: 0.6,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 20.0,
    }
    .generate(42)
}

fn bench_heuristics_vs_rc_size(c: &mut Criterion) {
    let dag = dag(500);
    let mut group = c.benchmark_group("heuristic_vs_rc_size");
    group.sample_size(20);
    for hosts in [8usize, 64, 256] {
        let rc = ResourceCollection::homogeneous(hosts, 1500.0);
        for kind in [
            HeuristicKind::Mcp,
            HeuristicKind::Fca,
            HeuristicKind::Fcfs,
            HeuristicKind::Greedy,
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), hosts), &hosts, |b, _| {
                let ctx = ExecutionContext::new(&dag, &rc);
                b.iter(|| black_box(kind.run(&ctx)));
            });
        }
    }
    group.finish();
}

fn bench_dls(c: &mut Criterion) {
    // DLS separately (it is much more expensive).
    let dag = dag(200);
    let rc = ResourceCollection::heterogeneous(32, 3000.0, 0.3, 1);
    c.bench_function("dls_200x32", |b| {
        let ctx = ExecutionContext::new(&dag, &rc);
        b.iter(|| black_box(HeuristicKind::Dls.run(&ctx)));
    });
}

fn bench_mcp_vs_dag_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcp_vs_dag_size");
    group.sample_size(15);
    let rc = ResourceCollection::homogeneous(64, 1500.0);
    for n in [200usize, 800, 2000] {
        let dag = dag(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let ctx = ExecutionContext::new(&dag, &rc);
            b.iter(|| black_box(HeuristicKind::Mcp.run(&ctx)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heuristics_vs_rc_size,
    bench_dls,
    bench_mcp_vs_dag_size
);
criterion_main!(benches);
