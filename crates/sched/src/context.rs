//! Execution context: a DAG paired with a resource collection.
//!
//! Implements the execution model of Section III: uniform processors
//! (task time inversely proportional to clock rate), non-preemptive
//! tasks, data transfers charged in seconds at the reference bandwidth
//! scaled by the RC's pairwise communication factor, free intra-host
//! transfers.

use rsg_dag::{Dag, TaskId};
use rsg_platform::ResourceCollection;
use std::sync::Arc;

/// A scheduling problem instance: `(dag, rc)` plus precomputed speed
/// factors.
///
/// The speed factors live in one flat, contiguous `f64` array over the
/// *whole* RC, cached inside the RC and shared by every context built
/// on it ([`ResourceCollection::speed_factors`]): constructing a
/// context is O(1) after the first build, and prefix-limited contexts
/// (the sweep's RC-size ladder) are just a smaller `hosts` bound over
/// the same array.
pub struct ExecutionContext<'a> {
    /// The workflow to schedule.
    pub dag: &'a Dag,
    /// The resource collection to schedule onto.
    pub rc: &'a ResourceCollection,
    speeds: Arc<[f64]>,
    hosts: usize,
}

impl<'a> ExecutionContext<'a> {
    /// Pairs a DAG with an RC.
    pub fn new(dag: &'a Dag, rc: &'a ResourceCollection) -> ExecutionContext<'a> {
        Self::with_host_limit(dag, rc, rc.len())
    }

    /// Pairs a DAG with the first `hosts` hosts of `rc` (clamped to
    /// `[1, rc.len()]`). Because RC families are prefix-stable, this is
    /// equivalent to `ExecutionContext::new(dag, &rc.prefix(hosts))`
    /// without cloning the RC — the key to sweeping RC sizes over one
    /// max-size host family.
    pub fn with_host_limit(
        dag: &'a Dag,
        rc: &'a ResourceCollection,
        hosts: usize,
    ) -> ExecutionContext<'a> {
        let hosts = hosts.clamp(1, rc.len());
        let speeds = rc.speed_factors(dag.reference_clock_mhz());
        ExecutionContext {
            dag,
            rc,
            speeds,
            hosts,
        }
    }

    /// Clock rate of host `h` in MHz (only hosts below [`hosts()`]
    /// belong to this context).
    ///
    /// [`hosts()`]: ExecutionContext::hosts
    #[inline]
    pub fn clock_mhz(&self, h: usize) -> f64 {
        debug_assert!(h < self.hosts());
        self.rc.clock_mhz(h)
    }

    /// Number of hosts.
    #[inline]
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Execution time of task `t` on host `h`, seconds.
    #[inline]
    pub fn task_time(&self, t: TaskId, h: usize) -> f64 {
        debug_assert!(h < self.hosts);
        self.dag.comp(t) / self.speeds[h]
    }

    /// Speed factor of host `h` relative to the DAG reference clock.
    #[inline]
    pub fn speed(&self, h: usize) -> f64 {
        debug_assert!(h < self.hosts);
        self.speeds[h]
    }

    /// All speed factors of this context as one flat slice (length
    /// [`hosts()`]), for branch-free min/argmin scans.
    ///
    /// [`hosts()`]: ExecutionContext::hosts
    #[inline]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds[..self.hosts]
    }

    /// Transfer time of an edge with reference cost `comm` seconds from
    /// host `from` to host `to` (0 when co-located).
    #[inline]
    pub fn comm_time(&self, comm: f64, from: usize, to: usize) -> f64 {
        comm * self.rc.comm_factor(from, to)
    }

    /// Earliest time the inputs of `t` are available on host `h`, given
    /// parent finish times and placements. Returns 0 for entry tasks.
    #[inline]
    pub fn data_ready(&self, t: TaskId, h: usize, finish: &[f64], host_of: &[u32]) -> f64 {
        let mut ready = 0.0f64;
        for e in self.dag.parents(t) {
            let p = e.task.index();
            let arr = finish[p] + self.comm_time(e.comm, host_of[p] as usize, h);
            if arr > ready {
                ready = arr;
            }
        }
        ready
    }

    /// Index of (one of) the fastest hosts.
    pub fn fastest_host(&self) -> usize {
        let mut best = 0usize;
        for h in 1..self.hosts {
            if self.speeds[h] > self.speeds[best] {
                best = h;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::DagBuilder;
    use rsg_platform::ResourceCollection;

    fn two_task_dag() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_task(15.0);
        let c = b.add_task(30.0);
        b.add_edge(a, c, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn task_time_scales_with_clock() {
        let dag = two_task_dag(); // ref clock 1500 MHz
        let rc = ResourceCollection::new(vec![1500.0, 3000.0], rsg_platform::CommModel::Uniform);
        let ctx = ExecutionContext::new(&dag, &rc);
        assert!((ctx.task_time(TaskId(0), 0) - 15.0).abs() < 1e-12);
        assert!((ctx.task_time(TaskId(0), 1) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn comm_time_zero_same_host() {
        let dag = two_task_dag();
        let rc = ResourceCollection::homogeneous(2, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        assert_eq!(ctx.comm_time(4.0, 1, 1), 0.0);
        assert!((ctx.comm_time(4.0, 0, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn data_ready_accounts_for_placement() {
        let dag = two_task_dag();
        let rc = ResourceCollection::homogeneous(2, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let finish = vec![15.0, 0.0];
        let host_of = vec![0u32, 0u32];
        // Child on same host as parent: data ready when parent ends.
        assert!((ctx.data_ready(TaskId(1), 0, &finish, &host_of) - 15.0).abs() < 1e-12);
        // Different host: + transfer.
        assert!((ctx.data_ready(TaskId(1), 1, &finish, &host_of) - 19.0).abs() < 1e-12);
        // Entry task: zero.
        assert_eq!(ctx.data_ready(TaskId(0), 1, &finish, &host_of), 0.0);
    }

    #[test]
    fn host_limit_matches_prefix_rc() {
        let dag = two_task_dag();
        let rc = ResourceCollection::heterogeneous(8, 3000.0, 0.4, 11);
        let prefix = rc.prefix(3);
        let limited = ExecutionContext::with_host_limit(&dag, &rc, 3);
        let direct = ExecutionContext::new(&dag, &prefix);
        assert_eq!(limited.hosts(), 3);
        for h in 0..3 {
            assert_eq!(limited.speed(h), direct.speed(h));
            assert_eq!(limited.clock_mhz(h), direct.clock_mhz(h));
            assert_eq!(
                limited.task_time(TaskId(0), h),
                direct.task_time(TaskId(0), h)
            );
        }
        assert_eq!(limited.comm_time(4.0, 0, 2), direct.comm_time(4.0, 0, 2));
        // Limit clamps to the RC size.
        assert_eq!(ExecutionContext::with_host_limit(&dag, &rc, 99).hosts(), 8);
        assert_eq!(ExecutionContext::with_host_limit(&dag, &rc, 0).hosts(), 1);
    }

    #[test]
    fn fastest_host_found() {
        let dag = two_task_dag();
        let rc = ResourceCollection::new(
            vec![1000.0, 3000.0, 2000.0],
            rsg_platform::CommModel::Uniform,
        );
        let ctx = ExecutionContext::new(&dag, &rc);
        assert_eq!(ctx.fastest_host(), 1);
    }
}
