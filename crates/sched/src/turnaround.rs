//! Application turn-around time accounting (Section III.2.3): the sum of
//! the scheduling-heuristic execution time and the application makespan,
//! plus — when explicit resource selection is used — the time spent by
//! the resource-selection system.

use crate::chaos::ChaosOutcome;
use crate::context::ExecutionContext;
use crate::heuristics::HeuristicKind;
use crate::schedule::Schedule;
use crate::timemodel::{OpCount, SchedTimeModel};
use rsg_dag::Dag;
use rsg_obs::{Counter, TimingHistogram};
use rsg_platform::ResourceCollection;
use std::time::Instant;

/// Recovery wall-clock charged per chaos run (modeled rescue time).
static OBS_RECOVERY_WALL: TimingHistogram = TimingHistogram::new("sched.chaos.recovery_wall");

/// Schedules produced through the optimized evaluation paths.
static OBS_SCHEDULES: Counter = Counter::new("sched.schedules_evaluated");
/// Task placements performed (one per task per schedule).
static OBS_PLACEMENTS: Counter = Counter::new("sched.placements");
/// Schedules produced through the reference implementations.
static OBS_SCHEDULES_REF: Counter = Counter::new("sched.schedules_reference");

/// The per-heuristic wall-clock histogram (one `static` per
/// [`HeuristicKind`], so the hot path stays allocation- and lock-free).
fn heuristic_wall(kind: HeuristicKind) -> &'static TimingHistogram {
    static MCP: TimingHistogram = TimingHistogram::new("sched.wall.mcp");
    static GREEDY: TimingHistogram = TimingHistogram::new("sched.wall.greedy");
    static DLS: TimingHistogram = TimingHistogram::new("sched.wall.dls");
    static FCA: TimingHistogram = TimingHistogram::new("sched.wall.fca");
    static FCFS: TimingHistogram = TimingHistogram::new("sched.wall.fcfs");
    match kind {
        HeuristicKind::Mcp => &MCP,
        HeuristicKind::Greedy => &GREEDY,
        HeuristicKind::Dls => &DLS,
        HeuristicKind::Fca => &FCA,
        HeuristicKind::Fcfs => &FCFS,
    }
}

/// Everything measured for one (DAG, RC, heuristic) evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TurnaroundReport {
    /// Heuristic evaluated.
    pub heuristic: HeuristicKind,
    /// RC size used.
    pub rc_size: usize,
    /// Modeled scheduling time, seconds (op-count model).
    pub sched_time_s: f64,
    /// Application makespan, seconds.
    pub makespan_s: f64,
    /// Resource-selection time, seconds (0 for implicit selection).
    pub selection_time_s: f64,
    /// Wall-clock actually spent running the heuristic here, seconds.
    pub wallclock_s: f64,
    /// Raw operation count.
    pub ops: OpCount,
}

impl TurnaroundReport {
    /// The figure of merit: scheduling time + makespan + selection time.
    pub fn turnaround_s(&self) -> f64 {
        self.sched_time_s + self.makespan_s + self.selection_time_s
    }
}

/// Turn-around accounting under faults: the fault-free report plus the
/// chaos-replayed makespan and the modeled cost of the rescue
/// rescheduler's re-ranking work.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The fault-free evaluation this run degrades from.
    pub baseline: TurnaroundReport,
    /// Makespan of the fault-injected, rescued timeline, seconds.
    pub chaos_makespan_s: f64,
    /// Modeled time spent re-ranking orphans onto survivors, seconds
    /// (rescue ops through the same [`SchedTimeModel`] as scheduling).
    pub rescue_time_s: f64,
    /// Partial execution discarded when in-flight tasks were killed,
    /// seconds.
    pub work_lost_s: f64,
    /// Fault/recovery counters of the run.
    pub stats: crate::chaos::ChaosStats,
}

impl ResilienceReport {
    /// The robustness figure of merit:
    /// `selection + scheduling + chaos makespan + rescue time`.
    pub fn resilient_turnaround_s(&self) -> f64 {
        self.baseline.sched_time_s
            + self.baseline.selection_time_s
            + self.chaos_makespan_s
            + self.rescue_time_s
    }

    /// Recovery overhead: how much the faults cost beyond the
    /// fault-free turnaround (makespan growth + rescue ranking time).
    /// Exactly zero for a zero-fault run.
    pub fn recovery_overhead_s(&self) -> f64 {
        self.chaos_makespan_s - self.baseline.makespan_s + self.rescue_time_s
    }
}

/// Combines a fault-free [`TurnaroundReport`] with a
/// [`ChaosOutcome`] into the resilient turn-around accounting, pricing
/// the rescue rescheduler's ranking work through `model` and recording
/// the recovery wall in the `sched.chaos.recovery_wall` histogram.
pub fn resilient_turnaround(
    baseline: &TurnaroundReport,
    outcome: &ChaosOutcome,
    model: &SchedTimeModel,
) -> ResilienceReport {
    let rescue_time_s = model.seconds(OpCount(outcome.stats.rescue_ops));
    let report = ResilienceReport {
        baseline: baseline.clone(),
        chaos_makespan_s: outcome.makespan,
        rescue_time_s,
        work_lost_s: outcome.work_lost_s,
        stats: outcome.stats,
    };
    if rsg_obs::enabled() {
        OBS_RECOVERY_WALL.record_secs(report.recovery_overhead_s().max(0.0));
    }
    report
}

/// Runs `heuristic` on `(dag, rc)` and assembles the report. The
/// schedule itself is discarded; use [`evaluate_with_schedule`] to keep
/// it.
pub fn evaluate(
    dag: &Dag,
    rc: &ResourceCollection,
    heuristic: HeuristicKind,
    model: &SchedTimeModel,
) -> TurnaroundReport {
    evaluate_with_schedule(dag, rc, heuristic, model).0
}

/// Evaluates `heuristic` on the first `size` hosts of `rc` — equivalent
/// to `evaluate(dag, &rc.prefix(size), …)` but without materializing
/// the prefix RC. The workhorse of turnaround-vs-size sweeps: one
/// max-size RC is built per host family and every size borrows a prefix
/// view of it.
pub fn evaluate_prefix(
    dag: &Dag,
    rc: &ResourceCollection,
    size: usize,
    heuristic: HeuristicKind,
    model: &SchedTimeModel,
) -> TurnaroundReport {
    let ctx = ExecutionContext::with_host_limit(dag, rc, size);
    evaluate_ctx(&ctx, heuristic, model).0
}

/// Like [`evaluate`] but also returns the schedule.
pub fn evaluate_with_schedule(
    dag: &Dag,
    rc: &ResourceCollection,
    heuristic: HeuristicKind,
    model: &SchedTimeModel,
) -> (TurnaroundReport, Schedule) {
    let ctx = ExecutionContext::new(dag, rc);
    evaluate_ctx(&ctx, heuristic, model)
}

/// Like [`evaluate`], but through the reference (fast-kernel-free)
/// heuristic implementations — the before-optimization baseline of the
/// sweep benchmark. The report is identical except for `wallclock_s`.
pub fn evaluate_reference(
    dag: &Dag,
    rc: &ResourceCollection,
    heuristic: HeuristicKind,
    model: &SchedTimeModel,
) -> TurnaroundReport {
    let ctx = ExecutionContext::new(dag, rc);
    let t0 = Instant::now();
    let (sched, ops) = heuristic.run_reference(&ctx);
    let wallclock_s = t0.elapsed().as_secs_f64();
    OBS_SCHEDULES_REF.incr();
    heuristic_wall(heuristic).record_secs(wallclock_s);
    TurnaroundReport {
        heuristic,
        rc_size: ctx.hosts(),
        sched_time_s: model.seconds(ops),
        makespan_s: sched.makespan(),
        selection_time_s: 0.0,
        wallclock_s,
        ops,
    }
}

fn evaluate_ctx(
    ctx: &ExecutionContext<'_>,
    heuristic: HeuristicKind,
    model: &SchedTimeModel,
) -> (TurnaroundReport, Schedule) {
    let t0 = Instant::now();
    let (sched, ops) = heuristic.run(ctx);
    let wallclock_s = t0.elapsed().as_secs_f64();
    OBS_SCHEDULES.incr();
    OBS_PLACEMENTS.add(ctx.dag.len() as u64);
    heuristic_wall(heuristic).record_secs(wallclock_s);
    debug_assert!(
        sched.validate(ctx).is_ok(),
        "heuristic produced invalid schedule"
    );
    let report = TurnaroundReport {
        heuristic,
        rc_size: ctx.hosts(),
        sched_time_s: model.seconds(ops),
        makespan_s: sched.makespan(),
        selection_time_s: 0.0,
        wallclock_s,
        ops,
    };
    (report, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;

    #[test]
    fn turnaround_sums_components() {
        let r = TurnaroundReport {
            heuristic: HeuristicKind::Mcp,
            rc_size: 4,
            sched_time_s: 1.5,
            makespan_s: 10.0,
            selection_time_s: 0.5,
            wallclock_s: 0.0,
            ops: OpCount(100),
        };
        assert!((r.turnaround_s() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_reports_consistent_numbers() {
        let dag = RandomDagSpec {
            size: 100,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(1);
        let rc = ResourceCollection::homogeneous(8, 1500.0);
        let model = SchedTimeModel::default();
        let (r, s) = evaluate_with_schedule(&dag, &rc, HeuristicKind::Mcp, &model);
        assert_eq!(r.rc_size, 8);
        assert!((r.makespan_s - s.makespan()).abs() < 1e-12);
        assert!(r.sched_time_s > 0.0);
        assert_eq!(r.sched_time_s, model.seconds(r.ops));
    }

    #[test]
    fn resilient_turnaround_prices_recovery() {
        let dag = RandomDagSpec {
            size: 60,
            ccr: 0.4,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(5);
        let rc = ResourceCollection::heterogeneous(6, 3000.0, 0.3, 5);
        let model = SchedTimeModel::default();
        let (baseline, sched) = evaluate_with_schedule(&dag, &rc, HeuristicKind::Mcp, &model);

        // Zero-fault chaos run: overhead is exactly zero and the
        // resilient turnaround equals the plain turnaround.
        let clean = crate::chaos::execute_with_faults(
            &dag,
            &rc,
            &sched,
            &crate::fault::FaultPlan::empty(),
            &crate::simulator::Perturbation::none(),
        )
        .unwrap();
        let r0 = resilient_turnaround(&baseline, &clean, &model);
        assert_eq!(r0.rescue_time_s, 0.0);
        assert_eq!(r0.recovery_overhead_s(), 0.0);
        assert_eq!(r0.resilient_turnaround_s(), baseline.turnaround_s());

        // A crash makes recovery cost strictly positive.
        let plan = crate::fault::FaultPlan::new(vec![crate::fault::FaultEvent::Crash {
            host: sched.host[0] as usize,
            at_s: sched.makespan() * 0.25,
        }])
        .unwrap();
        let hit = crate::chaos::execute_with_faults(
            &dag,
            &rc,
            &sched,
            &plan,
            &crate::simulator::Perturbation::none(),
        )
        .unwrap();
        let r1 = resilient_turnaround(&baseline, &hit, &model);
        assert!(r1.rescue_time_s > 0.0);
        assert!(r1.resilient_turnaround_s() > baseline.turnaround_s());
    }

    #[test]
    fn prefix_evaluation_matches_materialized_prefix() {
        let dag = RandomDagSpec {
            size: 120,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(3);
        let model = SchedTimeModel::default();
        let rc = ResourceCollection::heterogeneous(64, 3000.0, 0.3, 9)
            .with_bandwidth_heterogeneity(0.4, 13);
        for kind in HeuristicKind::all() {
            for size in [1usize, 5, 23, 64] {
                let via_prefix = evaluate_prefix(&dag, &rc, size, kind, &model);
                let materialized = evaluate(&dag, &rc.prefix(size), kind, &model);
                assert_eq!(via_prefix.rc_size, materialized.rc_size);
                assert_eq!(via_prefix.ops, materialized.ops, "{kind} P={size}");
                assert_eq!(
                    via_prefix.makespan_s, materialized.makespan_s,
                    "{kind} P={size}"
                );
                assert_eq!(via_prefix.sched_time_s, materialized.sched_time_s);
            }
        }
    }

    #[test]
    fn bigger_rc_costs_more_scheduling_for_mcp() {
        let dag = RandomDagSpec {
            size: 200,
            ccr: 0.1,
            parallelism: 0.7,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(2);
        let model = SchedTimeModel::default();
        let small = evaluate(
            &dag,
            &ResourceCollection::homogeneous(10, 1500.0),
            HeuristicKind::Mcp,
            &model,
        );
        let big = evaluate(
            &dag,
            &ResourceCollection::homogeneous(200, 1500.0),
            HeuristicKind::Mcp,
            &model,
        );
        assert!(big.sched_time_s > small.sched_time_s * 5.0);
        // ... while the makespan should not get worse.
        assert!(big.makespan_s <= small.makespan_s + 1e-9);
    }
}
