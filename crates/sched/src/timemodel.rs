//! The scheduling-time model.
//!
//! The paper measures the wall-clock execution time of each heuristic on
//! a 2.80 GHz Xeon and folds it into the turn-around time; its knee
//! phenomenon (Chapter V) exists *because* scheduling time grows
//! polynomially with the RC size. Re-measuring wall-clock here would tie
//! every experiment to this machine and to Rust's constant factors, so
//! the default is a deterministic model: heuristics count their
//! elementary operations (task–host placement evaluations, priority
//! computations, heap operations) and [`SchedTimeModel`] converts the
//! count to seconds at a configurable scheduler clock. The per-op cost
//! is calibrated so that MCP over the 33,667-host universe costs tens of
//! minutes, matching the regime of Figure IV-5 (see DESIGN.md,
//! substitution 2).

/// Count of elementary scheduling operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount(pub u64);

impl OpCount {
    /// Adds `n` operations.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
}

impl std::ops::AddAssign<u64> for OpCount {
    #[inline]
    fn add_assign(&mut self, n: u64) {
        self.0 += n;
    }
}

/// Converts operation counts into scheduling seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedTimeModel {
    /// Seconds per elementary operation at the reference scheduler
    /// clock (2.80 GHz).
    pub sec_per_op: f64,
    /// Clock rate of the machine running the scheduler, MHz. Scaling
    /// this is exactly the paper's SCR experiment (Section V.7).
    pub scheduler_clock_mhz: f64,
}

impl Default for SchedTimeModel {
    fn default() -> Self {
        SchedTimeModel {
            // ~2 µs per task-host placement evaluation at 2.80 GHz: a
            // few thousand machine cycles per evaluation including data
            // structure and memory traffic, calibrated against the
            // Figure IV-5 regime (MCP over 33,667 hosts ≈ tens of
            // minutes of scheduling for a 4469-task DAG).
            sec_per_op: 2.0e-6,
            scheduler_clock_mhz: crate::SCHEDULER_CLOCK_MHZ,
        }
    }
}

impl SchedTimeModel {
    /// A model with the default per-op cost on a scheduler of the given
    /// clock rate.
    pub fn with_scheduler_clock(mhz: f64) -> SchedTimeModel {
        SchedTimeModel {
            scheduler_clock_mhz: mhz,
            ..Default::default()
        }
    }

    /// Scheduling seconds for `ops` operations.
    pub fn seconds(&self, ops: OpCount) -> f64 {
        ops.0 as f64 * self.sec_per_op * (crate::SCHEDULER_CLOCK_MHZ / self.scheduler_clock_mhz)
    }

    /// The paper's SCR — scheduling-to-computation clock-rate ratio
    /// (Section V.7) — relative to the 2.80 GHz reference scheduler and
    /// a compute-host clock in MHz.
    pub fn scr(&self, compute_clock_mhz: f64) -> f64 {
        self.scheduler_clock_mhz / compute_clock_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_scale_linearly_with_ops() {
        let m = SchedTimeModel::default();
        let a = m.seconds(OpCount(1_000));
        let b = m.seconds(OpCount(2_000));
        assert!((b - 2.0 * a).abs() < 1e-15);
    }

    #[test]
    fn faster_scheduler_is_faster() {
        let slow = SchedTimeModel::with_scheduler_clock(1400.0);
        let fast = SchedTimeModel::with_scheduler_clock(5600.0);
        let ops = OpCount(1_000_000);
        assert!(slow.seconds(ops) > fast.seconds(ops));
        // 2x reference clock halves the time.
        let double = SchedTimeModel::with_scheduler_clock(5600.0);
        let reference = SchedTimeModel::default();
        assert!((reference.seconds(ops) / double.seconds(ops) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_calibration_regime() {
        // MCP over the universe: (V + E)·P ≈ (4469 + 13000) × 33667
        // placement evaluations ≈ 5.9e8 ops → should land in the
        // tens-of-minutes regime (Figure IV-5).
        let m = SchedTimeModel::default();
        let secs = m.seconds(OpCount(588_000_000));
        assert!(
            (600.0..7200.0).contains(&secs),
            "universe MCP scheduling time {secs} s should be tens of minutes"
        );
    }

    #[test]
    fn scr_ratio() {
        let m = SchedTimeModel::default();
        assert!((m.scr(2800.0) - 1.0).abs() < 1e-12);
        assert!((m.scr(1400.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn opcount_add() {
        let mut c = OpCount::default();
        c += 5;
        c.add(7);
        assert_eq!(c, OpCount(12));
    }
}
