//! # rsg-sched — DAG scheduling heuristics and turn-around accounting
//!
//! Implements the application-scheduling layer of the paper (Sections
//! III.3, IV.2.3, V.6): list-scheduling heuristics that map DAG tasks
//! onto a [`ResourceCollection`](rsg_platform::ResourceCollection),
//! producing a [`Schedule`] whose makespan — combined with a model of
//! the *scheduling time* itself — yields the paper's figure of merit,
//! the **application turn-around time**:
//!
//! ```text
//! turnaround = scheduling time + makespan (+ resource-selection time)
//! ```
//!
//! Heuristics (Figures IV-2/IV-3, V-12…V-15):
//!
//! * [`Mcp`](heuristics::Mcp) — Modified Critical Path, the reference
//!   "complex" heuristic: ALAP-ordered tasks, each placed on the host
//!   that finishes it soonest.
//! * [`Greedy`](heuristics::Greedy) — the "simple" heuristic: ready
//!   tasks FIFO, earliest-available host, no communication awareness.
//! * [`Dls`](heuristics::Dls) — Dynamic Level Scheduling (Sih & Lee),
//!   the most expensive heuristic: global (task, host) dynamic-level
//!   maximization.
//! * [`Fca`](heuristics::Fca) — fastest-clock assignment (reconstructed
//!   from the dissertation's description; see DESIGN.md): critical-path
//!   priority, fastest available host, communication ignored.
//! * [`Fcfs`](heuristics::Fcfs) — first-come-first-serve on the earliest
//!   available host.
//!
//! Scheduling time is modeled deterministically by counting each
//! heuristic's elementary operations and converting them to seconds at a
//! reference scheduler clock of 2.80 GHz ([`SchedTimeModel`]), exactly
//! the knob the paper turns in its SCR study (Section V.7). Measured
//! wall-clock is also recorded.
//!
//! The [`fault`] and [`chaos`] modules add the robustness layer: seeded
//! host-churn plans (crashes, outages, joins) injected into the replay
//! engine, with a rescue rescheduler that re-places lost work on
//! survivors and reports a *resilient* turn-around time
//! ([`turnaround::resilient_turnaround`]).

#![warn(missing_docs)]

pub mod bounds;
pub mod chaos;
pub mod context;
pub mod fault;
pub mod heuristics;
pub mod schedule;
pub mod simulator;
pub mod timemodel;
pub mod turnaround;

pub use bounds::makespan_lower_bound;
pub use chaos::{execute_with_faults, ChaosError, ChaosOutcome, ChaosStats};
pub use context::ExecutionContext;
pub use fault::{FaultError, FaultEvent, FaultPlan, FaultPlanSpec};
pub use heuristics::{Heuristic, HeuristicKind};
pub use schedule::{Schedule, ScheduleError};
pub use simulator::{makespan_stretch, replay, try_replay, Perturbation, PerturbationError};
pub use timemodel::{OpCount, SchedTimeModel};
pub use turnaround::{
    evaluate, evaluate_prefix, evaluate_reference, evaluate_with_schedule, resilient_turnaround,
    ResilienceReport, TurnaroundReport,
};

/// Reference scheduler clock (MHz): the paper runs heuristics on
/// 2.80 GHz Intel Xeon machines (Section III.4.2).
pub const SCHEDULER_CLOCK_MHZ: f64 = 2800.0;
