//! Discrete-event replay of a schedule, with perturbation injection.
//!
//! The list schedulers compute start/finish times analytically under
//! the Section III model. This module *replays* a schedule's placement
//! decisions (host assignment + per-host task order) through an
//! event-driven engine, which serves two purposes:
//!
//! 1. **Cross-validation** — an independent executable semantics: on an
//!    unperturbed run the replayed timeline must reproduce the
//!    heuristic's analytic times exactly (tested to 1e-9).
//! 2. **Robustness analysis** — the engine accepts *perturbations*
//!    (host slowdowns from time `t`, à la the resource overload the
//!    paper's monitoring section worries about, and transfer slowdowns)
//!    and reports how the makespan stretches when the static schedule
//!    meets a degraded platform — the operational risk the vgMON
//!    monitor of Section II.4.1 exists to detect.
//!
//! Replay keeps the *decisions* (assignment and per-host order) fixed
//! and recomputes the *times*; tasks still wait for their inputs, so
//! the replayed timeline is always causally consistent.

use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use rsg_dag::TaskId;
use rsg_obs::{Counter, TimingHistogram};
use std::fmt;

/// Schedule replays performed by the simulator.
static OBS_REPLAYS: Counter = Counter::new("sched.sim.replays");
/// Wall-clock of each replay.
static OBS_REPLAY_WALL: TimingHistogram = TimingHistogram::new("sched.sim.replay_wall");

/// A host slowdown active from `from_s` onward: the host executes at
/// `factor` times its nominal speed (factor 0.25 = four times slower;
/// factor 0 is rejected by [`Perturbation::validate`] — full host
/// failure is a [`crate::fault::FaultEvent`], not a slowdown).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSlowdown {
    /// Host index.
    pub host: usize,
    /// Time the degradation starts, seconds.
    pub from_s: f64,
    /// Speed multiplier in `(0, 1]`.
    pub factor: f64,
}

/// Perturbations applied during replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Perturbation {
    /// Host slowdowns (at most one per host is honoured; the first
    /// listed wins).
    pub host_slowdowns: Vec<HostSlowdown>,
    /// Global multiplier on every inter-host transfer (≥ 1; contention).
    pub comm_stretch: f64,
}

impl Perturbation {
    /// No perturbation.
    pub fn none() -> Perturbation {
        Perturbation {
            host_slowdowns: Vec::new(),
            comm_stretch: 1.0,
        }
    }

    /// Checks every slowdown factor is finite and strictly positive,
    /// every activation time is finite, and the comm stretch is finite.
    /// A zero or negative factor would stall the timeline; a NaN
    /// anywhere silently poisons every downstream start/finish time —
    /// both now surface as typed errors instead.
    pub fn validate(&self) -> Result<(), PerturbationError> {
        for s in &self.host_slowdowns {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(PerturbationError::BadSlowdownFactor {
                    host: s.host,
                    factor: s.factor,
                });
            }
            if !s.from_s.is_finite() {
                return Err(PerturbationError::NonFiniteSlowdownStart {
                    host: s.host,
                    from_s: s.from_s,
                });
            }
        }
        if !self.comm_stretch.is_finite() {
            return Err(PerturbationError::BadCommStretch(self.comm_stretch));
        }
        Ok(())
    }

    pub(crate) fn slowdown_for(&self, host: usize) -> Option<HostSlowdown> {
        self.host_slowdowns.iter().copied().find(|s| s.host == host)
    }

    pub(crate) fn comm_factor(&self) -> f64 {
        if self.comm_stretch < 1.0 {
            1.0
        } else {
            self.comm_stretch
        }
    }
}

/// Validation errors for a [`Perturbation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerturbationError {
    /// A slowdown factor outside `(0, ∞)` (zero stalls the host
    /// forever; negative/NaN produces nonsense durations).
    BadSlowdownFactor {
        /// Host the slowdown targets.
        host: usize,
        /// The rejected factor.
        factor: f64,
    },
    /// A slowdown activation time that is NaN or infinite.
    NonFiniteSlowdownStart {
        /// Host the slowdown targets.
        host: usize,
        /// The rejected activation time.
        from_s: f64,
    },
    /// A comm stretch that is NaN or infinite.
    BadCommStretch(f64),
}

impl fmt::Display for PerturbationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerturbationError::BadSlowdownFactor { host, factor } => {
                write!(
                    f,
                    "slowdown factor {factor} for host {host} is not in (0, inf)"
                )
            }
            PerturbationError::NonFiniteSlowdownStart { host, from_s } => {
                write!(f, "slowdown start {from_s} for host {host} is not finite")
            }
            PerturbationError::BadCommStretch(c) => {
                write!(f, "comm stretch {c} is not finite")
            }
        }
    }
}

impl std::error::Error for PerturbationError {}

/// Result of a replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Replayed start times.
    pub start: Vec<f64>,
    /// Replayed finish times.
    pub finish: Vec<f64>,
    /// Replayed makespan.
    pub makespan: f64,
}

/// Execution duration of a task on a host under a slowdown: the work is
/// `nominal` seconds at full speed; any part executed after `from_s`
/// proceeds at `factor` speed.
pub(crate) fn perturbed_duration(start: f64, nominal: f64, slow: Option<HostSlowdown>) -> f64 {
    match slow {
        None => nominal,
        Some(s) => {
            assert!(s.factor > 0.0, "use a positive slowdown factor");
            if start >= s.from_s {
                nominal / s.factor
            } else {
                let fast_window = s.from_s - start;
                if nominal <= fast_window {
                    nominal
                } else {
                    fast_window + (nominal - fast_window) / s.factor
                }
            }
        }
    }
}

/// Replays `schedule` on `ctx` under `perturbation`, keeping host
/// assignment and per-host task order fixed.
///
/// # Panics
/// On an invalid perturbation (see [`Perturbation::validate`]); use
/// [`try_replay`] for a fallible variant.
pub fn replay(
    ctx: &ExecutionContext<'_>,
    schedule: &Schedule,
    perturbation: &Perturbation,
) -> ReplayOutcome {
    try_replay(ctx, schedule, perturbation).unwrap_or_else(|e| panic!("invalid perturbation: {e}"))
}

/// Fallible [`replay`]: validates the perturbation first and returns a
/// typed error instead of producing NaN or stalled timelines.
pub fn try_replay(
    ctx: &ExecutionContext<'_>,
    schedule: &Schedule,
    perturbation: &Perturbation,
) -> Result<ReplayOutcome, PerturbationError> {
    perturbation.validate()?;
    let t0 = rsg_obs::enabled().then(std::time::Instant::now);
    let dag = ctx.dag;
    let n = dag.len();
    assert_eq!(schedule.host.len(), n, "schedule must cover the DAG");

    // Per-host execution order: by original start time.
    let mut per_host: Vec<Vec<usize>> = vec![Vec::new(); ctx.hosts()];
    for i in 0..n {
        per_host[schedule.host[i] as usize].push(i);
    }
    for tasks in &mut per_host {
        tasks.sort_by(|&a, &b| {
            schedule.start[a]
                .total_cmp(&schedule.start[b])
                .then(a.cmp(&b))
        });
    }

    // Event-driven sweep: a task runs when (a) it is next in its host's
    // order, (b) the host is free, (c) its inputs have arrived.
    let mut start = vec![f64::NAN; n];
    let mut finish = vec![f64::NAN; n];
    let mut host_ready = vec![0.0f64; ctx.hosts()];
    let mut next_slot = vec![0usize; ctx.hosts()];
    let mut done = vec![false; n];
    let comm_stretch = perturbation.comm_factor();

    let mut completed = 0usize;
    while completed < n {
        // Find the runnable (host, task) with the earliest feasible
        // start; tie-break by host index for determinism.
        let mut best: Option<(f64, usize, usize)> = None; // (start, host, task)
        for h in 0..ctx.hosts() {
            let Some(&i) = per_host[h].get(next_slot[h]) else {
                continue;
            };
            let t = TaskId(i as u32);
            // Inputs ready?
            let mut data_ready = 0.0f64;
            let mut inputs_done = true;
            for e in dag.parents(t) {
                let p = e.task.index();
                if !done[p] {
                    inputs_done = false;
                    break;
                }
                let from = schedule.host[p] as usize;
                let base = ctx.comm_time(e.comm, from, h);
                let arr = finish[p] + if from == h { 0.0 } else { base * comm_stretch };
                data_ready = data_ready.max(arr);
            }
            if !inputs_done {
                continue;
            }
            let s = host_ready[h].max(data_ready);
            if best.is_none() || s < best.unwrap().0 {
                best = Some((s, h, i));
            }
        }
        let (s, h, i) = best.expect("replay must always make progress on a valid schedule");
        let t = TaskId(i as u32);
        let dur = perturbed_duration(s, ctx.task_time(t, h), perturbation.slowdown_for(h));
        start[i] = s;
        finish[i] = s + dur;
        host_ready[h] = finish[i];
        next_slot[h] += 1;
        done[i] = true;
        completed += 1;
    }

    let makespan = finish.iter().copied().fold(0.0f64, f64::max)
        - start.iter().copied().fold(f64::INFINITY, f64::min).max(0.0);
    if let Some(t0) = t0 {
        OBS_REPLAYS.incr();
        OBS_REPLAY_WALL.record(t0.elapsed());
    }
    Ok(ReplayOutcome {
        start,
        finish,
        makespan,
    })
}

/// Robustness of a schedule: makespan stretch factor under the
/// perturbation (1.0 = unaffected).
pub fn makespan_stretch(
    ctx: &ExecutionContext<'_>,
    schedule: &Schedule,
    perturbation: &Perturbation,
) -> f64 {
    let base = replay(ctx, schedule, &Perturbation::none()).makespan;
    let hit = replay(ctx, schedule, perturbation).makespan;
    hit / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::HeuristicKind;
    use rsg_dag::RandomDagSpec;
    use rsg_platform::ResourceCollection;

    fn fixture(seed: u64) -> (rsg_dag::Dag, ResourceCollection) {
        let dag = RandomDagSpec {
            size: 80,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(seed);
        let rc = ResourceCollection::heterogeneous(8, 3000.0, 0.3, seed);
        (dag, rc)
    }

    #[test]
    fn unperturbed_replay_reproduces_analytic_times() {
        for seed in 0..4 {
            let (dag, rc) = fixture(seed);
            let ctx = ExecutionContext::new(&dag, &rc);
            for kind in HeuristicKind::all() {
                let (s, _) = kind.run(&ctx);
                let r = replay(&ctx, &s, &Perturbation::none());
                for i in 0..dag.len() {
                    assert!(
                        (r.start[i] - s.start[i]).abs() < 1e-9,
                        "{kind} seed {seed} task {i}: replay start {} vs analytic {}",
                        r.start[i],
                        s.start[i]
                    );
                    assert!((r.finish[i] - s.finish[i]).abs() < 1e-9);
                }
                assert!((r.makespan - s.makespan()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn slowdown_stretches_makespan() {
        let (dag, rc) = fixture(7);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let p = Perturbation {
            host_slowdowns: vec![HostSlowdown {
                host: s.host[0] as usize,
                from_s: 0.0,
                factor: 0.25,
            }],
            comm_stretch: 1.0,
        };
        let stretch = makespan_stretch(&ctx, &s, &p);
        assert!(stretch > 1.0, "stretch {stretch}");
        // Replay stays causally consistent.
        let r = replay(&ctx, &s, &p);
        for t in dag.tasks() {
            for e in dag.parents(t) {
                assert!(
                    r.start[t.index()] + 1e-9 >= r.finish[e.task.index()],
                    "child before parent under perturbation"
                );
            }
        }
    }

    #[test]
    fn comm_stretch_hurts_cross_host_edges_only() {
        // One-host schedule is immune to communication contention.
        let (dag, _) = fixture(9);
        let rc1 = ResourceCollection::homogeneous(1, 3000.0);
        let ctx = ExecutionContext::new(&dag, &rc1);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let p = Perturbation {
            host_slowdowns: vec![],
            comm_stretch: 10.0,
        };
        assert!((makespan_stretch(&ctx, &s, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_degenerate_slowdowns() {
        let bad = |factor: f64, from_s: f64| Perturbation {
            host_slowdowns: vec![HostSlowdown {
                host: 3,
                from_s,
                factor,
            }],
            comm_stretch: 1.0,
        };
        assert_eq!(
            bad(0.0, 0.0).validate(),
            Err(PerturbationError::BadSlowdownFactor {
                host: 3,
                factor: 0.0
            })
        );
        assert!(matches!(
            bad(-0.5, 0.0).validate(),
            Err(PerturbationError::BadSlowdownFactor { host: 3, .. })
        ));
        assert!(matches!(
            bad(f64::NAN, 0.0).validate(),
            Err(PerturbationError::BadSlowdownFactor { host: 3, .. })
        ));
        assert!(matches!(
            bad(f64::INFINITY, 0.0).validate(),
            Err(PerturbationError::BadSlowdownFactor { host: 3, .. })
        ));
        assert!(matches!(
            bad(0.5, f64::NAN).validate(),
            Err(PerturbationError::NonFiniteSlowdownStart { host: 3, .. })
        ));
        assert!(matches!(
            Perturbation {
                host_slowdowns: vec![],
                comm_stretch: f64::NAN,
            }
            .validate(),
            Err(PerturbationError::BadCommStretch(_))
        ));
        assert_eq!(bad(0.5, 0.0).validate(), Ok(()));
        // The derived Default (comm_stretch 0) stays valid: replay
        // clamps sub-unit stretches to 1.
        assert_eq!(Perturbation::default().validate(), Ok(()));
    }

    #[test]
    fn try_replay_surfaces_validation_errors() {
        let (dag, rc) = fixture(3);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let p = Perturbation {
            host_slowdowns: vec![HostSlowdown {
                host: 0,
                from_s: 0.0,
                factor: 0.0,
            }],
            comm_stretch: 1.0,
        };
        assert!(matches!(
            try_replay(&ctx, &s, &p),
            Err(PerturbationError::BadSlowdownFactor { .. })
        ));
        let ok = try_replay(&ctx, &s, &Perturbation::none()).unwrap();
        assert_eq!(ok, replay(&ctx, &s, &Perturbation::none()));
    }

    #[test]
    fn perturbed_duration_piecewise() {
        let slow = Some(HostSlowdown {
            host: 0,
            from_s: 10.0,
            factor: 0.5,
        });
        // Entirely before the slowdown.
        assert_eq!(perturbed_duration(0.0, 5.0, slow), 5.0);
        // Entirely after: doubled.
        assert_eq!(perturbed_duration(20.0, 5.0, slow), 10.0);
        // Straddling: 5 s fast + 5 s of work at half speed = 5 + 10.
        assert_eq!(perturbed_duration(5.0, 10.0, slow), 15.0);
        // No slowdown.
        assert_eq!(perturbed_duration(0.0, 7.0, None), 7.0);
    }

    #[test]
    fn late_slowdown_spares_early_tasks() {
        let (dag, rc) = fixture(11);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let horizon = s.makespan();
        let p_late = Perturbation {
            host_slowdowns: vec![HostSlowdown {
                host: 0,
                from_s: horizon * 2.0, // after everything finished
                factor: 0.1,
            }],
            comm_stretch: 1.0,
        };
        assert!((makespan_stretch(&ctx, &s, &p_late) - 1.0).abs() < 1e-9);
        let p_early = Perturbation {
            host_slowdowns: vec![HostSlowdown {
                host: 0,
                from_s: 0.0,
                factor: 0.1,
            }],
            comm_stretch: 1.0,
        };
        assert!(makespan_stretch(&ctx, &s, &p_early) >= 1.0);
    }
}
