//! Fault model: host churn during execution (Section II.4.1).
//!
//! The paper's monitoring section (vgMON) exists because real LSDEs
//! lose hosts mid-run — and gain them. This module gives the chaos
//! engine ([`crate::chaos`]) a first-class, validated description of
//! that churn:
//!
//! * [`FaultEvent::Crash`] — a host fails permanently at time `t`; any
//!   task running on it is lost and must rerun elsewhere.
//! * [`FaultEvent::Outage`] — a host is unavailable for `[from, until)`
//!   (reboot, network partition); the in-flight task is lost, but the
//!   host rejoins afterwards.
//! * [`FaultEvent::Join`] — a fresh host appears at time `t` and
//!   becomes eligible for rescue placements.
//!
//! Plans are either hand-built ([`FaultPlan::new`], which validates and
//! time-sorts the events) or drawn deterministically from a seeded
//! [`FaultPlanSpec`], so every chaos experiment is reproducible from
//! `(spec, seed)` alone. Host 0 is treated as the reliable *home node*:
//! the generator never crashes it or takes it down, guaranteeing the
//! rescue rescheduler always has at least one survivor to fall back to.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One scheduled change in host availability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Host `host` fails permanently at `at_s`.
    Crash {
        /// Index of the failing host (into the *base* RC).
        host: usize,
        /// Failure time, seconds.
        at_s: f64,
    },
    /// Host `host` is down for `[from_s, until_s)`, then recovers.
    Outage {
        /// Index of the affected host (into the *base* RC).
        host: usize,
        /// Outage start, seconds.
        from_s: f64,
        /// Outage end (exclusive), seconds; must exceed `from_s`.
        until_s: f64,
    },
    /// A new host at `clock_mhz` joins the collection at `at_s`.
    Join {
        /// Clock rate of the joining host, MHz.
        clock_mhz: f64,
        /// Join time, seconds.
        at_s: f64,
    },
}

impl FaultEvent {
    /// The time the event takes effect.
    pub fn time_s(&self) -> f64 {
        match *self {
            FaultEvent::Crash { at_s, .. } => at_s,
            FaultEvent::Outage { from_s, .. } => from_s,
            FaultEvent::Join { at_s, .. } => at_s,
        }
    }

    /// Deterministic ordering rank for same-time events: crashes before
    /// outages before joins, then by host index.
    fn sort_key(&self) -> (f64, u8, usize) {
        match *self {
            FaultEvent::Crash { host, at_s } => (at_s, 0, host),
            FaultEvent::Outage { host, from_s, .. } => (from_s, 1, host),
            FaultEvent::Join { at_s, .. } => (at_s, 2, usize::MAX),
        }
    }

    fn validate(&self) -> Result<(), FaultError> {
        let check_time = |t: f64| -> Result<(), FaultError> {
            if !t.is_finite() {
                return Err(FaultError::NonFiniteTime(t));
            }
            if t < 0.0 {
                return Err(FaultError::NegativeTime(t));
            }
            Ok(())
        };
        match *self {
            FaultEvent::Crash { at_s, .. } => check_time(at_s),
            FaultEvent::Outage {
                from_s, until_s, ..
            } => {
                check_time(from_s)?;
                check_time(until_s)?;
                if until_s <= from_s {
                    return Err(FaultError::EmptyOutage { from_s, until_s });
                }
                Ok(())
            }
            FaultEvent::Join { clock_mhz, at_s } => {
                check_time(at_s)?;
                if !clock_mhz.is_finite() || clock_mhz <= 0.0 {
                    return Err(FaultError::BadClock(clock_mhz));
                }
                Ok(())
            }
        }
    }
}

/// A validated, time-ordered sequence of fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults: chaos execution degenerates to plain
    /// replay (tested bit-identical).
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// Validates and time-sorts `events` into a plan. Rejects
    /// non-finite or negative times, empty outage windows, non-positive
    /// join clocks, and duplicate crashes of one host.
    pub fn new(events: Vec<FaultEvent>) -> Result<FaultPlan, FaultError> {
        for e in &events {
            e.validate()?;
        }
        let mut crashed: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { host, .. } => Some(*host),
                _ => None,
            })
            .collect();
        crashed.sort_unstable();
        for w in crashed.windows(2) {
            if w[0] == w[1] {
                return Err(FaultError::DuplicateCrash { host: w[0] });
            }
        }
        let mut events = events;
        events.sort_by(|a, b| {
            let (ta, ka, ha) = a.sort_key();
            let (tb, kb, hb) = b.sort_key();
            ta.total_cmp(&tb).then(ka.cmp(&kb)).then(ha.cmp(&hb))
        });
        Ok(FaultPlan { events })
    }

    /// The events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clocks of the joining hosts, in event order. The chaos engine
    /// appends these to the base RC (see
    /// `ResourceCollection::extended`).
    pub fn join_clocks_mhz(&self) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Join { clock_mhz, .. } => Some(*clock_mhz),
                _ => None,
            })
            .collect()
    }

    /// Checks that every crash/outage targets a host below `hosts` (the
    /// base RC size).
    pub fn validate_for(&self, hosts: usize) -> Result<(), FaultError> {
        for e in &self.events {
            let h = match e {
                FaultEvent::Crash { host, .. } | FaultEvent::Outage { host, .. } => *host,
                FaultEvent::Join { .. } => continue,
            };
            if h >= hosts {
                return Err(FaultError::HostOutOfRange { host: h, hosts });
            }
        }
        Ok(())
    }
}

/// Validation errors for fault events and plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// An event time is NaN or infinite.
    NonFiniteTime(f64),
    /// An event time is negative.
    NegativeTime(f64),
    /// An outage window with `until <= from`.
    EmptyOutage {
        /// Outage start, seconds.
        from_s: f64,
        /// Outage end, seconds.
        until_s: f64,
    },
    /// A join with a non-finite or non-positive clock.
    BadClock(f64),
    /// A crash/outage names a host outside the base RC.
    HostOutOfRange {
        /// Offending host index.
        host: usize,
        /// Base RC size.
        hosts: usize,
    },
    /// Two crashes target the same host.
    DuplicateCrash {
        /// Host crashed twice.
        host: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NonFiniteTime(t) => write!(f, "fault time {t} is not finite"),
            FaultError::NegativeTime(t) => write!(f, "fault time {t} is negative"),
            FaultError::EmptyOutage { from_s, until_s } => {
                write!(f, "outage window [{from_s}, {until_s}) is empty")
            }
            FaultError::BadClock(c) => write!(f, "join clock {c} MHz is not positive"),
            FaultError::HostOutOfRange { host, hosts } => {
                write!(f, "fault targets host {host} but the RC has {hosts} hosts")
            }
            FaultError::DuplicateCrash { host } => {
                write!(f, "host {host} crashes more than once")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Deterministic seeded fault-plan generator: draws crash, outage and
/// join events over a time horizon. All draws come from one
/// [`StdRng`] stream, so a `(spec, hosts)` pair always produces the
/// same plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanSpec {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of base hosts that crash permanently, in `[0, 1]`.
    /// Rounded to a count and capped at `hosts - 1`; host 0 never
    /// crashes (the home node).
    pub crash_fraction: f64,
    /// Fraction of base hosts that suffer one transient outage.
    pub outage_fraction: f64,
    /// Mean outage duration as a fraction of the horizon; individual
    /// outages draw uniformly in `[0.5, 1.5]` times this.
    pub outage_len_fraction: f64,
    /// Number of hosts that join during the run.
    pub joins: usize,
    /// Clock rate of joining hosts, MHz.
    pub join_clock_mhz: f64,
    /// Time horizon the event times are drawn from, seconds (usually
    /// the fault-free makespan).
    pub horizon_s: f64,
}

impl Default for FaultPlanSpec {
    fn default() -> Self {
        FaultPlanSpec {
            seed: 0,
            crash_fraction: 0.0,
            outage_fraction: 0.0,
            outage_len_fraction: 0.25,
            joins: 0,
            join_clock_mhz: rsg_dag::REFERENCE_CLOCK_MHZ,
            horizon_s: 100.0,
        }
    }
}

impl FaultPlanSpec {
    /// Draws the plan for a base RC of `hosts` hosts.
    ///
    /// # Panics
    /// If the fractions are outside `[0, 1]` or the horizon is not
    /// positive and finite.
    pub fn generate(&self, hosts: usize) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&self.crash_fraction),
            "crash_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.outage_fraction),
            "outage_fraction must be in [0, 1]"
        );
        assert!(
            self.horizon_s.is_finite() && self.horizon_s > 0.0,
            "horizon must be positive"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();

        // Hosts eligible for failure: everything but the home node.
        let n_crash =
            ((self.crash_fraction * hosts as f64).round() as usize).min(hosts.saturating_sub(1));
        let victims = Self::draw_distinct(&mut rng, hosts, n_crash);
        for host in victims {
            events.push(FaultEvent::Crash {
                host,
                at_s: rng.gen_range(0.0..self.horizon_s),
            });
        }

        let n_outage =
            ((self.outage_fraction * hosts as f64).round() as usize).min(hosts.saturating_sub(1));
        let down = Self::draw_distinct(&mut rng, hosts, n_outage);
        for host in down {
            let from_s = rng.gen_range(0.0..self.horizon_s);
            let len = self.horizon_s * self.outage_len_fraction * rng.gen_range(0.5..=1.5);
            events.push(FaultEvent::Outage {
                host,
                from_s,
                until_s: from_s + len.max(1e-9),
            });
        }

        for _ in 0..self.joins {
            events.push(FaultEvent::Join {
                clock_mhz: self.join_clock_mhz,
                at_s: rng.gen_range(0.0..self.horizon_s),
            });
        }

        FaultPlan::new(events).expect("generated plans are valid by construction")
    }

    /// `count` distinct hosts drawn from `1..hosts` (host 0 excluded),
    /// via a partial Fisher–Yates shuffle.
    fn draw_distinct(rng: &mut StdRng, hosts: usize, count: usize) -> Vec<usize> {
        if hosts <= 1 || count == 0 {
            return Vec::new();
        }
        let mut pool: Vec<usize> = (1..hosts).collect();
        let count = count.min(pool.len());
        for i in 0..count {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(count);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_validates() {
        let plan = FaultPlan::new(vec![
            FaultEvent::Join {
                clock_mhz: 2000.0,
                at_s: 5.0,
            },
            FaultEvent::Crash { host: 2, at_s: 1.0 },
            FaultEvent::Outage {
                host: 1,
                from_s: 1.0,
                until_s: 2.0,
            },
        ])
        .unwrap();
        let times: Vec<f64> = plan.events().iter().map(|e| e.time_s()).collect();
        assert_eq!(times, vec![1.0, 1.0, 5.0]);
        // Crash sorts before same-time outage.
        assert!(matches!(plan.events()[0], FaultEvent::Crash { .. }));
        assert_eq!(plan.join_clocks_mhz(), vec![2000.0]);
        assert!(plan.validate_for(3).is_ok());
        assert_eq!(
            plan.validate_for(2),
            Err(FaultError::HostOutOfRange { host: 2, hosts: 2 })
        );
    }

    #[test]
    fn plan_rejects_bad_events() {
        assert!(matches!(
            FaultPlan::new(vec![FaultEvent::Crash {
                host: 0,
                at_s: f64::NAN
            }]),
            Err(FaultError::NonFiniteTime(_))
        ));
        assert!(matches!(
            FaultPlan::new(vec![FaultEvent::Crash {
                host: 0,
                at_s: -1.0
            }]),
            Err(FaultError::NegativeTime(_))
        ));
        assert!(matches!(
            FaultPlan::new(vec![FaultEvent::Outage {
                host: 0,
                from_s: 3.0,
                until_s: 3.0
            }]),
            Err(FaultError::EmptyOutage { .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![FaultEvent::Join {
                clock_mhz: 0.0,
                at_s: 1.0
            }]),
            Err(FaultError::BadClock(_))
        ));
        assert!(matches!(
            FaultPlan::new(vec![
                FaultEvent::Crash { host: 3, at_s: 1.0 },
                FaultEvent::Crash { host: 3, at_s: 2.0 }
            ]),
            Err(FaultError::DuplicateCrash { host: 3 })
        ));
    }

    #[test]
    fn generator_is_deterministic_and_spares_home_node() {
        let spec = FaultPlanSpec {
            seed: 42,
            crash_fraction: 0.5,
            outage_fraction: 0.3,
            joins: 2,
            horizon_s: 50.0,
            ..Default::default()
        };
        let a = spec.generate(10);
        let b = spec.generate(10);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for e in a.events() {
            match e {
                FaultEvent::Crash { host, at_s } => {
                    assert_ne!(*host, 0, "home node must never crash");
                    assert!((0.0..50.0).contains(at_s));
                }
                FaultEvent::Outage { host, .. } => assert_ne!(*host, 0),
                FaultEvent::Join { at_s, .. } => assert!((0.0..50.0).contains(at_s)),
            }
        }
        assert_eq!(a.join_clocks_mhz().len(), 2);
        // Crash count: round(0.5 * 10) = 5 distinct victims.
        let crashes = a
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Crash { .. }))
            .count();
        assert_eq!(crashes, 5);
        // A different seed gives a different plan.
        let c = FaultPlanSpec { seed: 43, ..spec }.generate(10);
        assert_ne!(a, c);
    }

    #[test]
    fn crash_count_capped_below_full_wipeout() {
        let spec = FaultPlanSpec {
            seed: 1,
            crash_fraction: 1.0,
            horizon_s: 10.0,
            ..Default::default()
        };
        let plan = spec.generate(4);
        let crashes = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Crash { .. }))
            .count();
        assert_eq!(crashes, 3, "at least one host must survive");
        // Single-host RC: nothing can fail.
        assert!(spec.generate(1).is_empty());
    }
}
