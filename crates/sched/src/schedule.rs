//! Schedules and the schedule validator.
//!
//! A [`Schedule`] is the output of a heuristic: per-task host assignment
//! and start/finish times. [`Schedule::validate`] replays the schedule
//! against the execution model and rejects any violation — precedence,
//! data-arrival, intra-host overlap, or timing inconsistencies — and is
//! used by the test suites as the ground-truth oracle for every
//! heuristic.

use crate::context::ExecutionContext;
use rsg_dag::TaskId;
use std::fmt;

/// A complete mapping of tasks to hosts and time slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Host index per task.
    pub host: Vec<u32>,
    /// Start time per task, seconds.
    pub start: Vec<f64>,
    /// Finish time per task, seconds.
    pub finish: Vec<f64>,
}

impl Schedule {
    /// An empty schedule sized for `n` tasks.
    pub fn with_capacity(n: usize) -> Schedule {
        Schedule {
            host: vec![u32::MAX; n],
            start: vec![0.0; n],
            finish: vec![0.0; n],
        }
    }

    /// The application makespan: time between the earliest task start
    /// and the latest task completion (Section III.1.1).
    pub fn makespan(&self) -> f64 {
        let end = self.finish.iter().copied().fold(0.0f64, f64::max);
        let begin = self.start.iter().copied().fold(f64::INFINITY, f64::min);
        end - begin.max(0.0)
    }

    /// Number of distinct hosts actually used.
    pub fn hosts_used(&self) -> usize {
        let mut hs: Vec<u32> = self.host.clone();
        hs.sort_unstable();
        hs.dedup();
        hs.len()
    }

    /// Checks the schedule against the execution model.
    pub fn validate(&self, ctx: &ExecutionContext<'_>) -> Result<(), ScheduleError> {
        let n = ctx.dag.len();
        if self.host.len() != n || self.start.len() != n || self.finish.len() != n {
            return Err(ScheduleError::WrongLength);
        }
        let hosts = ctx.hosts() as u32;
        for t in ctx.dag.tasks() {
            let i = t.index();
            if self.host[i] >= hosts {
                return Err(ScheduleError::UnassignedTask(t));
            }
            if self.start[i] < -1e-9 {
                return Err(ScheduleError::NegativeStart(t));
            }
            let expect = self.start[i] + ctx.task_time(t, self.host[i] as usize);
            if (self.finish[i] - expect).abs() > 1e-6 * expect.max(1.0) {
                return Err(ScheduleError::DurationMismatch(t));
            }
            // Data-arrival: every input must have landed.
            let ready = ctx.data_ready(t, self.host[i] as usize, &self.finish, &self.host);
            if self.start[i] + 1e-6 * ready.max(1.0) < ready {
                return Err(ScheduleError::DataNotReady(t));
            }
        }
        // Intra-host overlap: sort tasks per host by start time.
        let mut by_host: Vec<Vec<usize>> = vec![Vec::new(); hosts as usize];
        for i in 0..n {
            by_host[self.host[i] as usize].push(i);
        }
        for tasks in &mut by_host {
            tasks.sort_by(|&a, &b| self.start[a].partial_cmp(&self.start[b]).unwrap());
            for w in tasks.windows(2) {
                let (a, b) = (w[0], w[1]);
                if self.start[b] + 1e-6 * self.finish[a].max(1.0) < self.finish[a] {
                    return Err(ScheduleError::HostOverlap(
                        TaskId(a as u32),
                        TaskId(b as u32),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Violations detected by [`Schedule::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// Schedule vectors do not match the DAG size.
    WrongLength,
    /// A task has no valid host.
    UnassignedTask(TaskId),
    /// A task starts before time zero.
    NegativeStart(TaskId),
    /// finish ≠ start + execution time.
    DurationMismatch(TaskId),
    /// A task starts before its inputs arrive.
    DataNotReady(TaskId),
    /// Two tasks overlap on one host.
    HostOverlap(TaskId, TaskId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength => write!(f, "schedule length mismatch"),
            ScheduleError::UnassignedTask(t) => write!(f, "task {t} unassigned"),
            ScheduleError::NegativeStart(t) => write!(f, "task {t} starts before 0"),
            ScheduleError::DurationMismatch(t) => write!(f, "task {t} duration mismatch"),
            ScheduleError::DataNotReady(t) => write!(f, "task {t} starts before inputs arrive"),
            ScheduleError::HostOverlap(a, b) => write!(f, "tasks {a} and {b} overlap on a host"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::DagBuilder;
    use rsg_platform::ResourceCollection;

    fn fixture() -> (rsg_dag::Dag, ResourceCollection) {
        let mut b = DagBuilder::new();
        let a = b.add_task(15.0);
        let c = b.add_task(15.0);
        b.add_edge(a, c, 3.0).unwrap();
        (
            b.build().unwrap(),
            ResourceCollection::homogeneous(2, 1500.0),
        )
    }

    #[test]
    fn valid_colocated_schedule() {
        let (dag, rc) = fixture();
        let ctx = ExecutionContext::new(&dag, &rc);
        let s = Schedule {
            host: vec![0, 0],
            start: vec![0.0, 15.0],
            finish: vec![15.0, 30.0],
        };
        assert!(s.validate(&ctx).is_ok());
        assert!((s.makespan() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn cross_host_needs_transfer() {
        let (dag, rc) = fixture();
        let ctx = ExecutionContext::new(&dag, &rc);
        // Starting the child at parent finish on another host skips the
        // 3 s transfer.
        let bad = Schedule {
            host: vec![0, 1],
            start: vec![0.0, 15.0],
            finish: vec![15.0, 30.0],
        };
        assert_eq!(
            bad.validate(&ctx),
            Err(ScheduleError::DataNotReady(TaskId(1)))
        );
        let good = Schedule {
            host: vec![0, 1],
            start: vec![0.0, 18.0],
            finish: vec![15.0, 33.0],
        };
        assert!(good.validate(&ctx).is_ok());
    }

    #[test]
    fn overlap_detected() {
        let (dag, rc) = fixture();
        let ctx = ExecutionContext::new(&dag, &rc);
        let mut b = DagBuilder::new();
        b.add_task(15.0);
        b.add_task(15.0);
        let dag2 = b.build().unwrap();
        let ctx2 = ExecutionContext::new(&dag2, &rc);
        let s = Schedule {
            host: vec![0, 0],
            start: vec![0.0, 10.0],
            finish: vec![15.0, 25.0],
        };
        assert!(matches!(
            s.validate(&ctx2),
            Err(ScheduleError::HostOverlap(_, _))
        ));
        let _ = ctx;
    }

    #[test]
    fn duration_mismatch_detected() {
        let (dag, rc) = fixture();
        let ctx = ExecutionContext::new(&dag, &rc);
        let s = Schedule {
            host: vec![0, 0],
            start: vec![0.0, 15.0],
            finish: vec![14.0, 30.0],
        };
        assert_eq!(
            s.validate(&ctx),
            Err(ScheduleError::DurationMismatch(TaskId(0)))
        );
    }

    #[test]
    fn unassigned_detected() {
        let (dag, rc) = fixture();
        let ctx = ExecutionContext::new(&dag, &rc);
        let s = Schedule::with_capacity(2);
        assert!(matches!(
            s.validate(&ctx),
            Err(ScheduleError::UnassignedTask(_))
        ));
    }

    #[test]
    fn hosts_used_counts_distinct() {
        let s = Schedule {
            host: vec![0, 1, 0, 3],
            start: vec![0.0; 4],
            finish: vec![1.0; 4],
        };
        assert_eq!(s.hosts_used(), 3);
    }
}
