//! First-Come-First-Serve (Figure V-15).
//!
//! Ready tasks are served in FIFO order and placed on the first
//! available host (smallest ready time, deterministic host-index
//! tie-break). Like the greedy heuristic it ignores clock rates and
//! communication, but its host choice is stable rather than randomized —
//! the cheapest heuristic in the Chapter V.6 comparison.

use super::common::{log2_ops, HostHeap, ReadyTracker};
use super::{Heuristic, HeuristicKind};
use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use crate::timemodel::OpCount;

/// First-come-first-serve scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Heuristic for Fcfs {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Fcfs
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        let dag = ctx.dag;
        let n = dag.len();
        let hosts = ctx.hosts();
        let mut ops = OpCount::default();

        let mut sched = Schedule::with_capacity(n);
        let mut ready = ReadyTracker::new(dag);
        let mut heap = HostHeap::new(hosts, |h| h as u32);

        while let Some(t) = ready.pop() {
            let i = t.index();
            let (avail, h) = heap.pop();
            let start = avail.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
            let finish = start + ctx.task_time(t, h);
            sched.host[i] = h as u32;
            sched.start[i] = start;
            sched.finish[i] = finish;
            heap.push(h, finish, h as u32);
            ready.complete(dag, t);
            ops += log2_ops(hosts) + dag.parents(t).len() as u64 + 1;
        }

        (sched, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_platform::ResourceCollection;

    #[test]
    fn fcfs_is_deterministic() {
        let dag = rsg_dag::RandomDagSpec {
            size: 80,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(1);
        let rc = ResourceCollection::homogeneous(10, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (a, _) = Fcfs.schedule(&ctx);
        let (b, _) = Fcfs.schedule(&ctx);
        assert_eq!(a, b);
        a.validate(&ctx).unwrap();
    }

    #[test]
    fn fcfs_first_tasks_go_to_low_indices() {
        let dag = rsg_dag::workflows::bag(3, 5.0);
        let rc = ResourceCollection::homogeneous(10, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Fcfs.schedule(&ctx);
        assert_eq!(&s.host[..], &[0, 1, 2]);
    }

    #[test]
    fn fcfs_chain_on_fresh_hosts_pays_transfers() {
        // A chain over idle hosts: FCFS hops to a fresh host each task
        // (all hosts ready at 0, lowest index first), paying every edge.
        let dag = rsg_dag::workflows::chain(3, 10.0, 5.0);
        let rc = ResourceCollection::homogeneous(3, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Fcfs.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!((s.makespan() - 40.0).abs() < 1e-9, "{}", s.makespan());
    }
}
