//! FCA — fastest-clock assignment (Figure V-14; reconstructed).
//!
//! The dissertation text characterizes its heuristic set as spanning
//! "what is used in practice and … representative classes … based on how
//! each heuristic treats the critical path", with FCA as the cheap,
//! clock-aware member that wins over MCP for large DAGs because its
//! scheduling time is nearly independent of the DAG/RC product (Figures
//! VI-1/VI-2). The pseudo-code figure is not part of the provided text,
//! so FCA is reconstructed as (see DESIGN.md, substitution 4):
//!
//! 1. order tasks by descending bottom level (critical path first);
//! 2. for each task, estimate its data-ready time ignoring pairwise
//!    connectivity (reference-bandwidth transfer from every parent);
//! 3. place it on the fastest host that is idle by that time, falling
//!    back to the host/tier giving the earliest start (faster tier wins
//!    ties);
//! 4. actual start/finish times are then computed with the real
//!    communication factors.
//!
//! Hosts are grouped into clock *tiers* (distinct clock values, fastest
//! first), each tier holding a min-heap of ready times — `O(V (T + log
//! P + parents))` where `T` is the number of tiers (1 for homogeneous
//! RCs).

use super::common::{log2_ops, F64};
use super::{Heuristic, HeuristicKind};
use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use crate::timemodel::OpCount;
use rsg_dag::CriticalPathInfo;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fastest-clock assignment scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fca;

impl Heuristic for Fca {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Fca
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        let dag = ctx.dag;
        let n = dag.len();
        let hosts = ctx.hosts();
        let mut ops = OpCount::default();

        // Priority: bottom level descending (critical tasks first); the
        // level tie-break keeps the order topological under zero
        // weights.
        let info = CriticalPathInfo::compute(dag);
        ops += 2 * (n as u64 + dag.edge_count() as u64);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            let (ta, tb) = (rsg_dag::TaskId(a), rsg_dag::TaskId(b));
            dag.level(ta)
                .cmp(&dag.level(tb))
                .then(info.bottom_level[b as usize].total_cmp(&info.bottom_level[a as usize]))
                .then(a.cmp(&b))
        });
        ops += n as u64 * log2_ops(n);

        // Clock tiers, fastest first (only the context's hosts — the
        // RC behind `ctx` may be a larger prefix-shared family).
        let mut tier_clocks: Vec<f64> = (0..hosts).map(|h| ctx.clock_mhz(h)).collect();
        tier_clocks.sort_by(|a, b| b.total_cmp(a));
        tier_clocks.dedup();
        let tier_of = |clock: f64| -> usize {
            tier_clocks
                .iter()
                .position(|&c| c == clock)
                .expect("clock belongs to a tier")
        };
        let mut tiers: Vec<BinaryHeap<Reverse<(F64, u32)>>> =
            vec![BinaryHeap::new(); tier_clocks.len()];
        for h in 0..hosts {
            tiers[tier_of(ctx.clock_mhz(h))].push(Reverse((F64(0.0), h as u32)));
        }

        let mut sched = Schedule::with_capacity(n);

        for &ti in &order {
            let t = rsg_dag::TaskId(ti);
            let i = t.index();
            let parents = dag.parents(t);
            // Connectivity-oblivious data-ready estimate (factor 1).
            let mut est_ready = 0.0f64;
            for e in parents {
                let arr = sched.finish[e.task.index()] + e.comm;
                if arr > est_ready {
                    est_ready = arr;
                }
            }
            ops += parents.len() as u64;

            // Fastest tier with an idle host by est_ready; otherwise the
            // earliest-start candidate, faster tier winning ties.
            let mut chosen: Option<usize> = None;
            let mut fallback: Option<(f64, usize)> = None; // (start, tier)
            for (ti_idx, tier) in tiers.iter().enumerate() {
                ops += 1;
                if let Some(Reverse((F64(ready), _))) = tier.peek() {
                    if *ready <= est_ready {
                        chosen = Some(ti_idx);
                        break;
                    }
                    let start = ready.max(est_ready);
                    if fallback.is_none_or(|(s, _)| start < s) {
                        fallback = Some((start, ti_idx));
                    }
                }
            }
            let tier_idx = chosen.unwrap_or_else(|| fallback.expect("RC has hosts").1);
            let Reverse((F64(avail), h)) = tiers[tier_idx].pop().expect("tier non-empty");
            let h = h as usize;

            // Real timing with actual communication factors.
            let start = avail.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
            let finish = start + ctx.task_time(t, h);
            ops += parents.len() as u64 + log2_ops(hosts);

            sched.host[i] = h as u32;
            sched.start[i] = start;
            sched.finish[i] = finish;
            tiers[tier_idx].push(Reverse((F64(finish), h as u32)));
        }

        (sched, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_platform::ResourceCollection;

    #[test]
    fn fca_uses_fastest_hosts_first() {
        let dag = rsg_dag::workflows::bag(2, 10.0);
        let rc = ResourceCollection::new(
            vec![1500.0, 3000.0, 3000.0, 750.0],
            rsg_platform::CommModel::Uniform,
        );
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Fca.schedule(&ctx);
        s.validate(&ctx).unwrap();
        // Both tasks land on the two 3 GHz hosts.
        for &h in &s.host {
            assert_eq!(ctx.rc.clock_mhz(h as usize), 3000.0);
        }
        assert!((s.makespan() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fca_cheaper_than_mcp() {
        let dag = rsg_dag::RandomDagSpec {
            size: 300,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(5);
        let rc = ResourceCollection::heterogeneous(200, 3000.0, 0.3, 2);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (_, fca_ops) = Fca.schedule(&ctx);
        let (_, mcp_ops) = super::super::Mcp.schedule(&ctx);
        assert!(
            fca_ops.0 * 4 < mcp_ops.0,
            "fca {} vs mcp {}",
            fca_ops.0,
            mcp_ops.0
        );
    }

    #[test]
    fn fca_valid_on_heterogeneous_bandwidth() {
        let dag = rsg_dag::RandomDagSpec {
            size: 120,
            ccr: 2.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(6);
        let rc = ResourceCollection::heterogeneous(20, 3000.0, 0.4, 4)
            .with_bandwidth_heterogeneity(0.5, 9);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Fca.schedule(&ctx);
        s.validate(&ctx).unwrap();
    }

    #[test]
    fn homogeneous_rc_has_single_tier() {
        // With one tier FCA degenerates to earliest-available-fastest,
        // still valid and parallel.
        let dag = rsg_dag::workflows::bag(6, 10.0);
        let rc = ResourceCollection::homogeneous(6, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Fca.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!((s.makespan() - 10.0).abs() < 1e-9);
        assert_eq!(s.hosts_used(), 6);
    }
}
