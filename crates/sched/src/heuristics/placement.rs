//! Sub-quadratic placement kernel for the host-scan heuristics.
//!
//! MCP and DLS both spend their time in the same inner loop: for each
//! task, scan every host and pick the one minimizing `max(host_ready,
//! data_ready) + exec_time` (MCP) or maximizing the dynamic level (DLS,
//! which for a fixed execution time is the same minimization). That
//! scan is `O(P · parents)` per task — the `(V + E) · P` growth that
//! creates the paper's turnaround knee. The *modeled* scheduling cost
//! must keep that growth (it is the phenomenon under study), but the
//! simulator's wall-clock does not have to.
//!
//! Under homogeneous connectivity ([`CommModel::Uniform`]) the winning
//! host is always one of a small candidate set:
//!
//! * a host holding at least one parent of the task (co-location saves
//!   the transfer; data-ready differs per such host), or
//! * per *clock class* (hosts with bit-identical clocks — hence
//!   bit-identical speed factors, execution times and non-parent
//!   data-ready `D`; see [`ClockClasses`]):
//!   - the lowest-indexed host with `ready ≤ D` — it starts at `D`,
//!     which no other non-parent host in the class can beat, and the
//!     naive scan's strict-`<` update keeps the lowest index on ties; or
//!   - if every host in the class is busy past `D`, the host minimizing
//!     `(ready, index)` lexicographically.
//!
//! Each class keeps its hosts (ascending index) in a min segment tree
//! over ready times, answering both queries in `O(log P)`. Candidates
//! are then re-evaluated with the naive tie-breaks and bit-identical
//! float values: the naive per-host data-ready is a running max over
//! `finish[p] + comm · factor` terms, so it is assembled in `O(1)` per
//! candidate from per-parent-host maxima plus a top-2 "max excluding
//! host h" decomposition (a max over any subset split recombines to the
//! identical value). The whole query costs `O(parents + classes·log P)`
//! instead of the naive `O(P · parents)`. The one theoretical exception:
//! if two different ready values collapse to the same finish after the
//! `+ exec_time` rounding, the naive scan's index tie-break could pick
//! a host outside the candidate set. The differential property tests
//! (`tests/fast_kernel_equiv.rs`) check for this empirically; it has
//! not been observed.
//!
//! The kernel declines (returns `None`, callers fall back to the
//! loop-swapped flat scan below) when connectivity is non-uniform —
//! per-host bandwidth factors make data-ready vary per host — or when
//! there are too many clock classes for the candidate set to be small
//! (e.g. continuously drawn heterogeneous clocks, where every host is
//! its own class).
//!
//! All host-dimension state is struct-of-arrays and pooled: the class
//! partition comes precomputed from the RC ([`ClockClasses`], shared by
//! every schedule over the RC), and the segment trees and epoch-marked
//! scan buffers are reused across schedules through the thread-local
//! `scratch` pool, so steady-state kernel invocations
//! allocate nothing.

use std::mem::take;
use std::sync::Arc;

use super::scratch::{self, PooledScan};
use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use rsg_dag::TaskId;
use rsg_platform::{ClockClasses, CommModel};

/// A min segment tree over one clock class's host ready times, leaves
/// in ascending host order (padded to a power of two with `+∞`).
#[derive(Debug)]
struct ClassTree {
    /// Host indices of the class, ascending.
    hosts: Vec<u32>,
    /// Leaf capacity (power of two).
    width: usize,
    /// `2 * width` nodes; node 1 is the root, leaf `i` is `width + i`.
    tree: Vec<f64>,
}

impl ClassTree {
    fn new(hosts: Vec<u32>) -> ClassTree {
        let width = hosts.len().next_power_of_two();
        let mut tree = vec![f64::INFINITY; 2 * width];
        // Every host starts ready at time 0.
        for leaf in 0..hosts.len() {
            tree[width + leaf] = 0.0;
        }
        for node in (1..width).rev() {
            tree[node] = tree[2 * node].min(tree[2 * node + 1]);
        }
        ClassTree { hosts, width, tree }
    }

    fn update(&mut self, leaf: usize, ready: f64) {
        let mut node = self.width + leaf;
        self.tree[node] = ready;
        node /= 2;
        while node >= 1 {
            self.tree[node] = self.tree[2 * node].min(self.tree[2 * node + 1]);
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }

    /// Lowest-indexed host with `ready ≤ bound`, if any.
    fn leftmost_at_most(&self, bound: f64) -> Option<u32> {
        if self.tree[1] > bound {
            return None;
        }
        let mut node = 1usize;
        while node < self.width {
            node = if self.tree[2 * node] <= bound {
                2 * node
            } else {
                2 * node + 1
            };
        }
        Some(self.hosts[node - self.width])
    }

    /// Host minimizing `(ready, index)` lexicographically.
    fn min_ready_host(&self) -> u32 {
        let mut node = 1usize;
        while node < self.width {
            // Left preference on ties keeps the lowest host index.
            node = if self.tree[2 * node] <= self.tree[2 * node + 1] {
                2 * node
            } else {
                2 * node + 1
            };
        }
        self.hosts[node - self.width]
    }
}

/// The per-`(rc, prefix)` segment trees plus the touched-host list that
/// lets the scratch pool reset them in O(writes). Built once per
/// `(rc uid, hosts)` key and recycled across schedules.
#[derive(Debug, Default)]
pub(super) struct TreeBank {
    classes: Arc<ClockClasses>,
    trees: Vec<ClassTree>,
    touched: Vec<u32>,
}

impl TreeBank {
    fn build(classes: Arc<ClockClasses>, hosts: usize) -> TreeBank {
        let k = classes.classes_in_prefix(hosts);
        let trees = (0..k)
            .map(|c| ClassTree::new(classes.members_in_prefix(c, hosts).to_vec()))
            .collect();
        TreeBank {
            classes,
            trees,
            touched: Vec::new(),
        }
    }

    /// Resets every touched leaf back to ready-at-0.
    pub(super) fn reset(&mut self) {
        for i in 0..self.touched.len() {
            let (class, rank) = self.classes.slot(self.touched[i] as usize);
            self.trees[class as usize].update(rank as usize, 0.0);
        }
        self.touched.clear();
    }

    fn update(&mut self, host: usize, ready: f64) {
        // Touched before written: a panicking schedule leaves the list
        // covering every write, and the next take resets them all.
        self.touched.push(host as u32);
        let (class, rank) = self.classes.slot(host);
        self.trees[class as usize].update(rank as usize, ready);
    }
}

/// Candidate-set placement index over one execution context.
///
/// Mirror of the hosts' ready times: callers must [`update`] it
/// whenever they change their `host_ready` array.
///
/// [`update`]: PlacementIndex::update
pub struct PlacementIndex {
    key: (u64, usize),
    bank: TreeBank,
    scan: PooledScan,
    /// Host with the largest off-host arrival (`u32::MAX` if none
    /// exceeds the 0-floor), and the top two off-host arrival maxima.
    excl_host: u32,
    excl_v1: f64,
    excl_v2: f64,
}

impl Drop for PlacementIndex {
    fn drop(&mut self) {
        scratch::put_bank(self.key, take(&mut self.bank));
    }
}

impl PlacementIndex {
    /// Builds the index, or `None` when the fast path does not apply
    /// (non-uniform connectivity, or too many clock classes for the
    /// candidate set to beat the naive scan).
    pub fn new(ctx: &ExecutionContext<'_>) -> Option<PlacementIndex> {
        /// Schedules that got the candidate-set fast path.
        static OBS_FAST: rsg_obs::Counter = rsg_obs::Counter::new("sched.placement.fast_kernel");
        /// Schedules where the kernel declined (naive host scan).
        static OBS_DECLINED: rsg_obs::Counter =
            rsg_obs::Counter::new("sched.placement.naive_fallback");
        if *ctx.rc.comm_model() != CommModel::Uniform {
            OBS_DECLINED.incr();
            return None;
        }
        let hosts = ctx.hosts();
        let classes = ctx.rc.clock_classes();
        // With ~P classes the candidate set is as big as the host set;
        // the naive scan is then cheaper than tree maintenance.
        if classes.classes_in_prefix(hosts) * 4 > hosts {
            OBS_DECLINED.incr();
            return None;
        }
        OBS_FAST.incr();
        let key = (ctx.rc.uid(), hosts);
        let bank = scratch::take_bank(key).unwrap_or_else(|| TreeBank::build(classes, hosts));
        Some(PlacementIndex {
            key,
            bank,
            scan: scratch::take_scan(hosts),
            excl_host: u32::MAX,
            excl_v1: 0.0,
            excl_v2: 0.0,
        })
    }

    /// Records a new ready time for `host`.
    pub fn update(&mut self, host: usize, ready: f64) {
        self.bank.update(host, ready);
    }

    /// Fills the scan buffer's `cand` with the sorted candidate hosts
    /// for placing `t`: parent holders plus per-class query winners
    /// against the non-parent data-ready bound `D` (computed with the
    /// same float operations as the naive scan under uniform
    /// connectivity). Also builds the per-host arrival maxima that let
    /// [`data_ready_fast`](Self::data_ready_fast) answer in `O(1)`.
    fn gather_candidates(&mut self, ctx: &ExecutionContext<'_>, t: TaskId, sched: &Schedule) {
        let scan = &mut *self.scan;
        scan.cand.clear();
        scan.touched.clear();
        scan.epoch += 1;
        let epoch = scan.epoch;
        for e in ctx.dag.parents(t) {
            let p = e.task.index();
            // comm_factor is exactly 1.0 off-host and 0.0 co-located:
            // both arrivals are bit-identical to the naive
            // `finish + comm * factor`.
            let out = sched.finish[p] + e.comm * 1.0;
            let on = sched.finish[p] + e.comm * 0.0;
            let ph = sched.host[p] as usize;
            if scan.mark[ph] != epoch {
                scan.mark[ph] = epoch;
                scan.on_max[ph] = on;
                scan.out_max[ph] = out;
                scan.touched.push(ph as u32);
            } else {
                if on > scan.on_max[ph] {
                    scan.on_max[ph] = on;
                }
                if out > scan.out_max[ph] {
                    scan.out_max[ph] = out;
                }
            }
        }
        // Top two per-host off-host maxima: `excl_v1` is the naive
        // running max over every off-host arrival (0-floored like the
        // naive fold), `excl_v2` the same excluding `excl_host`.
        self.excl_host = u32::MAX;
        self.excl_v1 = 0.0;
        self.excl_v2 = 0.0;
        for i in 0..scan.touched.len() {
            let ph = scan.touched[i];
            let v = scan.out_max[ph as usize];
            if v > self.excl_v1 {
                self.excl_v2 = self.excl_v1;
                self.excl_v1 = v;
                self.excl_host = ph;
            } else if v > self.excl_v2 {
                self.excl_v2 = v;
            }
        }
        let d = self.excl_v1;
        let scan = &mut *self.scan;
        scan.cand.extend_from_slice(&scan.touched);
        for class in &self.bank.trees {
            match class.leftmost_at_most(d) {
                // Starts exactly at D; lowest index wins the naive
                // strict-`<` tie-break, dominating the rest of the
                // class.
                Some(h) => scan.cand.push(h),
                // Whole class busy past D: earliest-ready (then lowest
                // index) dominates.
                None => scan.cand.push(class.min_ready_host()),
            }
        }
        // Ascending order replays the naive scan's first-wins ties.
        scan.cand.sort_unstable();
        scan.cand.dedup();
    }

    /// The value `ExecutionContext::data_ready` would compute for the
    /// current task on host `h`, in `O(1)`: the naive fold is a pure
    /// 0-floored max over per-parent arrival terms, so recombining the
    /// per-host subset maxima (excluding `h`'s own off-host terms)
    /// yields the identical value.
    #[inline]
    fn data_ready_fast(&self, h: usize) -> f64 {
        let mut dr = if self.excl_host == h as u32 {
            self.excl_v2
        } else {
            self.excl_v1
        };
        let scan = &*self.scan;
        if scan.mark[h] == scan.epoch && scan.on_max[h] > dr {
            dr = scan.on_max[h];
        }
        dr
    }

    /// MCP placement: the `(finish, host, start)` the naive full scan
    /// would select for `t`.
    pub fn mcp_best(
        &mut self,
        ctx: &ExecutionContext<'_>,
        t: TaskId,
        sched: &Schedule,
        host_ready: &[f64],
    ) -> (f64, usize, f64) {
        self.gather_candidates(ctx, t, sched);
        let mut best_finish = f64::INFINITY;
        let mut best_host = 0usize;
        let mut best_start = 0.0f64;
        for i in 0..self.scan.cand.len() {
            let h = self.scan.cand[i] as usize;
            let est = host_ready[h].max(self.data_ready_fast(h));
            let fin = est + ctx.task_time(t, h);
            if fin < best_finish {
                best_finish = fin;
                best_host = h;
                best_start = est;
            }
        }
        (best_finish, best_host, best_start)
    }

    /// DLS evaluation: the `(dynamic level, host, start)` the naive
    /// full scan would select for `t`, given its static level and
    /// median-speed execution time.
    pub fn dls_best(
        &mut self,
        ctx: &ExecutionContext<'_>,
        t: TaskId,
        sched: &Schedule,
        host_ready: &[f64],
        sl: f64,
        wbar: f64,
    ) -> (f64, usize, f64) {
        self.gather_candidates(ctx, t, sched);
        let mut best = (f64::NEG_INFINITY, 0usize, 0.0f64);
        for i in 0..self.scan.cand.len() {
            let h = self.scan.cand[i] as usize;
            let start = host_ready[h].max(self.data_ready_fast(h));
            let dl = sl - start + (wbar - ctx.task_time(t, h));
            if dl > best.0 {
                best = (dl, h, start);
            }
        }
        best
    }
}

/// Whether the fast placement kernel engages for this context (used by
/// differential tests and benches to confirm what they exercise).
pub fn fast_placement_available(ctx: &ExecutionContext<'_>) -> bool {
    PlacementIndex::new(ctx).is_some()
}

/// Fills `dr[h]` with `ExecutionContext::data_ready(t, h, …)` for every
/// host, loop-swapped: one pass over hosts per parent instead of one
/// pass over parents per host. The result is bit-identical — data-ready
/// is a 0-floored max over per-(parent, host) arrival terms, every term
/// is computed with the naive float expression, and a max over the same
/// multiset is order-independent (all terms are non-negative, so no
/// `-0.0`/`+0.0` ambiguity either). The per-parent inner loops are
/// branch-free over contiguous `f64` arrays, which is what lets the
/// compiler vectorize the fallback scan.
fn fill_data_ready(ctx: &ExecutionContext<'_>, t: TaskId, sched: &Schedule, dr: &mut [f64]) {
    for x in dr.iter_mut() {
        *x = 0.0;
    }
    match ctx.rc.comm_model() {
        CommModel::Uniform => {
            for e in ctx.dag.parents(t) {
                let p = e.task.index();
                let fin = sched.finish[p];
                let ph = sched.host[p] as usize;
                // The factor is exactly 1.0 off-host and 0.0 co-located,
                // so both arrivals are the naive `fin + comm * factor`.
                let off = fin + e.comm * 1.0;
                let on = fin + e.comm * 0.0;
                for x in &mut dr[..ph] {
                    if off > *x {
                        *x = off;
                    }
                }
                if on > dr[ph] {
                    dr[ph] = on;
                }
                for x in &mut dr[ph + 1..] {
                    if off > *x {
                        *x = off;
                    }
                }
            }
        }
        CommModel::PerHostFactor(f) => {
            for e in ctx.dag.parents(t) {
                let p = e.task.index();
                let fin = sched.finish[p];
                let fp = f[sched.host[p] as usize];
                for (h, x) in dr.iter_mut().enumerate() {
                    let arr = fin + e.comm * fp.max(f[h]);
                    if arr > *x {
                        *x = arr;
                    }
                }
            }
            // The sweeps above charged every parent's own host the
            // off-host factor `max(f_i, f_j)` instead of the co-located
            // 0; repair those few slots with the naive per-host fold
            // (O(parents) each, O(parents²) total — negligible against
            // O(P·parents) in the P ≫ parents regime this scan runs in).
            for e in ctx.dag.parents(t) {
                let ph = sched.host[e.task.index()] as usize;
                dr[ph] = ctx.data_ready(t, ph, &sched.finish, &sched.host);
            }
        }
        CommModel::Clustered {
            host_cluster,
            k,
            factors,
        } => {
            for e in ctx.dag.parents(t) {
                let p = e.task.index();
                let fin = sched.finish[p];
                let a = host_cluster[sched.host[p] as usize] as usize;
                let row = &factors[a * k..(a + 1) * k];
                for (x, &hc) in dr.iter_mut().zip(host_cluster.iter()) {
                    let arr = fin + e.comm * row[hc as usize];
                    if arr > *x {
                        *x = arr;
                    }
                }
            }
            // Same repair: the intra-cluster factor applies to distinct
            // hosts of a cluster, but a parent's own host transfers for
            // free.
            for e in ctx.dag.parents(t) {
                let ph = sched.host[e.task.index()] as usize;
                dr[ph] = ctx.data_ready(t, ph, &sched.finish, &sched.host);
            }
        }
    }
}

/// MCP fallback placement over every host: the naive scan, loop-swapped
/// into flat array passes. Bit-identical to the per-host reference scan
/// (same terms, same strict-`<` first-wins tie-break).
pub(super) fn mcp_flat_best(
    ctx: &ExecutionContext<'_>,
    t: TaskId,
    sched: &Schedule,
    host_ready: &[f64],
    dr: &mut [f64],
) -> (f64, usize, f64) {
    fill_data_ready(ctx, t, sched, dr);
    let speeds = ctx.speeds();
    let comp = ctx.dag.comp(t);
    let mut best_finish = f64::INFINITY;
    let mut best_host = 0usize;
    let mut best_start = 0.0f64;
    for (h, (&ready, (&d, &sp))) in host_ready
        .iter()
        .zip(dr.iter().zip(speeds.iter()))
        .enumerate()
    {
        let est = ready.max(d);
        let fin = est + comp / sp;
        if fin < best_finish {
            best_finish = fin;
            best_host = h;
            best_start = est;
        }
    }
    (best_finish, best_host, best_start)
}

/// DLS fallback evaluation over every host, loop-swapped like
/// [`mcp_flat_best`]. Bit-identical to the per-host reference scan.
pub(super) fn dls_flat_best(
    ctx: &ExecutionContext<'_>,
    t: TaskId,
    sched: &Schedule,
    host_ready: &[f64],
    sl: f64,
    wbar: f64,
    dr: &mut [f64],
) -> (f64, usize, f64) {
    fill_data_ready(ctx, t, sched, dr);
    let speeds = ctx.speeds();
    let comp = ctx.dag.comp(t);
    let mut best = (f64::NEG_INFINITY, 0usize, 0.0f64);
    for (h, (&ready, (&d, &sp))) in host_ready
        .iter()
        .zip(dr.iter().zip(speeds.iter()))
        .enumerate()
    {
        let start = ready.max(d);
        let dl = sl - start + (wbar - comp / sp);
        if dl > best.0 {
            best = (dl, h, start);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{Heuristic, McpNaive};
    use rsg_platform::ResourceCollection;

    #[test]
    fn class_tree_queries() {
        let mut t = ClassTree::new(vec![3, 5, 8, 9, 12]);
        // All ready at 0: leftmost ≤ 0 is host 3, min-ready is host 3.
        assert_eq!(t.leftmost_at_most(0.0), Some(3));
        assert_eq!(t.min_ready_host(), 3);
        t.update(0, 10.0);
        t.update(1, 4.0);
        t.update(2, 7.0);
        t.update(3, 4.0);
        t.update(4, 0.5);
        assert_eq!(t.leftmost_at_most(0.6), Some(12));
        assert_eq!(t.leftmost_at_most(0.4), None);
        assert_eq!(t.leftmost_at_most(5.0), Some(5));
        assert_eq!(t.min_ready_host(), 12);
        t.update(4, 100.0);
        // Tie at 4.0 between hosts 5 and 9: lowest index wins.
        assert_eq!(t.min_ready_host(), 5);
    }

    #[test]
    fn index_declines_when_not_applicable() {
        let dag = rsg_dag::workflows::bag(4, 10.0);
        // Non-uniform connectivity.
        let rc = ResourceCollection::homogeneous(16, 1500.0).with_bandwidth_heterogeneity(0.5, 1);
        assert!(!fast_placement_available(&ExecutionContext::new(&dag, &rc)));
        // Continuously heterogeneous clocks: every host its own class.
        let rc = ResourceCollection::heterogeneous(16, 3000.0, 0.4, 7);
        assert!(!fast_placement_available(&ExecutionContext::new(&dag, &rc)));
        // Homogeneous: engages.
        let rc = ResourceCollection::homogeneous(16, 1500.0);
        assert!(fast_placement_available(&ExecutionContext::new(&dag, &rc)));
        // Few classes (space sharing): engages.
        let rc =
            ResourceCollection::new([1500.0, 3000.0].repeat(8), rsg_platform::CommModel::Uniform);
        assert!(fast_placement_available(&ExecutionContext::new(&dag, &rc)));
    }

    #[test]
    fn index_mirrors_ready_times() {
        let dag = rsg_dag::workflows::bag(3, 10.0);
        let rc = ResourceCollection::homogeneous(8, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let mut idx = PlacementIndex::new(&ctx).unwrap();
        let sched = Schedule::with_capacity(dag.len());
        let mut host_ready = vec![0.0f64; 8];
        for (h, r) in [(0usize, 5.0f64), (1, 3.0), (2, 9.0)] {
            host_ready[h] = r;
            idx.update(h, r);
        }
        // Entry task, D = 0: hosts 0..=2 are busy, host 3 is the
        // lowest-indexed idle one.
        let (fin, host, start) = idx.mcp_best(&ctx, rsg_dag::TaskId(0), &sched, &host_ready);
        assert_eq!(host, 3);
        assert_eq!(start, 0.0);
        assert!((fin - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_bank_resets_across_schedules() {
        // Two back-to-back indexes over the same (rc, hosts): the
        // second take must serve a bank with every host ready at 0.
        let dag = rsg_dag::workflows::bag(3, 10.0);
        let rc = ResourceCollection::homogeneous(8, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let sched = Schedule::with_capacity(dag.len());
        let host_ready = vec![0.0f64; 8];
        {
            let mut idx = PlacementIndex::new(&ctx).unwrap();
            idx.update(0, 100.0);
            idx.update(5, 40.0);
        }
        let mut idx = PlacementIndex::new(&ctx).unwrap();
        let (_, host, start) = idx.mcp_best(&ctx, rsg_dag::TaskId(0), &sched, &host_ready);
        assert_eq!(host, 0, "pooled bank must be reset to all-ready");
        assert_eq!(start, 0.0);
    }

    #[test]
    fn flat_scans_match_naive_reference() {
        use rsg_dag::RandomDagSpec;
        // Heterogeneous clocks + bandwidth heterogeneity: the exact
        // configuration the kernel declines on.
        let dag = RandomDagSpec {
            size: 60,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(3);
        for rc in [
            ResourceCollection::heterogeneous(13, 3000.0, 0.4, 5)
                .with_bandwidth_heterogeneity(0.3, 9),
            ResourceCollection::heterogeneous(13, 3000.0, 0.4, 5),
        ] {
            let ctx = ExecutionContext::new(&dag, &rc);
            // Build a plausible partial schedule with MCP-naive and then
            // compare flat vs naive evaluation for a later task.
            let (sched, _) = McpNaive.schedule(&ctx);
            let mut host_ready = vec![0.0f64; ctx.hosts()];
            for i in 0..dag.len() {
                let h = sched.host[i] as usize;
                if sched.finish[i] > host_ready[h] {
                    host_ready[h] = sched.finish[i];
                }
            }
            let mut dr = vec![0.0f64; ctx.hosts()];
            for t in ctx.dag.tasks() {
                fill_data_ready(&ctx, t, &sched, &mut dr);
                for (h, &flat_dr) in dr.iter().enumerate() {
                    let naive = ctx.data_ready(t, h, &sched.finish, &sched.host);
                    assert_eq!(flat_dr.to_bits(), naive.to_bits(), "task {t:?} host {h}");
                }
                let flat = mcp_flat_best(&ctx, t, &sched, &host_ready, &mut dr);
                let mut naive = (f64::INFINITY, 0usize, 0.0f64);
                for (h, &ready) in host_ready.iter().enumerate() {
                    let est = ready.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
                    let fin = est + ctx.task_time(t, h);
                    if fin < naive.0 {
                        naive = (fin, h, est);
                    }
                }
                assert_eq!(flat.0.to_bits(), naive.0.to_bits());
                assert_eq!(flat.1, naive.1);
                assert_eq!(flat.2.to_bits(), naive.2.to_bits());
            }
        }
    }
}
