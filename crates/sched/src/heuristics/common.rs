//! Shared machinery for the list schedulers: totally ordered f64 keys,
//! host heaps, and ready-task propagation.
//!
//! # Host-scaling audit (10k–100k hosts)
//!
//! Of the five heuristics, only MCP and DLS rescan the host dimension
//! per task — they get the candidate-set kernel, the loop-swapped flat
//! scans, and (DLS) the incremental dynamic-level maintenance in
//! [`placement`](super::placement) / [`dls`](super::dls). The others
//! are already incremental in character and need no restructuring:
//!
//! * **FCFS / greedy** place each task on the earliest-ready host via
//!   [`HostHeap`]: one `O(P)` build per schedule, `O(log P)` per task.
//!   Per-task cost is sublinear in hosts by construction.
//! * **FCA** partitions hosts once per schedule (`O(P)`) and then works
//!   on the fixed per-cluster assignment; its per-task work is
//!   `O(parents)`, independent of `P`.
//!
//! Their only host-dimension allocations are the one-shot heap/partition
//! builds, amortized over the whole schedule — pooling them would save
//! one `Vec` build per schedule without changing the asymptotics, so
//! they deliberately stay on plain allocations for clarity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rsg_dag::{Dag, TaskId};

/// Total-order wrapper for f64 heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64(pub f64);

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap of hosts keyed by `(ready_time, tie_break)`.
///
/// `tie_break` lets the greedy heuristic permute hosts pseudo-randomly
/// ("a random available host", Section IV.2.3) while FCFS uses the plain
/// host index.
#[derive(Debug)]
pub struct HostHeap {
    heap: BinaryHeap<Reverse<(F64, u32, u32)>>,
}

impl HostHeap {
    /// Builds a heap over `hosts` hosts, all ready at time 0, using the
    /// provided tie-break key per host.
    pub fn new(hosts: usize, tie_break: impl Fn(usize) -> u32) -> HostHeap {
        let heap = (0..hosts)
            .map(|h| Reverse((F64(0.0), tie_break(h), h as u32)))
            .collect();
        HostHeap { heap }
    }

    /// Pops the host with the earliest ready time.
    pub fn pop(&mut self) -> (f64, usize) {
        let Reverse((F64(t), _, h)) = self.heap.pop().expect("host heap never empties");
        (t, h as usize)
    }

    /// Returns a host to the heap with a new ready time.
    pub fn push(&mut self, host: usize, ready: f64, tie: u32) {
        self.heap.push(Reverse((F64(ready), tie, host as u32)));
    }
}

/// Tracks which tasks become ready (all parents scheduled) as scheduling
/// progresses; yields them in FIFO order.
#[derive(Debug)]
pub struct ReadyTracker {
    remaining_parents: Vec<u32>,
    queue: Vec<TaskId>,
    head: usize,
}

impl ReadyTracker {
    /// Initializes with the DAG's entry tasks ready.
    pub fn new(dag: &Dag) -> ReadyTracker {
        let remaining_parents: Vec<u32> =
            dag.tasks().map(|t| dag.parents(t).len() as u32).collect();
        let queue: Vec<TaskId> = dag.entries().collect();
        ReadyTracker {
            remaining_parents,
            queue,
            head: 0,
        }
    }

    /// Next ready task in FIFO order, if any.
    pub fn pop(&mut self) -> Option<TaskId> {
        if self.head < self.queue.len() {
            let t = self.queue[self.head];
            self.head += 1;
            Some(t)
        } else {
            None
        }
    }

    /// Marks `t` scheduled, enqueueing children whose last dependency
    /// this was.
    pub fn complete(&mut self, dag: &Dag, t: TaskId) {
        for e in dag.children(t) {
            let c = e.task;
            self.remaining_parents[c.index()] -= 1;
            if self.remaining_parents[c.index()] == 0 {
                self.queue.push(c);
            }
        }
    }
}

/// Deterministic pseudo-random permutation key (SplitMix64 scramble) for
/// greedy tie-breaking.
#[inline]
pub fn scramble(seed: u64, h: usize) -> u32 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(h as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

/// Integer log2 used for heap-operation op-counting (≥ 1).
#[inline]
pub fn log2_ops(n: usize) -> u64 {
    (usize::BITS - 1 - n.max(2).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::DagBuilder;

    #[test]
    fn f64_total_order() {
        let mut v = vec![F64(2.0), F64(-1.0), F64(0.5)];
        v.sort();
        assert_eq!(v, vec![F64(-1.0), F64(0.5), F64(2.0)]);
    }

    #[test]
    fn host_heap_pops_earliest() {
        let mut h = HostHeap::new(3, |h| h as u32);
        let (t0, h0) = h.pop();
        assert_eq!((t0, h0), (0.0, 0));
        h.push(h0, 10.0, h0 as u32);
        let (_, h1) = h.pop();
        assert_eq!(h1, 1);
        h.push(h1, 5.0, h1 as u32);
        let (_, h2) = h.pop();
        assert_eq!(h2, 2);
        h.push(h2, 7.0, h2 as u32);
        // Now ready times are 10, 5, 7 -> host 1 first.
        assert_eq!(h.pop().1, 1);
    }

    #[test]
    fn ready_tracker_fifo_and_propagation() {
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        let d = b.add_task(1.0);
        b.add_edge(a, d, 0.0).unwrap();
        b.add_edge(c, d, 0.0).unwrap();
        let dag = b.build().unwrap();
        let mut r = ReadyTracker::new(&dag);
        assert_eq!(r.pop(), Some(a));
        r.complete(&dag, a);
        assert_eq!(r.pop(), Some(c));
        // d not ready until c completes.
        assert_eq!(r.pop(), None);
        r.complete(&dag, c);
        assert_eq!(r.pop(), Some(d));
        r.complete(&dag, d);
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn scramble_is_deterministic_and_spread() {
        let a = scramble(1, 5);
        assert_eq!(a, scramble(1, 5));
        assert_ne!(scramble(1, 5), scramble(1, 6));
        assert_ne!(scramble(1, 5), scramble(2, 5));
    }

    #[test]
    fn log2_floor() {
        assert_eq!(log2_ops(1), 1);
        assert_eq!(log2_ops(2), 1);
        assert_eq!(log2_ops(1024), 10);
    }
}
