//! The scheduling heuristics of Chapters IV–VI.
//!
//! Every heuristic consumes an [`ExecutionContext`] and produces a
//! [`Schedule`] plus the [`OpCount`] of elementary operations it spent,
//! which the [`SchedTimeModel`](crate::SchedTimeModel) converts into
//! scheduling seconds.

mod common;
mod dls;
mod fca;
mod fcfs;
mod greedy;
mod mcp;
pub mod placement;
mod scratch;

pub use dls::{Dls, DlsNaive};
pub use fca::Fca;
pub use fcfs::Fcfs;
pub use greedy::Greedy;
pub use mcp::{Mcp, McpNaive};
pub use placement::fast_placement_available;

use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use crate::timemodel::OpCount;

/// A static DAG scheduling heuristic.
pub trait Heuristic: Sync {
    /// Which heuristic this is.
    fn kind(&self) -> HeuristicKind;

    /// Computes a complete schedule, returning the schedule and the
    /// number of elementary operations spent.
    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount);

    /// Heuristic name as used in the paper's figures.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// Enumeration of the implemented heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeuristicKind {
    /// Modified Critical Path (Figure IV-2 / V-12).
    Mcp,
    /// Simple greedy (Figure IV-3).
    Greedy,
    /// Dynamic Level Scheduling (Figure V-13).
    Dls,
    /// Fastest-clock assignment (Figure V-14, reconstructed).
    Fca,
    /// First-come-first-serve (Figure V-15).
    Fcfs,
}

impl HeuristicKind {
    /// All heuristics, in the paper's presentation order.
    pub fn all() -> [HeuristicKind; 5] {
        [
            HeuristicKind::Mcp,
            HeuristicKind::Dls,
            HeuristicKind::Fca,
            HeuristicKind::Fcfs,
            HeuristicKind::Greedy,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            HeuristicKind::Mcp => "MCP",
            HeuristicKind::Greedy => "Greedy",
            HeuristicKind::Dls => "DLS",
            HeuristicKind::Fca => "FCA",
            HeuristicKind::Fcfs => "FCFS",
        }
    }

    /// Parses a display name (case-insensitive).
    pub fn parse(s: &str) -> Option<HeuristicKind> {
        match s.to_ascii_lowercase().as_str() {
            "mcp" => Some(HeuristicKind::Mcp),
            "greedy" => Some(HeuristicKind::Greedy),
            "dls" => Some(HeuristicKind::Dls),
            "fca" => Some(HeuristicKind::Fca),
            "fcfs" => Some(HeuristicKind::Fcfs),
            _ => None,
        }
    }

    /// Instantiates the heuristic.
    pub fn instantiate(self) -> Box<dyn Heuristic> {
        match self {
            HeuristicKind::Mcp => Box::new(Mcp),
            HeuristicKind::Greedy => Box::new(Greedy::default()),
            HeuristicKind::Dls => Box::new(Dls),
            HeuristicKind::Fca => Box::new(Fca),
            HeuristicKind::Fcfs => Box::new(Fcfs),
        }
    }

    /// Instantiates the reference implementation: identical output, but
    /// with the fast placement kernel disabled for MCP and DLS. Used by
    /// differential tests and as the before-optimization benchmark
    /// baseline.
    pub fn instantiate_reference(self) -> Box<dyn Heuristic> {
        match self {
            HeuristicKind::Mcp => Box::new(McpNaive),
            HeuristicKind::Dls => Box::new(DlsNaive),
            other => other.instantiate(),
        }
    }

    /// Runs the heuristic directly.
    pub fn run(self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        self.instantiate().schedule(ctx)
    }

    /// Runs the reference implementation (see
    /// [`instantiate_reference`](HeuristicKind::instantiate_reference)).
    pub fn run_reference(self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        self.instantiate_reference().schedule(ctx)
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;
    use rsg_platform::ResourceCollection;

    /// Every heuristic must produce a valid schedule on a battery of
    /// DAG shapes and resource conditions.
    #[test]
    fn all_heuristics_produce_valid_schedules() {
        let dags = vec![
            rsg_dag::workflows::chain(10, 5.0, 1.0),
            rsg_dag::workflows::bag(20, 3.0),
            rsg_dag::workflows::fork_join(2, 5, 4.0, 2.0),
            RandomDagSpec {
                size: 120,
                ccr: 0.5,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 20.0,
            }
            .generate(1),
        ];
        let rcs = vec![
            ResourceCollection::homogeneous(1, 1500.0),
            ResourceCollection::homogeneous(8, 2800.0),
            ResourceCollection::heterogeneous(8, 3000.0, 0.4, 3),
            ResourceCollection::homogeneous(8, 2800.0).with_bandwidth_heterogeneity(0.5, 5),
        ];
        for dag in &dags {
            for rc in &rcs {
                let ctx = crate::ExecutionContext::new(dag, rc);
                for kind in HeuristicKind::all() {
                    let (s, ops) = kind.run(&ctx);
                    s.validate(&ctx).unwrap_or_else(|e| {
                        panic!("{kind} invalid on {} x {} hosts: {e}", dag.name(), rc.len())
                    });
                    assert!(ops.0 > 0, "{kind} reported zero ops");
                }
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for k in HeuristicKind::all() {
            assert_eq!(HeuristicKind::parse(k.name()), Some(k));
        }
        assert_eq!(HeuristicKind::parse("nope"), None);
    }

    /// On a single host every heuristic serializes all work: makespan =
    /// total work / speed.
    #[test]
    fn single_host_serializes() {
        let dag = RandomDagSpec {
            size: 60,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(9);
        let rc = ResourceCollection::homogeneous(1, 1500.0);
        let ctx = crate::ExecutionContext::new(&dag, &rc);
        for kind in HeuristicKind::all() {
            let (s, _) = kind.run(&ctx);
            assert!(
                (s.makespan() - dag.total_work()).abs() < 1e-6,
                "{kind}: {} vs {}",
                s.makespan(),
                dag.total_work()
            );
        }
    }

    /// MCP must never be worse than FCFS by more than a small factor on
    /// communication-heavy DAGs, and must beat it on average across
    /// seeds (it is the sophisticated reference heuristic).
    #[test]
    fn mcp_beats_fcfs_on_average() {
        let mut mcp_total = 0.0;
        let mut fcfs_total = 0.0;
        for seed in 0..5 {
            let dag = RandomDagSpec {
                size: 150,
                ccr: 1.0,
                parallelism: 0.5,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 20.0,
            }
            .generate(seed);
            let rc = ResourceCollection::homogeneous(12, 1500.0);
            let ctx = crate::ExecutionContext::new(&dag, &rc);
            mcp_total += HeuristicKind::Mcp.run(&ctx).0.makespan();
            fcfs_total += HeuristicKind::Fcfs.run(&ctx).0.makespan();
        }
        assert!(
            mcp_total < fcfs_total,
            "MCP {mcp_total} should beat FCFS {fcfs_total} with CCR=1"
        );
    }
}
