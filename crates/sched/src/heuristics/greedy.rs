//! The simple greedy heuristic (Figure IV-3, Section IV.2.3).
//!
//! "Assigns each task to a random available host as soon as the task's
//! dependencies have cleared": ready tasks are taken FIFO and placed on
//! the earliest-available host, with pseudo-random tie-breaking among
//! equally available hosts (on a fresh homogeneous RC this is exactly a
//! random host). The heuristic is deliberately oblivious to both clock
//! rates and communication costs — its value in the paper is that it is
//! *cheap*: `O(V (log P + parents))` versus MCP's `O((V + E) · P)`.

use super::common::{log2_ops, scramble, HostHeap, ReadyTracker};
use super::{Heuristic, HeuristicKind};
use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use crate::timemodel::OpCount;

/// Simple greedy scheduler with a deterministic tie-break seed.
#[derive(Debug, Clone, Copy)]
pub struct Greedy {
    /// Seed of the pseudo-random host tie-break.
    pub seed: u64,
}

impl Default for Greedy {
    fn default() -> Self {
        Greedy { seed: 0x5EED }
    }
}

impl Heuristic for Greedy {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Greedy
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        let dag = ctx.dag;
        let n = dag.len();
        let hosts = ctx.hosts();
        let mut ops = OpCount::default();

        let mut sched = Schedule::with_capacity(n);
        let mut ready = ReadyTracker::new(dag);
        let mut heap = HostHeap::new(hosts, |h| scramble(self.seed, h));

        while let Some(t) = ready.pop() {
            let i = t.index();
            let (avail, h) = heap.pop();
            let start = avail.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
            let finish = start + ctx.task_time(t, h);
            sched.host[i] = h as u32;
            sched.start[i] = start;
            sched.finish[i] = finish;
            heap.push(h, finish, scramble(self.seed, h));
            ready.complete(dag, t);
            ops += log2_ops(hosts) + dag.parents(t).len() as u64 + 1;
        }

        (sched, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;
    use rsg_platform::ResourceCollection;

    #[test]
    fn greedy_is_much_cheaper_than_mcp() {
        let dag = RandomDagSpec {
            size: 300,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(2);
        let rc = ResourceCollection::homogeneous(200, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (_, greedy_ops) = Greedy::default().schedule(&ctx);
        let (_, mcp_ops) = super::super::Mcp.schedule(&ctx);
        assert!(
            greedy_ops.0 * 10 < mcp_ops.0,
            "greedy {} vs mcp {}",
            greedy_ops.0,
            mcp_ops.0
        );
    }

    #[test]
    fn greedy_spreads_a_bag() {
        let dag = rsg_dag::workflows::bag(8, 10.0);
        let rc = ResourceCollection::homogeneous(8, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Greedy::default().schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert_eq!(s.hosts_used(), 8);
        assert!((s.makespan() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_valid() {
        let dag = RandomDagSpec {
            size: 100,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(3);
        let rc = ResourceCollection::heterogeneous(16, 3000.0, 0.5, 1);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (a, _) = Greedy { seed: 1 }.schedule(&ctx);
        let (b, _) = Greedy { seed: 2 }.schedule(&ctx);
        a.validate(&ctx).unwrap();
        b.validate(&ctx).unwrap();
        // Determinism per seed.
        let (a2, _) = Greedy { seed: 1 }.schedule(&ctx);
        assert_eq!(a, a2);
    }

    #[test]
    fn greedy_ignores_clock_rates() {
        // One blazing host + many slow ones: greedy spreads regardless,
        // ending up slower than all-on-fastest for a chain.
        let dag = rsg_dag::workflows::chain(6, 10.0, 0.0);
        let mut clocks = vec![300.0; 7];
        clocks[3] = 6000.0;
        let rc = ResourceCollection::new(clocks, rsg_platform::CommModel::Uniform);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Greedy::default().schedule(&ctx);
        s.validate(&ctx).unwrap();
        // All-on-fastest would be 6*10/4 = 15 s; greedy does far worse.
        assert!(s.makespan() > 15.0);
    }
}
