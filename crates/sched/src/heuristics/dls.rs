//! DLS — Dynamic Level Scheduling (Sih & Lee), Figure V-13.
//!
//! At each step DLS evaluates every (ready task, host) pair and commits
//! the pair with the greatest *dynamic level*
//!
//! ```text
//! DL(t, h) = SL(t) − max(data_ready(t, h), host_ready(h)) + Δ(t, h)
//! Δ(t, h)  = w̄(t) − w(t, h)
//! ```
//!
//! where `SL` is the static level (bottom level on node weights only)
//! and `w̄(t)` the task's execution time on a median-speed host. DLS is
//! the most expensive heuristic in the Chapter V.6 comparison — its
//! elementary-operation count reflects every pair evaluation a careful
//! direct implementation performs.
//!
//! # Incremental dynamic-level maintenance
//!
//! The reference implementation ([`DlsNaive`]) re-touches every ready
//! candidate after each commit: candidates whose cached best host is
//! the modified host `h` get a full `O(P)` re-evaluation, every other
//! candidate gets a single-column probe of `h` guarded by a strict
//! `dl > best` update. That probe provably never fires: committing to
//! `h` only *raises* `host_ready[h]` (the committed start is at least
//! the previous ready time), data-ready of an already-ready candidate
//! is frozen, and any change to `host_ready[h′]` fully re-evaluates the
//! candidates cached on `h′` — so `DL(t₂, h)` can only have decayed
//! since `t₂`'s last full evaluation, and the strict compare against a
//! max that already included column `h` always fails.
//!
//! [`Dls`] therefore maintains the dynamic levels incrementally:
//!
//! * a lazy-deletion max-heap over `(dl, task)` replaces the per-step
//!   `O(|ready|)` argmax scan (stale entries are skipped on pop);
//! * per-host buckets track which candidates cache each best host, so a
//!   commit to `h` rescans only `bucket[h]` instead of all of `ready`;
//! * the provably-dead single-column probes are skipped *without
//!   touching their floats*, while their modeled cost is still charged
//!   exactly via running weight sums (`Σ(2+parents)` over live
//!   candidates, and per best-host) — the elementary-operation count,
//!   which drives the paper's scheduling-time model, stays bit-identical
//!   to the reference.
//!
//! Full evaluations go through the candidate-set placement kernel when
//! it applies and the loop-swapped flat scan otherwise (both
//! bit-identical to the reference column fold; see
//! [`super::placement`]), and all per-host state comes from the
//! thread-local [`scratch`](super::scratch) pool.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::common::F64;
use super::placement::{self, PlacementIndex};
use super::scratch;
use super::{Heuristic, HeuristicKind};
use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use crate::timemodel::OpCount;
use rsg_dag::{CriticalPathInfo, TaskId};

/// Single-column DLS probes skipped (and charged in bulk) because the
/// incremental invariant proves them dead.
static OBS_SKIPS: rsg_obs::Counter = rsg_obs::Counter::new("sched.kernel.dls_incremental_skips");
/// Candidates fully re-evaluated because their cached best host was the
/// one modified by the last commit.
static OBS_RESCANS: rsg_obs::Counter = rsg_obs::Counter::new("sched.kernel.dls_full_rescans");

/// Dynamic Level Scheduling with incremental dynamic-level maintenance
/// (bit-identical schedules *and* op counts; see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dls;

/// The reference DLS: per-step rescan of every ready candidate with the
/// full per-host column folds. Differential baseline for tests and
/// benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct DlsNaive;

impl Heuristic for Dls {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Dls
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        schedule_incremental(ctx)
    }
}

impl Heuristic for DlsNaive {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Dls
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        schedule_reference(ctx)
    }
}

fn schedule_incremental(ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
    let dag = ctx.dag;
    let n = dag.len();
    let hosts = ctx.hosts();
    let mut ops = OpCount::default();

    let info = CriticalPathInfo::compute(dag);
    ops += 2 * (n as u64 + dag.edge_count() as u64);
    let median_speed = scratch::median_speed(ctx);

    let mut sched = Schedule::with_capacity(n);
    let mut host_ready = scratch::take_ready(hosts);
    let mut state = scratch::take_dls(hosts);
    let mut remaining_parents: Vec<u32> =
        dag.tasks().map(|t| dag.parents(t).len() as u32).collect();

    let mut index = PlacementIndex::new(ctx);
    let mut flat = if index.is_none() {
        Some(scratch::take_flat())
    } else {
        None
    };

    // Full evaluation of one candidate over all hosts — no op charge
    // here; callers charge the modeled cost at the call site.
    let mut eval_full = |t: TaskId,
                         sched: &Schedule,
                         host_ready: &[f64],
                         index: &mut Option<PlacementIndex>|
     -> (f64, usize, f64) {
        let sl = info.static_level[t.index()];
        let wbar = dag.comp(t) / median_speed;
        match index.as_mut() {
            Some(ix) => ix.dls_best(ctx, t, sched, host_ready, sl, wbar),
            None => placement::dls_flat_best(
                ctx,
                t,
                sched,
                host_ready,
                sl,
                wbar,
                flat.as_mut()
                    .expect("flat buffer on declined path")
                    .get(hosts),
            ),
        }
    };

    // Per-candidate cached state (task-indexed).
    let mut in_ready = vec![false; n];
    let mut dl = vec![0.0f64; n];
    let mut best_host = vec![0u32; n];
    let mut best_start = vec![0.0f64; n];
    // Position within the best host's bucket, for O(1) removal.
    let mut pos = vec![0u32; n];
    // Lazy-deletion max-heap: `(dl, lowest task id wins ties)`. An
    // entry is live iff the task is still ready *and* its cached dl
    // bits match; everything else is skipped on pop.
    let mut heap: BinaryHeap<(F64, Reverse<u32>)> = BinaryHeap::with_capacity(n);
    // Σ (2 + parents) over ready candidates — the bulk charge for the
    // skipped single-column probes.
    let mut weight_sum = 0u64;
    let mut live = 0u64;
    let weight = |t: TaskId| 2 + dag.parents(t).len() as u64;

    // Registers a freshly evaluated candidate in every structure.
    macro_rules! insert {
        ($t:expr, $best:expr) => {{
            let t: TaskId = $t;
            let (d, bh, st): (f64, usize, f64) = $best;
            let i = t.index();
            in_ready[i] = true;
            dl[i] = d;
            best_host[i] = bh as u32;
            best_start[i] = st;
            pos[i] = state.bucket_push(bh, t.0);
            state.sh_add(bh, weight(t));
            weight_sum += weight(t);
            live += 1;
            heap.push((F64(d), Reverse(t.0)));
        }};
    }

    for t in dag.entries() {
        let best = eval_full(t, &sched, &host_ready, &mut index);
        // Modeled cost of the full scan the reference performs when a
        // task becomes ready.
        ops += hosts as u64 * weight(t);
        insert!(t, best);
    }

    let mut scheduled = 0usize;
    while scheduled < n {
        // Pop the live maximum (highest dl, lowest task id on ties) —
        // the same pair the reference's linear argmax selects.
        let t = loop {
            let (F64(d), Reverse(ti)) = heap.pop().expect("ready set non-empty");
            let i = ti as usize;
            if in_ready[i] && dl[i].to_bits() == d.to_bits() {
                break TaskId(ti);
            }
        };
        // The reference charges one comparison per ready candidate for
        // the argmax, including the winner.
        ops += live;
        let i = t.index();
        let h = best_host[i] as usize;
        // Remove the winner from the candidate structures.
        in_ready[i] = false;
        live -= 1;
        weight_sum -= weight(t);
        state.sh_sub(h, weight(t));
        if let Some(moved) = state.bucket_swap_remove(h, pos[i]) {
            pos[moved as usize] = pos[i];
        }

        let start = best_start[i];
        let finish = start + ctx.task_time(t, h);
        sched.host[i] = h as u32;
        sched.start[i] = start;
        sched.finish[i] = finish;
        host_ready.set(h, finish);
        if let Some(ix) = index.as_mut() {
            ix.update(h, finish);
        }
        scheduled += 1;

        // Newly ready children: full evaluation, like the reference.
        for e in dag.children(t) {
            let c = e.task;
            remaining_parents[c.index()] -= 1;
            if remaining_parents[c.index()] == 0 {
                let best = eval_full(c, &sched, &host_ready, &mut index);
                ops += hosts as u64 * weight(c);
                insert!(c, best);
            }
        }

        // The reference now sweeps every ready candidate: a full
        // re-evaluation for those cached on `h` (their best may have
        // degraded), a single-column probe of `h` for the rest. The
        // probes provably never change anything (module docs), so only
        // the bucket is rescanned — but the modeled cost of the whole
        // sweep is charged exactly: `hosts · (2+parents)` per bucket
        // member, `2+parents` per skipped candidate.
        let bucket_weight = state.sh(h);
        ops += (weight_sum - bucket_weight) + hosts as u64 * bucket_weight;
        let rescan = state.snapshot_bucket(h);
        OBS_RESCANS.add(rescan.len() as u64);
        OBS_SKIPS.add(live - rescan.len() as u64);
        for &ti in &rescan {
            let t2 = TaskId(ti);
            let i2 = t2.index();
            debug_assert!(in_ready[i2]);
            let (d2, bh2, st2) = eval_full(t2, &sched, &host_ready, &mut index);
            if bh2 != h {
                // Moved buckets: O(1) swap-remove plus re-push.
                let w = weight(t2);
                state.sh_sub(h, w);
                if let Some(moved) = state.bucket_swap_remove(h, pos[i2]) {
                    pos[moved as usize] = pos[i2];
                }
                pos[i2] = state.bucket_push(bh2, ti);
                state.sh_add(bh2, w);
            }
            best_host[i2] = bh2 as u32;
            best_start[i2] = st2;
            if d2.to_bits() != dl[i2].to_bits() {
                dl[i2] = d2;
                heap.push((F64(d2), Reverse(ti)));
            }
        }
        state.return_snapshot(rescan);
    }

    (sched, ops)
}

fn schedule_reference(ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
    struct Cand {
        task: TaskId,
        best_dl: f64,
        best_host: usize,
        best_start: f64,
    }

    let dag = ctx.dag;
    let n = dag.len();
    let hosts = ctx.hosts();
    let mut ops = OpCount::default();

    let info = CriticalPathInfo::compute(dag);
    ops += 2 * (n as u64 + dag.edge_count() as u64);

    // Median-speed execution time per task.
    let median_speed = {
        let mut sp: Vec<f64> = (0..hosts).map(|h| ctx.speed(h)).collect();
        sp.sort_by(f64::total_cmp);
        sp[sp.len() / 2]
    };

    let mut sched = Schedule::with_capacity(n);
    let mut host_ready = vec![0.0f64; hosts];
    let mut remaining_parents: Vec<u32> =
        dag.tasks().map(|t| dag.parents(t).len() as u32).collect();

    // Evaluates DL over all hosts for one task; returns the best.
    let eval_all =
        |t: TaskId, sched: &Schedule, host_ready: &[f64], ops: &mut OpCount| -> (f64, usize, f64) {
            let sl = info.static_level[t.index()];
            let wbar = dag.comp(t) / median_speed;
            let mut best = (f64::NEG_INFINITY, 0usize, 0.0f64);
            for (h, &ready) in host_ready.iter().enumerate() {
                let start = ready.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
                let dl = sl - start + (wbar - ctx.task_time(t, h));
                if dl > best.0 {
                    best = (dl, h, start);
                }
            }
            *ops += hosts as u64 * (2 + dag.parents(t).len() as u64);
            best
        };

    let mut ready: Vec<Cand> = Vec::new();
    for t in dag.entries() {
        let (dl, h, st) = eval_all(t, &sched, &host_ready, &mut ops);
        ready.push(Cand {
            task: t,
            best_dl: dl,
            best_host: h,
            best_start: st,
        });
    }

    let mut scheduled = 0usize;
    while scheduled < n {
        // Commit the globally best (task, host) pair.
        let (bi, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.best_dl.total_cmp(&b.best_dl).then(b.task.cmp(&a.task)))
            .expect("ready set non-empty while tasks remain");
        ops += ready.len() as u64;
        let cand = ready.swap_remove(bi);
        let t = cand.task;
        let i = t.index();
        let h = cand.best_host;
        let start = cand.best_start;
        let finish = start + ctx.task_time(t, h);
        sched.host[i] = h as u32;
        sched.start[i] = start;
        sched.finish[i] = finish;
        host_ready[h] = finish;
        scheduled += 1;

        // Newly ready children: full evaluation.
        for e in dag.children(t) {
            let c = e.task;
            remaining_parents[c.index()] -= 1;
            if remaining_parents[c.index()] == 0 {
                let (dl, bh, st) = eval_all(c, &sched, &host_ready, &mut ops);
                ready.push(Cand {
                    task: c,
                    best_dl: dl,
                    best_host: bh,
                    best_start: st,
                });
            }
        }

        // Existing candidates: only host h changed. Re-evaluate that
        // column; tasks whose cached best was h need a full rescan
        // (their best may have degraded).
        for cand in &mut ready {
            let t2 = cand.task;
            if cand.best_host == h {
                let (dl, bh, st) = eval_all(t2, &sched, &host_ready, &mut ops);
                cand.best_dl = dl;
                cand.best_host = bh;
                cand.best_start = st;
            } else {
                let sl = info.static_level[t2.index()];
                let wbar = dag.comp(t2) / median_speed;
                let start = host_ready[h].max(ctx.data_ready(t2, h, &sched.finish, &sched.host));
                let dl = sl - start + (wbar - ctx.task_time(t2, h));
                ops += 2 + dag.parents(t2).len() as u64;
                if dl > cand.best_dl {
                    cand.best_dl = dl;
                    cand.best_host = h;
                    cand.best_start = start;
                }
            }
        }
    }

    (sched, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;
    use rsg_platform::ResourceCollection;

    #[test]
    fn dls_valid_and_sensible_on_random_dag() {
        let dag = RandomDagSpec {
            size: 150,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(7);
        let rc = ResourceCollection::heterogeneous(12, 3000.0, 0.3, 3);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, ops) = Dls.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!(ops.0 > 0);
    }

    #[test]
    fn dls_prefers_fast_hosts_for_chain() {
        let dag = rsg_dag::workflows::chain(4, 10.0, 0.0);
        let rc = ResourceCollection::new(vec![1500.0, 6000.0], rsg_platform::CommModel::Uniform);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Dls.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!((s.makespan() - 10.0).abs() < 1e-9, "{}", s.makespan());
        assert!(s.host.iter().all(|&h| h == 1));
    }

    #[test]
    fn dls_is_most_expensive() {
        let dag = RandomDagSpec {
            size: 200,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(8);
        let rc = ResourceCollection::homogeneous(50, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (_, dls_ops) = Dls.schedule(&ctx);
        let (_, mcp_ops) = super::super::Mcp.schedule(&ctx);
        assert!(
            dls_ops.0 > mcp_ops.0,
            "dls {} should exceed mcp {}",
            dls_ops.0,
            mcp_ops.0
        );
    }

    #[test]
    fn fast_kernel_matches_naive_scan() {
        let rcs = [
            ResourceCollection::homogeneous(40, 1500.0),
            ResourceCollection::new(
                [1500.0, 2800.0, 750.0, 2800.0].repeat(10),
                rsg_platform::CommModel::Uniform,
            ),
        ];
        for seed in 0..4 {
            let dag = RandomDagSpec {
                size: 150,
                ccr: 1.0,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 10.0,
            }
            .generate(seed);
            for rc in &rcs {
                let ctx = ExecutionContext::new(&dag, rc);
                assert!(super::super::placement::fast_placement_available(&ctx));
                let (fast, fast_ops) = Dls.schedule(&ctx);
                let (naive, naive_ops) = DlsNaive.schedule(&ctx);
                assert_eq!(fast.host, naive.host, "seed {seed}");
                assert_eq!(fast.start, naive.start, "seed {seed}");
                assert_eq!(fast.finish, naive.finish, "seed {seed}");
                assert_eq!(fast_ops, naive_ops, "seed {seed}");
            }
        }
    }

    #[test]
    fn incremental_matches_reference_on_declined_configs() {
        // Heterogeneous clocks and bandwidth heterogeneity force the
        // flat-scan path; the incremental maintenance must still be
        // bit-identical (schedule and op count) to the reference.
        for seed in 0..3 {
            let dag = RandomDagSpec {
                size: 120,
                ccr: 1.0,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 10.0,
            }
            .generate(seed);
            for rc in [
                ResourceCollection::heterogeneous(17, 3000.0, 0.4, seed),
                ResourceCollection::heterogeneous(17, 3000.0, 0.4, seed)
                    .with_bandwidth_heterogeneity(0.3, seed + 1),
            ] {
                let ctx = ExecutionContext::new(&dag, &rc);
                assert!(!super::super::placement::fast_placement_available(&ctx));
                let (fast, fast_ops) = Dls.schedule(&ctx);
                let (naive, naive_ops) = DlsNaive.schedule(&ctx);
                assert_eq!(fast.host, naive.host, "seed {seed}");
                assert_eq!(fast.start, naive.start, "seed {seed}");
                assert_eq!(fast.finish, naive.finish, "seed {seed}");
                assert_eq!(fast_ops, naive_ops, "seed {seed}");
            }
        }
    }

    #[test]
    fn dls_incremental_matches_quality_of_mcp_roughly() {
        // DLS and MCP should be within 2x of each other on a moderate
        // workload (both are critical-path heuristics).
        let dag = RandomDagSpec {
            size: 120,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 20.0,
        }
        .generate(11);
        let rc = ResourceCollection::homogeneous(10, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (d, _) = Dls.schedule(&ctx);
        let (m, _) = super::super::Mcp.schedule(&ctx);
        d.validate(&ctx).unwrap();
        let ratio = d.makespan() / m.makespan();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
