//! DLS — Dynamic Level Scheduling (Sih & Lee), Figure V-13.
//!
//! At each step DLS evaluates every (ready task, host) pair and commits
//! the pair with the greatest *dynamic level*
//!
//! ```text
//! DL(t, h) = SL(t) − max(data_ready(t, h), host_ready(h)) + Δ(t, h)
//! Δ(t, h)  = w̄(t) − w(t, h)
//! ```
//!
//! where `SL` is the static level (bottom level on node weights only)
//! and `w̄(t)` the task's execution time on a median-speed host. DLS is
//! the most expensive heuristic in the Chapter V.6 comparison — its
//! elementary-operation count reflects every pair evaluation actually
//! performed.
//!
//! Implementation note: a full `|ready| × P` rescan per step is
//! `O(V² P)` in the worst case; we keep the rescan exact but incremental
//! — after committing a pair only the modified host's column, the
//! newly-ready tasks, and any task whose cached best host was the
//! modified one are re-evaluated. The op count only charges evaluations
//! actually done, which is what a careful implementation (like the
//! authors') would spend.

use super::placement::PlacementIndex;
use super::{Heuristic, HeuristicKind};
use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use crate::timemodel::OpCount;
use rsg_dag::{CriticalPathInfo, TaskId};

/// Dynamic Level Scheduling. Full-host evaluations go through the
/// candidate-set placement kernel when it applies (bit-identical
/// schedules; see [`super::placement`]), the full scan otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dls;

/// DLS with the fast placement kernel disabled: every full evaluation
/// scans all hosts. Reference implementation for differential tests
/// and benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct DlsNaive;

struct Cand {
    task: TaskId,
    best_dl: f64,
    best_host: usize,
    best_start: f64,
}

impl Heuristic for Dls {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Dls
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        schedule_impl(ctx, true)
    }
}

impl Heuristic for DlsNaive {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Dls
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        schedule_impl(ctx, false)
    }
}

fn schedule_impl(ctx: &ExecutionContext<'_>, use_fast: bool) -> (Schedule, OpCount) {
    let dag = ctx.dag;
    let n = dag.len();
    let hosts = ctx.hosts();
    let mut ops = OpCount::default();

    let info = CriticalPathInfo::compute(dag);
    ops += 2 * (n as u64 + dag.edge_count() as u64);

    // Median-speed execution time per task.
    let median_speed = {
        let mut sp: Vec<f64> = (0..hosts).map(|h| ctx.speed(h)).collect();
        sp.sort_by(f64::total_cmp);
        sp[sp.len() / 2]
    };

    let mut sched = Schedule::with_capacity(n);
    let mut host_ready = vec![0.0f64; hosts];
    let mut remaining_parents: Vec<u32> =
        dag.tasks().map(|t| dag.parents(t).len() as u32).collect();

    let mut index = if use_fast {
        PlacementIndex::new(ctx)
    } else {
        None
    };

    // Evaluates DL over all hosts for one task; returns the best.
    // The op charge models the full scan either way — the scan is
    // the phenomenon the paper measures.
    let eval_all = |t: TaskId,
                    sched: &Schedule,
                    host_ready: &[f64],
                    index: &mut Option<PlacementIndex>,
                    ops: &mut OpCount|
     -> (f64, usize, f64) {
        let sl = info.static_level[t.index()];
        let wbar = dag.comp(t) / median_speed;
        let best = match index.as_mut() {
            Some(ix) => ix.dls_best(ctx, t, sched, host_ready, sl, wbar),
            None => {
                let mut best = (f64::NEG_INFINITY, 0usize, 0.0f64);
                for (h, &ready) in host_ready.iter().enumerate() {
                    let start = ready.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
                    let dl = sl - start + (wbar - ctx.task_time(t, h));
                    if dl > best.0 {
                        best = (dl, h, start);
                    }
                }
                best
            }
        };
        *ops += hosts as u64 * (2 + dag.parents(t).len() as u64);
        best
    };

    let mut ready: Vec<Cand> = Vec::new();
    for t in dag.entries() {
        let (dl, h, st) = eval_all(t, &sched, &host_ready, &mut index, &mut ops);
        ready.push(Cand {
            task: t,
            best_dl: dl,
            best_host: h,
            best_start: st,
        });
    }

    let mut scheduled = 0usize;
    while scheduled < n {
        // Commit the globally best (task, host) pair.
        let (bi, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.best_dl.total_cmp(&b.best_dl).then(b.task.cmp(&a.task)))
            .expect("ready set non-empty while tasks remain");
        ops += ready.len() as u64;
        let cand = ready.swap_remove(bi);
        let t = cand.task;
        let i = t.index();
        let h = cand.best_host;
        let start = cand.best_start;
        let finish = start + ctx.task_time(t, h);
        sched.host[i] = h as u32;
        sched.start[i] = start;
        sched.finish[i] = finish;
        host_ready[h] = finish;
        if let Some(ix) = index.as_mut() {
            ix.update(h, finish);
        }
        scheduled += 1;

        // Newly ready children: full evaluation.
        for e in dag.children(t) {
            let c = e.task;
            remaining_parents[c.index()] -= 1;
            if remaining_parents[c.index()] == 0 {
                let (dl, bh, st) = eval_all(c, &sched, &host_ready, &mut index, &mut ops);
                ready.push(Cand {
                    task: c,
                    best_dl: dl,
                    best_host: bh,
                    best_start: st,
                });
            }
        }

        // Existing candidates: only host h changed. Re-evaluate that
        // column; tasks whose cached best was h need a full rescan
        // (their best may have degraded).
        for cand in ready.iter_mut() {
            let t2 = cand.task;
            if cand.best_host == h {
                let (dl, bh, st) = eval_all(t2, &sched, &host_ready, &mut index, &mut ops);
                cand.best_dl = dl;
                cand.best_host = bh;
                cand.best_start = st;
            } else {
                let sl = info.static_level[t2.index()];
                let wbar = dag.comp(t2) / median_speed;
                let start = host_ready[h].max(ctx.data_ready(t2, h, &sched.finish, &sched.host));
                let dl = sl - start + (wbar - ctx.task_time(t2, h));
                ops += 2 + dag.parents(t2).len() as u64;
                if dl > cand.best_dl {
                    cand.best_dl = dl;
                    cand.best_host = h;
                    cand.best_start = start;
                }
            }
        }
    }

    (sched, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::RandomDagSpec;
    use rsg_platform::ResourceCollection;

    #[test]
    fn dls_valid_and_sensible_on_random_dag() {
        let dag = RandomDagSpec {
            size: 150,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(7);
        let rc = ResourceCollection::heterogeneous(12, 3000.0, 0.3, 3);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, ops) = Dls.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!(ops.0 > 0);
    }

    #[test]
    fn dls_prefers_fast_hosts_for_chain() {
        let dag = rsg_dag::workflows::chain(4, 10.0, 0.0);
        let rc = ResourceCollection::new(vec![1500.0, 6000.0], rsg_platform::CommModel::Uniform);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Dls.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!((s.makespan() - 10.0).abs() < 1e-9, "{}", s.makespan());
        assert!(s.host.iter().all(|&h| h == 1));
    }

    #[test]
    fn dls_is_most_expensive() {
        let dag = RandomDagSpec {
            size: 200,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(8);
        let rc = ResourceCollection::homogeneous(50, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (_, dls_ops) = Dls.schedule(&ctx);
        let (_, mcp_ops) = super::super::Mcp.schedule(&ctx);
        assert!(
            dls_ops.0 > mcp_ops.0,
            "dls {} should exceed mcp {}",
            dls_ops.0,
            mcp_ops.0
        );
    }

    #[test]
    fn fast_kernel_matches_naive_scan() {
        let rcs = [
            ResourceCollection::homogeneous(40, 1500.0),
            ResourceCollection::new(
                [1500.0, 2800.0, 750.0, 2800.0].repeat(10),
                rsg_platform::CommModel::Uniform,
            ),
        ];
        for seed in 0..4 {
            let dag = RandomDagSpec {
                size: 150,
                ccr: 1.0,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 10.0,
            }
            .generate(seed);
            for rc in &rcs {
                let ctx = ExecutionContext::new(&dag, rc);
                assert!(super::super::placement::fast_placement_available(&ctx));
                let (fast, fast_ops) = Dls.schedule(&ctx);
                let (naive, naive_ops) = DlsNaive.schedule(&ctx);
                assert_eq!(fast.host, naive.host, "seed {seed}");
                assert_eq!(fast.start, naive.start, "seed {seed}");
                assert_eq!(fast.finish, naive.finish, "seed {seed}");
                assert_eq!(fast_ops, naive_ops, "seed {seed}");
            }
        }
    }

    #[test]
    fn dls_incremental_matches_quality_of_mcp_roughly() {
        // DLS and MCP should be within 2x of each other on a moderate
        // workload (both are critical-path heuristics).
        let dag = RandomDagSpec {
            size: 120,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 20.0,
        }
        .generate(11);
        let rc = ResourceCollection::homogeneous(10, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (d, _) = Dls.schedule(&ctx);
        let (m, _) = super::super::Mcp.schedule(&ctx);
        d.validate(&ctx).unwrap();
        let ratio = d.makespan() / m.makespan();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
