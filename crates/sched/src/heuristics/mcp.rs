//! Modified Critical Path (Wu & Gajski), Figure IV-2 / V-12.
//!
//! 1. Compute the critical path `CP` and per-node bottom levels `BL_i`
//!    (node + edge weights); `ALAP_i = CP − BL_i`.
//! 2. Order nodes by the lexicographic comparison of the ascending lists
//!    of ALAP values of each node and its descendants. Because a node's
//!    own ALAP is always the minimum of its list and the minimum
//!    descendant ALAP is the second element, the order is realized by
//!    the sort key `(ALAP, level, min-child-ALAP, id)` without
//!    materializing the O(V²) descendant lists (the `level` component
//!    keeps the order topological when zero-weight ties occur).
//! 3. Schedule each node on the host that completes it soonest.
//!
//! Operation accounting: the dominant cost is the placement scan — for
//! every task, every host is evaluated against every parent — i.e.
//! `(V + E) · P` elementary evaluations, plus the `V log V` priority
//! sort. This is the polynomial growth in RC size that creates the
//! turnaround knee of Chapter V.

use super::common::log2_ops;
use super::placement::{self, PlacementIndex};
use super::scratch;
use super::{Heuristic, HeuristicKind};
use crate::context::ExecutionContext;
use crate::schedule::Schedule;
use crate::timemodel::OpCount;
use rsg_dag::CriticalPathInfo;

/// The Modified Critical Path heuristic. Uses the candidate-set
/// placement kernel when it applies (bit-identical schedules; see
/// [`super::placement`]), the full host scan otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcp;

/// MCP with the fast placement kernel disabled: always the full host
/// scan. Reference implementation for differential tests and benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct McpNaive;

impl Heuristic for Mcp {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Mcp
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        schedule_impl(ctx, true)
    }
}

impl Heuristic for McpNaive {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Mcp
    }

    fn schedule(&self, ctx: &ExecutionContext<'_>) -> (Schedule, OpCount) {
        schedule_impl(ctx, false)
    }
}

fn schedule_impl(ctx: &ExecutionContext<'_>, use_fast: bool) -> (Schedule, OpCount) {
    let dag = ctx.dag;
    let n = dag.len();
    let hosts = ctx.hosts();
    let mut ops = OpCount::default();

    let info = CriticalPathInfo::compute(dag);
    ops += 2 * (n as u64 + dag.edge_count() as u64); // two CP sweeps

    // min-child-ALAP per node (second lexicographic key).
    let mut min_child_alap = vec![f64::INFINITY; n];
    for t in dag.tasks() {
        let mut m = f64::INFINITY;
        for e in dag.children(t) {
            m = m.min(info.alap(e.task));
        }
        min_child_alap[t.index()] = m;
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        let ta = rsg_dag::TaskId(a as u32);
        let tb = rsg_dag::TaskId(b as u32);
        info.alap(ta)
            .total_cmp(&info.alap(tb))
            .then(dag.level(ta).cmp(&dag.level(tb)))
            .then(min_child_alap[a].total_cmp(&min_child_alap[b]))
            .then(a.cmp(&b))
    });
    ops += n as u64 * log2_ops(n);

    let mut sched = Schedule::with_capacity(n);
    if use_fast {
        // Fast path: pooled host-ready array (zero steady-state
        // allocation), candidate-set kernel when it engages, the
        // loop-swapped flat scan otherwise. Both are bit-identical to
        // the reference scan below.
        let mut host_ready = scratch::take_ready(hosts);
        let mut index = PlacementIndex::new(ctx);
        let mut flat = if index.is_none() {
            Some(scratch::take_flat())
        } else {
            None
        };
        for &ti in &order {
            let t = rsg_dag::TaskId(ti);
            let i = t.index();
            let parents = dag.parents(t).len() as u64;
            let (best_finish, best_host, best_start) = match index.as_mut() {
                Some(ix) => ix.mcp_best(ctx, t, &sched, &host_ready),
                None => placement::mcp_flat_best(
                    ctx,
                    t,
                    &sched,
                    &host_ready,
                    flat.as_mut()
                        .expect("flat buffer on declined path")
                        .get(hosts),
                ),
            };
            // Modeled cost of the full scan, regardless of how the
            // winner was found: the scan *is* the phenomenon the paper
            // measures, and the knee tables depend on it.
            ops += hosts as u64 * (1 + parents);
            sched.host[i] = best_host as u32;
            sched.start[i] = best_start;
            sched.finish[i] = best_finish;
            host_ready.set(best_host, best_finish);
            if let Some(ix) = index.as_mut() {
                ix.update(best_host, best_finish);
            }
        }
    } else {
        // Reference scan: one pass over hosts per task, data-ready
        // folded per host. Kept verbatim as the differential baseline.
        let mut host_ready = vec![0.0f64; hosts];
        for &ti in &order {
            let t = rsg_dag::TaskId(ti);
            let i = t.index();
            let parents = dag.parents(t).len() as u64;
            let mut best_finish = f64::INFINITY;
            let mut best_host = 0usize;
            let mut best_start = 0.0f64;
            for (h, &ready) in host_ready.iter().enumerate() {
                let est = ready.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
                let fin = est + ctx.task_time(t, h);
                if fin < best_finish {
                    best_finish = fin;
                    best_host = h;
                    best_start = est;
                }
            }
            ops += hosts as u64 * (1 + parents);
            sched.host[i] = best_host as u32;
            sched.start[i] = best_start;
            sched.finish[i] = best_finish;
            host_ready[best_host] = best_finish;
        }
    }

    (sched, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_dag::{DagBuilder, RandomDagSpec};
    use rsg_platform::ResourceCollection;

    #[test]
    fn mcp_parallelizes_independent_tasks() {
        let dag = rsg_dag::workflows::bag(4, 10.0);
        let rc = ResourceCollection::homogeneous(4, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Mcp.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!((s.makespan() - 10.0).abs() < 1e-9);
        assert_eq!(s.hosts_used(), 4);
    }

    #[test]
    fn mcp_prefers_fast_hosts() {
        let dag = rsg_dag::workflows::chain(3, 10.0, 0.0);
        let rc = ResourceCollection::new(vec![1500.0, 6000.0], rsg_platform::CommModel::Uniform);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Mcp.schedule(&ctx);
        s.validate(&ctx).unwrap();
        // Everything belongs on the 4x host: 3 * 10 / 4.
        assert!((s.makespan() - 7.5).abs() < 1e-9);
        assert!(s.host.iter().all(|&h| h == 1));
    }

    #[test]
    fn mcp_avoids_expensive_transfers() {
        // Parent-child with a transfer far more expensive than serial
        // execution: MCP must co-locate.
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(10.0);
        b.add_edge(a, c, 1000.0).unwrap();
        let dag = b.build().unwrap();
        let rc = ResourceCollection::homogeneous(2, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Mcp.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert_eq!(s.host[0], s.host[1]);
        assert!((s.makespan() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn op_count_grows_linearly_with_hosts() {
        let dag = RandomDagSpec {
            size: 200,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(4);
        let rc_small = ResourceCollection::homogeneous(10, 1500.0);
        let rc_big = ResourceCollection::homogeneous(100, 1500.0);
        let ops_small = Mcp.schedule(&ExecutionContext::new(&dag, &rc_small)).1 .0;
        let ops_big = Mcp.schedule(&ExecutionContext::new(&dag, &rc_big)).1 .0;
        let ratio = ops_big as f64 / ops_small as f64;
        assert!(
            (5.0..11.0).contains(&ratio),
            "op growth should be ~linear in P, got {ratio}"
        );
    }

    #[test]
    fn fast_kernel_matches_naive_scan() {
        let rcs = [
            ResourceCollection::homogeneous(40, 1500.0),
            ResourceCollection::new(
                [1500.0, 2800.0, 750.0, 2800.0].repeat(10),
                rsg_platform::CommModel::Uniform,
            ),
        ];
        for seed in 0..4 {
            let dag = RandomDagSpec {
                size: 150,
                ccr: 1.0,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 10.0,
            }
            .generate(seed);
            for rc in &rcs {
                let ctx = ExecutionContext::new(&dag, rc);
                assert!(super::super::placement::fast_placement_available(&ctx));
                let (fast, fast_ops) = Mcp.schedule(&ctx);
                let (naive, naive_ops) = McpNaive.schedule(&ctx);
                assert_eq!(fast.host, naive.host, "seed {seed}");
                assert_eq!(fast.start, naive.start, "seed {seed}");
                assert_eq!(fast.finish, naive.finish, "seed {seed}");
                assert_eq!(fast_ops, naive_ops, "seed {seed}");
            }
        }
    }

    #[test]
    fn alap_order_schedules_critical_path_first() {
        // The critical entry (largest BL) must be placed before the
        // other entry.
        let mut b = DagBuilder::new();
        let heavy = b.add_task(100.0);
        let light = b.add_task(1.0);
        let sink = b.add_task(1.0);
        b.add_edge(heavy, sink, 0.0).unwrap();
        b.add_edge(light, sink, 0.0).unwrap();
        let dag = b.build().unwrap();
        let rc = ResourceCollection::homogeneous(1, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = Mcp.schedule(&ctx);
        s.validate(&ctx).unwrap();
        assert!(s.start[0] < s.start[1], "critical task first");
    }
}
