//! Per-thread kernel scratch: reusable buffers for the placement hot
//! path, so a sweep's thousands of kernel invocations reach zero
//! steady-state allocation in the inner loop.
//!
//! A sweep evaluates the same RC at the same ladder of prefix sizes for
//! every DAG instance of a cell, so host-dimension state (ready-time
//! arrays, per-class segment trees, epoch-marked scan buffers, DLS
//! candidate buckets) is taken from a thread-local pool at schedule
//! start and returned on drop. Buffers are *reset on take* via a
//! touched-host list recorded by the previous run — O(writes), not
//! O(hosts) — which also makes the pool panic-safe: a schedule that
//! unwinds leaves its touched list populated, and the next take resets
//! it. Writers push to the touched list *before* writing.
//!
//! Cache keys include [`ResourceCollection::uid`], the stable identity
//! of an RC's (immutable) clock vector, so a pool never serves state
//! built for different clocks.
//!
//! [`ResourceCollection::uid`]: rsg_platform::ResourceCollection::uid

use std::cell::RefCell;
use std::mem::take;
use std::ops::Deref;

use super::placement::TreeBank;
use crate::context::ExecutionContext;

/// Pool takes served by resetting a cached buffer.
static OBS_HITS: rsg_obs::Counter = rsg_obs::Counter::new("sched.kernel.scratch_hits");
/// Pool takes that had to build state from scratch.
static OBS_BUILDS: rsg_obs::Counter = rsg_obs::Counter::new("sched.kernel.scratch_builds");
/// Wall time spent resetting pooled class-tree banks on take.
static OBS_RESET: rsg_obs::TimingHistogram =
    rsg_obs::TimingHistogram::new("sched.kernel.bank_reset");

#[derive(Default)]
struct Pool {
    ready: Option<ReadyBuf>,
    scan: Option<ScanBuf>,
    flat: Option<Vec<f64>>,
    dls: Option<DlsBuf>,
    /// `((rc uid, hosts), bank)` — class segment trees per prefix size.
    banks: Vec<((u64, usize), TreeBank)>,
    /// `((rc uid, refclk bits, hosts), median speed)`.
    medians: Vec<((u64, u64, usize), f64)>,
    sort_buf: Vec<f64>,
}

/// A sweep ladder visits O(log P) prefix sizes plus refinement probes;
/// the cap is a leak guard for long multi-RC runs, not a working-set
/// bound.
const BANK_CAP: usize = 24;

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

#[derive(Default)]
struct ReadyBuf {
    vals: Vec<f64>,
    touched: Vec<u32>,
}

/// Pooled host-ready array: flat `f64` per host, all zero at take,
/// touched-list reset. Dereferences to the `hosts`-long slice for
/// branch-free scans.
pub struct PooledReady {
    inner: ReadyBuf,
    hosts: usize,
}

impl PooledReady {
    /// Records a new ready time for `host`.
    #[inline]
    pub fn set(&mut self, host: usize, ready: f64) {
        self.inner.touched.push(host as u32);
        self.inner.vals[host] = ready;
    }
}

impl Deref for PooledReady {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.inner.vals[..self.hosts]
    }
}

impl Drop for PooledReady {
    fn drop(&mut self) {
        let inner = take(&mut self.inner);
        POOL.with(|p| p.borrow_mut().ready = Some(inner));
    }
}

/// Takes the host-ready buffer from the pool (or builds one), zeroed.
pub fn take_ready(hosts: usize) -> PooledReady {
    let inner = POOL.with(|p| p.borrow_mut().ready.take());
    let mut inner = match inner {
        Some(b) => {
            OBS_HITS.incr();
            b
        }
        None => {
            OBS_BUILDS.incr();
            ReadyBuf::default()
        }
    };
    for &h in &inner.touched {
        if let Some(v) = inner.vals.get_mut(h as usize) {
            *v = 0.0;
        }
    }
    inner.touched.clear();
    if inner.vals.len() < hosts {
        inner.vals.resize(hosts, 0.0);
    }
    PooledReady { inner, hosts }
}

/// Epoch-marked per-host scan buffers for the placement kernel's
/// candidate gathering. The epoch is monotone for the thread's
/// lifetime, so stale marks from earlier schedules never match.
#[derive(Default)]
pub struct ScanBuf {
    /// `mark[h] == epoch` ⇔ `h` holds a parent of the current task.
    pub mark: Vec<u64>,
    /// Current query stamp.
    pub epoch: u64,
    /// Per parent host, max co-located arrival.
    pub on_max: Vec<f64>,
    /// Per parent host, max off-host arrival.
    pub out_max: Vec<f64>,
    /// Candidate host indices of the current query.
    pub cand: Vec<u32>,
    /// Parent hosts of the current task.
    pub touched: Vec<u32>,
}

/// Pooled [`ScanBuf`], returned on drop. Dereferences to the buffer.
pub struct PooledScan {
    inner: ScanBuf,
}

impl Deref for PooledScan {
    type Target = ScanBuf;
    #[inline]
    fn deref(&self) -> &ScanBuf {
        &self.inner
    }
}

impl std::ops::DerefMut for PooledScan {
    #[inline]
    fn deref_mut(&mut self) -> &mut ScanBuf {
        &mut self.inner
    }
}

impl Drop for PooledScan {
    fn drop(&mut self) {
        let inner = take(&mut self.inner);
        POOL.with(|p| p.borrow_mut().scan = Some(inner));
    }
}

/// Takes the scan buffers, sized for `hosts`.
pub fn take_scan(hosts: usize) -> PooledScan {
    let inner = POOL.with(|p| p.borrow_mut().scan.take());
    let mut inner = match inner {
        Some(b) => {
            OBS_HITS.incr();
            b
        }
        None => {
            OBS_BUILDS.incr();
            ScanBuf::default()
        }
    };
    if inner.mark.len() < hosts {
        inner.mark.resize(hosts, 0);
        inner.on_max.resize(hosts, 0.0);
        inner.out_max.resize(hosts, 0.0);
    }
    PooledScan { inner }
}

/// Pooled flat data-ready array for the loop-swapped naive scan; fully
/// rewritten per task, so takes need no reset.
pub struct PooledFlat {
    inner: Vec<f64>,
}

impl PooledFlat {
    /// The flat buffer, resized to `hosts`.
    #[inline]
    pub fn get(&mut self, hosts: usize) -> &mut Vec<f64> {
        self.inner.resize(hosts, 0.0);
        &mut self.inner
    }
}

impl Drop for PooledFlat {
    fn drop(&mut self) {
        let inner = take(&mut self.inner);
        POOL.with(|p| p.borrow_mut().flat = Some(inner));
    }
}

/// Takes the flat scan buffer.
pub fn take_flat() -> PooledFlat {
    let inner = POOL
        .with(|p| p.borrow_mut().flat.take())
        .unwrap_or_default();
    PooledFlat { inner }
}

/// Takes the class-tree bank for `(rc uid, hosts)` if one is pooled,
/// reset to all-hosts-ready-at-0.
pub fn take_bank(key: (u64, usize)) -> Option<TreeBank> {
    let bank = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let i = p.banks.iter().position(|(k, _)| *k == key)?;
        Some(p.banks.swap_remove(i).1)
    });
    match bank {
        Some(mut b) => {
            OBS_HITS.incr();
            let timed = rsg_obs::enabled().then(std::time::Instant::now);
            b.reset();
            if let Some(t0) = timed {
                OBS_RESET.record(t0.elapsed());
            }
            Some(b)
        }
        None => {
            OBS_BUILDS.incr();
            None
        }
    }
}

/// Returns a class-tree bank to the pool.
pub fn put_bank(key: (u64, usize), bank: TreeBank) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.banks.len() >= BANK_CAP {
            p.banks.remove(0);
        }
        p.banks.push((key, bank));
    });
}

/// Median speed factor of the context's hosts, computed exactly as the
/// historical inline code (`sort_by(f64::total_cmp)`, element at
/// `len/2`) and cached per `(rc uid, reference clock, hosts)`.
pub fn median_speed(ctx: &ExecutionContext<'_>) -> f64 {
    let key = (
        ctx.rc.uid(),
        ctx.dag.reference_clock_mhz().to_bits(),
        ctx.hosts(),
    );
    POOL.with(|p| {
        let p = &mut *p.borrow_mut();
        if let Some((_, m)) = p.medians.iter().find(|(k, _)| *k == key) {
            OBS_HITS.incr();
            return *m;
        }
        OBS_BUILDS.incr();
        p.sort_buf.clear();
        p.sort_buf.extend_from_slice(ctx.speeds());
        p.sort_buf.sort_by(f64::total_cmp);
        let m = p.sort_buf[p.sort_buf.len() / 2];
        if p.medians.len() >= 64 {
            p.medians.clear();
        }
        p.medians.push((key, m));
        m
    })
}

/// Per-host DLS bookkeeping: the weight sums and candidate buckets the
/// incremental dynamic-level maintenance keys by best host. All state
/// is touched-list reset, so takes cost O(previous run's activity).
#[derive(Default)]
struct DlsBuf {
    /// Σ `(2 + parents)` over ready candidates whose best host is `h`.
    sh: Vec<u64>,
    /// Ready candidates whose cached best host is `h`.
    buckets: Vec<Vec<u32>>,
    touched: Vec<u32>,
    rescan: Vec<u32>,
}

/// Pooled DLS per-host state, returned on drop.
pub struct PooledDls {
    inner: DlsBuf,
}

impl PooledDls {
    /// Current weight sum of bucket `h`.
    #[inline]
    pub fn sh(&self, h: usize) -> u64 {
        self.inner.sh[h]
    }

    /// Adds a candidate's weight to bucket `h`'s sum.
    #[inline]
    pub fn sh_add(&mut self, h: usize, w: u64) {
        self.inner.touched.push(h as u32);
        self.inner.sh[h] += w;
    }

    /// Removes a candidate's weight from bucket `h`'s sum.
    #[inline]
    pub fn sh_sub(&mut self, h: usize, w: u64) {
        self.inner.sh[h] -= w;
    }

    /// Appends task `t` to bucket `h`, returning its position.
    #[inline]
    pub fn bucket_push(&mut self, h: usize, t: u32) -> u32 {
        self.inner.touched.push(h as u32);
        let b = &mut self.inner.buckets[h];
        b.push(t);
        (b.len() - 1) as u32
    }

    /// Returns bucket `h`'s members (test-only inspection).
    #[cfg(test)]
    pub fn bucket(&self, h: usize) -> &[u32] {
        &self.inner.buckets[h]
    }

    /// Swap-removes the candidate at `pos` from bucket `h`; returns the
    /// task that moved into `pos`, if any.
    #[inline]
    pub fn bucket_swap_remove(&mut self, h: usize, pos: u32) -> Option<u32> {
        let b = &mut self.inner.buckets[h];
        b.swap_remove(pos as usize);
        b.get(pos as usize).copied()
    }

    /// Snapshots bucket `h` into the reusable rescan buffer (members
    /// move buckets during the rescan itself).
    pub fn snapshot_bucket(&mut self, h: usize) -> Vec<u32> {
        let mut buf = take(&mut self.inner.rescan);
        buf.clear();
        buf.extend_from_slice(&self.inner.buckets[h]);
        buf
    }

    /// Returns the rescan buffer taken by
    /// [`snapshot_bucket`](Self::snapshot_bucket).
    pub fn return_snapshot(&mut self, buf: Vec<u32>) {
        self.inner.rescan = buf;
    }
}

impl Drop for PooledDls {
    fn drop(&mut self) {
        let inner = take(&mut self.inner);
        POOL.with(|p| p.borrow_mut().dls = Some(inner));
    }
}

/// Takes the DLS per-host state, zeroed, sized for `hosts`.
pub fn take_dls(hosts: usize) -> PooledDls {
    let inner = POOL.with(|p| p.borrow_mut().dls.take());
    let mut inner = match inner {
        Some(b) => {
            OBS_HITS.incr();
            b
        }
        None => {
            OBS_BUILDS.incr();
            DlsBuf::default()
        }
    };
    for &h in &inner.touched {
        let h = h as usize;
        if let Some(v) = inner.sh.get_mut(h) {
            *v = 0;
        }
        if let Some(b) = inner.buckets.get_mut(h) {
            b.clear();
        }
    }
    inner.touched.clear();
    if inner.sh.len() < hosts {
        inner.sh.resize(hosts, 0);
        inner.buckets.resize_with(hosts, Vec::new);
    }
    PooledDls { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_buf_resets_between_takes() {
        let mut r = take_ready(8);
        r.set(3, 5.0);
        r.set(7, 2.0);
        assert_eq!(r[3], 5.0);
        drop(r);
        let r = take_ready(8);
        assert!(r.iter().all(|&v| v == 0.0));
        // Growing the request is fine too.
        drop(r);
        let r = take_ready(32);
        assert_eq!(r.len(), 32);
        assert!(r.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dls_buf_resets_between_takes() {
        let mut d = take_dls(4);
        d.sh_add(2, 7);
        let pos = d.bucket_push(2, 9);
        assert_eq!(pos, 0);
        assert_eq!(d.sh(2), 7);
        assert_eq!(d.bucket(2), &[9]);
        drop(d);
        let d = take_dls(4);
        assert_eq!(d.sh(2), 0);
        assert!(d.bucket(2).is_empty());
    }

    #[test]
    fn median_speed_cached_and_exact() {
        let dag = rsg_dag::workflows::chain(3, 10.0, 0.0);
        let rc = rsg_platform::ResourceCollection::new(
            vec![3000.0, 1500.0, 750.0, 2800.0, 2800.0],
            rsg_platform::CommModel::Uniform,
        );
        let ctx = ExecutionContext::new(&dag, &rc);
        let expect = {
            let mut sp: Vec<f64> = (0..ctx.hosts()).map(|h| ctx.speed(h)).collect();
            sp.sort_by(f64::total_cmp);
            sp[sp.len() / 2]
        };
        assert_eq!(median_speed(&ctx).to_bits(), expect.to_bits());
        assert_eq!(median_speed(&ctx).to_bits(), expect.to_bits());
        // A prefix context has its own median.
        let ctx3 = ExecutionContext::with_host_limit(&dag, &rc, 3);
        let expect3 = {
            let mut sp: Vec<f64> = (0..3).map(|h| ctx3.speed(h)).collect();
            sp.sort_by(f64::total_cmp);
            sp[sp.len() / 2]
        };
        assert_eq!(median_speed(&ctx3).to_bits(), expect3.to_bits());
    }
}
