//! Makespan lower bounds.
//!
//! Chapter IV compares turnaround times against "a lower bound on
//! application makespan by assuming all tasks run on hosts as fast as
//! the fastest available host and that all data transfers take place on
//! network links as fast as the fastest network link available". Two
//! bounds are provided: the paper's (critical path with edge costs at
//! the reference bandwidth) and a true lower bound (computation-only
//! critical path vs aggregate-work bound), which is valid even when a
//! schedule co-locates the whole critical path.

use crate::context::ExecutionContext;
use rsg_dag::CriticalPathInfo;

/// A true makespan lower bound for the context:
/// `max(comp-only critical path at the fastest clock, total work /
/// aggregate speed)`.
pub fn makespan_lower_bound(ctx: &ExecutionContext<'_>) -> f64 {
    let info = CriticalPathInfo::compute(ctx.dag);
    let fastest = (0..ctx.hosts()).map(|h| ctx.speed(h)).fold(0.0, f64::max);
    let cp_comp = ctx
        .dag
        .entries()
        .map(|t| info.static_level[t.index()])
        .fold(0.0f64, f64::max);
    let aggregate: f64 = (0..ctx.hosts()).map(|h| ctx.speed(h)).sum();
    (cp_comp / fastest).max(ctx.dag.total_work() / aggregate)
}

/// The paper's Chapter IV bound: full critical path (node + edge
/// weights, edges at the reference bandwidth) executed at the fastest
/// clock.
pub fn paper_lower_bound(ctx: &ExecutionContext<'_>) -> f64 {
    let info = CriticalPathInfo::compute(ctx.dag);
    let fastest = (0..ctx.hosts()).map(|h| ctx.speed(h)).fold(0.0, f64::max);
    // Edge weights are not divided by clock; only node weights scale.
    // Using cp directly with comp scaled requires a dedicated sweep:
    let dag = ctx.dag;
    let mut bl = vec![0.0f64; dag.len()];
    for &t in dag.topological_order().iter().rev() {
        let mut m = 0.0f64;
        for e in dag.children(t) {
            m = m.max(e.comm + bl[e.task.index()]);
        }
        bl[t.index()] = dag.comp(t) / fastest + m;
    }
    let _ = info;
    dag.entries().map(|t| bl[t.index()]).fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::HeuristicKind;
    use crate::ExecutionContext;
    use rsg_dag::RandomDagSpec;
    use rsg_platform::ResourceCollection;

    #[test]
    fn bound_below_every_heuristic() {
        let dag = RandomDagSpec {
            size: 100,
            ccr: 0.5,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(3);
        for rc in [
            ResourceCollection::homogeneous(10, 1500.0),
            ResourceCollection::heterogeneous(10, 3000.0, 0.4, 1),
        ] {
            let ctx = ExecutionContext::new(&dag, &rc);
            let lb = makespan_lower_bound(&ctx);
            for kind in HeuristicKind::all() {
                let (s, _) = kind.run(&ctx);
                assert!(
                    s.makespan() >= lb - 1e-9,
                    "{kind}: makespan {} below bound {lb}",
                    s.makespan()
                );
            }
        }
    }

    #[test]
    fn chain_bound_is_cp() {
        let dag = rsg_dag::workflows::chain(5, 10.0, 1.0);
        let rc = ResourceCollection::homogeneous(4, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        // comp-only CP = 50 at speed 1.
        assert!((makespan_lower_bound(&ctx) - 50.0).abs() < 1e-9);
        // Paper bound includes edges: 54.
        assert!((paper_lower_bound(&ctx) - 54.0).abs() < 1e-9);
    }

    #[test]
    fn work_bound_kicks_in_for_bags() {
        let dag = rsg_dag::workflows::bag(100, 10.0);
        let rc = ResourceCollection::homogeneous(10, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        // 1000 s of work over 10 unit-speed hosts.
        assert!((makespan_lower_bound(&ctx) - 100.0).abs() < 1e-9);
    }
}
