//! Fault-injected execution with rescue rescheduling.
//!
//! [`execute_with_faults`] replays a static schedule through the same
//! event-driven engine as [`crate::simulator::replay`], but interleaves
//! a [`FaultPlan`]: hosts crash permanently,
//! drop out for a window, or join mid-run. When a host goes down, the
//! task it was executing is lost (rerun elsewhere) and every not-yet-
//! started task queued on it is re-placed across the surviving hosts by
//! a **rescue rescheduler** — an MCP-style re-ranking that picks the
//! minimum-estimated-finish survivor per orphan and re-inserts rescued
//! tasks into the per-host queues *in original-schedule priority
//! order*, which keeps the globally next-to-run task at a queue head
//! and guarantees forward progress (no rescue deadlock).
//!
//! Model assumptions, stated explicitly:
//!
//! * **Checkpointed outputs** — a finished task's outputs survive its
//!   host's failure and transfer to consumers at the normal edge cost.
//!   Only in-flight work is lost.
//! * **Serial hosts** — at most one task is in flight per host, so a
//!   failure loses at most one running task (plus its queue).
//! * **Fail-stop** — failures are clean: no partial or corrupt results.
//!
//! With an empty fault plan the engine is **bit-identical** to
//! [`replay`](crate::simulator::replay): same candidate scan, same
//! tie-breaks, same floating-point expressions (enforced by the
//! differential tests in `tests/chaos_invariants.rs`).

use crate::context::ExecutionContext;
use crate::fault::{FaultError, FaultEvent, FaultPlan};
use crate::schedule::Schedule;
use crate::simulator::{perturbed_duration, Perturbation, PerturbationError};
use rsg_dag::{Dag, TaskId};
use rsg_obs::{Counter, TimingHistogram};
use rsg_platform::ResourceCollection;
use std::fmt;

/// Chaos executions performed.
static OBS_RUNS: Counter = Counter::new("sched.chaos.runs");
/// Host crashes processed.
static OBS_CRASHES: Counter = Counter::new("sched.chaos.crashes");
/// Transient outages processed.
static OBS_OUTAGES: Counter = Counter::new("sched.chaos.outages");
/// Host joins processed.
static OBS_JOINS: Counter = Counter::new("sched.chaos.joins");
/// In-flight tasks lost to failures.
static OBS_TASKS_LOST: Counter = Counter::new("sched.chaos.tasks_lost");
/// Rescue placements performed.
static OBS_RESCUED: Counter = Counter::new("sched.chaos.tasks_rescued");
/// Wall-clock of each chaos execution.
static OBS_WALL: TimingHistogram = TimingHistogram::new("sched.chaos.wall");

/// Aggregate fault/recovery statistics of one chaos execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Permanent crashes processed.
    pub crashes: u64,
    /// Transient outages processed.
    pub outages: u64,
    /// Host joins processed.
    pub joins: u64,
    /// In-flight tasks killed mid-execution (their partial work is
    /// discarded and they rerun elsewhere).
    pub tasks_lost: u64,
    /// Rescue placements: every (task, new host) decision made by the
    /// rescue rescheduler, including re-rescues after repeated faults.
    pub tasks_rescued: u64,
    /// Rescue ranking work: (orphan, candidate host) estimated-finish
    /// evaluations — the recovery analogue of the heuristics' op count.
    pub rescue_ops: u64,
}

impl ChaosStats {
    /// Discarded partial execution converted back to seconds is tracked
    /// separately because it is an `f64`; see
    /// [`ChaosOutcome::work_lost_s`].
    fn record_obs(&self) {
        OBS_RUNS.incr();
        OBS_CRASHES.add(self.crashes);
        OBS_OUTAGES.add(self.outages);
        OBS_JOINS.add(self.joins);
        OBS_TASKS_LOST.add(self.tasks_lost);
        OBS_RESCUED.add(self.tasks_rescued);
    }
}

/// Result of a fault-injected execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Final start times (of the successful attempt, for rerun tasks).
    pub start: Vec<f64>,
    /// Final finish times.
    pub finish: Vec<f64>,
    /// Final host of each task (differs from the input schedule where
    /// the rescue rescheduler moved tasks).
    pub host: Vec<u32>,
    /// Makespan of the replayed timeline.
    pub makespan: f64,
    /// Total hosts seen: base RC size plus joins.
    pub hosts_total: usize,
    /// Seconds of partial execution discarded when in-flight tasks were
    /// killed.
    pub work_lost_s: f64,
    /// Fault/recovery counters.
    pub stats: ChaosStats,
}

/// Errors from [`execute_with_faults`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// The fault plan references hosts outside the base RC.
    Fault(FaultError),
    /// The perturbation failed validation.
    Perturbation(PerturbationError),
    /// Every host is dead or down and tasks remain — nothing can run.
    AllHostsDown {
        /// Time at which the last host went away.
        at_s: f64,
    },
    /// The schedule does not cover the DAG.
    ScheduleMismatch {
        /// Tasks in the DAG.
        tasks: usize,
        /// Entries in the schedule.
        schedule_len: usize,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            ChaosError::Perturbation(e) => write!(f, "invalid perturbation: {e}"),
            ChaosError::AllHostsDown { at_s } => {
                write!(
                    f,
                    "all hosts dead or down at t={at_s}s with tasks remaining"
                )
            }
            ChaosError::ScheduleMismatch {
                tasks,
                schedule_len,
            } => write!(
                f,
                "schedule covers {schedule_len} tasks but the DAG has {tasks}"
            ),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<FaultError> for ChaosError {
    fn from(e: FaultError) -> Self {
        ChaosError::Fault(e)
    }
}

impl From<PerturbationError> for ChaosError {
    fn from(e: PerturbationError) -> Self {
        ChaosError::Perturbation(e)
    }
}

/// Internal event stream: outages expand into a down/up pair; joins
/// carry their extended-RC host index.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Up(usize),
    Crash(usize),
    Down(usize),
    Join(usize),
}

fn event_stream(plan: &FaultPlan, base_hosts: usize) -> Vec<(f64, Ev)> {
    let mut evs: Vec<(f64, Ev)> = Vec::new();
    let mut next_join = base_hosts;
    for e in plan.events() {
        match *e {
            FaultEvent::Crash { host, at_s } => evs.push((at_s, Ev::Crash(host))),
            FaultEvent::Outage {
                host,
                from_s,
                until_s,
            } => {
                evs.push((from_s, Ev::Down(host)));
                evs.push((until_s, Ev::Up(host)));
            }
            FaultEvent::Join { at_s, .. } => {
                evs.push((at_s, Ev::Join(next_join)));
                next_join += 1;
            }
        }
    }
    // Deterministic order: time, then recoveries before failures before
    // joins (a host coming back at t may receive work starting at t),
    // then host index.
    let rank = |e: &Ev| -> (u8, usize) {
        match *e {
            Ev::Up(h) => (0, h),
            Ev::Crash(h) => (1, h),
            Ev::Down(h) => (2, h),
            Ev::Join(h) => (3, h),
        }
    };
    evs.sort_by(|a, b| {
        let (ka, ha) = rank(&a.1);
        let (kb, hb) = rank(&b.1);
        a.0.total_cmp(&b.0).then(ka.cmp(&kb)).then(ha.cmp(&hb))
    });
    evs
}

/// Replays `schedule` for `dag` on `rc` while injecting `plan`'s faults
/// and `perturbation`'s slowdowns, rescuing lost work onto survivors.
///
/// The schedule must have been computed for `rc` (or a prefix-equal
/// RC); join hosts extend the collection at reference bandwidth and are
/// only ever used by rescue placements.
pub fn execute_with_faults(
    dag: &Dag,
    rc: &ResourceCollection,
    schedule: &Schedule,
    plan: &FaultPlan,
    perturbation: &Perturbation,
) -> Result<ChaosOutcome, ChaosError> {
    let n = dag.len();
    if schedule.host.len() != n {
        return Err(ChaosError::ScheduleMismatch {
            tasks: n,
            schedule_len: schedule.host.len(),
        });
    }
    let base_hosts = rc.len();
    plan.validate_for(base_hosts)?;
    perturbation.validate()?;
    let t0 = rsg_obs::enabled().then(std::time::Instant::now);

    // Join hosts extend the RC; with no joins, use the base RC directly
    // (no clone) so the zero-fault path shares replay's exact context.
    let joins = plan.join_clocks_mhz();
    let extended;
    let rc_full: &ResourceCollection = if joins.is_empty() {
        rc
    } else {
        extended = rc.extended(&joins);
        &extended
    };
    let ctx = ExecutionContext::new(dag, rc_full);
    let hosts_total = ctx.hosts();
    let events = event_stream(plan, base_hosts);
    let comm_stretch = perturbation.comm_factor();

    // Rescue priority: original schedule order. Queues stay sorted by
    // this key at all times, so the globally next un-run task is always
    // at its queue's head — the progress invariant.
    let prio = |i: usize| (schedule.start[i], i);

    // Per-host execution order (identical construction to replay).
    let mut queue: Vec<Vec<usize>> = vec![Vec::new(); hosts_total];
    for i in 0..n {
        queue[schedule.host[i] as usize].push(i);
    }
    for tasks in &mut queue {
        tasks.sort_by(|&a, &b| {
            schedule.start[a]
                .total_cmp(&schedule.start[b])
                .then(a.cmp(&b))
        });
    }

    let mut start = vec![f64::NAN; n];
    let mut finish = vec![f64::NAN; n];
    let mut host_of: Vec<u32> = schedule.host.clone();
    let mut host_ready = vec![0.0f64; hosts_total];
    let mut next_slot = vec![0usize; hosts_total];
    let mut done = vec![false; n];
    // Base hosts start alive; join hosts appear when their event fires.
    let mut alive: Vec<bool> = (0..hosts_total).map(|h| h < base_hosts).collect();
    let mut stats = ChaosStats::default();
    let mut work_lost_s = 0.0f64;

    let mut completed = 0usize;
    let mut next_ev = 0usize;
    // Run until every task is committed AND every event is processed:
    // a commit may start before a later event yet finish after it, so
    // an event arriving when `completed == n` can still kill an
    // in-flight task and reopen the run (the tail events then rescue
    // it). Events that strike after everything finished are no-ops.
    while completed < n || next_ev < events.len() {
        // Candidate scan — bit-identical to replay when every host is
        // alive and no rescue has moved a task.
        let mut best: Option<(f64, usize, usize)> = None; // (start, host, task)
        for h in 0..hosts_total {
            if !alive[h] {
                continue;
            }
            let Some(&i) = queue[h].get(next_slot[h]) else {
                continue;
            };
            let t = TaskId(i as u32);
            let mut data_ready = 0.0f64;
            let mut inputs_done = true;
            for e in dag.parents(t) {
                let p = e.task.index();
                if !done[p] {
                    inputs_done = false;
                    break;
                }
                let from = host_of[p] as usize;
                let base = ctx.comm_time(e.comm, from, h);
                let arr = finish[p] + if from == h { 0.0 } else { base * comm_stretch };
                data_ready = data_ready.max(arr);
            }
            if !inputs_done {
                continue;
            }
            let s = host_ready[h].max(data_ready);
            if best.is_none() || s < best.unwrap().0 {
                best = Some((s, h, i));
            }
        }

        // Interleave: process the next fault event if it strikes at or
        // before the best candidate's start (or nothing can run yet).
        // Every committed task therefore starts strictly before any
        // unprocessed event — the invariant that makes un-committing an
        // in-flight task safe (its dependents cannot have started).
        let fire = match (events.get(next_ev), best) {
            (Some(&(ev_t, _)), Some((s, _, _))) => ev_t <= s,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                debug_assert!(completed < n, "loop must have exited");
                return Err(ChaosError::AllHostsDown {
                    at_s: host_ready.iter().copied().fold(0.0, f64::max),
                });
            }
        };

        if fire {
            let (ev_t, ev) = events[next_ev];
            next_ev += 1;
            match ev {
                Ev::Join(h) => {
                    alive[h] = true;
                    host_ready[h] = ev_t;
                    stats.joins += 1;
                }
                Ev::Up(h) => {
                    // Crashed hosts stay dead even if a stale outage
                    // window ends later.
                    if !alive[h] && events_host_not_crashed_yet(&events, next_ev - 1, h) {
                        alive[h] = true;
                        host_ready[h] = ev_t;
                    }
                }
                Ev::Crash(h) | Ev::Down(h) => {
                    if matches!(ev, Ev::Crash(_)) {
                        stats.crashes += 1;
                    } else {
                        stats.outages += 1;
                    }
                    if !alive[h] {
                        // Crash during an outage, or outage of a dead
                        // host: queue was already drained.
                        continue;
                    }
                    alive[h] = false;
                    let mut orphans: Vec<usize> = Vec::new();
                    // Kill the in-flight task, if any: the last
                    // committed task on h, still running at ev_t. The
                    // `host_of` check skips a stale queue entry left by
                    // an earlier failure of h whose victim was rescued
                    // elsewhere.
                    if next_slot[h] > 0 {
                        let j = queue[h][next_slot[h] - 1];
                        if done[j] && host_of[j] as usize == h && finish[j] > ev_t {
                            done[j] = false;
                            completed -= 1;
                            work_lost_s += ev_t - start[j];
                            start[j] = f64::NAN;
                            finish[j] = f64::NAN;
                            stats.tasks_lost += 1;
                            orphans.push(j);
                        }
                    }
                    // Drain the not-yet-started queue.
                    orphans.extend(queue[h].drain(next_slot[h]..));
                    if orphans.is_empty() {
                        continue;
                    }
                    // Rescue: re-place orphans on alive hosts in
                    // original-schedule priority order.
                    orphans.sort_by(|&a, &b| prio(a).0.total_cmp(&prio(b).0).then(a.cmp(&b)));
                    if !alive.iter().any(|&a| a) {
                        return Err(ChaosError::AllHostsDown { at_s: ev_t });
                    }
                    for &o in &orphans {
                        let t = TaskId(o as u32);
                        // Min estimated finish over survivors:
                        // availability + queued backlog + execution.
                        let mut best_h = usize::MAX;
                        let mut best_eft = f64::INFINITY;
                        for (g, g_alive) in alive.iter().enumerate() {
                            if !*g_alive {
                                continue;
                            }
                            stats.rescue_ops += 1;
                            let backlog: f64 = queue[g][next_slot[g]..]
                                .iter()
                                .map(|&q| ctx.task_time(TaskId(q as u32), g))
                                .sum();
                            let eft = host_ready[g].max(ev_t) + backlog + ctx.task_time(t, g);
                            if eft < best_eft {
                                best_eft = eft;
                                best_h = g;
                            }
                        }
                        host_of[o] = best_h as u32;
                        stats.tasks_rescued += 1;
                        // Insert in priority order among un-run tasks.
                        let q = &mut queue[best_h];
                        let at = q[next_slot[best_h]..]
                            .iter()
                            .position(|&x| {
                                prio(o).0.total_cmp(&prio(x).0).then(o.cmp(&x))
                                    == std::cmp::Ordering::Less
                            })
                            .map_or(q.len(), |p| p + next_slot[best_h]);
                        q.insert(at, o);
                    }
                }
            }
            continue;
        }

        // Commit the candidate (identical to replay's commit).
        let (s, h, i) = best.expect("candidate exists when no event fires");
        let t = TaskId(i as u32);
        let dur = perturbed_duration(s, ctx.task_time(t, h), perturbation.slowdown_for(h));
        start[i] = s;
        finish[i] = s + dur;
        host_ready[h] = finish[i];
        next_slot[h] += 1;
        done[i] = true;
        completed += 1;
    }

    // Same makespan expression as replay, for bit-identity.
    let makespan = finish.iter().copied().fold(0.0f64, f64::max)
        - start.iter().copied().fold(f64::INFINITY, f64::min).max(0.0);

    stats.record_obs();
    if let Some(t0) = t0 {
        OBS_WALL.record(t0.elapsed());
    }
    Ok(ChaosOutcome {
        start,
        finish,
        host: host_of,
        makespan,
        hosts_total,
        work_lost_s,
        stats,
    })
}

/// True if host `h` has not crashed in events processed so far (index
/// `< upto`). Outage recovery must not resurrect a crashed host when a
/// crash fell inside the outage window.
fn events_host_not_crashed_yet(events: &[(f64, Ev)], upto: usize, h: usize) -> bool {
    !events[..upto]
        .iter()
        .any(|&(_, e)| matches!(e, Ev::Crash(g) if g == h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlanSpec;
    use crate::heuristics::HeuristicKind;
    use crate::simulator::replay;
    use rsg_dag::RandomDagSpec;

    fn fixture(seed: u64) -> (Dag, ResourceCollection) {
        let dag = RandomDagSpec {
            size: 60,
            ccr: 0.4,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(seed);
        let rc = ResourceCollection::heterogeneous(6, 3000.0, 0.3, seed);
        (dag, rc)
    }

    #[test]
    fn zero_fault_run_is_bit_identical_to_replay() {
        for seed in 0..3 {
            let (dag, rc) = fixture(seed);
            let ctx = ExecutionContext::new(&dag, &rc);
            for kind in HeuristicKind::all() {
                let (s, _) = kind.run(&ctx);
                let r = replay(&ctx, &s, &Perturbation::none());
                let c =
                    execute_with_faults(&dag, &rc, &s, &FaultPlan::empty(), &Perturbation::none())
                        .unwrap();
                assert_eq!(c.start, r.start, "{kind} seed {seed}: starts differ");
                assert_eq!(c.finish, r.finish);
                assert_eq!(c.makespan.to_bits(), r.makespan.to_bits());
                assert_eq!(c.host, s.host);
                assert_eq!(c.stats, ChaosStats::default());
                assert_eq!(c.work_lost_s, 0.0);
            }
        }
    }

    #[test]
    fn crash_moves_lost_work_to_survivors() {
        let (dag, rc) = fixture(1);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let horizon = s.makespan();
        // Crash the busiest host early.
        let victim = s.host[0] as usize;
        let plan = FaultPlan::new(vec![FaultEvent::Crash {
            host: victim,
            at_s: horizon * 0.25,
        }])
        .unwrap();
        let out = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()).unwrap();
        assert_eq!(out.stats.crashes, 1);
        assert!(out.stats.tasks_rescued > 0, "nothing was rescued");
        // Nothing runs on the dead host after the crash.
        for i in 0..dag.len() {
            assert!(out.start[i].is_finite());
            if out.host[i] as usize == victim {
                assert!(
                    out.finish[i] <= horizon * 0.25 + 1e-9,
                    "task {i} ran on the crashed host after the crash"
                );
            }
        }
        assert!(out.makespan >= s.makespan() - 1e-9);
    }

    #[test]
    fn outage_host_recovers_and_is_reusable() {
        let (dag, rc) = fixture(2);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let horizon = s.makespan();
        let victim = s.host[0] as usize;
        let plan = FaultPlan::new(vec![FaultEvent::Outage {
            host: victim,
            from_s: horizon * 0.1,
            until_s: horizon * 0.3,
        }])
        .unwrap();
        let out = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()).unwrap();
        assert_eq!(out.stats.outages, 1);
        // No task executes inside the outage window on the victim.
        for i in 0..dag.len() {
            if out.host[i] as usize == victim {
                let (a, b) = (out.start[i], out.finish[i]);
                assert!(
                    b <= horizon * 0.1 + 1e-9 || a >= horizon * 0.3 - 1e-9,
                    "task {i} [{a}, {b}] overlaps the outage window"
                );
            }
        }
    }

    #[test]
    fn join_host_can_receive_rescued_tasks() {
        let (dag, rc) = fixture(3);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let horizon = s.makespan();
        // Crash most hosts; add a very fast join so rescue prefers it.
        let mut events = vec![FaultEvent::Join {
            clock_mhz: 30000.0,
            at_s: horizon * 0.1,
        }];
        for h in 1..rc.len() {
            events.push(FaultEvent::Crash {
                host: h,
                at_s: horizon * 0.2,
            });
        }
        let plan = FaultPlan::new(events).unwrap();
        let out = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()).unwrap();
        assert_eq!(out.hosts_total, rc.len() + 1);
        assert_eq!(out.stats.joins, 1);
        let join_host = rc.len() as u32;
        let on_join = (0..dag.len()).filter(|&i| out.host[i] == join_host).count();
        assert!(on_join > 0, "rescue never used the joined fast host");
        // The join host cannot run anything before it joined.
        for i in 0..dag.len() {
            if out.host[i] == join_host {
                assert!(out.start[i] >= horizon * 0.1 - 1e-9);
            }
        }
    }

    #[test]
    fn all_hosts_down_is_an_error() {
        let (dag, rc) = fixture(4);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let events = (0..rc.len())
            .map(|h| FaultEvent::Crash { host: h, at_s: 0.0 })
            .collect();
        let plan = FaultPlan::new(events).unwrap();
        assert!(matches!(
            execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()),
            Err(ChaosError::AllHostsDown { .. })
        ));
    }

    #[test]
    fn crash_during_outage_does_not_resurrect() {
        let (dag, rc) = fixture(5);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let horizon = s.makespan();
        let victim = s.host[0] as usize;
        let plan = FaultPlan::new(vec![
            FaultEvent::Outage {
                host: victim,
                from_s: horizon * 0.1,
                until_s: horizon * 0.5,
            },
            FaultEvent::Crash {
                host: victim,
                at_s: horizon * 0.2,
            },
        ])
        .unwrap();
        let out = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()).unwrap();
        // Nothing may start on the victim after the outage began.
        for i in 0..dag.len() {
            if out.host[i] as usize == victim {
                assert!(out.finish[i] <= horizon * 0.1 + 1e-9);
            }
        }
    }

    #[test]
    fn generated_plans_always_complete() {
        for seed in 0..5 {
            let (dag, rc) = fixture(seed);
            let ctx = ExecutionContext::new(&dag, &rc);
            let (s, _) = HeuristicKind::Mcp.run(&ctx);
            let plan = FaultPlanSpec {
                seed,
                crash_fraction: 0.4,
                outage_fraction: 0.3,
                joins: 1,
                horizon_s: s.makespan().max(1.0),
                ..Default::default()
            }
            .generate(rc.len());
            let out = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()).unwrap();
            for i in 0..dag.len() {
                assert!(out.start[i].is_finite(), "seed {seed}: task {i} lost");
            }
            // Causal consistency on final placements.
            let rc_full = rc.extended(&plan.join_clocks_mhz());
            for t in dag.tasks() {
                for e in dag.parents(t) {
                    let p = e.task.index();
                    let c = t.index();
                    let comm = if out.host[p] == out.host[c] {
                        0.0
                    } else {
                        e.comm * rc_full.comm_factor(out.host[p] as usize, out.host[c] as usize)
                    };
                    assert!(
                        out.start[c] + 1e-9 >= out.finish[p] + comm,
                        "seed {seed}: task {c} starts before parent {p} arrives"
                    );
                }
            }
        }
    }
}
