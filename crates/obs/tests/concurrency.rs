//! Hammers every obs sink from rayon tasks and checks that the
//! aggregated totals are exact once the parallel stage has joined.
//! Runs as its own process, so the global registry is not shared with
//! other test binaries.

use rayon::prelude::*;
use rsg_obs::{Counter, RunReport, TimingHistogram};

static HITS: Counter = Counter::new("test.conc.hits");
static LAT: TimingHistogram = TimingHistogram::new("test.conc.lat");

#[test]
fn parallel_hammer_totals_are_exact() {
    rsg_obs::enable(true);

    const TASKS: u64 = 64;
    const PER_TASK: u64 = 1000;

    (0..TASKS).collect::<Vec<u64>>().par_iter().for_each(|&t| {
        let _span = rsg_obs::span("hammer");
        for i in 0..PER_TASK {
            HITS.incr();
            // Deterministic spread across several buckets.
            LAT.record_ns(1 + (t * PER_TASK + i) % 10_000);
        }
    });

    let report = RunReport::capture();
    assert_eq!(report.counter("test.conc.hits"), TASKS * PER_TASK);

    let h = report
        .histogram("test.conc.lat")
        .expect("histogram present");
    assert_eq!(h.count, TASKS * PER_TASK);
    let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucket_total, h.count, "bucket counts sum to total");
    assert!(h.min_ns >= 1);
    assert!(h.max_ns < 10_001);

    // Every task completed exactly one top-level span. Worker threads
    // start with an empty span stack, so all scopes share one path.
    let s = report.span("hammer").expect("span present");
    assert_eq!(s.count, TASKS);
    assert!(s.threads >= 1);

    // The report serializes to valid JSON even with this much data.
    assert!(rsg_obs::json::Json::parse(&report.to_json()).is_ok());

    rsg_obs::enable(false);
    rsg_obs::reset();
}
