//! A minimal JSON value model, writer helpers and recursive-descent
//! parser.
//!
//! The workspace deliberately carries no serialization dependency
//! (README, "A note on dependencies"), so run reports are written by
//! hand; this module provides the escaping used by the writer and a
//! small strict parser so tests — and downstream tooling — can validate
//! that emitted reports are schema-conforming JSON without pulling in
//! serde.
//!
//! ```
//! use rsg_obs::json::Json;
//! let v = Json::parse(r#"{"spans": [{"path": "train", "total_s": 1.5}]}"#).unwrap();
//! let spans = v.get("spans").and_then(Json::as_array).unwrap();
//! assert_eq!(spans[0].get("path").and_then(Json::as_str), Some("train"));
//! assert_eq!(spans[0].get("total_s").and_then(Json::as_f64), Some(1.5));
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's member list.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error). Nesting deeper than [`MAX_DEPTH`] is rejected: the
    /// parser is recursive-descent and also parses untrusted request
    /// bodies (rsg-serve), so depth must be bounded well below the
    /// thread stack.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for embedding in JSON output (adds the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (shortest round-trip form;
/// non-finite values degrade to `null`, which JSON cannot express).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Maximum container nesting depth [`Json::parse`] accepts. Each level
/// costs one `value()` stack frame, so 128 keeps even a small worker
/// stack comfortably clear of overflow while allowing any document the
/// workspace realistically produces.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the writer never emits them.
                            let c =
                                char::from_u32(cp).ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
        let v = Json::parse(r#"{"a": [1, 2, {"b": false}], "c": ""}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Str(String::new())));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} garbage",
            "[1,]",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // At the limit: fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // One past the limit: a typed error.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&over).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        // Mixed containers count too, and a hostile half-megabyte of
        // open brackets must come back as an error, not an abort.
        assert!(Json::parse(&"[{\"k\":".repeat(MAX_DEPTH)).is_err());
        assert!(Json::parse(&"[".repeat(512 * 1024)).is_err());
        // Siblings do not accumulate depth.
        assert!(Json::parse(&format!("[{}1]", "[1],".repeat(200))).is_ok());
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnewline\n",
            "back\\slash",
            "\u{1}",
        ] {
            let doc = escape(s);
            assert_eq!(
                Json::parse(&doc).unwrap(),
                Json::Str(s.to_string()),
                "{doc}"
            );
        }
    }

    #[test]
    fn num_handles_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        // Shortest round-trip form survives a parse bit-for-bit.
        let v = 0.1 + 0.2;
        assert_eq!(Json::parse(&num(v)).unwrap(), Json::Num(v));
    }
}
