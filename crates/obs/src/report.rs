//! The [`RunReport`]: a point-in-time aggregation of every span,
//! counter and histogram the run touched, serializable as JSON (spans
//! nested into a tree) or flat TSV, plus a human-readable summary
//! table.

use crate::json;
use crate::metrics::HistogramSnapshot;
use crate::registry;
use crate::span::SpanStat;

/// Everything observed since the last [`crate::reset`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// `(name, value)` counter readings, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RunReport {
    /// Snapshots the global registry. Concurrent writers may lag a few
    /// records; capture after the instrumented work has joined for
    /// exact totals.
    pub fn capture() -> RunReport {
        registry().capture()
    }

    /// The aggregate of one span path, if it was recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The value of one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The snapshot of one histogram, if it was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the report as JSON: spans nested into a tree by
    /// path segment, counters as an object, histograms as an array
    /// (see EXPERIMENTS.md, "Observability", for the schema).
    pub fn to_json(&self) -> String {
        let tree = build_tree(&self.spans);
        let mut j = String::from("{\n");
        j.push_str("  \"rsg_obs_report\": \"v1\",\n");
        j.push_str("  \"spans\": ");
        write_nodes(&mut j, &tree, 1);
        j.push_str(",\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str(&format!("\n    {}: {}", json::escape(name), value));
        }
        if !self.counters.is_empty() {
            j.push_str("\n  ");
        }
        j.push_str("},\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str(&format!(
                "\n    {{\"name\": {}, \"count\": {}, \"total_s\": {}, \"mean_s\": {}, \
                 \"min_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"max_s\": {}, \"buckets\": [",
                json::escape(&h.name),
                h.count,
                json::num(h.sum_ns as f64 / 1e9),
                json::num(h.mean_s()),
                json::num(h.min_ns as f64 / 1e9),
                json::num(h.quantile_s(0.5)),
                json::num(h.quantile_s(0.95)),
                json::num(h.max_ns as f64 / 1e9),
            ));
            for (k, b) in h.buckets.iter().enumerate() {
                if k > 0 {
                    j.push_str(", ");
                }
                j.push_str(&format!(
                    "{{\"lo_s\": {}, \"hi_s\": {}, \"count\": {}}}",
                    json::num(b.lo_ns as f64 / 1e9),
                    json::num(b.hi_ns as f64 / 1e9),
                    b.count
                ));
            }
            j.push_str("]}");
        }
        if !self.histograms.is_empty() {
            j.push_str("\n  ");
        }
        j.push_str("]\n}\n");
        j
    }

    /// Serializes the report as flat, line-oriented TSV (one `span` /
    /// `counter` / `hist` record per line; nanosecond integers, no
    /// float formatting loss).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("rsg-obs-report\tv1\n");
        for s in &self.spans {
            out.push_str(&format!(
                "span\t{}\t{}\t{}\t{}\t{}\t{}\n",
                s.path, s.count, s.total_ns, s.min_ns, s.max_ns, s.threads
            ));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("counter\t{name}\t{value}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "hist\t{}\t{}\t{}\t{}\t{}",
                h.name, h.count, h.sum_ns, h.min_ns, h.max_ns
            ));
            for b in &h.buckets {
                out.push_str(&format!("\t{}:{}", b.lo_ns, b.count));
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// A human-readable multi-section summary (printed by the CLI at
    /// the end of a `--trace`/`--report` run).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("observability: nothing recorded\n");
            return out;
        }
        if !self.spans.is_empty() {
            let rows: Vec<Vec<String>> = self
                .spans
                .iter()
                .map(|s| {
                    vec![
                        s.path.clone(),
                        s.count.to_string(),
                        format!("{:.4}", s.total_s()),
                        format!("{:.6}", s.mean_s()),
                        format!("{:.6}", s.max_ns as f64 / 1e9),
                        s.threads.to_string(),
                    ]
                })
                .collect();
            out.push_str(&format_table(
                "spans",
                &[
                    "path",
                    "count",
                    "total (s)",
                    "mean (s)",
                    "max (s)",
                    "threads",
                ],
                &rows,
            ));
        }
        if !self.counters.is_empty() {
            let rows: Vec<Vec<String>> = self
                .counters
                .iter()
                .map(|(n, v)| vec![n.clone(), v.to_string()])
                .collect();
            out.push_str(&format_table("counters", &["name", "value"], &rows));
        }
        if !self.histograms.is_empty() {
            let rows: Vec<Vec<String>> = self
                .histograms
                .iter()
                .map(|h| {
                    vec![
                        h.name.clone(),
                        h.count.to_string(),
                        format!("{:.4}", h.sum_ns as f64 / 1e9),
                        format!("{:.6}", h.mean_s()),
                        format!("{:.6}", h.quantile_s(0.5)),
                        format!("{:.6}", h.quantile_s(0.95)),
                        format!("{:.6}", h.max_ns as f64 / 1e9),
                    ]
                })
                .collect();
            out.push_str(&format_table(
                "timing histograms",
                &[
                    "name",
                    "count",
                    "total (s)",
                    "mean (s)",
                    "~p50 (s)",
                    "~p95 (s)",
                    "max (s)",
                ],
                &rows,
            ));
        }
        out
    }
}

/// One node of the serialized span tree.
#[derive(Debug)]
struct TreeNode {
    name: String,
    stat: SpanStat,
    children: Vec<TreeNode>,
}

/// Nests flat `a/b/c` span paths into a forest. Parents missing from
/// the input (a child recorded on a worker thread whose parent scope
/// never closed, say) are synthesized with zeroed stats.
fn build_tree(spans: &[SpanStat]) -> Vec<TreeNode> {
    let mut roots: Vec<TreeNode> = Vec::new();
    for s in spans {
        let segments: Vec<&str> = s.path.split('/').collect();
        let mut level = &mut roots;
        for (depth, seg) in segments.iter().enumerate() {
            let pos = match level.iter().position(|n| n.name == *seg) {
                Some(p) => p,
                None => {
                    level.push(TreeNode {
                        name: seg.to_string(),
                        stat: SpanStat {
                            path: segments[..=depth].join("/"),
                            ..SpanStat::default()
                        },
                        children: Vec::new(),
                    });
                    level.len() - 1
                }
            };
            if depth + 1 == segments.len() {
                level[pos].stat = s.clone();
            }
            level = &mut level[pos].children;
        }
    }
    roots
}

fn write_nodes(j: &mut String, nodes: &[TreeNode], indent: usize) {
    let pad = "  ".repeat(indent);
    if nodes.is_empty() {
        j.push_str("[]");
        return;
    }
    j.push('[');
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        j.push_str(&format!(
            "\n{pad}  {{\"name\": {}, \"path\": {}, \"count\": {}, \"total_s\": {}, \
             \"mean_s\": {}, \"min_s\": {}, \"max_s\": {}, \"threads\": {}, \"children\": ",
            json::escape(&n.name),
            json::escape(&n.stat.path),
            n.stat.count,
            json::num(n.stat.total_s()),
            json::num(n.stat.mean_s()),
            json::num(n.stat.min_ns as f64 / 1e9),
            json::num(n.stat.max_ns as f64 / 1e9),
            n.stat.threads,
        ));
        write_nodes(j, &n.children, indent + 1);
        j.push('}');
    }
    j.push_str(&format!("\n{pad}]"));
}

/// Width-aligned plain-text table with a section title.
fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            width[i] = width[i].max(c.len());
        }
    }
    let mut out = format!("== {title} ==\n");
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = width[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    line(&mut out, &header_cells);
    out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::metrics::{Counter, TimingHistogram};

    static REPORT_C: Counter = Counter::new("test.report.counter");
    static REPORT_H: TimingHistogram = TimingHistogram::new("test.report.hist");

    fn sample_report() -> RunReport {
        let _a = crate::span("phase");
        {
            let _b = crate::span("step");
        }
        {
            let _b = crate::span("step");
        }
        REPORT_C.add(42);
        REPORT_H.record_ns(1500);
        REPORT_H.record_ns(3000);
        drop(_a);
        RunReport::capture()
    }

    #[test]
    fn json_form_is_valid_and_nested() {
        let _guard = crate::test_guard();
        crate::enable(true);
        let report = sample_report();
        let doc = Json::parse(&report.to_json()).expect("report JSON must parse");
        assert_eq!(doc.get("rsg_obs_report").and_then(Json::as_str), Some("v1"));
        let spans = doc.get("spans").and_then(Json::as_array).unwrap();
        let phase = spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some("phase"))
            .expect("phase root");
        let children = phase.get("children").and_then(Json::as_array).unwrap();
        assert_eq!(
            children[0].get("path").and_then(Json::as_str),
            Some("phase/step")
        );
        assert_eq!(children[0].get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("test.report.counter"))
                .and_then(Json::as_f64),
            Some(42.0)
        );
        let hists = doc.get("histograms").and_then(Json::as_array).unwrap();
        let h = hists
            .iter()
            .find(|h| h.get("name").and_then(Json::as_str) == Some("test.report.hist"))
            .unwrap();
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(2.0));
        crate::enable(false);
        crate::reset();
    }

    #[test]
    fn tsv_and_summary_cover_all_sections() {
        let _guard = crate::test_guard();
        crate::enable(true);
        let report = sample_report();
        let tsv = report.to_tsv();
        assert!(tsv.starts_with("rsg-obs-report\tv1\n"));
        assert!(tsv.contains("span\tphase/step\t2\t"));
        assert!(tsv.contains("counter\ttest.report.counter\t42\n"));
        assert!(tsv.contains("hist\ttest.report.hist\t2\t4500\t1500\t3000"));
        assert!(tsv.ends_with("end\n"));
        let summary = report.summary();
        assert!(summary.contains("== spans =="));
        assert!(summary.contains("== counters =="));
        assert!(summary.contains("== timing histograms =="));
        assert!(summary.contains("phase/step"));
        crate::enable(false);
        crate::reset();
    }

    #[test]
    fn orphan_child_paths_get_synthesized_parents() {
        let spans = vec![SpanStat {
            path: "a/b/c".into(),
            count: 3,
            total_ns: 9,
            min_ns: 1,
            max_ns: 5,
            threads: 2,
        }];
        let tree = build_tree(&spans);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "a");
        assert_eq!(tree[0].stat.count, 0, "synthesized parent");
        assert_eq!(tree[0].children[0].children[0].stat.count, 3);
    }

    #[test]
    fn empty_report_serializes() {
        let report = RunReport::default();
        assert!(report.is_empty());
        assert!(Json::parse(&report.to_json()).is_ok());
        assert!(report.summary().contains("nothing recorded"));
        assert_eq!(report.counter("missing"), 0);
    }
}
