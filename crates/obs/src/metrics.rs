//! Monotonic counters and timing histograms.
//!
//! Both sinks are designed for the workspace's hot paths: a metric is a
//! `static` with interior atomics, recording is a single relaxed
//! atomic-load check when observability is disabled, and a handful of
//! relaxed read-modify-write operations when enabled. No locks are ever
//! taken on the record path, so (cell × instance) rayon workers can
//! hammer the same sink without serializing.

use crate::registry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A named monotonic counter.
///
/// Declare as a `static` and bump it from anywhere; the counter
/// registers itself with the global registry on first use so that
/// [`RunReport::capture`](crate::RunReport::capture) only lists metrics
/// the run actually touched.
///
/// ```
/// static PLACEMENTS: rsg_obs::Counter = rsg_obs::Counter::new("demo.placements");
/// rsg_obs::enable(true);
/// PLACEMENTS.add(3);
/// PLACEMENTS.add(4);
/// assert_eq!(PLACEMENTS.get(), 7);
/// rsg_obs::enable(false);
/// # rsg_obs::reset();
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates a counter (const, so it can be a `static`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`. A no-op (one relaxed load) while observability is
    /// disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Convenience for `add(1)`.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (used by [`crate::reset`]).
    pub(crate) fn clear(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry().register_counter(self);
        }
    }
}

/// Number of histogram buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0 ns), bucket
/// `BUCKETS - 1` absorbs everything ≥ 2^39 ns (~9.2 minutes).
pub const BUCKETS: usize = 40;

/// The bucket index a duration of `ns` nanoseconds falls into.
///
/// ```
/// use rsg_obs::metrics::bucket_index;
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 0);
/// assert_eq!(bucket_index(2), 1);
/// assert_eq!(bucket_index(1023), 9);
/// assert_eq!(bucket_index(1024), 10);
/// assert_eq!(bucket_index(u64::MAX), rsg_obs::metrics::BUCKETS - 1);
/// ```
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`, nanoseconds.
pub fn bucket_lo_ns(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i`, nanoseconds (`u64::MAX` for the
/// last, absorbing bucket).
pub fn bucket_hi_ns(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// A named timing histogram with power-of-two nanosecond buckets plus
/// exact count / sum / min / max.
///
/// Like [`Counter`], it is a const-constructible `static` whose record
/// path is entirely relaxed atomics.
#[derive(Debug)]
pub struct TimingHistogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    registered: AtomicBool,
}

impl TimingHistogram {
    /// Creates a histogram (const, so it can be a `static`).
    pub const fn new(name: &'static str) -> TimingHistogram {
        TimingHistogram {
            name,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records a duration in nanoseconds. A no-op (one relaxed load)
    /// while observability is disabled.
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a [`Duration`].
    #[inline]
    pub fn record(&'static self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records a duration given in (possibly fractional) seconds.
    #[inline]
    pub fn record_secs(&'static self, s: f64) {
        if s >= 0.0 && s.is_finite() {
            self.record_ns((s * 1e9) as u64);
        }
    }

    /// A consistent-enough snapshot of the histogram's state. Under
    /// concurrent writers individual fields may lag each other by a few
    /// records; totals are exact once writers are quiescent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push(BucketCount {
                    lo_ns: bucket_lo_ns(i),
                    hi_ns: bucket_hi_ns(i),
                    count: c,
                });
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: self.name.to_string(),
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zeroes the histogram (used by [`crate::reset`]).
    pub(crate) fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry().register_histogram(self);
        }
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound, nanoseconds.
    pub lo_ns: u64,
    /// Exclusive upper bound, nanoseconds.
    pub hi_ns: u64,
    /// Records in `[lo_ns, hi_ns)`.
    pub count: u64,
}

/// A point-in-time copy of a [`TimingHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total records.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded duration (0 when empty).
    pub min_ns: u64,
    /// Largest recorded duration.
    pub max_ns: u64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean recorded duration, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e9
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the exclusive upper
    /// bound of the first bucket whose cumulative count reaches
    /// `q · count`, in seconds. Exact values are bracketed within a 2×
    /// bucket, which is plenty for a run summary.
    pub fn quantile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for b in &self.buckets {
            cum += b.count;
            if cum >= target {
                return (b.hi_ns.min(self.max_ns)) as f64 / 1e9;
            }
        }
        self.max_ns as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new("test.metrics.counter");
    static H: TimingHistogram = TimingHistogram::new("test.metrics.hist");

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 21) - 1), 20);
        // Everything past the last bucket boundary is absorbed.
        assert_eq!(bucket_index(1 << 45), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lo_ns(i).max(1)), i);
            assert!(bucket_lo_ns(i) < bucket_hi_ns(i));
        }
    }

    #[test]
    fn counter_disabled_is_noop_and_enabled_accumulates() {
        let _guard = crate::test_guard();
        crate::enable(false);
        C.add(5);
        assert_eq!(C.get(), 0, "disabled counter must not move");
        crate::enable(true);
        C.add(5);
        C.incr();
        assert_eq!(C.get(), 6);
        crate::enable(false);
        C.add(100);
        assert_eq!(C.get(), 6);
        crate::reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn histogram_aggregates() {
        let _guard = crate::test_guard();
        crate::enable(true);
        H.clear();
        for ns in [1u64, 3, 1000, 1500, 1 << 30] {
            H.record_ns(ns);
        }
        let s = H.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 1 + 3 + 1000 + 1500 + (1u64 << 30));
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 1 << 30);
        // 1 → bucket 0; 3 → bucket 1; 1000 → bucket 9; 1500 → bucket 10;
        // 2^30 → bucket 30.
        let idx: Vec<u64> = s.buckets.iter().map(|b| b.count).collect();
        assert_eq!(idx, vec![1, 1, 1, 1, 1]);
        assert!(s.mean_s() > 0.0);
        // The p100 quantile brackets the max.
        assert!(s.quantile_s(1.0) >= 1.0 && s.quantile_s(1.0) <= 2.2);
        crate::enable(false);
        crate::reset();
    }

    #[test]
    fn quantiles_bracket() {
        let _guard = crate::test_guard();
        static Q: TimingHistogram = TimingHistogram::new("test.metrics.quant");
        crate::enable(true);
        Q.clear();
        for _ in 0..99 {
            Q.record_ns(100);
        }
        Q.record_ns(1_000_000);
        let s = Q.snapshot();
        // p50 lands in the 100 ns bucket [64, 128).
        assert!(s.quantile_s(0.5) <= 128e-9);
        // p100 lands in the 1 ms bucket.
        assert!(s.quantile_s(1.0) >= 1e-3 / 2.0);
        crate::enable(false);
        crate::reset();
    }
}
