//! `rsg-obs` — pipeline observability for the resource-specification
//! generator.
//!
//! The crate provides three sinks and one aggregate:
//!
//! * [`span()`] — lexical wall-clock scopes, nested into `/`-separated
//!   paths per thread, optionally traced live to stderr
//!   ([`set_trace`]);
//! * [`Counter`] — named monotonic counters (placements evaluated, RC
//!   prefixes reused, cache hits, …);
//! * [`TimingHistogram`] — power-of-two nanosecond histograms for
//!   repeated timings (per-heuristic scheduling time, curve-point
//!   evaluation, …);
//! * [`RunReport`] — a snapshot of everything recorded, serializable as
//!   JSON or TSV and printable as a summary table.
//!
//! Everything is **off by default** and zero-cost while off: every
//! record path starts with a single relaxed atomic load and returns
//! immediately, with no clock read and no allocation. Call
//! [`enable`]`(true)` (the CLI does this for `--trace`/`--report`) to
//! start collecting. Counters and histograms are lock-free even when
//! enabled, so the workspace's (cell × instance) rayon stages can
//! record concurrently without serializing; spans take a short global
//! lock only at scope *exit*, which is why hot inner loops use
//! counters/histograms and spans stay coarse (one per pipeline phase).
//!
//! ```
//! use rsg_obs::{span, Counter, RunReport};
//!
//! static ITEMS: Counter = Counter::new("demo.items");
//!
//! rsg_obs::enable(true);
//! {
//!     let _phase = span("demo");
//!     let _step = span("work");
//!     ITEMS.add(2);
//! }
//! let report = RunReport::capture();
//! assert_eq!(report.counter("demo.items"), 2);
//! assert_eq!(report.span("demo/work").unwrap().count, 1);
//! assert!(report.to_json().contains("\"demo.items\": 2"));
//! rsg_obs::enable(false);
//! rsg_obs::reset();
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use metrics::{BucketCount, Counter, HistogramSnapshot, TimingHistogram};
pub use report::RunReport;
pub use span::{span, SpanGuard, SpanStat};

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off globally. Off is the default; while off,
/// every record call is a single relaxed load.
pub fn enable(on: bool) {
    if on {
        // Pin the trace epoch to the first moment observability turns
        // on, so `[trace +offset]` lines measure from run start.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns live span tracing (enter/exit lines on stderr) on or off.
/// Implies nothing about collection: combine with [`enable`].
pub fn set_trace(on: bool) {
    TRACE.store(on, Ordering::Relaxed);
}

/// Whether live span tracing is on.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE.load(Ordering::Relaxed)
}

/// A short fingerprint of the current observability configuration
/// (`"off"`, `"on"` or `"on+trace"`). Cache keys that guard derived
/// artifacts of instrumented computations should include it: a sweep
/// served from cache records nothing, so an observed run must not
/// share a cache entry with an unobserved one.
pub fn config_fingerprint() -> &'static str {
    match (enabled(), trace_enabled()) {
        (false, _) => "off",
        (true, false) => "on",
        (true, true) => "on+trace",
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since the observability epoch (first [`enable`] or first
/// use, whichever came first). Used to stamp trace lines.
pub fn epoch_elapsed_s() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// Clears all recorded data: zeroes every registered counter and
/// histogram and drops all span aggregates. Registration survives, so
/// metric statics keep working after a reset.
pub fn reset() {
    let r = registry();
    for c in r.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        c.clear();
    }
    for h in r
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        h.clear();
    }
    r.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Serializes tests that manipulate the global enable flag or assert on
/// global totals. Process-wide; returns a guard to hold for the test's
/// duration. (Doctests run in separate processes and don't need it.)
pub fn test_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    threads: BTreeSet<String>,
}

/// The process-wide sink registry. Metric statics self-register on
/// first use; spans aggregate under their path.
pub(crate) struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static TimingHistogram>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
}

impl Registry {
    pub(crate) fn register_counter(&self, c: &'static Counter) {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(c);
    }

    pub(crate) fn register_histogram(&self, h: &'static TimingHistogram) {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    pub(crate) fn record_span(&self, path: &str, ns: u64, thread: &str) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let agg = spans.entry(path.to_string()).or_default();
        if agg.count == 0 {
            agg.min_ns = ns;
            agg.max_ns = ns;
        } else {
            agg.min_ns = agg.min_ns.min(ns);
            agg.max_ns = agg.max_ns.max(ns);
        }
        agg.count += 1;
        agg.total_ns += ns;
        if !agg.threads.contains(thread) {
            agg.threads.insert(thread.to_string());
        }
    }

    pub(crate) fn capture(&self) -> RunReport {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|c| c.get() > 0)
            .map(|c| (c.name().to_string(), c.get()))
            .collect();
        counters.sort();
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|h| h.snapshot())
            .filter(|s| s.count > 0)
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let spans: Vec<SpanStat> = self
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(path, agg)| SpanStat {
                path: path.clone(),
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
                threads: agg.threads.len() as u64,
            })
            .collect();
        RunReport {
            spans,
            counters,
            histograms,
        }
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        spans: Mutex::new(BTreeMap::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_configuration() {
        let _guard = test_guard();
        enable(false);
        set_trace(false);
        assert_eq!(config_fingerprint(), "off");
        enable(true);
        assert_eq!(config_fingerprint(), "on");
        set_trace(true);
        assert_eq!(config_fingerprint(), "on+trace");
        set_trace(false);
        enable(false);
        reset();
    }

    #[test]
    fn reset_survives_reuse() {
        let _guard = test_guard();
        static REUSED: Counter = Counter::new("test.lib.reused");
        enable(true);
        REUSED.add(7);
        assert_eq!(RunReport::capture().counter("test.lib.reused"), 7);
        reset();
        assert_eq!(RunReport::capture().counter("test.lib.reused"), 0);
        // Registration survives the reset: the static keeps recording.
        REUSED.add(2);
        assert_eq!(RunReport::capture().counter("test.lib.reused"), 2);
        enable(false);
        reset();
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = epoch_elapsed_s();
        let b = epoch_elapsed_s();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
