//! Lightweight span scopes.
//!
//! A span measures the wall-clock of a lexical scope and aggregates it
//! under a `/`-separated path built from the enclosing spans *on the
//! same thread* (rayon workers start fresh, so spans opened inside a
//! parallel stage become top-level entries — by design: per-item spans
//! inside the hot sweep loops should be counters or histograms
//! instead). Enter/exit events carry the wall-clock offset since the
//! process's first span and the thread's id; with
//! [`set_trace`](crate::set_trace) they are printed to stderr as they
//! happen.

use crate::registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A short label for the current thread (`t1`, `t2`, … in creation
/// order as far as the std `ThreadId` debug format exposes it).
pub fn thread_label() -> String {
    let raw = format!("{:?}", std::thread::current().id());
    let digits: String = raw.chars().filter(|c| c.is_ascii_digit()).collect();
    format!("t{digits}")
}

/// Opens a span scope. The returned guard records the elapsed
/// wall-clock into the global span aggregate when dropped. Zero-cost
/// (a single relaxed load, no clock read) while observability is
/// disabled.
#[must_use = "a span measures the scope it is bound to; drop ends it"]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join("/")
    });
    let start = Instant::now();
    if crate::trace_enabled() {
        eprintln!(
            "[trace +{:>10.6}s {:>4}] > {}",
            crate::epoch_elapsed_s(),
            thread_label(),
            path
        );
    }
    SpanGuard {
        inner: Some(ActiveSpan { path, start }),
    }
}

struct ActiveSpan {
    path: String,
    start: Instant,
}

/// Guard returned by [`span`]; ends the span on drop.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if crate::trace_enabled() {
            eprintln!(
                "[trace +{:>10.6}s {:>4}] < {} ({:.6}s)",
                crate::epoch_elapsed_s(),
                thread_label(),
                active.path,
                ns as f64 / 1e9
            );
        }
        registry().record_span(&active.path, ns, &thread_label());
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanStat {
    /// Full `/`-separated path.
    pub path: String,
    /// Number of completed scopes.
    pub count: u64,
    /// Total wall-clock, nanoseconds.
    pub total_ns: u64,
    /// Shortest scope, nanoseconds.
    pub min_ns: u64,
    /// Longest scope, nanoseconds.
    pub max_ns: u64,
    /// Distinct threads that completed this span.
    pub threads: u64,
}

impl SpanStat {
    /// Total wall-clock, seconds.
    pub fn total_s(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean scope duration, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_paths() {
        let _guard = crate::test_guard();
        crate::enable(true);
        {
            let _a = span("outer");
            {
                let _b = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _b = span("inner");
            }
        }
        let report = crate::RunReport::capture();
        let outer = report.span("outer").expect("outer span");
        let inner = report.span("outer/inner").expect("nested path");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.threads >= 1);
        crate::enable(false);
        crate::reset();
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = crate::test_guard();
        crate::enable(false);
        {
            let _a = span("ghost");
        }
        crate::enable(true);
        let report = crate::RunReport::capture();
        assert!(report.span("ghost").is_none());
        crate::enable(false);
        crate::reset();
    }

    #[test]
    fn thread_label_is_compact() {
        let l = thread_label();
        assert!(l.starts_with('t'));
    }
}
