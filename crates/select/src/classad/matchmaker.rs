//! The Condor matchmaker: bilateral matchmaking plus Gangmatching
//! (Section II.4.2.1).
//!
//! Bilateral matching pairs one request ad with one machine ad such that
//! both sides' `Requirements`/`Constraint` evaluate true against each
//! other; among compatible machines the requester's `Rank` (higher is
//! better) decides. Gangmatching generalizes this to a job with a
//! `Ports` list: each port is bound to a distinct machine satisfying the
//! port's `Constraint`, maximizing the port's `Rank`.

use super::{eval, ClassAd, Env, Expr, Value};
use rsg_platform::{Cluster, Platform, ResourceCollection};

/// A pool of machine ads with matchmaking queries.
#[derive(Debug, Clone, Default)]
pub struct Matchmaker {
    machines: Vec<ClassAd>,
}

/// A machine ad for one cluster of a platform (one ad per cluster; the
/// `Hosts` attribute carries the multiplicity).
pub fn machine_ad(c: &Cluster) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.set("Type", Expr::Str("Machine".into()));
    ad.set("Name", Expr::Str(format!("cluster{}", c.id.0)));
    ad.set("Arch", Expr::Str(c.arch.as_str().into()));
    ad.set("OpSys", Expr::Str("LINUX".into()));
    ad.set("Clock", Expr::Num(c.clock_mhz));
    ad.set("KFlops", Expr::Num(c.clock_mhz * 500.0));
    ad.set("Memory", Expr::Num(c.memory_mb as f64));
    ad.set("Hosts", Expr::Num(c.hosts as f64));
    ad.set("State", Expr::Str("Unclaimed".into()));
    ad
}

impl Matchmaker {
    /// An empty pool.
    pub fn new() -> Matchmaker {
        Matchmaker::default()
    }

    /// A pool advertising every cluster of a platform.
    pub fn from_platform(p: &Platform) -> Matchmaker {
        Matchmaker {
            machines: p.clusters().iter().map(machine_ad).collect(),
        }
    }

    /// Adds a machine ad.
    pub fn advertise(&mut self, ad: ClassAd) {
        self.machines.push(ad);
    }

    /// Number of advertised machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when no machines are advertised.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Bilateral matchmaking: the best machine for `request`.
    ///
    /// The request's `Requirements` is evaluated with the machine bound
    /// to the `other` scope (and vice versa for the machine's own
    /// `Requirements`, when present); ties broken by ad order.
    pub fn matchmake(&self, request: &ClassAd) -> Option<&ClassAd> {
        static OBS_MATCHES: rsg_obs::Counter = rsg_obs::Counter::new("select.classad.matchmakes");
        let _span = rsg_obs::span("select/classad_matchmake");
        OBS_MATCHES.incr();
        let mut best: Option<(&ClassAd, f64)> = None;
        for m in &self.machines {
            if !Self::mutual(request, m) {
                continue;
            }
            let env = Env::with_self(request).scope("other", m).scope("cpu", m);
            let rank = match request.eval_attr("Rank", &env) {
                Value::Num(n) => n,
                Value::Bool(true) => 1.0,
                _ => 0.0,
            };
            if best.is_none() || rank > best.unwrap().1 {
                best = Some((m, rank));
            }
        }
        best.map(|(m, _)| m)
    }

    fn mutual(request: &ClassAd, machine: &ClassAd) -> bool {
        let env_r = Env::with_self(request)
            .scope("other", machine)
            .scope("cpu", machine);
        let req_ok = match request.get("Requirements").or(request.get("Constraint")) {
            Some(e) => eval(e, &env_r, 0).truthy(),
            None => true,
        };
        if !req_ok {
            return false;
        }
        let env_m = Env::with_self(machine).scope("other", request);
        match machine.get("Requirements").or(machine.get("Constraint")) {
            Some(e) => eval(e, &env_m, 0).truthy(),
            None => true,
        }
    }

    /// Gangmatching: binds each port of `request.Ports` to a distinct
    /// machine maximizing the port's `Rank` under its `Constraint`.
    /// Returns `None` if any port cannot be satisfied.
    pub fn gangmatch(&self, request: &ClassAd) -> Option<Vec<&ClassAd>> {
        let Some(Expr::AdList(ports)) = request.get("Ports") else {
            return None;
        };
        let mut used = vec![false; self.machines.len()];
        let mut bound = Vec::with_capacity(ports.len());
        for port in ports {
            let label = match port.get("Label") {
                Some(Expr::Ref(path)) => path[0].clone(),
                Some(Expr::Str(s)) => s.clone(),
                _ => "cpu".to_string(),
            };
            let mut best: Option<(usize, f64)> = None;
            for (i, m) in self.machines.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let env = Env::with_self(port).scope(&label, m).scope("other", m);
                let ok = match port.get("Constraint").or(port.get("Requirements")) {
                    Some(e) => eval(e, &env, 0).truthy(),
                    None => true,
                };
                if !ok {
                    continue;
                }
                let rank = match port.eval_attr("Rank", &env) {
                    Value::Num(n) => n,
                    Value::Bool(true) => 1.0,
                    _ => 0.0,
                };
                if best.is_none() || rank > best.unwrap().1 {
                    best = Some((i, rank));
                }
            }
            let (i, _) = best?;
            used[i] = true;
            bound.push(&self.machines[i]);
        }
        Some(bound)
    }

    /// Builds a resource collection from a matched count-style request:
    /// the request carries `Count` (hosts wanted) and `Requirements`
    /// over Clock/Arch/Memory; machines are cluster ads. Hosts are
    /// gathered from the highest-ranked qualifying clusters.
    pub fn select_hosts(
        &self,
        request: &ClassAd,
        platform: &Platform,
    ) -> Option<ResourceCollection> {
        let count = match request.get("Count") {
            Some(Expr::Num(n)) => *n as usize,
            _ => 1,
        };
        // Rank all qualifying machines.
        let mut ranked: Vec<(usize, f64)> = Vec::new();
        for (i, m) in self.machines.iter().enumerate() {
            if !Self::mutual(request, m) {
                continue;
            }
            let env = Env::with_self(request).scope("other", m).scope("cpu", m);
            let rank = match request.eval_attr("Rank", &env) {
                Value::Num(n) => n,
                _ => 0.0,
            };
            ranked.push((i, rank));
        }
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut picks = Vec::new();
        let mut remaining = count;
        for (i, _) in ranked {
            if remaining == 0 {
                break;
            }
            // Cluster index encoded by ad order for platform pools.
            let c = &platform.clusters()[i];
            let take = (c.hosts as usize).min(remaining);
            picks.push((c.id, take as u32));
            remaining -= take;
        }
        if remaining > 0 || picks.is_empty() {
            return None;
        }
        Some(platform.rc_from_picks(&picks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classad::{parse_classad, BinOp};
    use rsg_platform::{ResourceGenSpec, TopologySpec};

    fn pool() -> Matchmaker {
        let mut mm = Matchmaker::new();
        for (arch, mem, kflops) in [
            ("INTEL", 512.0, 20_000.0),
            ("OPTERON", 2048.0, 90_000.0),
            ("OPTERON", 4096.0, 150_000.0),
        ] {
            let mut ad = ClassAd::new();
            ad.set("Type", Expr::Str("Machine".into()));
            ad.set("Arch", Expr::Str(arch.into()));
            ad.set("OpSys", Expr::Str("LINUX".into()));
            ad.set("Memory", Expr::Num(mem));
            ad.set("KFlops", Expr::Num(kflops));
            mm.advertise(ad);
        }
        mm
    }

    #[test]
    fn bilateral_match_picks_highest_rank() {
        let mm = pool();
        let req = parse_classad(
            r#"[ Type = "Job";
                 Requirements = other.Arch == "OPTERON" && other.Memory >= 1024;
                 Rank = other.KFlops ]"#,
        )
        .unwrap();
        let m = mm.matchmake(&req).unwrap();
        assert_eq!(m.get("Memory"), Some(&Expr::Num(4096.0)));
    }

    #[test]
    fn bilateral_match_respects_machine_requirements() {
        let mut mm = Matchmaker::new();
        let mut picky = ClassAd::new();
        picky.set("Type", Expr::Str("Machine".into()));
        picky.set("Arch", Expr::Str("INTEL".into()));
        picky.set(
            "Requirements",
            Expr::bin(
                BinOp::Le,
                Expr::scoped("other", "ImageSize"),
                Expr::Num(100.0),
            ),
        );
        mm.advertise(picky);
        let small = parse_classad(r#"[ ImageSize = 50; Requirements = true ]"#).unwrap();
        let big = parse_classad(r#"[ ImageSize = 500; Requirements = true ]"#).unwrap();
        assert!(mm.matchmake(&small).is_some());
        assert!(mm.matchmake(&big).is_none());
    }

    #[test]
    fn no_match_when_constraints_unsatisfiable() {
        let mm = pool();
        let req = parse_classad(r#"[ Requirements = other.Arch == "SPARC" ]"#).unwrap();
        assert!(mm.matchmake(&req).is_none());
    }

    #[test]
    fn gangmatch_binds_distinct_machines() {
        let mm = pool();
        let req = parse_classad(
            r#"[ Type = "Job";
                 Ports = {
                   [ Label = cpu;
                     Rank = cpu.KFlops;
                     Constraint = cpu.Arch == "OPTERON" ],
                   [ Label = cpu;
                     Rank = cpu.KFlops;
                     Constraint = cpu.Arch == "OPTERON" ]
                 } ]"#,
        )
        .unwrap();
        let gang = mm.gangmatch(&req).unwrap();
        assert_eq!(gang.len(), 2);
        assert_ne!(
            gang[0].get("KFlops"),
            gang[1].get("KFlops"),
            "distinct machines"
        );
    }

    #[test]
    fn gangmatch_fails_if_any_port_unbound() {
        let mm = pool();
        let req = parse_classad(
            r#"[ Ports = {
                   [ Constraint = other.Arch == "OPTERON" ],
                   [ Constraint = other.Arch == "OPTERON" ],
                   [ Constraint = other.Arch == "OPTERON" ]
                 } ]"#,
        )
        .unwrap();
        // Only two Opterons in the pool.
        assert!(mm.gangmatch(&req).is_none());
    }

    #[test]
    fn select_hosts_from_platform() {
        let p = Platform::generate(
            ResourceGenSpec {
                clusters: 30,
                year: 2006,
                target_hosts: Some(900),
            },
            TopologySpec::default(),
            3,
        );
        let mm = Matchmaker::from_platform(&p);
        let req = parse_classad(
            r#"[ Type = "Job";
                 Count = 100;
                 Requirements = other.Type == "Machine" && other.Clock >= 1000;
                 Rank = other.Clock ]"#,
        )
        .unwrap();
        let rc = mm.select_hosts(&req, &p).unwrap();
        assert_eq!(rc.len(), 100);
        assert!(rc.slowest_clock_mhz() >= 1000.0);
    }

    #[test]
    fn select_hosts_fails_when_pool_too_small() {
        let p = Platform::generate(
            ResourceGenSpec {
                clusters: 5,
                year: 2006,
                target_hosts: Some(50),
            },
            TopologySpec::default(),
            4,
        );
        let mm = Matchmaker::from_platform(&p);
        let req = parse_classad(r#"[ Count = 500; Requirements = true ]"#).unwrap();
        assert!(mm.select_hosts(&req, &p).is_none());
    }
}
