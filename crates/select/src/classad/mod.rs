//! Condor Classified Advertisements (Section II.4.2).
//!
//! ClassAds are attribute→expression records used both by resource
//! providers ("machine ads", Figure II-3) and requesters ("job ads",
//! Figure II-2). This module implements the expression language subset
//! the paper exercises — arithmetic, comparisons, boolean connectives,
//! dotted scope references (`cpu.KFlops`, `other.Memory`), nested ad
//! lists for Gangmatching ports — with a printer that reproduces the
//! paper's formatting, a parser for round-tripping, and evaluation
//! under a scope environment.

mod matchmaker;
mod parser;

pub use matchmaker::{machine_ad, Matchmaker};
pub use parser::parse_classad;

use std::fmt;

/// Binary operators, printed in Condor syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// A ClassAd expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Attribute reference, possibly scoped: `Memory`, `cpu.KFlops`.
    Ref(Vec<String>),
    /// Negation `!e` or `-e`.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A list of nested ads (Gangmatching `Ports`).
    AdList(Vec<ClassAd>),
}

impl Expr {
    /// Convenience: `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: an unscoped attribute reference.
    pub fn attr(name: &str) -> Expr {
        Expr::Ref(vec![name.to_string()])
    }

    /// Convenience: a scoped attribute reference.
    pub fn scoped(scope: &str, name: &str) -> Expr {
        Expr::Ref(vec![scope.to_string(), name.to_string()])
    }

    /// Conjunction of several expressions.
    pub fn and_all(mut terms: Vec<Expr>) -> Expr {
        assert!(!terms.is_empty());
        let mut acc = terms.remove(0);
        for t in terms {
            acc = Expr::bin(BinOp::And, acc, t);
        }
        acc
    }
}

/// Runtime value of an evaluated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Number.
    Num(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Reference to a missing attribute, or a type error.
    Undefined,
}

impl Value {
    /// Condor truthiness: booleans as-is, nonzero numbers true,
    /// undefined false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0,
            Value::Str(_) => false,
            Value::Undefined => false,
        }
    }

    /// Numeric view, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }
}

/// Errors from parsing or evaluating ClassAds.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassAdError {
    /// Parse failure with position and message.
    Parse(usize, String),
    /// Evaluation recursion limit hit (self-referential attributes).
    RecursionLimit,
}

impl fmt::Display for ClassAdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassAdError::Parse(pos, msg) => write!(f, "parse error at {pos}: {msg}"),
            ClassAdError::RecursionLimit => write!(f, "attribute recursion limit"),
        }
    }
}

impl std::error::Error for ClassAdError {}

/// An ordered attribute→expression record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassAd {
    attrs: Vec<(String, Expr)>,
}

impl ClassAd {
    /// An empty ad.
    pub fn new() -> ClassAd {
        ClassAd::default()
    }

    /// Sets (or replaces) an attribute.
    pub fn set(&mut self, name: &str, e: Expr) -> &mut Self {
        if let Some(slot) = self
            .attrs
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            slot.1 = e;
        } else {
            self.attrs.push((name.to_string(), e));
        }
        self
    }

    /// Case-insensitive attribute lookup.
    pub fn get(&self, name: &str) -> Option<&Expr> {
        self.attrs
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, e)| e)
    }

    /// All attributes in insertion order.
    pub fn attrs(&self) -> &[(String, Expr)] {
        &self.attrs
    }

    /// Evaluates attribute `name` under the scope environment. The
    /// first scope is "self" (unqualified lookups try it first), later
    /// scopes are candidates (`other`, port labels, …).
    pub fn eval_attr(&self, name: &str, env: &Env<'_>) -> Value {
        match self.get(name) {
            Some(e) => eval(e, env, 0),
            None => Value::Undefined,
        }
    }
}

/// Scope environment for evaluation: `(scope name, ad)` pairs, self
/// first.
#[derive(Debug, Clone, Default)]
pub struct Env<'a> {
    scopes: Vec<(&'a str, &'a ClassAd)>,
}

impl<'a> Env<'a> {
    /// An environment with just a self scope.
    pub fn with_self(ad: &'a ClassAd) -> Env<'a> {
        Env {
            scopes: vec![("self", ad)],
        }
    }

    /// Adds a named scope (e.g. `other`, a port label).
    pub fn scope(mut self, name: &'a str, ad: &'a ClassAd) -> Env<'a> {
        self.scopes.push((name, ad));
        self
    }

    fn lookup_scoped(&self, scope: &str, attr: &str) -> Option<&'a Expr> {
        self.scopes
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(scope))
            .and_then(|(_, ad)| ad.get(attr))
    }

    fn lookup_unscoped(&self, attr: &str) -> Option<&'a Expr> {
        self.scopes.iter().find_map(|(_, ad)| ad.get(attr))
    }
}

const MAX_DEPTH: u32 = 32;

/// Evaluates an expression under an environment.
pub fn eval(e: &Expr, env: &Env<'_>, depth: u32) -> Value {
    if depth > MAX_DEPTH {
        return Value::Undefined;
    }
    match e {
        Expr::Num(n) => Value::Num(*n),
        Expr::Str(s) => Value::Str(s.clone()),
        Expr::Bool(b) => Value::Bool(*b),
        Expr::AdList(_) => Value::Undefined,
        Expr::Ref(path) => {
            let target = match path.len() {
                1 => env.lookup_unscoped(&path[0]),
                _ => env
                    .lookup_scoped(&path[0], &path[1])
                    .or_else(|| env.lookup_unscoped(path.last().unwrap())),
            };
            match target {
                Some(inner) => eval(inner, env, depth + 1),
                None => Value::Undefined,
            }
        }
        Expr::Not(inner) => Value::Bool(!eval(inner, env, depth + 1).truthy()),
        Expr::Neg(inner) => match eval(inner, env, depth + 1).as_num() {
            Some(n) => Value::Num(-n),
            None => Value::Undefined,
        },
        Expr::Bin(op, l, r) => {
            // Short-circuit logical connectives.
            match op {
                BinOp::And => {
                    if !eval(l, env, depth + 1).truthy() {
                        return Value::Bool(false);
                    }
                    return Value::Bool(eval(r, env, depth + 1).truthy());
                }
                BinOp::Or => {
                    if eval(l, env, depth + 1).truthy() {
                        return Value::Bool(true);
                    }
                    return Value::Bool(eval(r, env, depth + 1).truthy());
                }
                _ => {}
            }
            let lv = eval(l, env, depth + 1);
            let rv = eval(r, env, depth + 1);
            eval_binop(*op, &lv, &rv)
        }
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => match (l.as_num(), r.as_num()) {
            (Some(a), Some(b)) => {
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => {
                        if b == 0.0 {
                            return Value::Undefined;
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                Value::Num(v)
            }
            _ => Value::Undefined,
        },
        Eq | Ne => {
            let eq = match (l, r) {
                (Value::Str(a), Value::Str(b)) => Some(a.eq_ignore_ascii_case(b)),
                (Value::Undefined, _) | (_, Value::Undefined) => None,
                _ => match (l.as_num(), r.as_num()) {
                    (Some(a), Some(b)) => Some(a == b),
                    _ => None,
                },
            };
            match eq {
                Some(e) => Value::Bool(if op == Eq { e } else { !e }),
                None => Value::Undefined,
            }
        }
        Lt | Le | Gt | Ge => match (l.as_num(), r.as_num()) {
            (Some(a), Some(b)) => Value::Bool(match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            }),
            _ => match (l, r) {
                (Value::Str(a), Value::Str(b)) => {
                    let c = a.to_lowercase().cmp(&b.to_lowercase());
                    Value::Bool(match op {
                        Lt => c.is_lt(),
                        Le => c.is_le(),
                        Gt => c.is_gt(),
                        Ge => c.is_ge(),
                        _ => unreachable!(),
                    })
                }
                _ => Value::Undefined,
            },
        },
        And | Or => unreachable!("handled by short-circuit"),
    }
}

// ---------------------------------------------------------------- print

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.print(f, 0)
    }
}

impl Expr {
    fn print(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        match self {
            Expr::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Str(s) => write!(f, "\"{s}\""),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Ref(path) => write!(f, "{}", path.join(".")),
            Expr::Not(e) => {
                write!(f, "!")?;
                e.print(f, indent)
            }
            Expr::Neg(e) => {
                write!(f, "-")?;
                e.print(f, indent)
            }
            Expr::Bin(op, l, r) => {
                l.print(f, indent)?;
                write!(f, " {} ", op.symbol())?;
                r.print(f, indent)
            }
            Expr::AdList(ads) => {
                writeln!(f, "{{")?;
                for (i, ad) in ads.iter().enumerate() {
                    ad.print(f, indent + 2)?;
                    if i + 1 < ads.len() {
                        writeln!(f, ",")?;
                    } else {
                        writeln!(f)?;
                    }
                }
                write!(f, "{:indent$}}}", "", indent = indent)
            }
        }
    }
}

impl ClassAd {
    fn print(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        writeln!(f, "{:indent$}[", "", indent = indent)?;
        for (i, (name, e)) in self.attrs.iter().enumerate() {
            write!(f, "{:indent$}{name} = ", "", indent = indent + 2)?;
            e.print(f, indent + 2)?;
            if i + 1 < self.attrs.len() {
                writeln!(f, ";")?;
            } else {
                writeln!(f)?;
            }
        }
        write!(f, "{:indent$}]", "", indent = indent)
    }
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.print(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> ClassAd {
        let mut ad = ClassAd::new();
        ad.set("Type", Expr::Str("Machine".into()));
        ad.set("Arch", Expr::Str("OPTERON".into()));
        ad.set("OpSys", Expr::Str("LINUX".into()));
        ad.set("Memory", Expr::Num(2048.0));
        ad.set("KFlops", Expr::Num(300_000.0));
        ad
    }

    #[test]
    fn eval_constraint_true() {
        let m = machine();
        let c = Expr::and_all(vec![
            Expr::bin(
                BinOp::Eq,
                Expr::scoped("cpu", "Type"),
                Expr::Str("Machine".into()),
            ),
            Expr::bin(
                BinOp::Eq,
                Expr::scoped("cpu", "Arch"),
                Expr::Str("OPTERON".into()),
            ),
            Expr::bin(BinOp::Ge, Expr::scoped("cpu", "Memory"), Expr::Num(1024.0)),
        ]);
        let empty = ClassAd::new();
        let env = Env::with_self(&empty).scope("cpu", &m);
        assert!(eval(&c, &env, 0).truthy());
    }

    #[test]
    fn eval_rank_arithmetic() {
        // Rank = cpu.KFlops/1E3 + cpu.Memory/32 (Figure II-2).
        let m = machine();
        let rank = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Div, Expr::scoped("cpu", "KFlops"), Expr::Num(1e3)),
            Expr::bin(BinOp::Div, Expr::scoped("cpu", "Memory"), Expr::Num(32.0)),
        );
        let empty = ClassAd::new();
        let env = Env::with_self(&empty).scope("cpu", &m);
        assert_eq!(eval(&rank, &env, 0), Value::Num(300.0 + 64.0));
    }

    #[test]
    fn undefined_attribute_is_undefined() {
        let m = machine();
        let env = Env::with_self(&m);
        assert_eq!(m.eval_attr("Nope", &env), Value::Undefined);
        let e = Expr::bin(BinOp::Ge, Expr::attr("Nope"), Expr::Num(5.0));
        assert_eq!(eval(&e, &env, 0), Value::Undefined);
        assert!(!eval(&e, &env, 0).truthy());
    }

    #[test]
    fn string_compare_case_insensitive() {
        let e = Expr::bin(
            BinOp::Eq,
            Expr::Str("linux".into()),
            Expr::Str("LINUX".into()),
        );
        let empty = ClassAd::new();
        assert!(eval(&e, &Env::with_self(&empty), 0).truthy());
    }

    #[test]
    fn self_reference_hits_recursion_limit_gracefully() {
        let mut ad = ClassAd::new();
        ad.set("X", Expr::attr("X"));
        let env = Env::with_self(&ad);
        assert_eq!(ad.eval_attr("X", &env), Value::Undefined);
    }

    #[test]
    fn division_by_zero_undefined() {
        let e = Expr::bin(BinOp::Div, Expr::Num(1.0), Expr::Num(0.0));
        let empty = ClassAd::new();
        assert_eq!(eval(&e, &Env::with_self(&empty), 0), Value::Undefined);
    }

    #[test]
    fn display_matches_condor_style() {
        let mut ad = ClassAd::new();
        ad.set("Type", Expr::Str("Job".into()));
        ad.set(
            "Requirements",
            Expr::bin(
                BinOp::And,
                Expr::bin(
                    BinOp::Eq,
                    Expr::scoped("other", "Arch"),
                    Expr::Str("INTEL".into()),
                ),
                Expr::bin(BinOp::Ge, Expr::scoped("other", "Memory"), Expr::Num(512.0)),
            ),
        );
        let s = ad.to_string();
        assert!(s.contains("Type = \"Job\";"));
        assert!(s.contains("other.Arch == \"INTEL\" && other.Memory >= 512"));
        assert!(s.starts_with('[') && s.ends_with(']'));
    }

    #[test]
    fn set_replaces_case_insensitively() {
        let mut ad = ClassAd::new();
        ad.set("memory", Expr::Num(1.0));
        ad.set("Memory", Expr::Num(2.0));
        assert_eq!(ad.attrs().len(), 1);
        assert_eq!(ad.get("MEMORY"), Some(&Expr::Num(2.0)));
    }

    #[test]
    fn short_circuit_and() {
        // false && undefined -> false (not undefined).
        let e = Expr::bin(BinOp::And, Expr::Bool(false), Expr::attr("Missing"));
        let empty = ClassAd::new();
        assert_eq!(eval(&e, &Env::with_self(&empty), 0), Value::Bool(false));
    }
}
