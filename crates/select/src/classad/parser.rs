//! Recursive-descent parser for the ClassAd subset the paper uses,
//! enabling round-trips of generated specifications (Figure VII-3) and
//! of the paper's own example ads (Figures II-2 / II-3).

use super::{BinOp, ClassAd, ClassAdError, Expr};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Dot,
    Assign,
    Op(BinOp),
    Not,
    Ident(String),
    Str(String),
    Num(f64),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> ClassAdError {
        ClassAdError::Parse(self.pos, msg.to_string())
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ClassAdError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            let start = self.pos;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'[' => {
                    out.push((start, Tok::LBracket));
                    self.pos += 1;
                }
                b']' => {
                    out.push((start, Tok::RBracket));
                    self.pos += 1;
                }
                b'{' => {
                    out.push((start, Tok::LBrace));
                    self.pos += 1;
                }
                b'}' => {
                    out.push((start, Tok::RBrace));
                    self.pos += 1;
                }
                b'(' => {
                    out.push((start, Tok::LParen));
                    self.pos += 1;
                }
                b')' => {
                    out.push((start, Tok::RParen));
                    self.pos += 1;
                }
                b';' => {
                    out.push((start, Tok::Semi));
                    self.pos += 1;
                }
                b',' => {
                    out.push((start, Tok::Comma));
                    self.pos += 1;
                }
                b'.' => {
                    out.push((start, Tok::Dot));
                    self.pos += 1;
                }
                b'+' => {
                    out.push((start, Tok::Op(BinOp::Add)));
                    self.pos += 1;
                }
                b'-' => {
                    out.push((start, Tok::Op(BinOp::Sub)));
                    self.pos += 1;
                }
                b'*' => {
                    out.push((start, Tok::Op(BinOp::Mul)));
                    self.pos += 1;
                }
                b'/' => {
                    out.push((start, Tok::Op(BinOp::Div)));
                    self.pos += 1;
                }
                b'=' if self.peek(1) == Some(b'=') => {
                    out.push((start, Tok::Op(BinOp::Eq)));
                    self.pos += 2;
                }
                b'=' => {
                    out.push((start, Tok::Assign));
                    self.pos += 1;
                }
                b'!' if self.peek(1) == Some(b'=') => {
                    out.push((start, Tok::Op(BinOp::Ne)));
                    self.pos += 2;
                }
                b'!' => {
                    out.push((start, Tok::Not));
                    self.pos += 1;
                }
                b'<' if self.peek(1) == Some(b'=') => {
                    out.push((start, Tok::Op(BinOp::Le)));
                    self.pos += 2;
                }
                b'<' => {
                    out.push((start, Tok::Op(BinOp::Lt)));
                    self.pos += 1;
                }
                b'>' if self.peek(1) == Some(b'=') => {
                    out.push((start, Tok::Op(BinOp::Ge)));
                    self.pos += 2;
                }
                b'>' => {
                    out.push((start, Tok::Op(BinOp::Gt)));
                    self.pos += 1;
                }
                b'&' if self.peek(1) == Some(b'&') => {
                    out.push((start, Tok::Op(BinOp::And)));
                    self.pos += 2;
                }
                b'|' if self.peek(1) == Some(b'|') => {
                    out.push((start, Tok::Op(BinOp::Or)));
                    self.pos += 2;
                }
                b'"' | b'\'' => {
                    let quote = c;
                    self.pos += 1;
                    let s0 = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated string"));
                    }
                    let s = String::from_utf8_lossy(&self.src[s0..self.pos]).into_owned();
                    self.pos += 1;
                    out.push((start, Tok::Str(s)));
                }
                b'0'..=b'9' => {
                    let s0 = self.pos;
                    while self.pos < self.src.len()
                        && matches!(self.src[self.pos], b'0'..=b'9' | b'.' | b'e' | b'E')
                    {
                        // 'E' might start an exponent; accept +/- after it.
                        if matches!(self.src[self.pos], b'e' | b'E')
                            && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                        {
                            self.pos += 1;
                        }
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[s0..self.pos])
                        .map_err(|_| self.error("non-UTF-8 number"))?;
                    // Magnitude suffixes: 100M, 4K, 2G.
                    let (mult, skip) = match self.src.get(self.pos) {
                        Some(b'K') | Some(b'k') => (1024.0, 1),
                        Some(b'M') | Some(b'm') => (1024.0 * 1024.0, 1),
                        Some(b'G') | Some(b'g') => (1024.0 * 1024.0 * 1024.0, 1),
                        _ => (1.0, 0),
                    };
                    self.pos += skip;
                    let n: f64 = text.parse().map_err(|_| self.error("bad number"))?;
                    out.push((s0, Tok::Num(n * mult)));
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let s0 = self.pos;
                    while self.pos < self.src.len()
                        && matches!(self.src[self.pos], b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.src[s0..self.pos])
                        .map(str::to_string)
                        .map_err(|_| self.error("non-UTF-8 identifier"))?;
                    out.push((s0, Tok::Ident(s)));
                }
                _ => return Err(self.error("unexpected character")),
            }
        }
        Ok(out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> ClassAdError {
        let pos = self.toks.get(self.pos).map_or(0, |(p, _)| *p);
        ClassAdError::Parse(pos, msg.to_string())
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ClassAdError> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            _ => Err(self.err(what)),
        }
    }

    fn ad(&mut self) -> Result<ClassAd, ClassAdError> {
        self.expect(&Tok::LBracket, "expected '['")?;
        let mut ad = ClassAd::new();
        loop {
            match self.peek() {
                Some(Tok::RBracket) => {
                    self.next();
                    break;
                }
                Some(Tok::Ident(_)) => {
                    let Some(Tok::Ident(name)) = self.next() else {
                        unreachable!()
                    };
                    self.expect(&Tok::Assign, "expected '='")?;
                    let e = self.expr()?;
                    ad.set(&name, e);
                    if let Some(Tok::Semi) = self.peek() {
                        self.next();
                    }
                }
                _ => return Err(self.err("expected attribute or ']'")),
            }
        }
        Ok(ad)
    }

    fn expr(&mut self) -> Result<Expr, ClassAdError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ClassAdError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::Op(BinOp::Or)) {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ClassAdError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Some(&Tok::Op(BinOp::And)) {
            self.next();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ClassAdError> {
        let lhs = self.add_expr()?;
        if let Some(Tok::Op(op)) = self.peek() {
            let op = *op;
            if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) {
                self.next();
                let rhs = self.add_expr()?;
                return Ok(Expr::bin(op, lhs, rhs));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ClassAdError> {
        let mut lhs = self.mul_expr()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let op = *op;
            if matches!(op, BinOp::Add | BinOp::Sub) {
                self.next();
                let rhs = self.mul_expr()?;
                lhs = Expr::bin(op, lhs, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ClassAdError> {
        let mut lhs = self.unary()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let op = *op;
            if matches!(op, BinOp::Mul | BinOp::Div) {
                self.next();
                let rhs = self.unary()?;
                lhs = Expr::bin(op, lhs, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ClassAdError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.next();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            Some(Tok::Op(BinOp::Sub)) => {
                self.next();
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ClassAdError> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.next();
                Ok(Expr::Num(n))
            }
            Some(Tok::Str(s)) => {
                self.next();
                Ok(Expr::Str(s))
            }
            Some(Tok::Ident(id)) => {
                self.next();
                if id.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Bool(true));
                }
                if id.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Bool(false));
                }
                let mut path = vec![id];
                while self.peek() == Some(&Tok::Dot) {
                    self.next();
                    match self.next() {
                        Some(Tok::Ident(p)) => path.push(p),
                        _ => return Err(self.err("expected identifier after '.'")),
                    }
                }
                Ok(Expr::Ref(path))
            }
            Some(Tok::LParen) => {
                self.next();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "expected ')'")?;
                Ok(e)
            }
            Some(Tok::LBrace) => {
                self.next();
                let mut ads = Vec::new();
                loop {
                    if self.peek() == Some(&Tok::RBrace) {
                        self.next();
                        break;
                    }
                    ads.push(self.ad()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.next();
                    }
                }
                Ok(Expr::AdList(ads))
            }
            Some(Tok::LBracket) => Ok(Expr::AdList(vec![self.ad()?])),
            _ => Err(self.err("expected expression")),
        }
    }
}

/// Parses one ClassAd from text.
pub fn parse_classad(src: &str) -> Result<ClassAd, ClassAdError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let ad = p.ad()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after ad"));
    }
    Ok(ad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classad::{eval, Env, Value};

    #[test]
    fn parses_workstation_ad_figure_ii3() {
        let src = r#"
            [ Type = "Machine";
              Activity = "Idle";
              KeybrdIdle = '00:23:12';
              Disk = 323.4M;
              Memory = 512M;
              State = "Unclaimed";
              LoadAvg = 0.042969;
              Mips = 104;
              Arch = "INTEL";
              OpSys = "LINUX";
              KFlops = 21893;
            ]"#;
        let ad = parse_classad(src).unwrap();
        assert_eq!(ad.attrs().len(), 11);
        let env = Env::with_self(&ad);
        assert_eq!(ad.eval_attr("Mips", &env), Value::Num(104.0));
        // 512M suffix expands.
        assert_eq!(
            ad.eval_attr("Memory", &env),
            Value::Num(512.0 * 1024.0 * 1024.0)
        );
    }

    #[test]
    fn parses_gangmatch_request_figure_ii2() {
        let src = r#"
            [ Type = "Job";
              Owner = "somedude";
              Cmd = "run_simulation";
              Ports = {
                [ Label = cpu;
                  ImageSize = 100M;
                  Rank = cpu.KFlops/1E3 + cpu.Memory/32;
                  Constraint = cpu.Type == "Machine" &&
                               cpu.Arch == "OPTERON" &&
                               cpu.OpSys == "LINUX"
                ],
                [ Label = cpu;
                  ImageSize = 100M;
                  Rank = cpu.MFlops/1E3 + cpu.Memory/32;
                  Constraint = cpu.Type == "Machine" &&
                               cpu.Arch == "INTEL" &&
                               cpu.OpSys == "LINUX"
                ]
              }
            ]"#;
        let ad = parse_classad(src).unwrap();
        match ad.get("Ports") {
            Some(crate::classad::Expr::AdList(ports)) => {
                assert_eq!(ports.len(), 2);
                assert!(ports[0].get("Constraint").is_some());
            }
            other => panic!("Ports should be an ad list, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_print_parse() {
        let src = r#"[ Type = "Job"; Requirements = other.Memory >= 512 && other.Arch == "INTEL"; Rank = other.KFlops / 1000 ]"#;
        let ad = parse_classad(src).unwrap();
        let printed = ad.to_string();
        let re = parse_classad(&printed).unwrap();
        assert_eq!(ad, re);
    }

    #[test]
    fn comments_are_skipped() {
        let ad = parse_classad("[ // a comment\n X = 1; ]").unwrap();
        assert_eq!(ad.get("X"), Some(&crate::classad::Expr::Num(1.0)));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_classad("[ X = ; ]").unwrap_err();
        assert!(matches!(err, ClassAdError::Parse(_, _)));
    }

    #[test]
    fn precedence_mul_before_add_before_cmp() {
        let ad = parse_classad("[ X = 1 + 2 * 3 >= 7 ]").unwrap();
        let env = Env::with_self(&ad);
        assert_eq!(eval(ad.get("X").unwrap(), &env, 0), Value::Bool(true));
    }

    #[test]
    fn scientific_notation() {
        let ad = parse_classad("[ X = 1E3; Y = 2.5e-2 ]").unwrap();
        let env = Env::with_self(&ad);
        assert_eq!(ad.eval_attr("X", &env), Value::Num(1000.0));
        assert_eq!(ad.eval_attr("Y", &env), Value::Num(0.025));
    }
}
