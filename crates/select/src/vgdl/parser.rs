//! Parser for the vgDL subset (round-trips the printer output and the
//! paper's Figure II-1 / IV-4 examples).

use super::{
    Aggregate, AggregateKind, CmpOp, ConstraintValue, NodeConstraint, Proximity, VgdlError,
    VgdlSpec,
};

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: &str) -> VgdlError {
        VgdlError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        // Clamp against overruns from unterminated-literal recovery.
        self.pos = self.pos.min(self.src.len());
    }

    fn eat(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), VgdlError> {
        if self.eat(lit) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn ident(&mut self) -> Result<String, VgdlError> {
        self.skip_ws();
        let s0 = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == s0 {
            return Err(self.err("expected identifier"));
        }
        std::str::from_utf8(&self.src[s0..self.pos])
            .map(str::to_string)
            .map_err(|_| self.err("non-UTF-8 identifier"))
    }

    fn number(&mut self) -> Result<f64, VgdlError> {
        self.skip_ws();
        let s0 = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
        {
            self.pos += 1;
        }
        if self.pos == s0 {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.src[s0..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?
            .parse()
            .map_err(|_| self.err("bad number"))
    }

    fn peek_is(&mut self, lit: &str) -> bool {
        self.skip_ws();
        self.src[self.pos..].starts_with(lit.as_bytes())
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }
}

/// Parses a vgDL specification of the form
/// `VG = <aggregate> [close|far <aggregate>]*`.
pub fn parse_vgdl(src: &str) -> Result<VgdlSpec, VgdlError> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
    };
    // Optional "VG =" prefix.
    {
        let save = c.pos;
        if c.eat("VG") && !c.eat("=") {
            c.pos = save;
        }
    }
    let mut aggregates = Vec::new();
    let first = parse_aggregate(&mut c)?;
    aggregates.push((None, first));
    loop {
        if c.at_end() {
            break;
        }
        let prox = if c.eat("close") {
            Some(Proximity::Close)
        } else if c.eat("far") {
            Some(Proximity::Far)
        } else if c.peek_is("ClusterOf") || c.peek_is("TightBagOf") || c.peek_is("LooseBagOf") {
            None
        } else {
            return Err(c.err("expected 'close', 'far' or an aggregate"));
        };
        let agg = parse_aggregate(&mut c)?;
        aggregates.push((prox, agg));
    }
    Ok(VgdlSpec { aggregates })
}

fn parse_aggregate(c: &mut Cursor<'_>) -> Result<Aggregate, VgdlError> {
    let kind = if c.eat("ClusterOf") {
        AggregateKind::ClusterOf
    } else if c.eat("TightBagOf") {
        AggregateKind::TightBagOf
    } else if c.eat("LooseBagOf") {
        AggregateKind::LooseBagOf
    } else {
        return Err(c.err("expected aggregate keyword"));
    };
    c.expect("(")?;
    let var = c.ident()?;
    c.expect(")")?;
    c.expect("[")?;
    let min = c.number()? as u32;
    c.expect(":")?;
    let max = c.number()? as u32;
    c.expect("]")?;

    // Optional [rank = X].
    let mut rank = None;
    {
        let save = c.pos;
        if c.eat("[") {
            if c.eat("rank") {
                c.expect("=")?;
                rank = Some(c.ident()?);
                c.expect("]")?;
            } else {
                c.pos = save;
            }
        }
    }

    c.expect("{")?;
    let var2 = c.ident()?;
    if var2 != var {
        return Err(c.err("node-set variable mismatch"));
    }
    c.expect("=")?;
    c.expect("[")?;
    let mut constraints = Vec::new();
    loop {
        constraints.push(parse_constraint(c)?);
        if c.eat("&&") {
            continue;
        }
        break;
    }
    c.expect("]")?;
    c.expect("}")?;
    Ok(Aggregate {
        kind,
        var,
        min,
        max,
        rank,
        constraints,
    })
}

fn parse_constraint(c: &mut Cursor<'_>) -> Result<NodeConstraint, VgdlError> {
    let parens = c.eat("(");
    let attr = c.ident()?;
    let op = if c.eat("==") {
        CmpOp::Eq
    } else if c.eat(">=") {
        CmpOp::Ge
    } else if c.eat("<=") {
        CmpOp::Le
    } else if c.eat(">") {
        CmpOp::Gt
    } else if c.eat("<") {
        CmpOp::Lt
    } else {
        return Err(c.err("expected comparison operator"));
    };
    c.skip_ws();
    let value = if c.pos < c.src.len() && (c.src[c.pos].is_ascii_digit() || c.src[c.pos] == b'.') {
        ConstraintValue::Num(c.number()?)
    } else if c.src.get(c.pos) == Some(&b'"') {
        c.pos += 1;
        let s0 = c.pos;
        while c.pos < c.src.len() && c.src[c.pos] != b'"' {
            c.pos += 1;
        }
        if c.pos >= c.src.len() {
            return Err(c.err("unterminated string"));
        }
        let s = std::str::from_utf8(&c.src[s0..c.pos])
            .map_err(|_| c.err("non-UTF-8 string literal"))?
            .to_string();
        c.pos += 1;
        ConstraintValue::Sym(s)
    } else {
        ConstraintValue::Sym(c.ident()?)
    };
    if parens {
        c.expect(")")?;
    }
    Ok(NodeConstraint { attr, op, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_ii1() {
        let src = r#"
            VG =
              ClusterOf(nodes) [32:64]
              {
                nodes = [ (Processor == Opteron) && (Clock >= 2000) && (Memory >= 1024) ]
              }
              close
              TightBagOf(nodes2) [32:128]
              {
                nodes2 = [ Clock >= 1000 ]
              }
        "#;
        let spec = parse_vgdl(src).unwrap();
        assert_eq!(spec.aggregates.len(), 2);
        let (p0, a0) = &spec.aggregates[0];
        assert_eq!(*p0, None);
        assert_eq!(a0.kind, AggregateKind::ClusterOf);
        assert_eq!((a0.min, a0.max), (32, 64));
        assert_eq!(a0.constraints.len(), 3);
        let (p1, a1) = &spec.aggregates[1];
        assert_eq!(*p1, Some(Proximity::Close));
        assert_eq!(a1.kind, AggregateKind::TightBagOf);
        assert_eq!(a1.min_clock_mhz(), Some(1000.0));
    }

    #[test]
    fn parses_figure_iv4_with_rank() {
        let src = r#"
            VG = TightBagOf(nodes) [500:2633]
            [rank = Nodes] {
              nodes = [ (Clock>=3000) ]
            }
        "#;
        let spec = parse_vgdl(src).unwrap();
        let agg = &spec.aggregates[0].1;
        assert_eq!(agg.rank.as_deref(), Some("Nodes"));
        assert_eq!((agg.min, agg.max), (500, 2633));
    }

    #[test]
    fn round_trip() {
        let spec = crate::vgdl::montage_vgdl();
        let printed = spec.to_string();
        let re = parse_vgdl(&printed).unwrap();
        assert_eq!(spec, re);
    }

    #[test]
    fn var_mismatch_rejected() {
        let src = "ClusterOf(a) [1:2] { b = [ Clock >= 1 ] }";
        assert!(parse_vgdl(src).is_err());
    }

    #[test]
    fn garbage_rejected_with_position() {
        let err = parse_vgdl("WeirdBagOf(x) [1:2] { x = [ Clock >= 1 ] }").unwrap_err();
        assert!(err.to_string().contains("aggregate keyword"));
    }
}
