//! vgDL — the Virtual Grid Description Language of vgES (Section
//! II.4.1.1) and a vgES-like finder.
//!
//! vgDL describes hierarchical resource aggregates with qualitative
//! network proximity:
//!
//! ```text
//! VG = ClusterOf(nodes) [32:64]
//!        { nodes = [ (Processor == "Opteron") && (Clock >= 2000) && (Memory >= 1024) ] }
//!      close
//!      TightBagOf(nodes2) [32:128]
//!        { nodes2 = [ Clock >= 1000 ] }
//! ```
//!
//! Three aggregate types are distinguished by homogeneity and network
//! connectivity: `LooseBag` (heterogeneous, possibly poor connectivity),
//! `TightBag` (heterogeneous, good connectivity) and `Cluster`
//! (well-connected near-identical nodes). "Good" is a network latency
//! threshold.

mod finder;
mod parser;

pub use finder::VgesFinder;
pub use parser::parse_vgdl;

use std::fmt;

/// Aggregate type (Section II.4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// Heterogeneous nodes, possibly poor connectivity.
    LooseBagOf,
    /// Heterogeneous nodes, good connectivity.
    TightBagOf,
    /// Well-connected, (nearly) identical nodes.
    ClusterOf,
}

impl AggregateKind {
    /// Keyword as written in vgDL.
    pub fn keyword(self) -> &'static str {
        match self {
            AggregateKind::LooseBagOf => "LooseBagOf",
            AggregateKind::TightBagOf => "TightBagOf",
            AggregateKind::ClusterOf => "ClusterOf",
        }
    }
}

/// Comparison operators allowed in node constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
}

impl CmpOp {
    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
        }
    }
}

/// Constraint value: numeric or symbolic.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintValue {
    /// Numeric (Clock in MHz, Memory in MB, …).
    Num(f64),
    /// Symbolic (processor type, OS).
    Sym(String),
}

impl fmt::Display for ConstraintValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintValue::Num(n) => {
                if n.fract() == 0.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            ConstraintValue::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// One attribute constraint, e.g. `Clock >= 2000`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConstraint {
    /// Attribute name (`Clock`, `Memory`, `Processor`, …).
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand value.
    pub value: ConstraintValue,
}

impl NodeConstraint {
    /// Numeric constraint shorthand.
    pub fn num(attr: &str, op: CmpOp, v: f64) -> NodeConstraint {
        NodeConstraint {
            attr: attr.to_string(),
            op,
            value: ConstraintValue::Num(v),
        }
    }

    /// Symbolic equality shorthand.
    pub fn sym(attr: &str, v: &str) -> NodeConstraint {
        NodeConstraint {
            attr: attr.to_string(),
            op: CmpOp::Eq,
            value: ConstraintValue::Sym(v.to_string()),
        }
    }

    /// Evaluates the constraint against numeric/symbolic attribute
    /// accessors.
    pub fn satisfied(
        &self,
        num_attr: impl Fn(&str) -> Option<f64>,
        sym_attr: impl Fn(&str) -> Option<String>,
    ) -> bool {
        match &self.value {
            ConstraintValue::Num(v) => match num_attr(&self.attr) {
                Some(x) => match self.op {
                    CmpOp::Eq => x == *v,
                    CmpOp::Ge => x >= *v,
                    CmpOp::Le => x <= *v,
                    CmpOp::Gt => x > *v,
                    CmpOp::Lt => x < *v,
                },
                None => false,
            },
            ConstraintValue::Sym(v) => match sym_attr(&self.attr) {
                Some(x) => x.eq_ignore_ascii_case(v) == (self.op == CmpOp::Eq),
                None => false,
            },
        }
    }
}

/// One resource aggregate request.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Aggregate type.
    pub kind: AggregateKind,
    /// Node-set variable name (`nodes`).
    pub var: String,
    /// Minimum acceptable node count.
    pub min: u32,
    /// Maximum requested node count.
    pub max: u32,
    /// Optional rank expression (`Nodes` to prefer bigger bags, `Clock`
    /// to prefer faster ones).
    pub rank: Option<String>,
    /// Conjunction of node constraints.
    pub constraints: Vec<NodeConstraint>,
}

impl Aggregate {
    /// Minimum clock constraint if present, MHz.
    pub fn min_clock_mhz(&self) -> Option<f64> {
        self.constraints
            .iter()
            .filter(|c| c.attr.eq_ignore_ascii_case("Clock"))
            .filter_map(|c| match (&c.value, c.op) {
                (ConstraintValue::Num(v), CmpOp::Ge) | (ConstraintValue::Num(v), CmpOp::Gt) => {
                    Some(*v)
                }
                _ => None,
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    /// Maximum clock constraint if present, MHz.
    pub fn max_clock_mhz(&self) -> Option<f64> {
        self.constraints
            .iter()
            .filter(|c| c.attr.eq_ignore_ascii_case("Clock"))
            .filter_map(|c| match (&c.value, c.op) {
                (ConstraintValue::Num(v), CmpOp::Le) | (ConstraintValue::Num(v), CmpOp::Lt) => {
                    Some(*v)
                }
                _ => None,
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
    }
}

/// Proximity connective between consecutive aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proximity {
    /// "close" — low latency between the aggregates.
    Close,
    /// "far" — no proximity requirement.
    Far,
}

/// A complete vgDL specification: one or more aggregates joined by
/// proximity connectives.
#[derive(Debug, Clone, PartialEq)]
pub struct VgdlSpec {
    /// Aggregates with the connective *preceding* each one (the first
    /// entry has none).
    pub aggregates: Vec<(Option<Proximity>, Aggregate)>,
}

impl VgdlSpec {
    /// Single-aggregate convenience.
    pub fn single(agg: Aggregate) -> VgdlSpec {
        VgdlSpec {
            aggregates: vec![(None, agg)],
        }
    }
}

/// Errors from vgDL parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct VgdlError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Message.
    pub msg: String,
}

impl fmt::Display for VgdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vgDL parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for VgdlError {}

impl fmt::Display for VgdlSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "VG =")?;
        for (i, (prox, agg)) in self.aggregates.iter().enumerate() {
            if i > 0 {
                match prox {
                    Some(Proximity::Close) => writeln!(f, "  close")?,
                    Some(Proximity::Far) => writeln!(f, "  far")?,
                    None => {}
                }
            }
            writeln!(
                f,
                "  {}({}) [{}:{}]",
                agg.kind.keyword(),
                agg.var,
                agg.min,
                agg.max
            )?;
            if let Some(rank) = &agg.rank {
                writeln!(f, "  [rank = {rank}]")?;
            }
            writeln!(f, "  {{")?;
            let body = agg
                .constraints
                .iter()
                .map(|c| format!("({} {} {})", c.attr, c.op.symbol(), c.value))
                .collect::<Vec<_>>()
                .join(" && ");
            writeln!(f, "    {} = [ {} ]", agg.var, body)?;
            writeln!(f, "  }}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) use tests::montage_vgdl;

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure IV-4 request: TightBag of 500..2633 hosts with clock
    /// >= 3 GHz, ranked by node count.
    pub(crate) fn montage_vgdl() -> VgdlSpec {
        VgdlSpec::single(Aggregate {
            kind: AggregateKind::TightBagOf,
            var: "nodes".into(),
            min: 500,
            max: 2633,
            rank: Some("Nodes".into()),
            constraints: vec![NodeConstraint::num("Clock", CmpOp::Ge, 3000.0)],
        })
    }

    #[test]
    fn display_contains_figure_elements() {
        let s = montage_vgdl().to_string();
        assert!(s.contains("TightBagOf(nodes) [500:2633]"));
        assert!(s.contains("[rank = Nodes]"));
        assert!(s.contains("(Clock >= 3000)"));
    }

    #[test]
    fn min_max_clock_extraction() {
        let agg = Aggregate {
            kind: AggregateKind::ClusterOf,
            var: "n".into(),
            min: 1,
            max: 10,
            rank: None,
            constraints: vec![
                NodeConstraint::num("Clock", CmpOp::Ge, 2000.0),
                NodeConstraint::num("Clock", CmpOp::Le, 3500.0),
                NodeConstraint::num("Memory", CmpOp::Ge, 1024.0),
            ],
        };
        assert_eq!(agg.min_clock_mhz(), Some(2000.0));
        assert_eq!(agg.max_clock_mhz(), Some(3500.0));
    }

    #[test]
    fn constraint_satisfaction() {
        let c = NodeConstraint::num("Clock", CmpOp::Ge, 2000.0);
        assert!(c.satisfied(|a| (a == "Clock").then_some(2500.0), |_| None));
        assert!(!c.satisfied(|a| (a == "Clock").then_some(1500.0), |_| None));
        let s = NodeConstraint::sym("Processor", "Opteron");
        assert!(s.satisfied(
            |_| None,
            |a| (a == "Processor").then(|| "OPTERON".to_string())
        ));
        assert!(!s.satisfied(|_| None, |_| None));
    }
}
